"""Quickstart: protect a program with FERRUM and watch it catch a fault.

Run with::

    python examples/quickstart.py

Walks the full pipeline: mini-C source -> IR -> x86-64 assembly -> FERRUM
protection, then executes both binaries on the machine simulator, injects
one transient bit-flip into each, and shows the difference: the raw binary
silently corrupts its output, the protected one traps to the detector.
"""

from repro.asm.printer import format_program
from repro.backend import compile_module
from repro.core.ferrum import protect_program
from repro.errors import DetectionExit
from repro.faultinjection.injector import FaultPlan, inject_asm_fault
from repro.faultinjection.outcome import Outcome
from repro.machine.cpu import Machine
from repro.minic import compile_to_ir

SOURCE = """
int main() {
    int acc = 0;
    for (int i = 1; i <= 10; i++) { acc += i * i; }
    print_int(acc);
    return 0;
}
"""


def main() -> None:
    print("=== 1. compile ===")
    module = compile_to_ir(SOURCE)
    raw = compile_module(module)
    print(f"raw program: {raw.static_size()} static instructions")

    print("\n=== 2. protect with FERRUM ===")
    protected, stats = protect_program(raw)
    print(f"protected program: {protected.static_size()} instructions")
    print(f"  SIMD-batched   : {stats.simd_protected}")
    print(f"  scalar (Fig. 4): {stats.general_protected}")
    print(f"  compares (Fig.5): {stats.compare_branches}")
    print(f"  SIMD flushes   : {stats.simd_flushes}")

    print("\n=== 3. first protected basic block ===")
    text = format_program(protected)
    print("\n".join(text.splitlines()[:26]))

    print("\n=== 4. fault-free runs agree ===")
    golden_raw = Machine(raw).run()
    golden_prot = Machine(protected).run()
    print(f"raw output      : {golden_raw.output}")
    print(f"protected output: {golden_prot.output}")
    assert golden_raw.output == golden_prot.output

    print("\n=== 5. inject the same class of fault into both ===")
    # Sweep sites until the raw binary shows an SDC, then hit the
    # corresponding computation in the protected binary.
    for site in range(golden_raw.fault_sites):
        plan = FaultPlan(site_index=site, register_pick=0.0, bit_pick=0.4)
        if inject_asm_fault(raw, plan, golden_raw) is Outcome.SDC:
            print(f"raw binary, fault at site {site}: SILENT DATA CORRUPTION")
            break

    detected = 0
    for site in range(golden_prot.fault_sites):
        plan = FaultPlan(site_index=site, register_pick=0.0, bit_pick=0.4)
        outcome = inject_asm_fault(protected, plan, golden_prot)
        assert outcome is not Outcome.SDC, "FERRUM must not leak SDCs"
        if outcome is Outcome.DETECTED:
            detected += 1
    print(f"protected binary: 0 SDCs over {golden_prot.fault_sites} sites "
          f"({detected} detections)")


if __name__ == "__main__":
    main()
