"""Ablation: where does FERRUM's speed come from?

Run with::

    python examples/ablation_sweep.py [workload]

Sweeps the design choices DESIGN.md calls out:

* SIMD batching on/off (AS2 vs "scalar FERRUM");
* batch size 1/2/4 (how many results share one check);
* register scarcity (forces the Fig. 7 stack-requisition path).

All variants keep 100 % protection; only the cost changes.
"""

import sys

from repro.asm.registers import GPR64
from repro.core.config import FerrumConfig
from repro.machine.cpu import Machine
from repro.machine.timing import TimingConfig
from repro.pipeline import build_variants
from repro.utils.text import format_table, percent
from repro.workloads import get_workload


def _scarce(*free: str) -> frozenset[str]:
    return frozenset(
        root for root in GPR64 if root not in free and root not in ("rsp", "rbp")
    )


CONFIGS = [
    ("ferrum (paper)", FerrumConfig()),
    ("batch=2", FerrumConfig(simd_batch=2)),
    ("batch=1", FerrumConfig(simd_batch=1)),
    ("no SIMD", FerrumConfig(use_simd=False)),
    ("scarce: 4 GPRs", FerrumConfig(
        pretend_used_gprs=_scarce("r10", "r11", "r12", "r13"))),
    ("scarce: 1 GPR", FerrumConfig(pretend_used_gprs=_scarce("r10"))),
]


def main(workload: str = "pathfinder") -> None:
    spec = get_workload(workload)
    source = spec.source(1)
    timing = TimingConfig()

    raw = build_variants(source, names=("raw",))["raw"]
    raw_run = Machine(raw.asm).run(timing=timing)
    golden = Machine(raw.asm).run()
    print(f"{spec.name}: raw = {raw_run.cycles} cycles, "
          f"{raw.static_size} static instructions")

    rows = []
    for label, config in CONFIGS:
        variant = build_variants(source, names=("ferrum",),
                                 config=config)["ferrum"]
        run = Machine(variant.asm).run(timing=timing)
        check = Machine(variant.asm).run()
        assert check.output == golden.output, f"{label}: output changed!"
        rows.append([
            label,
            str(variant.static_size),
            percent((run.cycles - raw_run.cycles) / raw_run.cycles),
        ])
    print(format_table(
        ["configuration", "static instrs", "runtime overhead"], rows,
        title="FERRUM ablations (output verified identical in every row)",
    ))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "pathfinder")
