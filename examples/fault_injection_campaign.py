"""Fault-injection campaign on a Rodinia-like benchmark (paper Fig. 10).

Run with::

    python examples/fault_injection_campaign.py [workload] [samples]

Builds all four protection variants of one workload, runs a seeded
campaign of single-bit flips against each, and prints the SDC-coverage row
exactly as the evaluation harness computes it.
"""

import sys

from repro.faultinjection.campaign import run_campaign
from repro.faultinjection.outcome import Outcome, sdc_coverage
from repro.pipeline import build_variants
from repro.utils.text import format_table, percent
from repro.workloads import get_workload


def main(workload: str = "knn", samples: int = 120) -> None:
    spec = get_workload(workload)
    print(f"building {spec.name} ({spec.domain}) ...")
    build = build_variants(spec.source(1))

    print(f"injecting {samples} faults per variant ...")
    raw = run_campaign(build["raw"].asm, samples, seed=7)
    rows = [["raw", percent(raw.sdc_probability), "-"]
            + [str(raw.outcomes[o]) for o in Outcome]]
    for name in ("ir-eddi", "hybrid", "ferrum"):
        campaign = run_campaign(build[name].asm, samples, seed=7)
        coverage = sdc_coverage(raw.sdc_probability,
                                campaign.sdc_probability)
        rows.append([name, percent(campaign.sdc_probability),
                     percent(coverage)]
                    + [str(campaign.outcomes[o]) for o in Outcome])

    print(format_table(
        ["variant", "P(SDC)", "coverage"] + [o.value for o in Outcome],
        rows,
        title=f"{spec.name}: {samples} single-bit faults per variant",
    ))


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "knn"
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 120
    main(name, count)
