"""Protecting your own program: a mini-C matrix-vector kernel.

Run with::

    python examples/custom_workload.py

Shows the library as a downstream user would drive it: write mini-C, build
the protection variants, compare runtime overheads under the cycle model,
and check SDC coverage with a quick campaign.
"""

from repro.faultinjection.campaign import run_campaign
from repro.faultinjection.outcome import sdc_coverage
from repro.machine.cpu import Machine
from repro.machine.timing import TimingConfig
from repro.pipeline import build_variants
from repro.utils.text import format_table, percent

MY_PROGRAM = """
// Fixed-point matrix-vector multiply with a residual check.
int main() {
    int n = 12;
    int* matrix = malloc(n * n * 4);
    int* vec = malloc(n * 4);
    int* out = malloc(n * 4);
    srand(99);
    for (int i = 0; i < n * n; i++) { matrix[i] = rand_next() % 64 - 32; }
    for (int i = 0; i < n; i++) { vec[i] = rand_next() % 64 - 32; }

    for (int row = 0; row < n; row++) {
        int acc = 0;
        for (int col = 0; col < n; col++) {
            acc += matrix[row * n + col] * vec[col];
        }
        out[row] = acc >> 4;
    }

    long checksum = 0;
    for (int i = 0; i < n; i++) { checksum += out[i] * (i + 1); }
    print_long(checksum);
    return 0;
}
"""


def main() -> None:
    build = build_variants(MY_PROGRAM)
    timing = TimingConfig()

    golden = Machine(build["raw"].asm).run()
    print(f"program output: {golden.output[0]}  "
          f"({golden.dynamic_instructions} instructions)")

    raw_cycles = Machine(build["raw"].asm).run(timing=timing).cycles
    raw_campaign = run_campaign(build["raw"].asm, samples=80, seed=1)

    rows = []
    for name in ("ir-eddi", "hybrid", "ferrum"):
        variant = build[name]
        cycles = Machine(variant.asm).run(timing=timing).cycles
        campaign = run_campaign(variant.asm, samples=80, seed=1)
        rows.append([
            name,
            str(variant.static_size),
            percent((cycles - raw_cycles) / raw_cycles),
            percent(sdc_coverage(raw_campaign.sdc_probability,
                                 campaign.sdc_probability)),
        ])
    print(format_table(
        ["variant", "static instrs", "runtime overhead", "SDC coverage"],
        rows, title="protection cost/benefit for the custom kernel",
    ))


if __name__ == "__main__":
    main()
