"""IR -> x86-64 backend (-O0 style).

Every IR value lives in a stack slot; each instruction reloads its operands
into scratch registers and spills its result. This is deliberately the
clang -O0 shape: the reloads, flag rematerializations and argument moves
the backend inserts are invisible at IR level, and they are exactly the
unprotected fault sites behind the paper's cross-layer coverage gap
(Sec. IV-B1, Figs. 8-9).
"""

from repro.backend.frame import FrameLayout
from repro.backend.isel import LoweringKnobs, compile_module, compile_function

__all__ = ["FrameLayout", "LoweringKnobs", "compile_function",
           "compile_module"]
