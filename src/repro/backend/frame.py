"""Stack frame layout for the -O0 backend.

Assigns one rbp-relative slot to every IR value that has a result (plus the
backing storage of each ``alloca``). Alloca storage is addressed directly
by loads/stores that use the alloca, so the alloca's *pointer value* itself
needs no slot — it is rematerialized with ``leaq`` where needed, exactly as
clang -O0 does.
"""

from __future__ import annotations

from repro.errors import BackendError
from repro.ir.instructions import Alloca
from repro.ir.module import IRFunction
from repro.ir.types import IntType
from repro.ir.values import Value


def _slot_size(value: Value) -> int:
    if isinstance(value.type, IntType):
        return 8 if value.type.bits == 64 else 4
    return 8  # pointers


class FrameLayout:
    """rbp-relative slot assignment for one function."""

    def __init__(self, func: IRFunction) -> None:
        self._offsets: dict[Value, int] = {}
        self._storage: dict[Alloca, int] = {}
        cursor = 0

        for arg in func.args:
            cursor += 8
            self._offsets[arg] = -cursor

        for instr in func.instructions():
            if isinstance(instr, Alloca):
                size = instr.allocated.size_bytes * instr.count
                cursor += (size + 7) & ~7
                self._storage[instr] = -cursor
            elif instr.has_result:
                cursor += (_slot_size(instr) + 3) & ~3
                self._offsets[instr] = -((cursor + 7) & ~7)
                cursor = (cursor + 7) & ~7

        self.size = (cursor + 15) & ~15

    def slot(self, value: Value) -> int:
        """rbp-relative offset of a value's spill slot."""
        try:
            return self._offsets[value]
        except KeyError:
            raise BackendError(f"value %{value.name} has no slot") from None

    def storage(self, alloca: Alloca) -> int:
        """rbp-relative offset of an alloca's backing storage."""
        try:
            return self._storage[alloca]
        except KeyError:
            raise BackendError(f"alloca %{alloca.name} has no storage") from None

    def has_slot(self, value: Value) -> bool:
        return value in self._offsets
