"""Stack frame layout for the -O0 backend.

Assigns one rbp-relative slot to every IR value that has a result (plus the
backing storage of each ``alloca``). Alloca storage is addressed directly
by loads/stores that use the alloca, so the alloca's *pointer value* itself
needs no slot — it is rematerialized with ``leaq`` where needed, exactly as
clang -O0 does.

Slot assignment is *permutable*: every argument and result slot is a
uniform 8-byte, 8-aligned cell whose address is never taken (only alloca
storage is pointer-visible), so any bijection of values onto the same cell
set yields a semantically identical layout. The DME detector
(:mod:`repro.core.dme`) uses this to build a structurally decorrelated
program variant: ``slot_seed`` shuffles the assignment deterministically,
``slot_permutation`` applies an explicit offset bijection (validated at
build time). Alloca storage is deliberately excluded from the permutable
set — its rbp-relative offset is materialized into pointer values by
``leaq``, so moving it would change observable pointer arithmetic.
"""

from __future__ import annotations

import zlib

from repro.errors import BackendError
from repro.ir.instructions import Alloca
from repro.ir.module import IRFunction
from repro.ir.types import IntType
from repro.ir.values import Value


def _slot_size(value: Value) -> int:
    if isinstance(value.type, IntType):
        return 8 if value.type.bits == 64 else 4
    return 8  # pointers


class FrameLayout:
    """rbp-relative slot assignment for one function.

    ``slot_seed`` deterministically shuffles which value lands in which
    arg/result cell (per-function stream, derived from the function name so
    multi-function programs don't share one permutation).
    ``slot_permutation`` maps baseline offset -> permuted offset and must be
    a bijection over exactly the function's arg/result cell offsets;
    anything else raises :class:`BackendError` at build time. The applied
    mapping is exposed as :attr:`slot_map` so trace canonicalization can
    erase the permutation again.
    """

    def __init__(
        self,
        func: IRFunction,
        slot_seed: int | None = None,
        slot_permutation: dict[int, int] | None = None,
    ) -> None:
        if slot_seed is not None and slot_permutation is not None:
            raise BackendError(
                "pass either slot_seed or slot_permutation, not both"
            )
        self._offsets: dict[Value, int] = {}
        self._storage: dict[Alloca, int] = {}
        cursor = 0

        for arg in func.args:
            cursor += 8
            self._offsets[arg] = -cursor

        for instr in func.instructions():
            if isinstance(instr, Alloca):
                size = instr.allocated.size_bytes * instr.count
                cursor += (size + 7) & ~7
                self._storage[instr] = -cursor
            elif instr.has_result:
                cursor += (_slot_size(instr) + 3) & ~3
                self._offsets[instr] = -((cursor + 7) & ~7)
                cursor = (cursor + 7) & ~7

        self.size = (cursor + 15) & ~15

        cells = [self._offsets[value] for value in self._offsets]
        self.slot_map: dict[int, int] = {off: off for off in cells}
        if slot_seed is not None:
            from repro.utils.rng import DeterministicRng

            rng = DeterministicRng(slot_seed).fork(
                zlib.crc32(func.name.encode("utf-8"))
            )
            self.slot_map = dict(zip(cells, rng.shuffled(cells)))
        elif slot_permutation is not None:
            self._validate_permutation(func.name, slot_permutation, cells)
            self.slot_map = dict(slot_permutation)
        if any(self.slot_map[off] != off for off in cells):
            self._offsets = {
                value: self.slot_map[off]
                for value, off in self._offsets.items()
            }

    @staticmethod
    def _validate_permutation(
        func_name: str, permutation: dict[int, int], cells: list[int]
    ) -> None:
        cell_set = set(cells)
        if set(permutation) != cell_set:
            raise BackendError(
                f"{func_name}: slot permutation domain "
                f"{sorted(permutation)} does not match the frame's "
                f"arg/result cells {sorted(cell_set)}"
            )
        if set(permutation.values()) != cell_set:
            raise BackendError(
                f"{func_name}: slot permutation is not a bijection over the "
                f"frame's arg/result cells (image "
                f"{sorted(set(permutation.values()))} != cells "
                f"{sorted(cell_set)})"
            )

    def slot(self, value: Value) -> int:
        """rbp-relative offset of a value's spill slot."""
        try:
            return self._offsets[value]
        except KeyError:
            raise BackendError(f"value %{value.name} has no slot") from None

    def storage(self, alloca: Alloca) -> int:
        """rbp-relative offset of an alloca's backing storage."""
        try:
            return self._storage[alloca]
        except KeyError:
            raise BackendError(f"alloca %{alloca.name} has no storage") from None

    def has_slot(self, value: Value) -> bool:
        return value in self._offsets
