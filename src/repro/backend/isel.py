"""-O0 instruction selection: IR -> x86-64 assembly.

Lowering discipline (mirrors clang -O0):

* each IR value is computed into scratch registers and spilled to its frame
  slot; every use reloads it — these reloads are assembly-level fault sites
  that IR-level protection cannot see;
* a branch whose ``i1`` condition was *just* compared uses the live flags
  (``cmp`` + ``j<cc>``); any other branch **rematerializes** the flags with
  ``cmpl $0, slot`` + ``jne`` — the paper's Fig. 8/9 pattern;
* call arguments are marshalled through the SysV registers right before the
  ``call`` — after any IR-level operand checks have already run;
* scratch registers are rax/rcx/rdx (+ arg registers at calls), leaving
  rbx/r10-r15 and all vector registers untouched — the spare set FERRUM's
  static analysis later discovers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.instructions import Instruction, ins
from repro.asm.operands import Imm, LabelRef, Mem, Reg
from repro.asm.program import AsmBlock, AsmFunction, AsmProgram
from repro.asm.registers import ARG_GPRS, get_register, gpr_with_width
from repro.backend.frame import FrameLayout
from repro.errors import BackendError
from repro.ir.instructions import (
    Alloca, BinOp, Br, Call, Cast, Check, ICmp, IRInstruction, Jump, Load,
    PtrAdd, Ret, Store,
)
from repro.ir.module import IRFunction, IRModule
from repro.ir.types import IntType, PointerType
from repro.ir.values import Constant, Value

_RBP = get_register("rbp")
_RSP = get_register("rsp")

_PRED_CC = {"eq": "e", "ne": "ne", "slt": "l", "sle": "le",
            "sgt": "g", "sge": "ge"}

_BINOP_MNEMONIC = {"add": "add", "sub": "sub", "mul": "imul",
                   "and": "and", "or": "or", "xor": "xor"}
_SHIFT_MNEMONIC = {"shl": "shl", "ashr": "sar", "lshr": "shr"}


def _width(value: Value) -> int:
    """Operation width of a value: 64 for i64/pointers, else 32."""
    if isinstance(value.type, IntType) and value.type.bits == 64:
        return 64
    if isinstance(value.type, PointerType):
        return 64
    return 32


def _suffix(width: int) -> str:
    return "q" if width == 64 else "l"


#: Roots usable as the lowering accumulator. ``rcx``/``rdx`` are excluded —
#: variable shift counts are pinned to ``cl`` and the idiv sequence owns
#: ``rdx`` — as are the SysV argument registers other than ``rax``.
ACC_ROOTS: tuple[str, ...] = ("rax", "rbx", "r10", "r11")

#: Roots usable as the auxiliary scratch (second operand / pointer reloads).
AUX_ROOTS: tuple[str, ...] = ("rcx", "rbx", "r10", "r11")


@dataclass(frozen=True)
class LoweringKnobs:
    """Decorrelation knobs for instruction selection.

    The default knobs reproduce the historical backend exactly. A non-default
    set renames the *free* scratch roles (the accumulator and the auxiliary
    scratch) and/or shuffles frame-slot assignment — both are pure renamings:
    the emitted instruction sequence has the same length, mnemonics and
    shapes, which is what lets :mod:`repro.core.dme` run two variants in
    lockstep and compare traces positionally. Sequences with architectural
    register pinning (idiv's rax/rdx/rcx, variable shift counts in ``cl``,
    ``set<cc>`` through ``al``, the SysV call/return registers, rbp/rsp frame
    code) keep their literal registers under every knob setting.

    ``tag_backend`` stamps ``origin="backend"`` on the instructions the
    backend *inserts* around the programmer's computation — spills, reloads,
    prologue/epilogue frame code, argument marshalling, flag
    rematerialization — so fault-injection telemetry can separate
    backend-inserted sites from programmer-visible ones. Tags never affect
    semantics, and IR-instrumentation provenance ("check",
    "instrumentation") always wins over the backend tag.
    """

    slot_seed: int | None = None
    acc: str = "rax"
    aux: str = "rcx"
    tag_backend: bool = False

    def __post_init__(self) -> None:
        if self.acc not in ACC_ROOTS:
            raise BackendError(
                f"accumulator root {self.acc!r} not in {ACC_ROOTS}"
            )
        if self.aux not in AUX_ROOTS:
            raise BackendError(
                f"auxiliary root {self.aux!r} not in {AUX_ROOTS}"
            )
        if self.acc == self.aux:
            raise BackendError(
                f"accumulator and auxiliary roots must differ, both {self.acc!r}"
            )

    def register_map(self) -> dict[str, str]:
        """Baseline scratch root -> this knob set's root."""
        return {"rax": self.acc, "rcx": self.aux}


class _FunctionLowering:
    def __init__(self, func: IRFunction,
                 knobs: LoweringKnobs | None = None) -> None:
        self.func = func
        self.knobs = knobs or LoweringKnobs()
        self.frame = FrameLayout(func, slot_seed=self.knobs.slot_seed)
        self.asm = AsmFunction(func.name, [AsmBlock(func.name)])
        self._block = self.asm.blocks[0]
        self._detect_label: str | None = None
        self._origin = "orig"
        self._acc = self.knobs.acc
        self._aux = self.knobs.aux

    # -- emission helpers --------------------------------------------------

    def _emit(self, instr: Instruction) -> None:
        if self._origin != "orig":
            instr.origin = self._origin
        self._block.append(instr)

    def _emit_backend(self, instr: Instruction) -> None:
        """Emit one backend-inserted instruction (spill/reload/frame/remat).

        Tagged ``origin="backend"`` when the knobs ask for it; IR-level
        instrumentation provenance takes precedence.
        """
        if self.knobs.tag_backend and self._origin == "orig":
            instr.origin = "backend"
            self._block.append(instr)
        else:
            self._emit(instr)

    def _label(self, ir_label: str) -> str:
        return f".L{self.func.name}_{ir_label}"

    def _slot_mem(self, value: Value) -> Mem:
        return Mem(disp=self.frame.slot(value), base=_RBP)

    def _reg(self, root: str, width: int) -> Reg:
        return Reg(gpr_with_width(root, width))

    def _load_value(self, value: Value, root: str, width: int | None = None,
                    comment: str | None = None) -> Reg:
        """Materialize ``value`` into GPR ``root``; returns the register view."""
        if width is None:
            width = _width(value)
        dest = self._reg(root, width)
        if isinstance(value, Constant):
            self._emit_backend(ins(f"mov{_suffix(width)}", Imm(value.value),
                                   dest, comment=comment))
        elif isinstance(value, Alloca):
            self._emit_backend(ins("leaq",
                                   Mem(disp=self.frame.storage(value),
                                       base=_RBP),
                                   self._reg(root, 64), comment=comment))
        else:
            self._emit_backend(ins(f"mov{_suffix(width)}",
                                   self._slot_mem(value), dest,
                                   comment=comment))
        return dest

    def _store_result(self, instr: IRInstruction, root: str,
                      width: int | None = None) -> None:
        if width is None:
            width = _width(instr)
        self._emit_backend(ins(f"mov{_suffix(width)}", self._reg(root, width),
                               self._slot_mem(instr)))

    def _operand(self, value: Value, root: str, width: int):
        """Second ALU operand: immediate when constant, else loaded reg."""
        if isinstance(value, Constant):
            return Imm(value.value)
        return self._load_value(value, root, width)

    def _require_detect(self) -> str:
        if self._detect_label is None:
            self._detect_label = f".L{self.func.name}__detect"
        return self._detect_label

    # -- pointers ------------------------------------------------------------

    def _pointer_operand(self, pointer: Value, root: str) -> Mem:
        """Memory operand addressing what ``pointer`` points at.

        Allocas fold to direct rbp-relative access (the clang -O0 shape);
        other pointers are reloaded from their slot into ``root``.
        """
        if isinstance(pointer, Alloca):
            return Mem(disp=self.frame.storage(pointer), base=_RBP)
        reg = self._load_value(pointer, root, 64)
        return Mem(base=reg.register)

    # -- per-instruction lowering ---------------------------------------

    def _lower_load(self, instr: Load) -> None:
        width = _width(instr)
        mem = self._pointer_operand(instr.pointer, self._aux)
        self._emit(ins(f"mov{_suffix(width)}", mem, self._reg(self._acc, width)))
        self._store_result(instr, self._acc, width)

    def _lower_store(self, instr: Store) -> None:
        width = _width(instr.value)
        value_reg = self._load_value(instr.value, self._acc, width)
        mem = self._pointer_operand(instr.pointer, self._aux)
        self._emit(ins(f"mov{_suffix(width)}", value_reg, mem))

    def _lower_binop(self, instr: BinOp) -> None:
        width = _width(instr)
        suffix = _suffix(width)
        op = instr.op
        if op in _BINOP_MNEMONIC:
            self._load_value(instr.lhs, self._acc, width)
            src = self._operand(instr.rhs, self._aux, width)
            self._emit(ins(f"{_BINOP_MNEMONIC[op]}{suffix}", src,
                           self._reg(self._acc, width)))
            self._store_result(instr, self._acc, width)
        elif op in ("sdiv", "srem"):
            # Architecturally pinned: rdx:rax dividend, quotient/remainder in
            # rax/rdx — identical under every knob setting.
            self._load_value(instr.lhs, "rax", width)
            self._load_value(instr.rhs, "rcx", width)
            self._emit(ins("cltd" if width == 32 else "cqto"))
            self._emit(ins(f"idiv{suffix}", self._reg("rcx", width)))
            self._store_result(instr, "rax" if op == "sdiv" else "rdx", width)
        elif op in _SHIFT_MNEMONIC:
            self._load_value(instr.lhs, self._acc, width)
            if isinstance(instr.rhs, Constant):
                count = Imm(instr.rhs.value)
            else:
                # Variable shift counts are pinned to cl (and ACC_ROOTS
                # excludes rcx, so the shiftee never collides with it).
                self._load_value(instr.rhs, "rcx", width)
                count = Reg(get_register("cl"))
            self._emit(ins(f"{_SHIFT_MNEMONIC[op]}{suffix}", count,
                           self._reg(self._acc, width)))
            self._store_result(instr, self._acc, width)
        else:
            raise BackendError(f"cannot lower binop {op}")

    def _lower_icmp(self, instr: ICmp, materialize: bool) -> None:
        width = _width(instr.lhs)
        self._load_value(instr.lhs, self._acc, width)
        src = self._operand(instr.rhs, self._aux, width)
        self._emit(ins(f"cmp{_suffix(width)}", src,
                       self._reg(self._acc, width)))
        if materialize:
            cc = _PRED_CC[instr.pred]
            al = Reg(get_register("al"))
            self._emit(ins(f"set{cc}", al))
            self._emit(ins("movzbl", al, self._reg("rax", 32)))
            self._store_result(instr, "rax", 32)

    def _lower_cast(self, instr: Cast) -> None:
        if instr.op == "sext":
            src_width = _width(instr.value)
            if src_width == 64:
                raise BackendError("sext from i64 unsupported")
            if isinstance(instr.value, Constant):
                self._emit(ins("movq", Imm(instr.value.value),
                               self._reg(self._acc, 64)))
            else:
                self._emit(ins("movslq", self._slot_mem(instr.value),
                               self._reg(self._acc, 64)))
            self._store_result(instr, self._acc, 64)
        elif instr.op == "zext":
            # i1/i8/i32 slots hold zero-extended 32-bit values already.
            self._load_value(instr.value, self._acc, 32)
            self._store_result(instr, self._acc, _width(instr))
        else:  # trunc: take the low 32 bits of the 64-bit slot
            if isinstance(instr.value, Constant):
                self._emit(ins("movl", Imm(instr.value.value & 0xFFFF_FFFF),
                               self._reg(self._acc, 32)))
            else:
                self._emit(ins("movl", self._slot_mem(instr.value),
                               self._reg(self._acc, 32)))
            self._store_result(instr, self._acc, 32)

    def _lower_ptradd(self, instr: PtrAdd) -> None:
        ptr_type = instr.base.type
        stride = ptr_type.element_size if isinstance(ptr_type, PointerType) else 1
        base = self._load_value(instr.base, self._acc, 64)
        index = self._load_value(instr.index, self._aux, 64)
        if stride in (1, 2, 4, 8):
            self._emit(ins("leaq",
                           Mem(base=base.register, index=index.register,
                               scale=stride),
                           self._reg(self._acc, 64)))
        else:
            self._emit(ins("imulq", Imm(stride), self._reg(self._aux, 64)))
            self._emit(ins("addq", self._reg(self._aux, 64),
                           self._reg(self._acc, 64)))
        self._store_result(instr, self._acc, 64)

    def _lower_call(self, instr: Call) -> None:
        if len(instr.args) > len(ARG_GPRS):
            raise BackendError(
                f"call to {instr.callee} with more than {len(ARG_GPRS)} args"
            )
        for arg, reg_root in zip(instr.args, ARG_GPRS):
            self._load_value(arg, reg_root, comment="marshal argument")
        self._emit(ins("call", LabelRef(instr.callee)))
        if instr.has_result:
            self._store_result(instr, "rax")

    def _lower_check(self, instr: Check) -> None:
        width = _width(instr.original)
        self._load_value(instr.original, self._acc, width)
        src = self._operand(instr.duplicate, self._aux, width)
        self._emit(ins(f"cmp{_suffix(width)}", src,
                       self._reg(self._acc, width), comment="EDDI check"))
        self._emit(ins("jne", LabelRef(self._require_detect())))

    def _lower_ret(self, instr: Ret) -> None:
        if instr.value is not None:
            self._load_value(instr.value, "rax")  # SysV result register
        self._emit_backend(ins("movq", Reg(_RBP), Reg(_RSP)))
        self._emit_backend(ins("popq", Reg(_RBP)))
        self._emit(ins("retq"))

    # -- block/function driver ---------------------------------------------

    def _branch_uses_live_flags(self, block_instrs: list[IRInstruction],
                                index: int) -> bool:
        """True when the Br at ``index`` directly follows its own ICmp."""
        br = block_instrs[index]
        assert isinstance(br, Br)
        return (
            index > 0
            and isinstance(block_instrs[index - 1], ICmp)
            and block_instrs[index - 1] is br.cond
        )

    def _icmp_only_feeds_adjacent_br(self, block_instrs: list[IRInstruction],
                                     index: int,
                                     use_counts: dict[Value, int]) -> bool:
        icmp = block_instrs[index]
        return (
            index + 1 < len(block_instrs)
            and isinstance(block_instrs[index + 1], Br)
            and block_instrs[index + 1].cond is icmp  # type: ignore[attr-defined]
            and use_counts.get(icmp, 0) == 1
        )

    def _lower_br(self, instr: Br, live_flags: bool, next_label: str | None) -> None:
        then_label = self._label(instr.then_label)
        else_label = self._label(instr.else_label)
        if live_flags:
            assert isinstance(instr.cond, ICmp)
            cc = _PRED_CC[instr.cond.pred]
        else:
            # Fig. 8/9: rematerialize the condition from its slot. This
            # cmpl writes FLAGS — a brand-new fault site invisible at IR
            # level.
            self._emit_backend(ins("cmpl", Imm(0), self._slot_mem(instr.cond),
                                   comment="rematerialize branch condition"))
            cc = "ne"
        if next_label == else_label:
            self._emit(ins(f"j{cc}", LabelRef(then_label)))
        elif next_label == then_label:
            from repro.asm.instructions import INVERTED_CC

            self._emit(ins(f"j{INVERTED_CC[cc]}", LabelRef(else_label)))
        else:
            self._emit(ins(f"j{cc}", LabelRef(then_label)))
            self._emit(ins("jmp", LabelRef(else_label)))

    def lower(self) -> AsmFunction:
        use_counts: dict[Value, int] = {}
        for instr in self.func.instructions():
            for operand in instr.operands():
                use_counts[operand] = use_counts.get(operand, 0) + 1

        # Prologue + spill incoming arguments to their slots.
        self._emit_backend(ins("pushq", Reg(_RBP)))
        self._emit_backend(ins("movq", Reg(_RSP), Reg(_RBP)))
        if self.frame.size:
            self._emit_backend(ins("subq", Imm(self.frame.size), Reg(_RSP)))
        for arg, reg_root in zip(self.func.args, ARG_GPRS):
            width = _width(arg)
            self._emit_backend(ins(f"mov{_suffix(width)}",
                                   self._reg(reg_root, width),
                                   self._slot_mem(arg),
                                   comment=f"spill argument {arg.name}"))

        labels = [self._label(blk.label) for blk in self.func.blocks]
        for bi, ir_block in enumerate(self.func.blocks):
            block = AsmBlock(labels[bi])
            self.asm.blocks.append(block)
            self._block = block
            next_label = labels[bi + 1] if bi + 1 < len(labels) else None
            instrs = ir_block.instructions
            for ii, instr in enumerate(instrs):
                if isinstance(instr, Alloca):
                    continue  # storage handled by the frame
                # Instrumentation provenance: instructions lowered from an
                # IR-level protection pass are tagged so a later
                # assembly-level pass does not re-duplicate them.
                if isinstance(instr, Check):
                    self._origin = "check"
                elif instr.name.startswith("__sig") or (
                    isinstance(instr, Store)
                    and instr.pointer.name.startswith("__sig")
                ) or instr.name.endswith(".dup"):
                    self._origin = "instrumentation"
                else:
                    self._origin = "orig"
                if isinstance(instr, ICmp):
                    fold = self._icmp_only_feeds_adjacent_br(instrs, ii, use_counts)
                    self._lower_icmp(instr, materialize=not fold)
                elif isinstance(instr, Br):
                    live = self._branch_uses_live_flags(instrs, ii)
                    self._lower_br(instr, live, next_label)
                elif isinstance(instr, Jump):
                    target = self._label(instr.target)
                    if target != next_label:
                        self._emit(ins("jmp", LabelRef(target)))
                elif isinstance(instr, Ret):
                    self._lower_ret(instr)
                elif isinstance(instr, Load):
                    self._lower_load(instr)
                elif isinstance(instr, Store):
                    self._lower_store(instr)
                elif isinstance(instr, BinOp):
                    self._lower_binop(instr)
                elif isinstance(instr, Cast):
                    self._lower_cast(instr)
                elif isinstance(instr, PtrAdd):
                    self._lower_ptradd(instr)
                elif isinstance(instr, Call):
                    self._lower_call(instr)
                elif isinstance(instr, Check):
                    self._lower_check(instr)
                else:
                    raise BackendError(f"cannot lower {instr.opcode}")

        if self._detect_label is not None:
            detect = AsmBlock(self._detect_label)
            detect.append(ins("call", LabelRef("__eddi_detect")))
            detect.append(ins("retq"))
            self.asm.blocks.append(detect)

        # Entry block must end with a transfer into the first IR block; it
        # falls through (the first IR block is laid out right after).
        return self.asm


def compile_function(func: IRFunction,
                     knobs: LoweringKnobs | None = None) -> AsmFunction:
    """Lower one IR function to assembly."""
    return _FunctionLowering(func, knobs).lower()


def compile_module(module: IRModule,
                   knobs: LoweringKnobs | None = None) -> AsmProgram:
    """Lower a whole IR module to an assembly program."""
    program = AsmProgram(metadata={"protection": "none"})
    for func in module.functions:
        program.add_function(compile_function(func, knobs))
    return program
