"""Parser for the IR text format (inverse of :mod:`repro.ir.printer`).

Reads modules printed by :func:`repro.ir.printer.format_module` back into
:class:`repro.ir.module.IRModule` objects. Useful for writing IR test
fixtures directly, inspecting transformed IR dumps, and property-testing
the printer (print → parse → print is a fixpoint).

Grammar (one instruction per line)::

    define <type> @<name>(<type> %arg, ...) {
    <label>:
      %v = alloca <type>[, count]
      %v = load <type>, %ptr
      store <type> <val>, %ptr
      %v = <binop> <type> <a>, <b>
      %v = icmp <pred> <type> <a>, <b>
      %v = sext|zext|trunc <type> <a> to <type>
      %v = ptradd <type> %base, <idx>
      %v = call <type> @f(<args>)   |   call void @f(<args>)
      check <type> <a>, <b>
      br i1 <cond>, label %then, label %else
      br label %target
      ret <type> <val>   |   ret void
    }
"""

from __future__ import annotations

import re

from repro.errors import IRError
from repro.ir.instructions import (
    Alloca, BINARY_OPS, BinOp, Br, Call, Cast, Check, ICmp,
    ICMP_PREDICATES, Jump, Load, PtrAdd, Ret, Store,
)
from repro.ir.module import IRBlock, IRFunction, IRModule
from repro.ir.types import I1, I8, I32, I64, PointerType, Type, VOID
from repro.ir.values import Constant, Value

_DEFINE_RE = re.compile(r"^define\s+(\S+)\s+@([\w.]+)\((.*)\)\s*\{$")
_LABEL_RE = re.compile(r"^([\w.]+):$")
_ASSIGN_RE = re.compile(r"^%([\w.]+)\s*=\s*(.+)$")
_CALL_RE = re.compile(r"^call\s+(\S+)\s+@([\w.]+)\((.*)\)$")

_INT_TYPES: dict[str, Type] = {"i1": I1, "i8": I8, "i32": I32, "i64": I64}


class IRParseError(IRError):
    """Raised on malformed IR text."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


def parse_type(text: str) -> Type:
    """Parse a type token: ``i32``, ``i64*``, ``ptr``, ``void``."""
    text = text.strip()
    if text == "void":
        return VOID
    if text == "ptr":
        return PointerType(None)
    depth = 0
    while text.endswith("*"):
        depth += 1
        text = text[:-1]
    base = _INT_TYPES.get(text)
    if base is None:
        raise IRError(f"unknown type {text!r}")
    result: Type = base
    for _ in range(depth):
        result = PointerType(result)
    return result


class _FunctionParser:
    def __init__(self, module: IRModule, func: IRFunction) -> None:
        self.module = module
        self.func = func
        self.values: dict[str, Value] = {arg.name: arg for arg in func.args}
        self.block: IRBlock | None = None

    def _value(self, token: str, type_: Type, line: int) -> Value:
        token = token.strip()
        if token.startswith("%"):
            name = token[1:]
            try:
                return self.values[name]
            except KeyError:
                raise IRParseError(f"use of unknown value %{name}", line) from None
        try:
            return Constant(int(token), type_)
        except ValueError:
            raise IRParseError(f"bad operand {token!r}", line) from None

    def _define(self, name: str, value: Value, line: int) -> None:
        if name in self.values:
            raise IRParseError(f"redefinition of %{name}", line)
        value.name = name
        self.values[name] = value

    def _split_args(self, text: str) -> list[str]:
        return [part.strip() for part in text.split(",") if part.strip()]

    # -- statement parsing ---------------------------------------------------

    def parse_line(self, text: str, line: int) -> None:
        label_match = _LABEL_RE.match(text)
        if label_match:
            self.block = self.func.add_block(label_match.group(1))
            return
        if self.block is None:
            raise IRParseError("instruction before first label", line)
        assign = _ASSIGN_RE.match(text)
        if assign:
            instr = self._parse_valued(assign.group(2).strip(), line)
            self._define(assign.group(1), instr, line)
            self.block.append(instr)
            return
        self.block.append(self._parse_void(text, line))

    def _parse_valued(self, body: str, line: int):
        head, _, rest = body.partition(" ")
        rest = rest.strip()
        if head == "alloca":
            parts = self._split_args(rest)
            allocated = parse_type(parts[0])
            count = int(parts[1]) if len(parts) > 1 else 1
            return Alloca(allocated, count)
        if head == "load":
            type_text, _, pointer_text = rest.partition(",")
            loaded = parse_type(type_text)
            pointer = self._value(pointer_text, PointerType(loaded), line)
            return Load(pointer)
        if head in BINARY_OPS:
            type_text, _, operands = rest.partition(" ")
            operand_type = parse_type(type_text)
            a_text, b_text = self._split_args(operands)
            return BinOp(head, self._value(a_text, operand_type, line),
                         self._value(b_text, operand_type, line))
        if head == "icmp":
            pred, _, rest2 = rest.partition(" ")
            if pred not in ICMP_PREDICATES:
                raise IRParseError(f"bad icmp predicate {pred!r}", line)
            type_text, _, operands = rest2.strip().partition(" ")
            operand_type = parse_type(type_text)
            a_text, b_text = self._split_args(operands)
            return ICmp(pred, self._value(a_text, operand_type, line),
                        self._value(b_text, operand_type, line))
        if head in ("sext", "zext", "trunc"):
            match = re.match(r"^(\S+)\s+(\S+)\s+to\s+(\S+)$", rest)
            if not match:
                raise IRParseError(f"malformed cast {body!r}", line)
            from_type = parse_type(match.group(1))
            value = self._value(match.group(2), from_type, line)
            return Cast(head, value, parse_type(match.group(3)))
        if head == "ptradd":
            type_text, _, operands = rest.partition(" ")
            base_type = parse_type(type_text)
            base_text, index_text = self._split_args(operands)
            return PtrAdd(self._value(base_text, base_type, line),
                          self._value(index_text, I64, line))
        if head == "call":
            return self._parse_call("call " + rest, line)
        raise IRParseError(f"unknown instruction {head!r}", line)

    def _parse_call(self, body: str, line: int) -> Call:
        match = _CALL_RE.match(body)
        if not match:
            raise IRParseError(f"malformed call {body!r}", line)
        return_type = parse_type(match.group(1))
        args = [self._value(token, I64, line)
                for token in self._split_args(match.group(3))]
        return Call(match.group(2), args, return_type)

    def _parse_void(self, text: str, line: int):
        if text.startswith("store "):
            match = re.match(r"^store\s+(\S+)\s+(\S+),\s*(\S+)$", text)
            if not match:
                raise IRParseError(f"malformed store {text!r}", line)
            stored_type = parse_type(match.group(1))
            value = self._value(match.group(2), stored_type, line)
            pointer = self._value(match.group(3), PointerType(stored_type),
                                  line)
            return Store(value, pointer)
        if text.startswith("check "):
            match = re.match(r"^check\s+(\S+)\s+(\S+),\s*(\S+)$", text)
            if not match:
                raise IRParseError(f"malformed check {text!r}", line)
            checked_type = parse_type(match.group(1))
            return Check(self._value(match.group(2), checked_type, line),
                         self._value(match.group(3), checked_type, line))
        if text.startswith("br i1 "):
            match = re.match(
                r"^br\s+i1\s+(\S+),\s*label\s+%([\w.]+),\s*label\s+%([\w.]+)$",
                text,
            )
            if not match:
                raise IRParseError(f"malformed br {text!r}", line)
            return Br(self._value(match.group(1), I1, line),
                      match.group(2), match.group(3))
        if text.startswith("br label "):
            match = re.match(r"^br\s+label\s+%([\w.]+)$", text)
            if not match:
                raise IRParseError(f"malformed br {text!r}", line)
            return Jump(match.group(1))
        if text == "ret void":
            return Ret()
        if text.startswith("ret "):
            match = re.match(r"^ret\s+(\S+)\s+(\S+)$", text)
            if not match:
                raise IRParseError(f"malformed ret {text!r}", line)
            return Ret(self._value(match.group(2),
                                   parse_type(match.group(1)), line))
        if text.startswith("call "):
            return self._parse_call(text, line)
        raise IRParseError(f"unknown statement {text!r}", line)


def parse_ir(text: str) -> IRModule:
    """Parse IR text (the printer's dialect) into a module."""
    module = IRModule()
    parser: _FunctionParser | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        define = _DEFINE_RE.match(line)
        if define:
            if parser is not None:
                raise IRParseError("nested function definition", lineno)
            return_type = parse_type(define.group(1))
            args = []
            for token in (t.strip() for t in define.group(3).split(",")):
                if not token:
                    continue
                type_text, _, name = token.partition("%")
                if not name:
                    raise IRParseError(f"malformed parameter {token!r}", lineno)
                args.append((name.strip(), parse_type(type_text)))
            func = IRFunction(define.group(2), args, return_type)
            module.add_function(func)
            parser = _FunctionParser(module, func)
            continue
        if line == "}":
            if parser is None:
                raise IRParseError("stray '}'", lineno)
            parser = None
            continue
        if parser is None:
            raise IRParseError(f"statement outside a function: {line!r}", lineno)
        parser.parse_line(line, lineno)
    if parser is not None:
        raise IRParseError("unterminated function", lineno)
    return module
