"""IR type system: integers, pointers, void.

Pointers are typed (``i32*``) so address arithmetic knows its element size;
``malloc`` returns a wildcard pointer assignable to any pointer type, the
one concession to C's ``void*`` idiom the frontend needs.
"""

from __future__ import annotations

from dataclasses import dataclass


class Type:
    """Base class of IR types."""

    @property
    def size_bytes(self) -> int:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class IntType(Type):
    """An integer type of ``bits`` width (1, 8, 32 or 64)."""

    bits: int

    @property
    def size_bytes(self) -> int:
        return max(1, self.bits // 8)

    def __str__(self) -> str:
        return f"i{self.bits}"


@dataclass(frozen=True)
class PointerType(Type):
    """A typed pointer. ``pointee=None`` is the wildcard (malloc result)."""

    pointee: Type | None

    @property
    def size_bytes(self) -> int:
        return 8

    @property
    def element_size(self) -> int:
        if self.pointee is None:
            return 1
        return self.pointee.size_bytes

    def __str__(self) -> str:
        return f"{self.pointee}*" if self.pointee is not None else "ptr"


@dataclass(frozen=True)
class VoidType(Type):
    """The type of value-less calls and returns."""

    @property
    def size_bytes(self) -> int:
        return 0

    def __str__(self) -> str:
        return "void"


I1 = IntType(1)
I8 = IntType(8)
I32 = IntType(32)
I64 = IntType(64)
VOID = VoidType()


def compatible(dst: Type, src: Type) -> bool:
    """Assignment compatibility: exact match, or wildcard-pointer adoption."""
    if dst == src:
        return True
    if isinstance(dst, PointerType) and isinstance(src, PointerType):
        return dst.pointee is None or src.pointee is None
    return False
