"""Loop-nest detection over the IR CFG.

The compiler backend preserves block labels when lowering IR to assembly,
so the loop nests found here name the same regions
:func:`repro.asm.analysis.loop_regions` finds on the compiled program —
the section boundaries compositional campaigns use. Exposed separately so
IR-level tooling (and tests) can reason about sections without compiling.
"""

from __future__ import annotations

from repro.ir.module import IRFunction, IRModule
from repro.utils.graph import Loop, innermost_headers, natural_loops


def loop_nests(func: IRFunction) -> list[Loop]:
    """All natural loops of ``func``'s CFG (innermost have highest depth)."""
    succs = {blk.label: func.successors(blk) for blk in func.blocks}
    return natural_loops(
        func.entry.label, [blk.label for blk in func.blocks], succs
    )


def loop_regions(func: IRFunction) -> dict[str, str]:
    """Map block label -> region key, mirroring the assembly-level mapping.

    Keys are ``"<function>"`` outside loops and ``"<function>@<header>"``
    inside, where ``<header>`` is the innermost loop header's label.
    """
    succs = {blk.label: func.successors(blk) for blk in func.blocks}
    headers = innermost_headers(
        func.entry.label, [blk.label for blk in func.blocks], succs
    )
    return {
        label: func.name if header is None else f"{func.name}@{header}"
        for label, header in headers.items()
    }


def module_regions(module: IRModule) -> dict[str, dict[str, str]]:
    """Per-function region maps for a whole module."""
    return {func.name: loop_regions(func) for func in module.functions}
