"""IR interpreter with IR-level fault injection.

Two roles:

* **differential oracle** — the backend is tested by checking that compiled
  programs produce the same output as direct IR execution;
* **IR-level fault injection** — the cross-layer gap experiment
  (paper Sec. I: "28% gap between anticipated and measured coverage")
  measures IR-EDDI's coverage with faults injected into IR instruction
  results, the way LLFI does, and contrasts it with assembly-level
  injection on the compiled binary.

The interpreter reuses the machine's memory/builtin behaviour (same bump
allocator, same LCG) so raw outputs agree between layers.

Like the machine's translated engine (:mod:`repro.machine.translate`), the
interpreter pre-binds per instruction instead of re-resolving per dynamic
step: each block lazily compiles into a list of step entries with constants
folded, operand slots and successor blocks pre-resolved, opcode dispatch
reduced to a precompiled closure, and builtin calls bound to their handler.
Compilation is cached per block, so the cost is paid once per static
instruction regardless of trip counts.

Calls run over an explicit frame stack rather than Python recursion, so the
complete execution state is a plain data structure: :meth:`IRInterpreter.
run_to_site` captures it as an :class:`IRSnapshot` and :meth:`IRInterpreter.
run` resumes from one — the same checkpoint/restore protocol the
:class:`repro.machine.cpu.Machine` offers, used by ``run_ir_campaign`` to
share the golden prefix across sampled faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import (
    DetectionExit,
    ExecutionLimitExceeded,
    IRInterpError,
    MachineFault,
)
from repro.ir.instructions import (
    Alloca, BinOp, Br, Call, Cast, Check, ICmp, IRInstruction, Jump, Load,
    PtrAdd, Ret, Store,
)
from repro.ir.module import IRFunction, IRModule
from repro.ir.types import IntType, PointerType
from repro.ir.values import Constant, Value
from repro.machine.memory import Memory, MemoryLayout, MemorySnapshot
from repro.utils.bitops import flip_bit, to_signed, to_unsigned, trunc_div

#: Hook invoked after each value-producing dynamic instruction:
#: (interpreter, instruction, site_ordinal) -> replacement value or None.
IRFaultHook = Callable[["IRInterpreter", IRInstruction, int], None]

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class IRRunResult:
    """Outcome of one complete IR execution."""

    exit_code: int
    output: tuple[str, ...]
    dynamic_instructions: int
    fault_sites: int

    @property
    def output_text(self) -> str:
        return "\n".join(self.output)


class _Frame:
    __slots__ = ("func", "values", "stack_base", "block", "index", "call_site")

    def __init__(self, func: IRFunction, stack_base: int,
                 call_site: Call | None) -> None:
        self.func = func
        self.values: dict[Value, int] = {}
        self.stack_base = stack_base
        self.block = func.entry
        self.index = 0
        self.call_site = call_site


@dataclass(frozen=True)
class _FrameSnapshot:
    func: IRFunction
    values: dict[Value, int]
    stack_base: int
    block: object
    index: int
    call_site: Call | None


@dataclass(frozen=True)
class IRSnapshot:
    """Deep copy of the interpreter's complete execution state.

    Captured at an instruction boundary, cumulative counters included, so a
    restored run is bit-identical to one that executed straight through.
    Frame values are plain ints keyed by the module's (immutable) IR value
    objects; restoring requires the same :class:`IRModule` the snapshot was
    taken against.
    """

    frames: tuple[_FrameSnapshot, ...]
    memory: MemorySnapshot
    output: tuple[str, ...]
    heap_cursor: int
    lcg_state: int
    stack_cursor: int
    executed: int
    sites: int
    exit_requested: bool
    exit_code: int


def _width_of(value: Value) -> int:
    if isinstance(value.type, IntType):
        return max(value.type.bits, 1)
    return 64  # pointers


class IRInterpreter:
    """Executes an :class:`IRModule` directly."""

    def __init__(
        self,
        module: IRModule,
        layout: MemoryLayout | None = None,
        max_instructions: int = 50_000_000,
    ) -> None:
        self.module = module
        self.layout = layout or MemoryLayout()
        self.max_instructions = max_instructions
        self.memory = Memory(self.layout)
        self.output: list[str] = []
        self.heap_cursor = self.layout.heap_base
        self.lcg_state = 0x1234_5678
        self._stack_cursor = self.layout.stack_top - 16
        self._executed = 0
        self._sites = 0
        self._fault_hook: IRFaultHook | None = None
        self._fault_at = -1
        self._exit_requested = False
        self._exit_code = 0
        self._frames: list[_Frame] = []
        self._root_result = 0
        # Per-block compiled step lists (see _steps_for), keyed by block id;
        # blocks are owned by the module, which the interpreter holds, so
        # the ids are stable for the interpreter's lifetime.
        self._block_steps: dict[int, list[tuple]] = {}

    # -- public API ----------------------------------------------------------

    def run(
        self,
        function: str = "main",
        args: tuple[int, ...] = (),
        fault_hook: IRFaultHook | None = None,
        fault_at: int | None = None,
        resume_from: IRSnapshot | None = None,
        max_instructions: int | None = None,
    ) -> IRRunResult:
        """Execute ``function(*args)`` and return the run outcome.

        ``fault_at`` restricts hook delivery to one site ordinal (skipping
        the per-site Python call everywhere else); ``resume_from`` continues
        from an :class:`IRSnapshot` instead of entry (``function``/``args``
        are then ignored), with counters resuming cumulatively.
        ``max_instructions`` overrides the interpreter-wide budget for this
        run only — injection timeouts use it so a shared interpreter is
        never mutated.
        """
        if resume_from is not None:
            self._restore(resume_from)
        else:
            self._begin(function, args)
        self._fault_hook = fault_hook
        self._fault_at = -1 if fault_at is None else fault_at

        self._run_loop(None, budget=max_instructions)
        if not self._exit_requested:
            self._exit_code = to_signed(self._root_result, 32)
        return IRRunResult(
            exit_code=self._exit_code,
            output=tuple(self.output),
            dynamic_instructions=self._executed,
            fault_sites=self._sites,
        )

    def run_to_site(
        self,
        target_site: int,
        function: str = "main",
        args: tuple[int, ...] = (),
        resume_from: IRSnapshot | None = None,
    ) -> IRSnapshot:
        """Execute fault-free up to site ``target_site`` and snapshot there.

        Stops at the first instruction boundary where ``target_site`` sites
        have completed; chaining calls through ``resume_from`` executes the
        shared prefix exactly once overall.
        """
        if resume_from is not None:
            if resume_from.sites > target_site:
                raise IRInterpError(
                    f"cannot run backwards: snapshot is at site "
                    f"{resume_from.sites}, target is {target_site}"
                )
            self._restore(resume_from)
        else:
            self._begin(function, args)
        self._fault_hook = None
        self._fault_at = -1
        stopped = self._run_loop(target_site)
        if not stopped:
            raise IRInterpError(
                f"program ended after {self._sites} fault sites, "
                f"before reaching site {target_site}"
            )
        return self._snapshot()

    @property
    def executed(self) -> int:
        """Dynamic IR instructions executed so far in the current run.

        Read by fault hooks (flip time) and by injectors after a
        :class:`DetectionExit` (detection time); the difference is the
        detection latency in dynamic IR instructions.
        """
        return self._executed

    @property
    def current_values(self) -> dict[Value, int]:
        """Value environment of the innermost active frame (for fault hooks)."""
        return self._frames[-1].values

    def flip_value(self, instr: IRInstruction, bit: int) -> None:
        """Flip one bit of an instruction's just-computed result (fault)."""
        width = _width_of(instr)
        values = self.current_values
        values[instr] = flip_bit(values[instr], bit, width)

    # -- checkpoint/restore ------------------------------------------------

    def _snapshot(self) -> IRSnapshot:
        return IRSnapshot(
            frames=tuple(
                _FrameSnapshot(
                    func=frame.func,
                    values=dict(frame.values),
                    stack_base=frame.stack_base,
                    block=frame.block,
                    index=frame.index,
                    call_site=frame.call_site,
                )
                for frame in self._frames
            ),
            memory=self.memory.snapshot(),
            output=tuple(self.output),
            heap_cursor=self.heap_cursor,
            lcg_state=self.lcg_state,
            stack_cursor=self._stack_cursor,
            executed=self._executed,
            sites=self._sites,
            exit_requested=self._exit_requested,
            exit_code=self._exit_code,
        )

    def _restore(self, snap: IRSnapshot) -> None:
        self._frames = []
        for shot in snap.frames:
            frame = _Frame(shot.func, shot.stack_base, shot.call_site)
            frame.values = dict(shot.values)
            frame.block = shot.block
            frame.index = shot.index
            self._frames.append(frame)
        self.memory.restore(snap.memory)
        self.output = list(snap.output)
        self.heap_cursor = snap.heap_cursor
        self.lcg_state = snap.lcg_state
        self._stack_cursor = snap.stack_cursor
        self._executed = snap.executed
        self._sites = snap.sites
        self._exit_requested = snap.exit_requested
        self._exit_code = snap.exit_code
        self._root_result = 0

    # -- execution internals ---------------------------------------------

    def _begin(self, function: str, args: tuple[int, ...]) -> None:
        # In place (O(working set)): compiled block steps capture the memory
        # accessors once, so the object's identity must survive resets.
        self.memory.reset()
        self.output = []
        self.heap_cursor = self.layout.heap_base
        self.lcg_state = 0x1234_5678
        self._stack_cursor = self.layout.stack_top - 16
        self._executed = 0
        self._sites = 0
        self._exit_requested = False
        self._exit_code = 0
        self._frames = []
        self._root_result = 0
        self._push_frame(self.module.function(function), tuple(args), None)

    def _push_frame(self, func: IRFunction, args: tuple[int, ...],
                    call_site: Call | None) -> None:
        if len(args) != len(func.args):
            raise IRInterpError(
                f"{func.name} expects {len(func.args)} args, got {len(args)}"
            )
        frame = _Frame(func, self._stack_cursor, call_site)
        for formal, actual in zip(func.args, args):
            frame.values[formal] = to_unsigned(actual, 64)
        self._frames.append(frame)

    def _pop_frame(self, result: int) -> None:
        """Return ``result`` to the caller, mirroring the call protocol.

        The pending ``call`` in the parent frame receives its value *and its
        fault-site ordinal* now — a call instruction's site follows all of
        its callee's sites, because its result materializes at return.
        """
        frame = self._frames.pop()
        self._stack_cursor = frame.stack_base
        call = frame.call_site
        if call is None:
            self._root_result = result
            return
        parent = self._frames[-1]
        parent.values[call] = result
        if call.has_result:
            if self._fault_hook is not None and (
                self._fault_at < 0 or self._sites == self._fault_at
            ):
                self._fault_hook(self, call, self._sites)
            self._sites += 1
        parent.index += 1

    def _run_loop(self, stop_at_site: int | None,
                  budget: int | None = None) -> bool:
        """Drive the frame stack; returns True iff ``stop_at_site`` was hit.

        When an ``exit`` is requested the stack unwinds one frame per
        iteration, every pending call resolving to 0 and receiving its site
        ordinal — exactly the order the recursive formulation produced.
        ``budget`` caps this run's dynamic instructions; None falls back to
        the interpreter-wide ``max_instructions``.
        """
        frames = self._frames
        limit = budget if budget is not None else self.max_instructions
        block_steps = self._block_steps
        while True:
            if stop_at_site is not None and self._sites >= stop_at_site:
                return True
            if not frames:
                return False
            frame = frames[-1]
            if self._exit_requested:
                self._pop_frame(0)
                continue
            block = frame.block
            index = frame.index
            steps = block_steps.get(id(block))
            if steps is None:
                steps = [
                    self._compile_instr(instr, frame.func)
                    for instr in block.instructions
                ]
                block_steps[id(block)] = steps
            if index >= len(steps):
                raise IRInterpError(f"fell off block {block.label}")
            if self._executed >= limit:
                raise ExecutionLimitExceeded(
                    f"exceeded {limit} IR instructions"
                )
            kind, payload, instr, has_result = steps[index]
            self._executed += 1

            if kind == _K_EXEC:
                payload(frame)
                if has_result:
                    if self._fault_hook is not None and (
                        self._fault_at < 0 or self._sites == self._fault_at
                    ):
                        self._fault_hook(self, instr, self._sites)
                    self._sites += 1
                frame.index = index + 1
            elif kind == _K_BR:
                cond_get, then_block, else_block = payload
                frame.block = then_block if cond_get(frame) & 1 else else_block
                frame.index = 0
            elif kind == _K_JUMP:
                frame.block = payload
                frame.index = 0
            elif kind == _K_RET:
                self._pop_frame(payload(frame) if payload is not None else 0)
            else:  # _K_CALLFN
                func, arg_gets = payload
                args = tuple(get(frame) for get in arg_gets)
                self._push_frame(func, args, instr)

    # -- per-instruction compilation ---------------------------------------
    #
    # Each IR instruction compiles once into a (kind, payload, instr,
    # has_result) step entry: operand slots become pre-bound getters
    # (constants folded to ints), successor blocks and callee functions are
    # resolved ahead of time, and opcode dispatch is a closure built here
    # rather than an isinstance chain walked per dynamic instruction.

    @staticmethod
    def _getter(value: Value):
        """Pre-bound operand accessor matching the old ``_value`` semantics."""
        if isinstance(value, Constant):
            const = to_unsigned(value.value, _width_of(value))
            return lambda frame: const

        def get(frame: _Frame) -> int:
            try:
                return frame.values[value]
            except KeyError:
                raise IRInterpError(
                    f"use of undefined value %{value.name}"
                ) from None
        return get

    def _compile_instr(self, instr: IRInstruction, func: IRFunction) -> tuple:
        if isinstance(instr, Ret):
            getter = self._getter(instr.value) if instr.value else None
            return (_K_RET, getter, instr, False)
        if isinstance(instr, Jump):
            try:
                target = func.block(instr.target)
            except Exception:
                return (_K_EXEC, self._raiser(instr, func), instr, False)
            return (_K_JUMP, target, instr, False)
        if isinstance(instr, Br):
            try:
                then_block = func.block(instr.then_label)
                else_block = func.block(instr.else_label)
            except Exception:
                return (_K_EXEC, self._raiser(instr, func), instr, False)
            payload = (self._getter(instr.cond), then_block, else_block)
            return (_K_BR, payload, instr, False)
        if isinstance(instr, Call) and self.module.has_function(instr.callee):
            callee = self.module.function(instr.callee)
            arg_gets = tuple(self._getter(a) for a in instr.args)
            return (_K_CALLFN, (callee, arg_gets), instr, False)
        return (_K_EXEC, self._compile_exec(instr), instr, instr.has_result)

    @staticmethod
    def _raiser(instr, func: IRFunction):
        """Defer an unresolvable branch target to execution time, matching
        the error the uncompiled interpreter raised mid-run."""
        def do(frame: _Frame) -> None:
            if isinstance(instr, Br):
                func.block(instr.then_label)
                func.block(instr.else_label)
            else:
                func.block(instr.target)
        return do

    def _compile_exec(self, instr: IRInstruction):
        """Closure performing one non-control instruction's effect."""
        if isinstance(instr, Alloca):
            size16 = (instr.allocated.size_bytes * instr.count + 15) & ~15
            stack_floor = self.layout.stack_base

            def do(frame: _Frame) -> None:
                self._stack_cursor -= size16
                if self._stack_cursor < stack_floor:
                    raise MachineFault("IR stack overflow")
                frame.values[instr] = self._stack_cursor
            return do
        if isinstance(instr, Load):
            ptr_get = self._getter(instr.pointer)
            size = instr.type.size_bytes
            read_uint = self.memory.read_uint

            def do(frame: _Frame) -> None:
                frame.values[instr] = read_uint(ptr_get(frame), size)
            return do
        if isinstance(instr, Store):
            ptr_get = self._getter(instr.pointer)
            val_get = self._getter(instr.value)
            size = instr.value.type.size_bytes
            write_uint = self.memory.write_uint

            def do(frame: _Frame) -> None:
                addr = ptr_get(frame)  # pointer resolves before the value
                write_uint(addr, val_get(frame), size)
            return do
        if isinstance(instr, BinOp):
            return self._compile_binop(instr)
        if isinstance(instr, ICmp):
            return self._compile_icmp(instr)
        if isinstance(instr, Cast):
            return self._compile_cast(instr)
        if isinstance(instr, PtrAdd):
            base_get = self._getter(instr.base)
            index_get = self._getter(instr.index)
            index_width = _width_of(instr.index)
            index_sign = 1 << (index_width - 1)
            index_modulus = 1 << index_width
            ptr_type = instr.base.type
            stride = (
                ptr_type.element_size
                if isinstance(ptr_type, PointerType) else 1
            )
            m64 = (1 << 64) - 1

            def do(frame: _Frame) -> None:
                index = index_get(frame)
                if index & index_sign:
                    index -= index_modulus
                frame.values[instr] = (base_get(frame) + index * stride) & m64
            return do
        if isinstance(instr, Call):
            return self._compile_builtin(instr)
        if isinstance(instr, Check):
            orig_get = self._getter(instr.original)
            dup_get = self._getter(instr.duplicate)

            def do(frame: _Frame) -> None:
                if orig_get(frame) != dup_get(frame):
                    raise DetectionExit(
                        "IR-level EDDI checker reported a mismatch"
                    )
            return do

        def do(frame: _Frame) -> None:
            raise IRInterpError(f"cannot interpret {instr.opcode}")
        return do

    def _compile_binop(self, instr: BinOp):
        width = _width_of(instr)
        mask = (1 << width) - 1
        sign = 1 << (width - 1)
        modulus = 1 << width
        shift_mask = width - 1
        lhs_get = self._getter(instr.lhs)
        rhs_get = self._getter(instr.rhs)
        op = instr.op

        def signed(v: int) -> int:
            return v - modulus if v & sign else v

        if op == "add":
            def do(frame: _Frame) -> None:
                frame.values[instr] = (lhs_get(frame) + rhs_get(frame)) & mask
        elif op == "sub":
            def do(frame: _Frame) -> None:
                frame.values[instr] = (lhs_get(frame) - rhs_get(frame)) & mask
        elif op == "mul":
            def do(frame: _Frame) -> None:
                frame.values[instr] = (
                    signed(lhs_get(frame)) * signed(rhs_get(frame))
                ) & mask
        elif op == "sdiv":
            def do(frame: _Frame) -> None:
                sa, sb = signed(lhs_get(frame)), signed(rhs_get(frame))
                if sb == 0:
                    raise MachineFault("IR division by zero")
                frame.values[instr] = trunc_div(sa, sb) & mask
        elif op == "srem":
            def do(frame: _Frame) -> None:
                sa, sb = signed(lhs_get(frame)), signed(rhs_get(frame))
                if sb == 0:
                    raise MachineFault("IR remainder by zero")
                frame.values[instr] = (sa - trunc_div(sa, sb) * sb) & mask
        elif op == "and":
            def do(frame: _Frame) -> None:
                frame.values[instr] = lhs_get(frame) & rhs_get(frame)
        elif op == "or":
            def do(frame: _Frame) -> None:
                frame.values[instr] = lhs_get(frame) | rhs_get(frame)
        elif op == "xor":
            def do(frame: _Frame) -> None:
                frame.values[instr] = lhs_get(frame) ^ rhs_get(frame)
        elif op == "shl":
            def do(frame: _Frame) -> None:
                frame.values[instr] = (
                    lhs_get(frame) << (rhs_get(frame) & shift_mask)
                ) & mask
        elif op == "ashr":
            def do(frame: _Frame) -> None:
                frame.values[instr] = (
                    signed(lhs_get(frame)) >> (rhs_get(frame) & shift_mask)
                ) & mask
        elif op == "lshr":
            def do(frame: _Frame) -> None:
                frame.values[instr] = lhs_get(frame) >> (
                    rhs_get(frame) & shift_mask
                )
        else:
            def do(frame: _Frame) -> None:
                raise IRInterpError(f"unknown binop {op}")
        return do

    def _compile_icmp(self, instr: ICmp):
        width = _width_of(instr.lhs)
        sign = 1 << (width - 1)
        modulus = 1 << width
        lhs_get = self._getter(instr.lhs)
        rhs_get = self._getter(instr.rhs)
        pred = instr.pred

        def signed(v: int) -> int:
            return v - modulus if v & sign else v

        if pred == "eq":
            def do(frame: _Frame) -> None:
                frame.values[instr] = 1 if lhs_get(frame) == rhs_get(frame) else 0
        elif pred == "ne":
            def do(frame: _Frame) -> None:
                frame.values[instr] = 1 if lhs_get(frame) != rhs_get(frame) else 0
        elif pred == "slt":
            def do(frame: _Frame) -> None:
                frame.values[instr] = (
                    1 if signed(lhs_get(frame)) < signed(rhs_get(frame)) else 0
                )
        elif pred == "sle":
            def do(frame: _Frame) -> None:
                frame.values[instr] = (
                    1 if signed(lhs_get(frame)) <= signed(rhs_get(frame)) else 0
                )
        elif pred == "sgt":
            def do(frame: _Frame) -> None:
                frame.values[instr] = (
                    1 if signed(lhs_get(frame)) > signed(rhs_get(frame)) else 0
                )
        elif pred == "sge":
            def do(frame: _Frame) -> None:
                frame.values[instr] = (
                    1 if signed(lhs_get(frame)) >= signed(rhs_get(frame)) else 0
                )
        else:
            def do(frame: _Frame) -> None:
                raise KeyError(pred)  # matches the old dict-dispatch error
        return do

    def _compile_cast(self, instr: Cast):
        value_get = self._getter(instr.value)
        from_width = _width_of(instr.value)
        to_width = _width_of(instr)
        if instr.op == "trunc":
            mask = (1 << to_width) - 1

            def do(frame: _Frame) -> None:
                frame.values[instr] = value_get(frame) & mask
        elif instr.op == "zext":
            # Bit-compatible with the reference: zext masks at the *source*
            # width (operands are already bounded, so this is the identity).
            mask = (1 << from_width) - 1

            def do(frame: _Frame) -> None:
                frame.values[instr] = value_get(frame) & mask
        else:  # sext
            sign = 1 << (from_width - 1)
            from_modulus = 1 << from_width
            mask = (1 << to_width) - 1

            def do(frame: _Frame) -> None:
                v = value_get(frame)
                if v & sign:
                    v -= from_modulus
                frame.values[instr] = v & mask
        return do

    def _compile_builtin(self, call: Call):
        arg_gets = tuple(self._getter(a) for a in call.args)
        name = call.callee
        layout = self.layout
        heap_end = layout.heap_base + layout.heap_size

        def args_of(frame: _Frame) -> tuple[int, ...]:
            return tuple(get(frame) for get in arg_gets)

        if name == "malloc":
            def do(frame: _Frame) -> None:
                aligned = (args_of(frame)[0] + 15) & ~15
                if self.heap_cursor + aligned > heap_end:
                    raise MachineFault("IR heap exhausted")
                frame.values[call] = self.heap_cursor
                self.heap_cursor += max(aligned, 16)
        elif name == "free":
            def do(frame: _Frame) -> None:
                args_of(frame)
                frame.values[call] = 0
        elif name == "print_int":
            def do(frame: _Frame) -> None:
                self.output.append(str(to_signed(args_of(frame)[0], 32)))
                frame.values[call] = 0
        elif name == "print_long":
            def do(frame: _Frame) -> None:
                self.output.append(str(to_signed(args_of(frame)[0], 64)))
                frame.values[call] = 0
        elif name == "srand":
            def do(frame: _Frame) -> None:
                self.lcg_state = args_of(frame)[0] & _LCG_MASK
                frame.values[call] = 0
        elif name == "rand_next":
            def do(frame: _Frame) -> None:
                args_of(frame)
                self.lcg_state = (
                    self.lcg_state * _LCG_MULT + _LCG_INC
                ) & _LCG_MASK
                frame.values[call] = (self.lcg_state >> 33) & 0x7FFF_FFFF
        elif name == "exit":
            def do(frame: _Frame) -> None:
                self._exit_requested = True
                self._exit_code = to_signed(args_of(frame)[0], 32)
                frame.values[call] = 0
        elif name == "__eddi_detect":
            def do(frame: _Frame) -> None:
                args_of(frame)
                raise DetectionExit("IR-level EDDI checker reported a mismatch")
        else:
            def do(frame: _Frame) -> None:
                args_of(frame)  # argument faults surface first, as before
                raise IRInterpError(f"call to unknown function {name!r}")
        return do


#: Step-entry kinds produced by ``IRInterpreter._compile_instr``.
_K_EXEC = 0
_K_JUMP = 1
_K_BR = 2
_K_RET = 3
_K_CALLFN = 4
