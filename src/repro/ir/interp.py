"""IR interpreter with IR-level fault injection.

Two roles:

* **differential oracle** — the backend is tested by checking that compiled
  programs produce the same output as direct IR execution;
* **IR-level fault injection** — the cross-layer gap experiment
  (paper Sec. I: "28% gap between anticipated and measured coverage")
  measures IR-EDDI's coverage with faults injected into IR instruction
  results, the way LLFI does, and contrasts it with assembly-level
  injection on the compiled binary.

The interpreter reuses the machine's memory/builtin behaviour (same bump
allocator, same LCG) so raw outputs agree between layers.

Calls run over an explicit frame stack rather than Python recursion, so the
complete execution state is a plain data structure: :meth:`IRInterpreter.
run_to_site` captures it as an :class:`IRSnapshot` and :meth:`IRInterpreter.
run` resumes from one — the same checkpoint/restore protocol the
:class:`repro.machine.cpu.Machine` offers, used by ``run_ir_campaign`` to
share the golden prefix across sampled faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import (
    DetectionExit,
    ExecutionLimitExceeded,
    IRInterpError,
    MachineFault,
)
from repro.ir.instructions import (
    Alloca, BinOp, Br, Call, Cast, Check, ICmp, IRInstruction, Jump, Load,
    PtrAdd, Ret, Store,
)
from repro.ir.module import IRFunction, IRModule
from repro.ir.types import IntType, PointerType
from repro.ir.values import Constant, Value
from repro.machine.memory import Memory, MemoryLayout, MemorySnapshot
from repro.utils.bitops import flip_bit, to_signed, to_unsigned, trunc_div

#: Hook invoked after each value-producing dynamic instruction:
#: (interpreter, instruction, site_ordinal) -> replacement value or None.
IRFaultHook = Callable[["IRInterpreter", IRInstruction, int], None]

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class IRRunResult:
    """Outcome of one complete IR execution."""

    exit_code: int
    output: tuple[str, ...]
    dynamic_instructions: int
    fault_sites: int

    @property
    def output_text(self) -> str:
        return "\n".join(self.output)


class _Frame:
    __slots__ = ("func", "values", "stack_base", "block", "index", "call_site")

    def __init__(self, func: IRFunction, stack_base: int,
                 call_site: Call | None) -> None:
        self.func = func
        self.values: dict[Value, int] = {}
        self.stack_base = stack_base
        self.block = func.entry
        self.index = 0
        self.call_site = call_site


@dataclass(frozen=True)
class _FrameSnapshot:
    func: IRFunction
    values: dict[Value, int]
    stack_base: int
    block: object
    index: int
    call_site: Call | None


@dataclass(frozen=True)
class IRSnapshot:
    """Deep copy of the interpreter's complete execution state.

    Captured at an instruction boundary, cumulative counters included, so a
    restored run is bit-identical to one that executed straight through.
    Frame values are plain ints keyed by the module's (immutable) IR value
    objects; restoring requires the same :class:`IRModule` the snapshot was
    taken against.
    """

    frames: tuple[_FrameSnapshot, ...]
    memory: MemorySnapshot
    output: tuple[str, ...]
    heap_cursor: int
    lcg_state: int
    stack_cursor: int
    executed: int
    sites: int
    exit_requested: bool
    exit_code: int


def _width_of(value: Value) -> int:
    if isinstance(value.type, IntType):
        return max(value.type.bits, 1)
    return 64  # pointers


class IRInterpreter:
    """Executes an :class:`IRModule` directly."""

    def __init__(
        self,
        module: IRModule,
        layout: MemoryLayout | None = None,
        max_instructions: int = 50_000_000,
    ) -> None:
        self.module = module
        self.layout = layout or MemoryLayout()
        self.max_instructions = max_instructions
        self.memory = Memory(self.layout)
        self.output: list[str] = []
        self.heap_cursor = self.layout.heap_base
        self.lcg_state = 0x1234_5678
        self._stack_cursor = self.layout.stack_top - 16
        self._executed = 0
        self._sites = 0
        self._fault_hook: IRFaultHook | None = None
        self._fault_at = -1
        self._exit_requested = False
        self._exit_code = 0
        self._frames: list[_Frame] = []
        self._root_result = 0

    # -- public API ----------------------------------------------------------

    def run(
        self,
        function: str = "main",
        args: tuple[int, ...] = (),
        fault_hook: IRFaultHook | None = None,
        fault_at: int | None = None,
        resume_from: IRSnapshot | None = None,
        max_instructions: int | None = None,
    ) -> IRRunResult:
        """Execute ``function(*args)`` and return the run outcome.

        ``fault_at`` restricts hook delivery to one site ordinal (skipping
        the per-site Python call everywhere else); ``resume_from`` continues
        from an :class:`IRSnapshot` instead of entry (``function``/``args``
        are then ignored), with counters resuming cumulatively.
        ``max_instructions`` overrides the interpreter-wide budget for this
        run only — injection timeouts use it so a shared interpreter is
        never mutated.
        """
        if resume_from is not None:
            self._restore(resume_from)
        else:
            self._begin(function, args)
        self._fault_hook = fault_hook
        self._fault_at = -1 if fault_at is None else fault_at

        self._run_loop(None, budget=max_instructions)
        if not self._exit_requested:
            self._exit_code = to_signed(self._root_result, 32)
        return IRRunResult(
            exit_code=self._exit_code,
            output=tuple(self.output),
            dynamic_instructions=self._executed,
            fault_sites=self._sites,
        )

    def run_to_site(
        self,
        target_site: int,
        function: str = "main",
        args: tuple[int, ...] = (),
        resume_from: IRSnapshot | None = None,
    ) -> IRSnapshot:
        """Execute fault-free up to site ``target_site`` and snapshot there.

        Stops at the first instruction boundary where ``target_site`` sites
        have completed; chaining calls through ``resume_from`` executes the
        shared prefix exactly once overall.
        """
        if resume_from is not None:
            if resume_from.sites > target_site:
                raise IRInterpError(
                    f"cannot run backwards: snapshot is at site "
                    f"{resume_from.sites}, target is {target_site}"
                )
            self._restore(resume_from)
        else:
            self._begin(function, args)
        self._fault_hook = None
        self._fault_at = -1
        stopped = self._run_loop(target_site)
        if not stopped:
            raise IRInterpError(
                f"program ended after {self._sites} fault sites, "
                f"before reaching site {target_site}"
            )
        return self._snapshot()

    @property
    def executed(self) -> int:
        """Dynamic IR instructions executed so far in the current run.

        Read by fault hooks (flip time) and by injectors after a
        :class:`DetectionExit` (detection time); the difference is the
        detection latency in dynamic IR instructions.
        """
        return self._executed

    @property
    def current_values(self) -> dict[Value, int]:
        """Value environment of the innermost active frame (for fault hooks)."""
        return self._frames[-1].values

    def flip_value(self, instr: IRInstruction, bit: int) -> None:
        """Flip one bit of an instruction's just-computed result (fault)."""
        width = _width_of(instr)
        values = self.current_values
        values[instr] = flip_bit(values[instr], bit, width)

    # -- checkpoint/restore ------------------------------------------------

    def _snapshot(self) -> IRSnapshot:
        return IRSnapshot(
            frames=tuple(
                _FrameSnapshot(
                    func=frame.func,
                    values=dict(frame.values),
                    stack_base=frame.stack_base,
                    block=frame.block,
                    index=frame.index,
                    call_site=frame.call_site,
                )
                for frame in self._frames
            ),
            memory=self.memory.snapshot(),
            output=tuple(self.output),
            heap_cursor=self.heap_cursor,
            lcg_state=self.lcg_state,
            stack_cursor=self._stack_cursor,
            executed=self._executed,
            sites=self._sites,
            exit_requested=self._exit_requested,
            exit_code=self._exit_code,
        )

    def _restore(self, snap: IRSnapshot) -> None:
        self._frames = []
        for shot in snap.frames:
            frame = _Frame(shot.func, shot.stack_base, shot.call_site)
            frame.values = dict(shot.values)
            frame.block = shot.block
            frame.index = shot.index
            self._frames.append(frame)
        self.memory.restore(snap.memory)
        self.output = list(snap.output)
        self.heap_cursor = snap.heap_cursor
        self.lcg_state = snap.lcg_state
        self._stack_cursor = snap.stack_cursor
        self._executed = snap.executed
        self._sites = snap.sites
        self._exit_requested = snap.exit_requested
        self._exit_code = snap.exit_code
        self._root_result = 0

    # -- execution internals ---------------------------------------------

    def _begin(self, function: str, args: tuple[int, ...]) -> None:
        self.memory = Memory(self.layout)
        self.output = []
        self.heap_cursor = self.layout.heap_base
        self.lcg_state = 0x1234_5678
        self._stack_cursor = self.layout.stack_top - 16
        self._executed = 0
        self._sites = 0
        self._exit_requested = False
        self._exit_code = 0
        self._frames = []
        self._root_result = 0
        self._push_frame(self.module.function(function), tuple(args), None)

    def _push_frame(self, func: IRFunction, args: tuple[int, ...],
                    call_site: Call | None) -> None:
        if len(args) != len(func.args):
            raise IRInterpError(
                f"{func.name} expects {len(func.args)} args, got {len(args)}"
            )
        frame = _Frame(func, self._stack_cursor, call_site)
        for formal, actual in zip(func.args, args):
            frame.values[formal] = to_unsigned(actual, 64)
        self._frames.append(frame)

    def _pop_frame(self, result: int) -> None:
        """Return ``result`` to the caller, mirroring the call protocol.

        The pending ``call`` in the parent frame receives its value *and its
        fault-site ordinal* now — a call instruction's site follows all of
        its callee's sites, because its result materializes at return.
        """
        frame = self._frames.pop()
        self._stack_cursor = frame.stack_base
        call = frame.call_site
        if call is None:
            self._root_result = result
            return
        parent = self._frames[-1]
        parent.values[call] = result
        if call.has_result:
            if self._fault_hook is not None and (
                self._fault_at < 0 or self._sites == self._fault_at
            ):
                self._fault_hook(self, call, self._sites)
            self._sites += 1
        parent.index += 1

    def _run_loop(self, stop_at_site: int | None,
                  budget: int | None = None) -> bool:
        """Drive the frame stack; returns True iff ``stop_at_site`` was hit.

        When an ``exit`` is requested the stack unwinds one frame per
        iteration, every pending call resolving to 0 and receiving its site
        ordinal — exactly the order the recursive formulation produced.
        ``budget`` caps this run's dynamic instructions; None falls back to
        the interpreter-wide ``max_instructions``.
        """
        frames = self._frames
        module = self.module
        limit = budget if budget is not None else self.max_instructions
        while True:
            if stop_at_site is not None and self._sites >= stop_at_site:
                return True
            if not frames:
                return False
            frame = frames[-1]
            if self._exit_requested:
                self._pop_frame(0)
                continue
            block = frame.block
            index = frame.index
            if index >= len(block.instructions):
                raise IRInterpError(f"fell off block {block.label}")
            if self._executed >= limit:
                raise ExecutionLimitExceeded(
                    f"exceeded {limit} IR instructions"
                )
            instr = block.instructions[index]
            self._executed += 1

            if isinstance(instr, Ret):
                self._pop_frame(
                    self._value(frame, instr.value) if instr.value else 0
                )
                continue
            if isinstance(instr, Jump):
                frame.block = frame.func.block(instr.target)
                frame.index = 0
                continue
            if isinstance(instr, Br):
                cond = self._value(frame, instr.cond)
                frame.block = frame.func.block(
                    instr.then_label if cond & 1 else instr.else_label
                )
                frame.index = 0
                continue
            if isinstance(instr, Call) and module.has_function(instr.callee):
                args = tuple(self._value(frame, a) for a in instr.args)
                self._push_frame(module.function(instr.callee), args, instr)
                continue

            self._execute(frame, instr)
            if instr.has_result:
                if self._fault_hook is not None and (
                    self._fault_at < 0 or self._sites == self._fault_at
                ):
                    self._fault_hook(self, instr, self._sites)
                self._sites += 1
            frame.index = index + 1

    def _value(self, frame: _Frame, value: Value) -> int:
        if isinstance(value, Constant):
            return to_unsigned(value.value, _width_of(value))
        try:
            return frame.values[value]
        except KeyError:
            raise IRInterpError(f"use of undefined value %{value.name}") from None

    def _execute(self, frame: _Frame, instr: IRInstruction) -> None:
        if isinstance(instr, Alloca):
            size = instr.allocated.size_bytes * instr.count
            self._stack_cursor -= (size + 15) & ~15
            if self._stack_cursor < self.layout.stack_base:
                raise MachineFault("IR stack overflow")
            frame.values[instr] = self._stack_cursor
        elif isinstance(instr, Load):
            addr = self._value(frame, instr.pointer)
            size = instr.type.size_bytes
            frame.values[instr] = self.memory.read_uint(addr, size)
        elif isinstance(instr, Store):
            addr = self._value(frame, instr.pointer)
            size = instr.value.type.size_bytes
            self.memory.write_uint(addr, self._value(frame, instr.value), size)
        elif isinstance(instr, BinOp):
            frame.values[instr] = self._binop(frame, instr)
        elif isinstance(instr, ICmp):
            frame.values[instr] = self._icmp(frame, instr)
        elif isinstance(instr, Cast):
            frame.values[instr] = self._cast(frame, instr)
        elif isinstance(instr, PtrAdd):
            base = self._value(frame, instr.base)
            index = to_signed(self._value(frame, instr.index),
                              _width_of(instr.index))
            ptr_type = instr.base.type
            stride = ptr_type.element_size if isinstance(ptr_type, PointerType) else 1
            frame.values[instr] = to_unsigned(base + index * stride, 64)
        elif isinstance(instr, Call):
            frame.values[instr] = self._call_builtin(frame, instr)
        elif isinstance(instr, Check):
            if self._value(frame, instr.original) != self._value(
                frame, instr.duplicate
            ):
                raise DetectionExit("IR-level EDDI checker reported a mismatch")
        else:
            raise IRInterpError(f"cannot interpret {instr.opcode}")

    def _binop(self, frame: _Frame, instr: BinOp) -> int:
        width = _width_of(instr)
        a = self._value(frame, instr.lhs)
        b = self._value(frame, instr.rhs)
        sa, sb = to_signed(a, width), to_signed(b, width)
        op = instr.op
        if op == "add":
            return to_unsigned(a + b, width)
        if op == "sub":
            return to_unsigned(a - b, width)
        if op == "mul":
            return to_unsigned(sa * sb, width)
        if op == "sdiv":
            if sb == 0:
                raise MachineFault("IR division by zero")
            return to_unsigned(trunc_div(sa, sb), width)
        if op == "srem":
            if sb == 0:
                raise MachineFault("IR remainder by zero")
            return to_unsigned(sa - trunc_div(sa, sb) * sb, width)
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "shl":
            return to_unsigned(a << (b & (width - 1)), width)
        if op == "ashr":
            return to_unsigned(sa >> (b & (width - 1)), width)
        if op == "lshr":
            return a >> (b & (width - 1))
        raise IRInterpError(f"unknown binop {op}")

    def _icmp(self, frame: _Frame, instr: ICmp) -> int:
        width = _width_of(instr.lhs)
        a = self._value(frame, instr.lhs)
        b = self._value(frame, instr.rhs)
        sa, sb = to_signed(a, width), to_signed(b, width)
        pred = instr.pred
        result = {
            "eq": a == b,
            "ne": a != b,
            "slt": sa < sb,
            "sle": sa <= sb,
            "sgt": sa > sb,
            "sge": sa >= sb,
        }[pred]
        return int(result)

    def _cast(self, frame: _Frame, instr: Cast) -> int:
        value = self._value(frame, instr.value)
        from_width = _width_of(instr.value)
        to_width = _width_of(instr)
        if instr.op == "trunc":
            return to_unsigned(value, to_width)
        if instr.op == "zext":
            return to_unsigned(value, from_width)
        return to_unsigned(to_signed(value, from_width), to_width)

    def _call_builtin(self, frame: _Frame, call: Call) -> int:
        args = tuple(self._value(frame, a) for a in call.args)
        name = call.callee
        if name == "malloc":
            aligned = (args[0] + 15) & ~15
            if self.heap_cursor + aligned > self.layout.heap_base + self.layout.heap_size:
                raise MachineFault("IR heap exhausted")
            addr = self.heap_cursor
            self.heap_cursor += max(aligned, 16)
            return addr
        if name == "free":
            return 0
        if name == "print_int":
            self.output.append(str(to_signed(args[0], 32)))
            return 0
        if name == "print_long":
            self.output.append(str(to_signed(args[0], 64)))
            return 0
        if name == "srand":
            self.lcg_state = args[0] & _LCG_MASK
            return 0
        if name == "rand_next":
            self.lcg_state = (self.lcg_state * _LCG_MULT + _LCG_INC) & _LCG_MASK
            return (self.lcg_state >> 33) & 0x7FFF_FFFF
        if name == "exit":
            self._exit_requested = True
            self._exit_code = to_signed(args[0], 32)
            return 0
        if name == "__eddi_detect":
            raise DetectionExit("IR-level EDDI checker reported a mismatch")
        raise IRInterpError(f"call to unknown function {name!r}")
