"""IR structural verifier.

Checks the invariants the backend and the EDDI pass rely on:

* every block ends in exactly one terminator, with none mid-block;
* branch targets resolve within the function;
* every operand is a constant, an argument of the function, an ``alloca``
  (slots are function-scoped), or an instruction defined *earlier in the
  same block* — the -O0 discipline: values never flow between blocks except
  through memory;
* calls reference module functions or known runtime builtins, with matching
  arity for module functions.
"""

from __future__ import annotations

from repro.errors import IRVerifyError
from repro.ir.instructions import Alloca, Call, IRInstruction
from repro.ir.module import IRFunction, IRModule
from repro.ir.values import Constant, Value

#: Runtime builtins callable from IR (kept in sync with machine builtins).
BUILTIN_SIGNATURES: dict[str, int] = {
    "malloc": 1,
    "free": 1,
    "print_int": 1,
    "print_long": 1,
    "srand": 1,
    "rand_next": 0,
    "exit": 1,
    "__eddi_detect": 0,
}


def _verify_function(module: IRModule, func: IRFunction) -> None:
    if not func.blocks:
        raise IRVerifyError(f"{func.name}: function has no blocks")
    labels = {blk.label for blk in func.blocks}
    if len(labels) != len(func.blocks):
        raise IRVerifyError(f"{func.name}: duplicate block labels")

    args = set(func.args)
    allocas: set[Value] = {
        instr for instr in func.instructions() if isinstance(instr, Alloca)
    }

    for block in func.blocks:
        term = block.terminator
        if term is None:
            raise IRVerifyError(f"{func.name}/{block.label}: missing terminator")
        defined: set[Value] = set()
        for position, instr in enumerate(block.instructions):
            if instr.is_terminator and instr is not term:
                raise IRVerifyError(
                    f"{func.name}/{block.label}: terminator mid-block"
                )
            for operand in instr.operands():
                if isinstance(operand, Constant) or operand in args:
                    continue
                if operand in allocas or operand in defined:
                    continue
                raise IRVerifyError(
                    f"{func.name}/{block.label}: operand %{operand.name} of "
                    f"{instr.opcode} at position {position} is not available "
                    f"(cross-block value flow must go through memory)"
                )
            if isinstance(instr, IRInstruction) and instr.has_result:
                defined.add(instr)
            if isinstance(instr, Call):
                _verify_call(module, func, instr)
        for target in func.successors(block):
            if target not in labels:
                raise IRVerifyError(
                    f"{func.name}/{block.label}: branch to unknown {target!r}"
                )


def _verify_call(module: IRModule, func: IRFunction, call: Call) -> None:
    if module.has_function(call.callee):
        callee = module.function(call.callee)
        if len(call.args) != len(callee.args):
            raise IRVerifyError(
                f"{func.name}: call to {call.callee} with {len(call.args)} "
                f"args, expected {len(callee.args)}"
            )
    elif call.callee in BUILTIN_SIGNATURES:
        if len(call.args) != BUILTIN_SIGNATURES[call.callee]:
            raise IRVerifyError(
                f"{func.name}: builtin {call.callee} takes "
                f"{BUILTIN_SIGNATURES[call.callee]} args, got {len(call.args)}"
            )
    else:
        raise IRVerifyError(f"{func.name}: call to unknown {call.callee!r}")


def verify_module(module: IRModule) -> None:
    """Verify every function; raises :class:`IRVerifyError` on violation."""
    for func in module.functions:
        _verify_function(module, func)
