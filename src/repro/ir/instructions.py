"""IR instruction set.

A deliberately -O0-shaped subset of LLVM: stack slots (``alloca``), explicit
``load``/``store``, integer arithmetic, comparisons producing ``i1``,
width casts, pointer arithmetic (``ptradd``, a single-index GEP), calls,
and structured terminators. No phi nodes — the frontend keeps every mutable
variable in a slot, exactly like clang -O0, which is what makes the paper's
cross-layer effects appear when the backend lowers this IR.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.types import I1, IntType, PointerType, Type, VOID, VoidType
from repro.ir.values import Value

#: Binary integer operations (LLVM names).
BINARY_OPS: tuple[str, ...] = (
    "add", "sub", "mul", "sdiv", "srem",
    "and", "or", "xor", "shl", "ashr", "lshr",
)

#: Integer comparison predicates.
ICMP_PREDICATES: tuple[str, ...] = ("eq", "ne", "slt", "sle", "sgt", "sge")


class IRInstruction(Value):
    """Base class: an instruction is also a value (possibly of void type)."""

    opcode: str = "?"

    def operands(self) -> tuple[Value, ...]:
        """Value operands, for verification and duplication transforms."""
        return ()

    def replace_operands(self, mapping: dict[Value, Value]) -> None:
        """Rewrite operands through ``mapping`` (used by the EDDI pass)."""

    @property
    def is_terminator(self) -> bool:
        return False

    @property
    def has_result(self) -> bool:
        return not isinstance(self.type, VoidType)


class Alloca(IRInstruction):
    """Reserve a stack slot for ``count`` elements of ``allocated``."""

    opcode = "alloca"

    def __init__(self, allocated: Type, count: int = 1, name: str = "") -> None:
        super().__init__(PointerType(allocated), name)
        self.allocated = allocated
        self.count = count


class Load(IRInstruction):
    """Load a value through a typed pointer."""

    opcode = "load"

    def __init__(self, pointer: Value, name: str = "") -> None:
        ptr_type = pointer.type
        if not isinstance(ptr_type, PointerType) or ptr_type.pointee is None:
            raise IRError(f"load needs a typed pointer, got {pointer.type}")
        super().__init__(ptr_type.pointee, name)
        self.pointer = pointer

    def operands(self) -> tuple[Value, ...]:
        return (self.pointer,)

    def replace_operands(self, mapping: dict[Value, Value]) -> None:
        self.pointer = mapping.get(self.pointer, self.pointer)


class Store(IRInstruction):
    """Store ``value`` through ``pointer``. A sync point for EDDI."""

    opcode = "store"

    def __init__(self, value: Value, pointer: Value) -> None:
        if not isinstance(pointer.type, PointerType):
            raise IRError(f"store needs a pointer, got {pointer.type}")
        super().__init__(VOID)
        self.value = value
        self.pointer = pointer

    def operands(self) -> tuple[Value, ...]:
        return (self.value, self.pointer)

    def replace_operands(self, mapping: dict[Value, Value]) -> None:
        self.value = mapping.get(self.value, self.value)
        self.pointer = mapping.get(self.pointer, self.pointer)


class BinOp(IRInstruction):
    """Integer binary operation."""

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if op not in BINARY_OPS:
            raise IRError(f"unknown binary op {op!r}")
        if lhs.type != rhs.type or not isinstance(lhs.type, IntType):
            raise IRError(f"binop {op} type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(lhs.type, name)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    @property
    def opcode(self) -> str:  # type: ignore[override]
        return self.op

    def operands(self) -> tuple[Value, ...]:
        return (self.lhs, self.rhs)

    def replace_operands(self, mapping: dict[Value, Value]) -> None:
        self.lhs = mapping.get(self.lhs, self.lhs)
        self.rhs = mapping.get(self.rhs, self.rhs)


class ICmp(IRInstruction):
    """Integer comparison producing an ``i1``."""

    opcode = "icmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if pred not in ICMP_PREDICATES:
            raise IRError(f"unknown icmp predicate {pred!r}")
        if lhs.type != rhs.type:
            raise IRError(f"icmp type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(I1, name)
        self.pred = pred
        self.lhs = lhs
        self.rhs = rhs

    def operands(self) -> tuple[Value, ...]:
        return (self.lhs, self.rhs)

    def replace_operands(self, mapping: dict[Value, Value]) -> None:
        self.lhs = mapping.get(self.lhs, self.lhs)
        self.rhs = mapping.get(self.rhs, self.rhs)


class Cast(IRInstruction):
    """Width cast: ``sext``, ``zext`` or ``trunc``."""

    def __init__(self, op: str, value: Value, to: Type, name: str = "") -> None:
        if op not in ("sext", "zext", "trunc"):
            raise IRError(f"unknown cast {op!r}")
        super().__init__(to, name)
        self.op = op
        self.value = value

    @property
    def opcode(self) -> str:  # type: ignore[override]
        return self.op

    def operands(self) -> tuple[Value, ...]:
        return (self.value,)

    def replace_operands(self, mapping: dict[Value, Value]) -> None:
        self.value = mapping.get(self.value, self.value)


class PtrAdd(IRInstruction):
    """``ptradd base, index``: single-index GEP with the pointee's stride."""

    opcode = "ptradd"

    def __init__(self, base: Value, index: Value, name: str = "") -> None:
        if not isinstance(base.type, PointerType):
            raise IRError(f"ptradd base must be a pointer, got {base.type}")
        super().__init__(base.type, name)
        self.base = base
        self.index = index

    def operands(self) -> tuple[Value, ...]:
        return (self.base, self.index)

    def replace_operands(self, mapping: dict[Value, Value]) -> None:
        self.base = mapping.get(self.base, self.base)
        self.index = mapping.get(self.index, self.index)


class Call(IRInstruction):
    """Direct call by callee name. A sync point for EDDI."""

    opcode = "call"

    def __init__(self, callee: str, args: list[Value], return_type: Type,
                 name: str = "") -> None:
        super().__init__(return_type, name)
        self.callee = callee
        self.args = list(args)

    def operands(self) -> tuple[Value, ...]:
        return tuple(self.args)

    def replace_operands(self, mapping: dict[Value, Value]) -> None:
        self.args = [mapping.get(a, a) for a in self.args]


class Check(IRInstruction):
    """EDDI checker intrinsic: trap to the detect handler when ``a != b``.

    Only the IR-level EDDI pass emits these (the paper's Fig. 2 lowers the
    checker as ``icmp``+``br checkBb``; a dedicated intrinsic is the
    equivalent single-instruction form). The backend expands it to a
    compare plus a ``jne`` into the function's detection block; the IR
    interpreter raises :class:`repro.errors.DetectionExit` on mismatch.
    """

    opcode = "check"

    def __init__(self, original: Value, duplicate: Value) -> None:
        if original.type != duplicate.type:
            raise IRError(
                f"check of mismatched types {original.type} vs {duplicate.type}"
            )
        super().__init__(VOID)
        self.original = original
        self.duplicate = duplicate

    def operands(self) -> tuple[Value, ...]:
        return (self.original, self.duplicate)

    def replace_operands(self, mapping: dict[Value, Value]) -> None:
        self.original = mapping.get(self.original, self.original)
        self.duplicate = mapping.get(self.duplicate, self.duplicate)


class Br(IRInstruction):
    """Conditional branch on an ``i1``. A sync point for EDDI."""

    opcode = "br"

    def __init__(self, cond: Value, then_label: str, else_label: str) -> None:
        if cond.type != I1:
            raise IRError(f"br condition must be i1, got {cond.type}")
        super().__init__(VOID)
        self.cond = cond
        self.then_label = then_label
        self.else_label = else_label

    def operands(self) -> tuple[Value, ...]:
        return (self.cond,)

    def replace_operands(self, mapping: dict[Value, Value]) -> None:
        self.cond = mapping.get(self.cond, self.cond)

    @property
    def is_terminator(self) -> bool:
        return True


class Jump(IRInstruction):
    """Unconditional branch."""

    opcode = "jump"

    def __init__(self, target: str) -> None:
        super().__init__(VOID)
        self.target = target

    @property
    def is_terminator(self) -> bool:
        return True


class Ret(IRInstruction):
    """Return (with optional value). A sync point for EDDI."""

    opcode = "ret"

    def __init__(self, value: Value | None = None) -> None:
        super().__init__(VOID)
        self.value = value

    def operands(self) -> tuple[Value, ...]:
        return (self.value,) if self.value is not None else ()

    def replace_operands(self, mapping: dict[Value, Value]) -> None:
        if self.value is not None:
            self.value = mapping.get(self.value, self.value)

    @property
    def is_terminator(self) -> bool:
        return True
