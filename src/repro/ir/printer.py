"""Human-readable IR rendering (LLVM-flavoured), for docs, tests and debug.

Value names are uniquified per function at print time (the lowering reuses
hint names like ``%i`` freely), so printed modules are unambiguous and can
be re-read by :mod:`repro.ir.parser`: print → parse → print is a fixpoint.
"""

from __future__ import annotations

from repro.ir.instructions import (
    Alloca, BinOp, Br, Call, Cast, Check, ICmp, IRInstruction, Jump, Load,
    PtrAdd, Ret, Store,
)
from repro.ir.module import IRFunction, IRModule
from repro.ir.types import VoidType
from repro.ir.values import Constant, Value


class _Namer:
    """Assigns unique printed names to values within one function."""

    def __init__(self) -> None:
        self._names: dict[Value, str] = {}
        self._used: set[str] = set()

    def define(self, value: Value) -> str:
        name = value.name
        if name in self._used:
            index = 1
            while f"{name}.{index}" in self._used:
                index += 1
            name = f"{name}.{index}"
        self._used.add(name)
        self._names[value] = name
        return name

    def ref(self, value: Value) -> str:
        if isinstance(value, Constant):
            return str(value.value)
        try:
            return f"%{self._names[value]}"
        except KeyError:
            return f"%{value.name}"  # cross-function/ill-formed: best effort


def format_instruction(instr: IRInstruction,
                       namer: _Namer | None = None) -> str:
    """Render one IR instruction (with optional unique naming context)."""
    namer = namer or _Namer()
    ref = namer.ref
    if instr.has_result and instr not in namer._names:
        name = namer.define(instr)
    else:
        name = namer._names.get(instr, instr.name)
    if isinstance(instr, Alloca):
        suffix = f", {instr.count}" if instr.count != 1 else ""
        return f"%{name} = alloca {instr.allocated}{suffix}"
    if isinstance(instr, Load):
        return f"%{name} = load {instr.type}, {ref(instr.pointer)}"
    if isinstance(instr, Store):
        return (f"store {instr.value.type} {ref(instr.value)}, "
                f"{ref(instr.pointer)}")
    if isinstance(instr, BinOp):
        return (f"%{name} = {instr.op} {instr.type} "
                f"{ref(instr.lhs)}, {ref(instr.rhs)}")
    if isinstance(instr, ICmp):
        return (f"%{name} = icmp {instr.pred} {instr.lhs.type} "
                f"{ref(instr.lhs)}, {ref(instr.rhs)}")
    if isinstance(instr, Cast):
        return (f"%{name} = {instr.op} {instr.value.type} "
                f"{ref(instr.value)} to {instr.type}")
    if isinstance(instr, PtrAdd):
        return (f"%{name} = ptradd {instr.base.type} {ref(instr.base)}, "
                f"{ref(instr.index)}")
    if isinstance(instr, Call):
        args = ", ".join(ref(a) for a in instr.args)
        if isinstance(instr.type, VoidType):
            return f"call void @{instr.callee}({args})"
        return f"%{name} = call {instr.type} @{instr.callee}({args})"
    if isinstance(instr, Check):
        return (f"check {instr.original.type} {ref(instr.original)}, "
                f"{ref(instr.duplicate)}")
    if isinstance(instr, Br):
        return (f"br i1 {ref(instr.cond)}, label %{instr.then_label}, "
                f"label %{instr.else_label}")
    if isinstance(instr, Jump):
        return f"br label %{instr.target}"
    if isinstance(instr, Ret):
        if instr.value is None:
            return "ret void"
        return f"ret {instr.value.type} {ref(instr.value)}"
    return f"<unknown {instr.opcode}>"


def format_function(func: IRFunction) -> str:
    namer = _Namer()
    arg_names = [namer.define(arg) for arg in func.args]
    args = ", ".join(
        f"{arg.type} %{name}" for arg, name in zip(func.args, arg_names)
    )
    lines = [f"define {func.return_type} @{func.name}({args}) {{"]
    for block in func.blocks:
        lines.append(f"{block.label}:")
        lines.extend(f"  {format_instruction(i, namer)}"
                     for i in block.instructions)
    lines.append("}")
    return "\n".join(lines)


def format_module(module: IRModule) -> str:
    """Render a whole module."""
    return "\n\n".join(format_function(f) for f in module.functions) + "\n"
