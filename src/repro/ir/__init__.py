"""LLVM-like intermediate representation.

The IR mirrors the slice of LLVM that clang -O0 produces for integer C
code — every local lives in an ``alloca`` slot, expressions ``load`` their
operands and ``store`` their results, and no phi nodes exist. That shape is
load-bearing for this reproduction: the paper's cross-layer coverage gap
arises precisely from the backend-inserted reloads and flag
rematerializations such IR requires when lowered to assembly.
"""

from repro.ir.types import I1, I8, I32, I64, IntType, PointerType, Type, VoidType
from repro.ir.values import Argument, Constant, Value
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    Check,
    ICmp,
    IRInstruction,
    Jump,
    Load,
    PtrAdd,
    Ret,
    Store,
)
from repro.ir.module import IRBlock, IRFunction, IRModule
from repro.ir.builder import IRBuilder
from repro.ir.parser import IRParseError, parse_ir
from repro.ir.printer import format_module
from repro.ir.verifier import verify_module
from repro.ir.interp import IRInterpreter, IRRunResult

__all__ = [
    "Alloca", "Argument", "BinOp", "Br", "Call", "Cast", "Check", "Constant",
    "I1", "I8", "I32", "I64", "ICmp", "IRBlock", "IRBuilder", "IRFunction",
    "IRInstruction", "IRInterpreter", "IRModule", "IRRunResult", "IntType",
    "Jump", "Load", "PointerType", "PtrAdd", "Ret", "Store", "Type",
    "IRParseError", "VoidType", "format_module", "parse_ir", "verify_module",
]
