"""IR containers: blocks, functions, modules.

Mirrors the assembly-side containers (:mod:`repro.asm.program`) one level
up: ordered blocks with explicit terminators and fall-through prohibited
(every block must end in ``br``/``jump``/``ret``), which simplifies both the
verifier and the backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import IRError
from repro.ir.instructions import Br, IRInstruction, Jump, Ret
from repro.ir.types import Type, VOID
from repro.ir.values import Argument


@dataclass
class IRBlock:
    """A labeled IR basic block."""

    label: str
    instructions: list[IRInstruction] = field(default_factory=list)

    @property
    def terminator(self) -> IRInstruction | None:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def append(self, instr: IRInstruction) -> IRInstruction:
        self.instructions.append(instr)
        return instr

    def __iter__(self) -> Iterator[IRInstruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


class IRFunction:
    """An IR function: typed arguments plus ordered blocks (entry first)."""

    def __init__(self, name: str, arg_types: list[tuple[str, Type]],
                 return_type: Type = VOID) -> None:
        self.name = name
        self.return_type = return_type
        self.args = [
            Argument(arg_name, arg_type, index)
            for index, (arg_name, arg_type) in enumerate(arg_types)
        ]
        self.blocks: list[IRBlock] = []

    @property
    def entry(self) -> IRBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, label: str) -> IRBlock:
        if any(blk.label == label for blk in self.blocks):
            raise IRError(f"duplicate block {label!r} in {self.name}")
        block = IRBlock(label)
        self.blocks.append(block)
        return block

    def block(self, label: str) -> IRBlock:
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise IRError(f"no block {label!r} in {self.name}")

    def instructions(self) -> Iterator[IRInstruction]:
        for blk in self.blocks:
            yield from blk.instructions

    def successors(self, block: IRBlock) -> list[str]:
        term = block.terminator
        if term is None:
            raise IRError(f"block {block.label} in {self.name} lacks a terminator")
        if isinstance(term, Ret):
            return []
        if isinstance(term, Jump):
            return [term.target]
        if isinstance(term, Br):
            return [term.then_label, term.else_label]
        raise IRError(f"unknown terminator {term.opcode}")

    def static_size(self) -> int:
        return sum(len(blk) for blk in self.blocks)


class IRModule:
    """A translation unit: ordered functions."""

    def __init__(self) -> None:
        self.functions: list[IRFunction] = []

    def add_function(self, func: IRFunction) -> IRFunction:
        if self.has_function(func.name):
            raise IRError(f"duplicate function {func.name!r}")
        self.functions.append(func)
        return func

    def has_function(self, name: str) -> bool:
        return any(f.name == name for f in self.functions)

    def function(self, name: str) -> IRFunction:
        for func in self.functions:
            if func.name == name:
                return func
        raise IRError(f"no function {name!r}")

    def static_size(self) -> int:
        return sum(func.static_size() for func in self.functions)
