"""Convenience builder for emitting IR.

Tracks an insertion block and provides one method per instruction; the
frontend's lowering and the tests both construct IR exclusively through
this interface.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.instructions import (
    Alloca, BinOp, Br, Call, Cast, ICmp, IRInstruction, Jump, Load, PtrAdd,
    Ret, Store,
)
from repro.ir.module import IRBlock, IRFunction
from repro.ir.types import Type, VOID
from repro.ir.values import Value


class IRBuilder:
    """Appends instructions to a current block of a function."""

    def __init__(self, function: IRFunction) -> None:
        self.function = function
        self._block: IRBlock | None = None
        self._label_counter = 0

    # -- block management --------------------------------------------------

    def new_block(self, hint: str = "bb") -> IRBlock:
        """Create a fresh uniquely-labeled block (not yet positioned into)."""
        self._label_counter += 1
        return self.function.add_block(f"{hint}{self._label_counter}")

    def position_at(self, block: IRBlock) -> None:
        self._block = block

    @property
    def block(self) -> IRBlock:
        if self._block is None:
            raise IRError("builder has no insertion block")
        return self._block

    @property
    def terminated(self) -> bool:
        """True when the current block already ends in a terminator."""
        return self.block.terminator is not None

    def _emit(self, instr: IRInstruction) -> IRInstruction:
        if self.terminated:
            raise IRError(
                f"emitting {instr.opcode} after terminator in {self.block.label}"
            )
        return self.block.append(instr)

    # -- instructions ------------------------------------------------------

    def alloca(self, allocated: Type, count: int = 1, name: str = "") -> Value:
        return self._emit(Alloca(allocated, count, name))

    def load(self, pointer: Value, name: str = "") -> Value:
        return self._emit(Load(pointer, name))

    def store(self, value: Value, pointer: Value) -> None:
        self._emit(Store(value, pointer))

    def binop(self, op: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._emit(BinOp(op, lhs, rhs, name))

    def icmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._emit(ICmp(pred, lhs, rhs, name))

    def cast(self, op: str, value: Value, to: Type, name: str = "") -> Value:
        return self._emit(Cast(op, value, to, name))

    def ptradd(self, base: Value, index: Value, name: str = "") -> Value:
        return self._emit(PtrAdd(base, index, name))

    def call(self, callee: str, args: list[Value], return_type: Type = VOID,
             name: str = "") -> Value:
        return self._emit(Call(callee, args, return_type, name))

    def br(self, cond: Value, then_label: str, else_label: str) -> None:
        self._emit(Br(cond, then_label, else_label))

    def jump(self, target: str) -> None:
        self._emit(Jump(target))

    def ret(self, value: Value | None = None) -> None:
        self._emit(Ret(value))
