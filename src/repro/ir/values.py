"""IR value model: everything an instruction can take as an operand.

A :class:`Value` is anything with a type that can flow into an operand
position: constants, function arguments, and instructions that produce
results (:class:`repro.ir.instructions.IRInstruction` subclasses this).
Values are identified by object, with ``name`` used only for printing.
"""

from __future__ import annotations

import itertools

from repro.ir.types import Type

_value_ids = itertools.count()


class Value:
    """Base class of IR values."""

    def __init__(self, type_: Type, name: str = "") -> None:
        self.type = type_
        self.name = name or f"v{next(_value_ids)}"

    def __repr__(self) -> str:
        return f"%{self.name}:{self.type}"

    def short(self) -> str:
        """Operand rendering used by the printer."""
        return f"%{self.name}"


class Constant(Value):
    """An integer (or null-pointer) constant."""

    def __init__(self, value: int, type_: Type) -> None:
        super().__init__(type_, name=str(value))
        self.value = value

    def short(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"{self.value}:{self.type}"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, name: str, type_: Type, index: int) -> None:
        super().__init__(type_, name=name)
        self.index = index
