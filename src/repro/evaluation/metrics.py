"""Evaluation metrics (paper Sec. IV-A3)."""

from __future__ import annotations

from repro.faultinjection.outcome import sdc_coverage

__all__ = ["runtime_overhead", "sdc_coverage", "speedup_in_overhead"]


def runtime_overhead(cycles_protected: int, cycles_raw: int) -> float:
    """(Runtime_prot - Runtime_raw) / Runtime_raw."""
    if cycles_raw <= 0:
        raise ValueError("raw cycle count must be positive")
    return (cycles_protected - cycles_raw) / cycles_raw


def speedup_in_overhead(overhead_baseline: float, overhead_new: float) -> float:
    """Relative reduction in overhead: the paper's "52 % speed-up" metric.

    Defined as (overhead_baseline - overhead_new) / overhead_baseline.
    """
    if overhead_baseline <= 0:
        raise ValueError("baseline overhead must be positive")
    return (overhead_baseline - overhead_new) / overhead_baseline
