"""Root-cause analysis of residual SDCs (paper Sec. IV-B1).

The paper doesn't just measure IR-LEVEL-EDDI's coverage loss — it explains
it: "certain instructions can create potential fault injection sites when
translated into assembly language, which aren't visible at IR level", and
"some protection that exists at IR level may become ineffective once the
code is converted". This module reproduces that analysis mechanically: it
sweeps faults over a protected binary, and for every SDC it records *which
instruction* the fault hit — mnemonic, instruction kind, and provenance —
then aggregates into the histogram behind the paper's Figs. 8/9 narrative
(flag rematerialization, slot reloads, argument marshalling, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Iterable

from repro.asm.instructions import Instruction, InstrKind
from repro.asm.operands import Imm, Reg
from repro.asm.program import AsmProgram
from repro.faultinjection.campaign import run_campaign
from repro.faultinjection.outcome import Outcome
from repro.faultinjection.telemetry import FaultRecord
from repro.utils.text import format_table


def classify_site(instr: Instruction) -> str:
    """Human-readable fault-site class, matching the paper's narrative."""
    kind = instr.kind
    if kind in (InstrKind.CMP, InstrKind.TEST):
        if isinstance(instr.operands[0], Imm) and isinstance(
            instr.operands[1], Reg
        ):
            return "flag rematerialization (Fig. 9)"
        return "comparison flags"
    if kind in (InstrKind.MOV, InstrKind.MOVEXT):
        dest = instr.dest
        if isinstance(dest, Reg) and dest.register.name in (
            "edi", "rdi", "esi", "rsi", "edx", "ecx", "r8d", "r9d",
            "rdx", "rcx", "r8", "r9",
        ) and (instr.comment or "").startswith("marshal"):
            return "call argument marshalling"
        if instr.reads_memory():
            return "slot reload"
        return "register move"
    if kind is InstrKind.LEA:
        return "address computation (mapping)"
    if kind in (InstrKind.ALU, InstrKind.SHIFT, InstrKind.UNARY):
        return "arithmetic"
    if kind is InstrKind.SETCC:
        return "comparison materialization"
    if kind in (InstrKind.IDIV, InstrKind.CONVERT):
        return "division"
    if kind is InstrKind.POP:
        return "stack restore"
    return kind.value


@dataclass
class RootCauseResult:
    """SDC counts per fault-site class, for one protected binary."""

    samples: int
    total_sdc: int = 0
    by_class: dict[str, int] = field(default_factory=dict)
    by_origin: dict[str, int] = field(default_factory=dict)
    examples: dict[str, str] = field(default_factory=dict)

    def record(self, instr: Instruction) -> None:
        from repro.asm.printer import format_instruction

        self.total_sdc += 1
        site_class = classify_site(instr)
        self.by_class[site_class] = self.by_class.get(site_class, 0) + 1
        self.by_origin[instr.origin] = self.by_origin.get(instr.origin, 0) + 1
        self.examples.setdefault(site_class, format_instruction(instr))

    def render(self) -> str:
        rows = [
            [site_class, str(count), self.examples.get(site_class, "")]
            for site_class, count in sorted(
                self.by_class.items(), key=lambda item: -item[1]
            )
        ]
        return format_table(
            ["fault-site class", "SDCs", "example instruction"], rows,
            title=(f"Root causes of {self.total_sdc} residual SDCs "
                   f"({self.samples} faults injected)"),
        )


def root_causes_from_records(
    program: AsmProgram,
    records: Iterable[FaultRecord],
    samples: int | None = None,
) -> RootCauseResult:
    """Attribute a telemetry campaign's SDCs to their static instructions.

    Records carry the static-instruction ``uid`` of every fault they
    describe; this resolves those back to ``program``'s instruction objects
    (for kind-based classification and raw provenance tags) and folds every
    SDC into a :class:`RootCauseResult`. Works on in-memory records or ones
    re-loaded from a campaign's JSONL stream, as long as ``program`` is the
    binary the campaign ran.
    """
    by_uid = {instr.uid: instr for instr in program.instructions()}
    records = list(records)
    result = RootCauseResult(
        samples=len(records) if samples is None else samples
    )
    for record in records:
        if record.outcome is not Outcome.SDC:
            continue
        instr = by_uid.get(record.instruction_uid)
        if instr is None:
            raise KeyError(
                f"record uid {record.instruction_uid} not in program "
                f"(records from a different binary?)"
            )
        result.record(instr)
    return result


def analyze_root_causes(
    program: AsmProgram,
    samples: int,
    seed: int = 0,
    function: str = "main",
    args: tuple[int, ...] = (),
) -> RootCauseResult:
    """Sample faults over ``program`` and classify every SDC's site.

    Run this on an IR-LEVEL-EDDI binary to regenerate the paper's
    Sec. IV-B1 findings; on a FERRUM binary the result should be empty.
    A thin wrapper over a telemetry campaign: the checkpoint engine serves
    the samples, and the per-fault records carry the attribution that the
    pre-telemetry implementation had to recover with an extra full
    recorder execution per program.
    """
    campaign = run_campaign(program, samples, seed=seed, function=function,
                            args=args, telemetry=True)
    assert campaign.records is not None
    return root_causes_from_records(program, campaign.records, samples=samples)
