"""Experiment drivers regenerating every table and figure of the paper."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core import ferrum as ferrum_mod
from repro.core import hybrid as hybrid_mod
from repro.core.config import FerrumConfig
from repro.evaluation.metrics import runtime_overhead, sdc_coverage
from repro.faultinjection.campaign import (
    CampaignResult,
    run_campaign,
    run_ir_campaign,
)
from repro.machine.cpu import Machine
from repro.machine.timing import TimingConfig
from repro.pipeline import build_variants
from repro.workloads import WorkloadSpec, all_workloads, get_workload

#: Protection techniques in the paper's presentation order.
TECHNIQUES: tuple[str, ...] = ("ir-eddi", "hybrid", "ferrum")


def _selected(workloads: tuple[str, ...] | None) -> tuple[WorkloadSpec, ...]:
    if workloads is None:
        return all_workloads()
    return tuple(get_workload(name) for name in workloads)


# -- Table I / Table II --------------------------------------------------


def table1() -> dict[str, dict[str, str]]:
    """The capability matrix (paper Table I): technique -> class -> level."""
    ir_row = {key: "IR" if key == "basic" else "-"
              for key in ferrum_mod.CAPABILITIES}
    return {
        "IR-LEVEL-EDDI": ir_row,
        "HYBRID-ASSEMBLY-LEVEL-EDDI": dict(hybrid_mod.CAPABILITIES),
        "FERRUM": dict(ferrum_mod.CAPABILITIES),
    }


def table2() -> list[dict[str, str]]:
    """Benchmark roster (paper Table II)."""
    return [
        {"Benchmark": spec.name, "Suite": spec.suite, "Domain": spec.domain}
        for spec in all_workloads()
    ]


# -- Fig. 10: SDC coverage -----------------------------------------------


@dataclass
class CoverageRow:
    """One benchmark's coverage numbers across techniques."""

    benchmark: str
    raw: CampaignResult
    campaigns: dict[str, CampaignResult] = field(default_factory=dict)

    def coverage(self, technique: str) -> float:
        return sdc_coverage(
            self.raw.sdc_probability,
            self.campaigns[technique].sdc_probability,
        )


@dataclass
class Fig10Result:
    """SDC coverage per benchmark for each technique (paper Fig. 10)."""

    samples: int
    seed: int
    rows: list[CoverageRow] = field(default_factory=list)

    def average_coverage(self, technique: str) -> float:
        if not self.rows:
            return 0.0
        return sum(row.coverage(technique) for row in self.rows) / len(self.rows)


def run_fig10(
    samples: int = 200,
    seed: int = 2024,
    scale: int = 1,
    workloads: tuple[str, ...] | None = None,
    config: FerrumConfig | None = None,
    processes: int = 1,
) -> Fig10Result:
    """Measure assembly-level SDC coverage for every benchmark/technique.

    For each benchmark: one campaign on the unprotected binary establishes
    ``SDC_raw``; one campaign per technique yields ``SDC_prot``; coverage
    is ``(SDC_raw - SDC_prot) / SDC_raw`` (paper Sec. IV-A3). The paper
    samples 1000 faults per measurement; the default here is smaller so a
    full run stays laptop-friendly — pass ``samples=1000`` to match.
    """
    result = Fig10Result(samples=samples, seed=seed)
    for spec in _selected(workloads):
        build = build_variants(spec.source(scale), config=config)
        raw_campaign = run_campaign(build["raw"].asm, samples, seed=seed,
                                    processes=processes)
        row = CoverageRow(spec.name, raw_campaign)
        for technique in TECHNIQUES:
            row.campaigns[technique] = run_campaign(
                build[technique].asm, samples, seed=seed, processes=processes
            )
        result.rows.append(row)
    return result


# -- Fig. 11: runtime performance overhead -------------------------------


@dataclass
class Fig11Result:
    """Runtime overhead per benchmark for each technique (paper Fig. 11)."""

    rows: list[dict[str, object]] = field(default_factory=list)

    def average_overhead(self, technique: str) -> float:
        if not self.rows:
            return 0.0
        return sum(float(row[technique]) for row in self.rows) / len(self.rows)


def run_fig11(
    scale: int = 1,
    timing: TimingConfig | None = None,
    workloads: tuple[str, ...] | None = None,
    config: FerrumConfig | None = None,
    repeats: int = 3,
) -> Fig11Result:
    """Measure runtime overhead under the cycle model for every benchmark.

    The paper averages three wall-clock executions; the cycle model is
    deterministic, so ``repeats`` exists for protocol fidelity (and as a
    consistency assertion) rather than noise reduction.
    """
    timing = timing or TimingConfig()
    result = Fig11Result()
    for spec in _selected(workloads):
        build = build_variants(spec.source(scale), config=config)
        cycles: dict[str, int] = {}
        for name, variant in build.variants.items():
            machine = Machine(variant.asm)
            runs = {machine.run(timing=timing).cycles for _ in range(repeats)}
            if len(runs) != 1:
                raise AssertionError(
                    f"non-deterministic cycle counts for {spec.name}/{name}"
                )
            cycles[name] = runs.pop()
        row: dict[str, object] = {"benchmark": spec.name,
                                  "raw_cycles": cycles["raw"]}
        for technique in TECHNIQUES:
            row[technique] = runtime_overhead(cycles[technique], cycles["raw"])
        result.rows.append(row)
    return result


# -- Sec. IV-B3: transform execution time ---------------------------------


@dataclass
class TransformTimeResult:
    """FERRUM transform wall-clock vs static size (paper Sec. IV-B3)."""

    rows: list[dict[str, object]] = field(default_factory=list)

    @property
    def average_seconds(self) -> float:
        if not self.rows:
            return 0.0
        return sum(float(r["seconds"]) for r in self.rows) / len(self.rows)


def run_transform_time(
    scale: int = 1,
    repeats: int = 5,
    workloads: tuple[str, ...] | None = None,
    config: FerrumConfig | None = None,
) -> TransformTimeResult:
    """Time the FERRUM transform per benchmark (best of ``repeats``).

    The paper reports 0.089-0.196 s and observes the time scales with the
    static instruction count; both columns are reproduced here.
    """
    from repro.backend import compile_module
    from repro.core.ferrum import protect_program
    from repro.minic import compile_to_ir

    result = TransformTimeResult()
    for spec in _selected(workloads):
        asm = compile_module(compile_to_ir(spec.source(scale)))
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            protected, stats = protect_program(asm, config)
            best = min(best, time.perf_counter() - start)
        result.rows.append({
            "benchmark": spec.name,
            "static_instructions": asm.static_size(),
            "output_instructions": protected.static_size(),
            "seconds": best,
        })
    return result


# -- Sec. I / IV-B1: cross-layer coverage gap ------------------------------


@dataclass
class GapResult:
    """IR-level (anticipated) vs assembly-level (measured) IR-EDDI coverage."""

    samples: int
    seed: int
    rows: list[dict[str, object]] = field(default_factory=list)

    @property
    def average_gap(self) -> float:
        if not self.rows:
            return 0.0
        return sum(float(r["gap"]) for r in self.rows) / len(self.rows)


def run_crosslayer_gap(
    samples: int = 200,
    seed: int = 77,
    scale: int = 1,
    workloads: tuple[str, ...] | None = None,
    processes: int = 1,
) -> GapResult:
    """Measure IR-EDDI coverage twice: with IR-level and assembly-level
    injection (the paper's headline 28 % anticipated-vs-measured gap)."""
    result = GapResult(samples=samples, seed=seed)
    for spec in _selected(workloads):
        build = build_variants(spec.source(scale), names=("raw", "ir-eddi"))
        raw_ir = run_ir_campaign(build["raw"].ir, samples, seed=seed)
        prot_ir = run_ir_campaign(build["ir-eddi"].ir, samples, seed=seed)
        raw_asm = run_campaign(build["raw"].asm, samples, seed=seed,
                               processes=processes)
        prot_asm = run_campaign(build["ir-eddi"].asm, samples, seed=seed,
                                processes=processes)
        anticipated = sdc_coverage(raw_ir.sdc_probability,
                                   prot_ir.sdc_probability)
        measured = sdc_coverage(raw_asm.sdc_probability,
                                prot_asm.sdc_probability)
        result.rows.append({
            "benchmark": spec.name,
            "anticipated": anticipated,
            "measured": measured,
            "gap": anticipated - measured,
        })
    return result


# -- telemetry: per-fault observability campaign -------------------------


def run_telemetry(
    workload: str = "kmeans",
    technique: str = "ferrum",
    samples: int = 200,
    seed: int = 2024,
    scale: int = 1,
    engine: str = "checkpoint",
    jsonl_path: str | None = None,
    config: FerrumConfig | None = None,
    converge: bool = False,
) -> CampaignResult:
    """One telemetry-enabled campaign on one benchmark/technique binary.

    The observability experiment behind ``ferrum-eval telemetry``: every
    injected fault comes back as a :class:`FaultRecord`, so the evaluation
    layer can render the per-origin breakdown, the per-site outcome map,
    the detection-latency histogram, and the checkpoint-engine stats.
    ``jsonl_path`` additionally streams the records to disk. Outcome counts
    match a plain (telemetry-off) campaign with the same seed exactly.
    ``converge=True`` enables convergence early-exit (same counts, records
    and bytes; ``result.convergence_stats`` reports the economics).
    """
    variants = ("raw",) if technique == "raw" else ("raw", technique)
    build = build_variants(get_workload(workload).source(scale),
                           names=variants, config=config)
    return run_campaign(build[technique].asm, samples, seed=seed,
                        engine=engine, telemetry=True, jsonl_path=jsonl_path,
                        converge=converge)


# -- compose: incremental sectioned campaign -----------------------------


def run_compose(
    workload: str = "kmeans",
    technique: str = "ferrum",
    samples: int = 200,
    seed: int = 2024,
    scale: int = 1,
    engine: str = "checkpoint",
    cache_dir: str | None = None,
    reinject: tuple[str, ...] = (),
    prune: bool = False,
    jsonl_path: str | None = None,
    config: FerrumConfig | None = None,
    converge: bool = False,
) -> CampaignResult:
    """One compositional campaign on one benchmark/technique binary.

    The incremental-re-protection experiment behind ``ferrum-eval
    compose``: the program is partitioned into function/loop-nest
    sections, each section's sub-campaign is served from the
    content-addressed cache at ``cache_dir`` when its code (and transitive
    callees) are unchanged, and only stale or ``reinject``-ed sections
    re-execute. Outcome counts, telemetry records and JSONL output are
    bit-identical to the flat :func:`run_campaign` with the same seed.
    """
    from repro.faultinjection.compose import compose_campaign

    variants = ("raw",) if technique == "raw" else ("raw", technique)
    build = build_variants(get_workload(workload).source(scale),
                           names=variants, config=config)
    return compose_campaign(
        build[technique].asm, samples, seed=seed, engine=engine,
        telemetry=True, jsonl_path=jsonl_path, prune=prune,
        cache_dir=cache_dir, refresh=reinject, converge=converge,
    )
