"""Evaluation harness: drivers for every table and figure in the paper.

* :func:`run_fig10` — SDC coverage per benchmark per technique (Fig. 10);
* :func:`run_fig11` — runtime performance overhead (Fig. 11);
* :func:`run_transform_time` — FERRUM transform wall-clock (Sec. IV-B3);
* :func:`run_crosslayer_gap` — anticipated (IR-level) vs measured
  (assembly-level) IR-EDDI coverage (the Sec. I "28 % gap" claim);
* :func:`run_telemetry` — per-fault observability campaign (provenance
  breakdown, per-site outcome map, detection-latency histogram);
* :func:`run_compose` — compositional sectioned campaign with the
  content-addressed section cache (incremental re-protection);
* :func:`table1` / :func:`table2` — the capability matrix and the
  benchmark roster.
"""

from repro.evaluation.experiments import (
    CoverageRow,
    Fig10Result,
    Fig11Result,
    GapResult,
    TransformTimeResult,
    run_compose,
    run_crosslayer_gap,
    run_fig10,
    run_fig11,
    run_telemetry,
    run_transform_time,
    table1,
    table2,
)
from repro.evaluation.report import (
    render_checkpoint_stats,
    render_compose_stats,
    render_fig10,
    render_fig11,
    render_gap,
    render_latency_table,
    render_origin_breakdown,
    render_site_map,
    render_table1,
    render_table2,
    render_transform_time,
)

__all__ = [
    "CoverageRow",
    "Fig10Result",
    "Fig11Result",
    "GapResult",
    "TransformTimeResult",
    "render_checkpoint_stats",
    "render_compose_stats",
    "render_fig10",
    "render_fig11",
    "render_gap",
    "render_latency_table",
    "render_origin_breakdown",
    "render_site_map",
    "render_table1",
    "render_table2",
    "render_transform_time",
    "run_compose",
    "run_crosslayer_gap",
    "run_fig10",
    "run_fig11",
    "run_telemetry",
    "run_transform_time",
    "table1",
    "table2",
]
