"""Plain-text rendering of experiment results in paper-style tables."""

from __future__ import annotations

from typing import Iterable

from repro.evaluation.experiments import (
    Fig10Result,
    Fig11Result,
    GapResult,
    TECHNIQUES,
    TransformTimeResult,
    table1,
    table2,
)
from repro.faultinjection.compose import ComposeStats
from repro.faultinjection.outcome import Outcome
from repro.faultinjection.telemetry import (
    CheckpointStats,
    ConvergenceStats,
    FaultRecord,
    detection_latencies,
    latency_histogram,
    outcomes_by_instruction,
    outcomes_by_origin,
)
from repro.utils.text import format_table, percent


def render_table1() -> str:
    """Table I: technique capability matrix."""
    data = table1()
    classes = ["basic", "store", "branch", "call", "mapping", "comparison"]
    rows = [
        [name] + [data[name][cls] for cls in classes] for name in data
    ]
    return format_table(
        ["technique"] + classes, rows,
        title="Table I: protection level per instruction class",
    )


def render_table2() -> str:
    """Table II: benchmark roster."""
    rows = [[r["Benchmark"], r["Suite"], r["Domain"]] for r in table2()]
    return format_table(["Benchmark", "Suite", "Domain"], rows,
                        title="Table II: details of benchmarks")


def render_fig10(result: Fig10Result) -> str:
    """Fig. 10: SDC coverage per benchmark per technique."""
    headers = ["benchmark", "SDC_raw"] + [f"{t} cov" for t in TECHNIQUES]
    rows = []
    for row in result.rows:
        cells = [row.benchmark, percent(row.raw.sdc_probability)]
        cells.extend(percent(row.coverage(t)) for t in TECHNIQUES)
        rows.append(cells)
    rows.append(
        ["AVERAGE", ""]
        + [percent(result.average_coverage(t)) for t in TECHNIQUES]
    )
    return format_table(
        headers, rows,
        title=f"Fig. 10: SDC coverage ({result.samples} faults/campaign, "
              f"seed {result.seed})",
    )


def render_fig10_outcomes(result: Fig10Result) -> str:
    """Supplementary per-outcome breakdown behind Fig. 10."""
    headers = ["benchmark", "technique"] + [o.value for o in Outcome]
    rows = []
    for row in result.rows:
        rows.append([row.benchmark, "raw"]
                    + [str(row.raw.outcomes[o]) for o in Outcome])
        for technique in TECHNIQUES:
            campaign = row.campaigns[technique]
            rows.append([row.benchmark, technique]
                        + [str(campaign.outcomes[o]) for o in Outcome])
    return format_table(headers, rows, title="Fault outcome breakdown")


def render_fig11(result: Fig11Result) -> str:
    """Fig. 11: runtime performance overhead."""
    headers = ["benchmark", "raw cycles"] + list(TECHNIQUES)
    rows = []
    for row in result.rows:
        rows.append(
            [row["benchmark"], str(row["raw_cycles"])]
            + [percent(float(row[t])) for t in TECHNIQUES]
        )
    rows.append(
        ["AVERAGE", ""]
        + [percent(result.average_overhead(t)) for t in TECHNIQUES]
    )
    return format_table(headers, rows,
                        title="Fig. 11: runtime performance overhead")


def render_transform_time(result: TransformTimeResult) -> str:
    """Sec. IV-B3: FERRUM execution time vs static size."""
    rows = [
        [r["benchmark"], str(r["static_instructions"]),
         str(r["output_instructions"]), f"{float(r['seconds']) * 1000:.1f} ms"]
        for r in result.rows
    ]
    rows.append(["AVERAGE", "", "", f"{result.average_seconds * 1000:.1f} ms"])
    return format_table(
        ["benchmark", "static instrs", "protected instrs", "transform time"],
        rows, title="Sec. IV-B3: time to execute FERRUM",
    )


def render_origin_breakdown(records: Iterable[FaultRecord]) -> str:
    """Per-provenance outcome table: app code vs transform-inserted code.

    The telemetry counterpart of the paper's Figs. 8/9 narrative — it shows
    directly how faults that land in backend-inserted duplication/capture/
    check instructions fare compared to application instructions.
    """
    by_origin = outcomes_by_origin(records)
    headers = (["origin", "faults"] + [o.value for o in Outcome]
               + ["SDC rate"])
    rows = []
    for origin in sorted(by_origin, key=lambda o: -by_origin[o].total):
        counts = by_origin[origin]
        rows.append([origin, str(counts.total)]
                    + [str(counts[o]) for o in Outcome]
                    + [percent(counts.sdc_probability)])
    return format_table(headers, rows,
                        title="Fault outcomes by instruction provenance")


def render_site_map(records: Iterable[FaultRecord], top: int = 15) -> str:
    """The ``top`` static instructions ranked by SDCs (then by faults).

    A per-site outcome map in the FastFlip sense: which static instructions
    soak up faults, and which of them leak SDCs.
    """
    summaries = sorted(
        outcomes_by_instruction(records).values(),
        key=lambda s: (-s.sdc, -s.outcomes.total),
    )[:top]
    rows = [
        [s.instruction, s.origin, str(s.outcomes.total)]
        + [str(s.outcomes[o]) for o in Outcome]
        for s in summaries
    ]
    headers = ["instruction", "origin", "faults"] + [o.value for o in Outcome]
    return format_table(headers, rows,
                        title=f"Per-site outcomes (top {len(rows)} sites)")


def render_latency_table(records: Iterable[FaultRecord]) -> str:
    """Detection-latency histogram (power-of-two buckets) plus summary.

    Latency is dynamic instructions from the bit flip to ``DetectionExit``
    — the paper's "fast" claim, measured. Empty campaigns (no detections)
    render an explicit note instead of an empty table.
    """
    records = list(records)
    latencies = detection_latencies(records)
    if not latencies:
        return "Detection latency: no detected faults in this campaign."
    buckets = latency_histogram(records)
    peak = max(count for _, _, count in buckets)
    rows = [
        [f"[{lo}, {hi})", str(count), "#" * round(40 * count / peak)]
        for lo, hi, count in buckets
    ]
    latencies.sort()
    median = latencies[len(latencies) // 2]
    title = (
        f"Detection latency over {len(latencies)} detections "
        f"(median {median}, max {latencies[-1]} dynamic instructions)"
    )
    return format_table(["latency (dyn. instrs)", "detections", ""], rows,
                        title=title)


def render_checkpoint_stats(stats: CheckpointStats | None) -> str:
    """One-line checkpoint-engine economics (or a note when absent)."""
    if stats is None:
        return "Checkpoint stats: n/a (replay engine or telemetry off)."
    return "Checkpoint engine: " + stats.summary()


def render_compose_stats(stats: ComposeStats | None) -> str:
    """Section-cache economics of a composed campaign (or a note)."""
    if stats is None:
        return "Compose stats: n/a (flat campaign)."
    return "Composed campaign: " + stats.summary()


def render_convergence_stats(stats: ConvergenceStats | None) -> str:
    """Convergence early-exit economics (or a note when disabled)."""
    if stats is None:
        return "Convergence: n/a (run with --converge to enable)."
    data = stats.summary()
    return (
        f"Convergence early-exit: {data['converged']}/{data['runs']} runs "
        f"converged ({percent(data['converged_fraction'])}), "
        f"{data['instructions_saved']} instructions saved, "
        f"mean distance {data['mean_convergence_distance']} sites, "
        f"{data['boundaries_compared']} boundary compares"
    )


def render_gap(result: GapResult) -> str:
    """Sec. I/IV-B1: anticipated vs measured IR-EDDI coverage."""
    rows = [
        [r["benchmark"], percent(float(r["anticipated"])),
         percent(float(r["measured"])), percent(float(r["gap"]))]
        for r in result.rows
    ]
    rows.append(["AVERAGE", "", "", percent(result.average_gap)])
    return format_table(
        ["benchmark", "anticipated (IR FI)", "measured (asm FI)", "gap"],
        rows,
        title="Cross-layer gap: IR-EDDI coverage, IR-level vs assembly-level "
              "injection",
    )
