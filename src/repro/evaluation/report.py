"""Plain-text rendering of experiment results in paper-style tables."""

from __future__ import annotations

from repro.evaluation.experiments import (
    Fig10Result,
    Fig11Result,
    GapResult,
    TECHNIQUES,
    TransformTimeResult,
    table1,
    table2,
)
from repro.faultinjection.outcome import Outcome
from repro.utils.text import format_table, percent


def render_table1() -> str:
    """Table I: technique capability matrix."""
    data = table1()
    classes = ["basic", "store", "branch", "call", "mapping", "comparison"]
    rows = [
        [name] + [data[name][cls] for cls in classes] for name in data
    ]
    return format_table(
        ["technique"] + classes, rows,
        title="Table I: protection level per instruction class",
    )


def render_table2() -> str:
    """Table II: benchmark roster."""
    rows = [[r["Benchmark"], r["Suite"], r["Domain"]] for r in table2()]
    return format_table(["Benchmark", "Suite", "Domain"], rows,
                        title="Table II: details of benchmarks")


def render_fig10(result: Fig10Result) -> str:
    """Fig. 10: SDC coverage per benchmark per technique."""
    headers = ["benchmark", "SDC_raw"] + [f"{t} cov" for t in TECHNIQUES]
    rows = []
    for row in result.rows:
        cells = [row.benchmark, percent(row.raw.sdc_probability)]
        cells.extend(percent(row.coverage(t)) for t in TECHNIQUES)
        rows.append(cells)
    rows.append(
        ["AVERAGE", ""]
        + [percent(result.average_coverage(t)) for t in TECHNIQUES]
    )
    return format_table(
        headers, rows,
        title=f"Fig. 10: SDC coverage ({result.samples} faults/campaign, "
              f"seed {result.seed})",
    )


def render_fig10_outcomes(result: Fig10Result) -> str:
    """Supplementary per-outcome breakdown behind Fig. 10."""
    headers = ["benchmark", "technique"] + [o.value for o in Outcome]
    rows = []
    for row in result.rows:
        rows.append([row.benchmark, "raw"]
                    + [str(row.raw.outcomes[o]) for o in Outcome])
        for technique in TECHNIQUES:
            campaign = row.campaigns[technique]
            rows.append([row.benchmark, technique]
                        + [str(campaign.outcomes[o]) for o in Outcome])
    return format_table(headers, rows, title="Fault outcome breakdown")


def render_fig11(result: Fig11Result) -> str:
    """Fig. 11: runtime performance overhead."""
    headers = ["benchmark", "raw cycles"] + list(TECHNIQUES)
    rows = []
    for row in result.rows:
        rows.append(
            [row["benchmark"], str(row["raw_cycles"])]
            + [percent(float(row[t])) for t in TECHNIQUES]
        )
    rows.append(
        ["AVERAGE", ""]
        + [percent(result.average_overhead(t)) for t in TECHNIQUES]
    )
    return format_table(headers, rows,
                        title="Fig. 11: runtime performance overhead")


def render_transform_time(result: TransformTimeResult) -> str:
    """Sec. IV-B3: FERRUM execution time vs static size."""
    rows = [
        [r["benchmark"], str(r["static_instructions"]),
         str(r["output_instructions"]), f"{float(r['seconds']) * 1000:.1f} ms"]
        for r in result.rows
    ]
    rows.append(["AVERAGE", "", "", f"{result.average_seconds * 1000:.1f} ms"])
    return format_table(
        ["benchmark", "static instrs", "protected instrs", "transform time"],
        rows, title="Sec. IV-B3: time to execute FERRUM",
    )


def render_gap(result: GapResult) -> str:
    """Sec. I/IV-B1: anticipated vs measured IR-EDDI coverage."""
    rows = [
        [r["benchmark"], percent(float(r["anticipated"])),
         percent(float(r["measured"])), percent(float(r["gap"]))]
        for r in result.rows
    ]
    rows.append(["AVERAGE", "", "", percent(result.average_gap)])
    return format_table(
        ["benchmark", "anticipated (IR FI)", "measured (asm FI)", "gap"],
        rows,
        title="Cross-layer gap: IR-EDDI coverage, IR-level vs assembly-level "
              "injection",
    )
