"""ASCII bar-chart rendering of the paper's figures.

Figs. 10 and 11 in the paper are grouped bar charts (benchmark on the
x-axis, one bar per technique). These helpers render the same figures as
monospace text so a terminal-only regeneration still *looks* like the
paper's plots, not just its data tables.
"""

from __future__ import annotations

from typing import Iterable

from repro.evaluation.experiments import Fig10Result, Fig11Result, TECHNIQUES
from repro.faultinjection.telemetry import FaultRecord, latency_histogram

#: Bar glyph per technique, in the paper's series order.
_GLYPHS = {"ir-eddi": "I", "hybrid": "H", "ferrum": "F"}


def _bar(value: float, scale: float, width: int, glyph: str) -> str:
    length = 0 if scale <= 0 else round(min(value / scale, 1.0) * width)
    return glyph * length


def _legend() -> str:
    return "  ".join(f"{glyph} = {name}" for name, glyph in
                     ((t, _GLYPHS[t]) for t in TECHNIQUES))


def render_fig10_chart(result: Fig10Result, width: int = 50) -> str:
    """Fig. 10 as horizontal bars: SDC coverage per benchmark/technique."""
    lines = [
        f"Fig. 10 — SDC coverage (bar length = coverage, full width = 100%)",
        _legend(),
        "",
    ]
    label_width = max((len(row.benchmark) for row in result.rows), default=8)
    for row in result.rows:
        for technique in TECHNIQUES:
            coverage = row.coverage(technique)
            bar = _bar(coverage, 1.0, width, _GLYPHS[technique])
            name = row.benchmark if technique == TECHNIQUES[0] else ""
            lines.append(
                f"{name:<{label_width}} |{bar:<{width}}| {coverage * 100:5.1f}%"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def render_latency_chart(
    records: Iterable[FaultRecord], width: int = 50
) -> str:
    """Detection-latency histogram as horizontal bars.

    One bar per power-of-two latency bucket (dynamic instructions from bit
    flip to ``DetectionExit``); bar length is the detection count relative
    to the fullest bucket. The shape is the point: FERRUM's checks cluster
    in the first buckets (detection within a few instructions), deferred
    IR-level checking smears right.
    """
    buckets = latency_histogram(records)
    if not buckets:
        return "Detection latency — no detected faults to plot."
    peak = max(count for _, _, count in buckets)
    label_width = max(len(f"[{lo}, {hi})") for lo, hi, _ in buckets)
    lines = [
        "Detection latency (dynamic instructions from flip to detection)",
        "",
    ]
    for lo, hi, count in buckets:
        bar = _bar(count, peak, width, "D")
        lines.append(
            f"{f'[{lo}, {hi})':<{label_width}} |{bar:<{width}}| {count}"
        )
    return "\n".join(lines)


def render_fig11_chart(result: Fig11Result, width: int = 50) -> str:
    """Fig. 11 as horizontal bars: runtime overhead per benchmark/technique."""
    peak = max(
        (float(row[t]) for row in result.rows for t in TECHNIQUES),
        default=1.0,
    )
    lines = [
        f"Fig. 11 — runtime overhead (full width = {peak * 100:.0f}%)",
        _legend(),
        "",
    ]
    label_width = max(
        (len(str(row["benchmark"])) for row in result.rows), default=8
    )
    for row in result.rows:
        for technique in TECHNIQUES:
            overhead = float(row[technique])
            bar = _bar(overhead, peak, width, _GLYPHS[technique])
            name = str(row["benchmark"]) if technique == TECHNIQUES[0] else ""
            lines.append(
                f"{name:<{label_width}} |{bar:<{width}}| {overhead * 100:6.1f}%"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
