"""``ferrum-eval``: command-line driver for the paper's experiments.

Examples::

    ferrum-eval table1
    ferrum-eval fig10 --samples 1000
    ferrum-eval fig11 --scale 2
    ferrum-eval gap --samples 300 --workloads knn needle
    ferrum-eval telemetry --technique ferrum --jsonl faults.jsonl
    ferrum-eval telemetry --technique ferrum --converge
    ferrum-eval compose --workloads knn --cache-dir .ferrum-cache
    ferrum-eval compose --workloads knn --cache-dir .ferrum-cache \\
        --reinject sq_dist
    ferrum-eval serve --state-dir runs/night --workloads bfs knn \\
        --techniques ferrum hybrid --samples 1000
    ferrum-eval resume --state-dir runs/night
    ferrum-eval all --samples 100
"""

from __future__ import annotations

import argparse
import sys

from repro.evaluation import (
    render_fig10,
    render_fig11,
    render_gap,
    render_table1,
    render_table2,
    render_transform_time,
    run_crosslayer_gap,
    run_fig10,
    run_fig11,
    run_transform_time,
)
from repro.evaluation.report import render_fig10_outcomes
from repro.workloads import workload_names


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ferrum-eval",
        description="Regenerate the FERRUM paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=["table1", "table2", "fig10", "fig11", "transform-time",
                 "gap", "telemetry", "compose", "serve", "resume", "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument("--samples", type=int, default=200,
                        help="faults per injection campaign (paper: 1000)")
    parser.add_argument("--seed", type=int, default=2024,
                        help="campaign RNG seed")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload problem-size multiplier")
    parser.add_argument("--workloads", nargs="*", choices=workload_names(),
                        default=None, help="subset of benchmarks")
    parser.add_argument("--outcomes", action="store_true",
                        help="with fig10: also print the outcome breakdown")
    parser.add_argument("--technique",
                        choices=["raw", "ir-eddi", "hybrid", "ferrum", "dme"],
                        default="ferrum",
                        help="with telemetry: which protection variant to "
                             "inject into")
    parser.add_argument("--jsonl", default=None, metavar="PATH",
                        help="with telemetry: stream one JSON record per "
                             "fault to PATH")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="with compose: persist per-section results to "
                             "DIR so unchanged sections are never re-run")
    parser.add_argument("--reinject", nargs="*", default=[],
                        metavar="FUNCTION",
                        help="with compose: force these functions' sections "
                             "to re-execute even on a cache hit")
    parser.add_argument("--converge", action="store_true",
                        help="with telemetry/compose/serve: convergence "
                             "early-exit — stop each masked run at the "
                             "first golden-trail boundary its divergence "
                             "cone matches (identical results, fewer "
                             "executed instructions)")
    service = parser.add_argument_group(
        "durable campaign service (serve/resume)")
    service.add_argument("--state-dir", default=None, metavar="DIR",
                         help="journal + segments + results directory "
                              "(required for serve/resume)")
    service.add_argument("--techniques", nargs="*",
                         choices=["raw", "ir-eddi", "hybrid", "ferrum",
                                  "dme"],
                         default=["ferrum"],
                         help="with serve: protection variants to campaign")
    service.add_argument("--shard-size", type=int, default=200,
                         help="with serve: fault plans per durable shard")
    service.add_argument("--workers", type=int, default=2,
                         help="supervised worker processes "
                              "(0 = in-process sequential)")
    service.add_argument("--shard-timeout", type=float, default=300.0,
                         help="wall-clock seconds before a shard's worker "
                              "is killed and the shard requeued")
    service.add_argument("--max-failures", type=int, default=3,
                         help="failures before a shard is quarantined")
    service.add_argument("--requeue-quarantined", action="store_true",
                         help="with resume: give quarantined shards a "
                              "fresh set of attempts")
    service.add_argument("--no-fsync", action="store_true",
                         help="skip fsync on journal/segment writes "
                              "(faster; unsafe against power loss)")
    return parser


def _run_service(args: argparse.Namespace) -> int:
    from repro.faultinjection.service import (
        CampaignSpec,
        ServiceConfig,
        resume_campaign,
        serve_campaign,
    )

    if args.state_dir is None:
        print("error: serve/resume require --state-dir", file=sys.stderr)
        return 2
    config = ServiceConfig(
        workers=args.workers,
        shard_timeout=args.shard_timeout,
        max_failures=args.max_failures,
        requeue_quarantined=args.requeue_quarantined,
        fsync=not args.no_fsync,
        log=print,
    )
    if args.experiment == "serve":
        spec = CampaignSpec(
            workloads=tuple(args.workloads) if args.workloads
            else tuple(workload_names()),
            techniques=tuple(args.techniques),
            samples=args.samples,
            seed=args.seed,
            scale=args.scale,
            shard_size=args.shard_size,
            converge=args.converge,
        )
        report = serve_campaign(args.state_dir, spec, config)
    else:
        report = resume_campaign(args.state_dir, config)
    print(f"shards: {report.done_shards}/{report.shards} done "
          f"({report.executed_shards} executed now, "
          f"{report.adopted_segments} adopted)")
    for unit_id, path in sorted(report.results.items()):
        aggregate = report.aggregates[unit_id]
        print(f"  {unit_id}: {aggregate.records} records -> {path}")
    if report.quarantined:
        print(f"quarantined: {', '.join(report.quarantined)} "
              f"(see quarantine/ artifacts; rerun resume "
              f"--requeue-quarantined after fixing)")
    print(f"summary: {report.summary_path}")
    return 0 if report.complete else 1


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    workloads = tuple(args.workloads) if args.workloads else None

    if args.experiment in ("serve", "resume"):
        return _run_service(args)
    if args.experiment in ("table1", "all"):
        print(render_table1())
        print()
    if args.experiment in ("table2", "all"):
        print(render_table2())
        print()
    if args.experiment in ("fig10", "all"):
        result = run_fig10(samples=args.samples, seed=args.seed,
                           scale=args.scale, workloads=workloads)
        print(render_fig10(result))
        print()
        from repro.evaluation.figures import render_fig10_chart

        print(render_fig10_chart(result))
        if args.outcomes:
            print()
            print(render_fig10_outcomes(result))
        print()
    if args.experiment in ("fig11", "all"):
        fig11 = run_fig11(scale=args.scale, workloads=workloads)
        print(render_fig11(fig11))
        print()
        from repro.evaluation.figures import render_fig11_chart

        print(render_fig11_chart(fig11))
        print()
    if args.experiment in ("transform-time", "all"):
        print(render_transform_time(
            run_transform_time(scale=args.scale, workloads=workloads)
        ))
        print()
    if args.experiment in ("gap", "all"):
        result = run_crosslayer_gap(samples=args.samples, seed=args.seed,
                                    scale=args.scale, workloads=workloads)
        print(render_gap(result))
        if args.experiment == "all":
            print()
    if args.experiment in ("telemetry", "all"):
        from repro.evaluation.experiments import run_telemetry
        from repro.evaluation.figures import render_latency_chart
        from repro.evaluation.report import (
            render_checkpoint_stats,
            render_convergence_stats,
            render_latency_table,
            render_origin_breakdown,
            render_site_map,
        )

        workload = workloads[0] if workloads else "kmeans"
        campaign = run_telemetry(
            workload=workload, technique=args.technique,
            samples=args.samples, seed=args.seed, scale=args.scale,
            jsonl_path=args.jsonl, converge=args.converge,
        )
        records = campaign.records or []
        print(f"Telemetry campaign: {workload} / {args.technique} — "
              + campaign.summary())
        print()
        print(render_origin_breakdown(records))
        print()
        print(render_site_map(records))
        print()
        print(render_latency_table(records))
        print()
        print(render_latency_chart(records))
        print()
        print(render_checkpoint_stats(campaign.checkpoint_stats))
        if args.converge:
            print()
            print(render_convergence_stats(campaign.convergence_stats))
        if args.jsonl:
            print(f"Wrote {len(records)} records to {args.jsonl}")
    if args.experiment == "compose":
        from repro.evaluation.experiments import run_compose
        from repro.evaluation.report import (
            render_compose_stats,
            render_convergence_stats,
            render_origin_breakdown,
        )

        workload = workloads[0] if workloads else "kmeans"
        campaign = run_compose(
            workload=workload, technique=args.technique,
            samples=args.samples, seed=args.seed, scale=args.scale,
            cache_dir=args.cache_dir, reinject=tuple(args.reinject),
            jsonl_path=args.jsonl, converge=args.converge,
        )
        print(f"Composed campaign: {workload} / {args.technique} — "
              + campaign.summary())
        print()
        print(render_compose_stats(campaign.compose_stats))
        if args.converge:
            print()
            print(render_convergence_stats(campaign.convergence_stats))
        print()
        print(render_origin_breakdown(campaign.records or []))
        if args.jsonl:
            print(f"Wrote {len(campaign.records or [])} records "
                  f"to {args.jsonl}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
