"""Deferred detection for the FLAGS register (paper Sec. III-B2, Fig. 5).

The flags produced by a ``cmp``/``test`` cannot be compared directly —
any comparison would itself rewrite FLAGS. FERRUM instead captures the
consumed condition twice with ``set<cc>``:

* ``cmp`` (original) → ``set<cc> A`` captures the original flags;
* ``cmp`` (duplicate, identical operands) → ``set<cc> B`` recomputes and
  captures independently; the following ``j<cc>`` consumes the *duplicate*
  flags;
* both successor blocks of the jump begin with ``cmpb A, B`` + ``jne
  detect``, so a flag fault that diverts the branch still runs into a
  checker. Multiple protected branches reuse the same A/B pair — the
  paper's multi-predecessor trick.

A ``cmp`` + ``set<cc>`` materialization pair (comparison used as a value)
is duplicated as a unit and checked immediately: flags are dead right after
the original ``set<cc>`` in backend-generated code.

When no spare register pair exists, captures spill through a requisitioned
register into two frame-extension slots (stack-level redundancy, Fig. 7
applied to compare protection).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.instructions import Instruction, ins
from repro.asm.operands import LabelRef, Mem, Reg
from repro.asm.registers import get_register, gpr_with_width
from repro.core.spare_regs import RegisterPlan
from repro.errors import TransformError

_RBP = get_register("rbp")


@dataclass
class CompareProtector:
    """Per-function compare protection state."""

    plan: RegisterPlan
    detect_label: str
    #: Labels of blocks that must begin with an A/B entry check.
    pending_entry_checks: set[str] = field(default_factory=set)
    protected_branches: int = field(default=0, init=False)
    protected_setcc: int = field(default=0, init=False)

    # -- capture sequences ---------------------------------------------------

    def _capture_regs(self) -> tuple[Reg, Reg]:
        assert self.plan.cmp_a is not None and self.plan.cmp_b is not None
        return (
            Reg(gpr_with_width(self.plan.cmp_a, 8)),
            Reg(gpr_with_width(self.plan.cmp_b, 8)),
        )

    def protect_branch_compare(
        self,
        cmp_instr: Instruction,
        jcc: Instruction,
        successor_labels: tuple[str, ...],
        requisition: str | None = None,
    ) -> list[Instruction]:
        """Fig. 5 sequence replacing the original ``cmp`` (``jcc`` follows).

        Returns the instructions from the original compare up to (not
        including) the jump; records the successors for entry checks.
        """
        cc = jcc.spec.cc
        if cc is None:
            raise TransformError(f"{jcc.mnemonic} is not a conditional jump")
        dup_cmp = cmp_instr.copy(origin="dup",
                                 comment="duplicate comparison")
        out: list[Instruction] = [cmp_instr]
        if self.plan.cmp_in_registers:
            reg_a, reg_b = self._capture_regs()
            out.append(ins(f"set{cc}", reg_a, origin="capture",
                           comment="set original flag"))
            out.append(dup_cmp)
            out.append(ins(f"set{cc}", reg_b, origin="capture",
                           comment="set duplication flag"))
        else:
            if requisition is None:
                raise TransformError(
                    "compare protection without registers needs a "
                    "requisitioned register"
                )
            spare_b = Reg(gpr_with_width(requisition, 8))
            spare64 = Reg(gpr_with_width(requisition, 64))
            slot_a = Mem(disp=self.plan.cmp_slot_a, base=_RBP)
            slot_b = Mem(disp=self.plan.cmp_slot_b, base=_RBP)
            out.append(ins("pushq", spare64, origin="pre",
                           comment="requisition capture register"))
            out.append(ins(f"set{cc}", spare_b, origin="capture"))
            out.append(ins("movb", spare_b, slot_a, origin="capture",
                           comment="spill original flag"))
            out.append(dup_cmp)
            out.append(ins(f"set{cc}", spare_b, origin="capture"))
            out.append(ins("movb", spare_b, slot_b, origin="capture",
                           comment="spill duplication flag"))
            out.append(ins("popq", spare64, origin="pre",
                           comment="restore requisitioned register"))
        self.pending_entry_checks.update(successor_labels)
        self.protected_branches += 1
        return out

    def protect_setcc_pair(
        self,
        cmp_instr: Instruction,
        setcc: Instruction,
        scratch_root: str,
    ) -> list[Instruction]:
        """Duplicate a ``cmp`` + ``set<cc>`` materialization and check it."""
        cc = setcc.spec.cc
        assert cc is not None
        dest = setcc.dest
        assert isinstance(dest, Reg)
        scratch_b = Reg(gpr_with_width(scratch_root, 8))
        self.protected_setcc += 1
        # The scratch capture must come *before* the original ``set<cc>``:
        # when ``dest`` overlaps a register the comparison reads (e.g.
        # ``cmpl $0, %eax`` + ``setle %al``), running the original setcc
        # first would clobber the duplicate comparison's operand and the
        # checker would fire on fault-free runs. Capturing the original
        # flags into the (reserved, never-overlapping) scratch register and
        # letting the program's setcc consume the duplicate flags keeps both
        # captures independent with identical coverage.
        return [
            cmp_instr,
            ins(f"set{cc}", scratch_b, origin="dup",
                comment="capture original flags"),
            cmp_instr.copy(origin="dup", comment="duplicate comparison"),
            setcc,
            ins("cmpb", scratch_b, dest, origin="check"),
            ins("jne", LabelRef(self.detect_label), origin="check"),
        ]

    # -- successor entry checks ------------------------------------------

    def entry_check(self, requisition: str | None = None) -> list[Instruction]:
        """The A/B assertion placed at the top of successor blocks."""
        if self.plan.cmp_in_registers:
            reg_a, reg_b = self._capture_regs()
            return [
                ins("cmpb", reg_a, reg_b, origin="check",
                    comment="check flag captures"),
                ins("jne", LabelRef(self.detect_label), origin="check"),
            ]
        if requisition is None:
            raise TransformError(
                "compare entry check without registers needs a "
                "requisitioned register"
            )
        spare_b = Reg(gpr_with_width(requisition, 8))
        spare64 = Reg(gpr_with_width(requisition, 64))
        slot_a = Mem(disp=self.plan.cmp_slot_a, base=_RBP)
        slot_b = Mem(disp=self.plan.cmp_slot_b, base=_RBP)
        return [
            ins("pushq", spare64, origin="pre"),
            ins("movb", slot_a, spare_b, origin="check"),
            ins("cmpb", slot_b, spare_b, origin="check",
                comment="check spilled flag captures"),
            ins("jne", LabelRef(self.detect_label), origin="check"),
            ins("popq", spare64, origin="pre"),
        ]
