"""Divergent multi-version execution (DME) detection — build layer.

DME detects soft errors without inserting a single check instruction.
Instead of duplicating computation *inside* one program (EDDI/FERRUM), it
compiles the program twice with *structurally decorrelated* backend
choices and runs the two executables in lockstep:

* the **primary** is the ordinary backend output;
* the **secondary** permutes every decorrelation knob the backend offers —
  a seeded shuffle of the stack-slot assignment
  (:class:`repro.backend.frame.FrameLayout` ``slot_seed``) and a permuted
  scratch-register role assignment (:class:`repro.backend.isel
  .LoweringKnobs` ``acc``/``aux``).

Because every knob is a *pure renaming* (same instruction count, same
mnemonics, operands equal modulo the register map and the per-function
slot permutation), the two variants are observably identical on
fault-free runs: their canonical traces — program-local instruction
ordinals paired with post-writeback destination values, with register
names and slot offsets erased through the decorrelation maps — match
position for position, and their outputs are bit-identical. A hardware
fault, by contrast, lands in *differently named* state in each variant
(a different register root, a different frame cell), so the downstream
damage decorrelates and the lockstep comparison catches it.

This module builds the variant pair and proves the pure-renaming
property structurally; :mod:`repro.faultinjection.dme` runs the pair in
lockstep and turns divergence into detection verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.asm.operands import Imm, LabelRef, Mem, Reg
from repro.asm.program import AsmFunction, AsmProgram
from repro.backend.frame import FrameLayout
from repro.backend.isel import ACC_ROOTS, AUX_ROOTS, LoweringKnobs, compile_module
from repro.errors import TransformError
from repro.ir.module import IRModule
from repro.utils.rng import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.asm.instructions import Instruction
    from repro.asm.registers import Register

#: Default decorrelation seed; any seed yields a valid pair.
DME_DEFAULT_SEED = 0xD37E


@dataclass(frozen=True)
class DecorrelationMaps:
    """The renaming that separates the secondary variant from the primary.

    ``register_map`` maps a primary scratch-register root to the root the
    secondary uses in the same role. ``slot_maps`` maps, per function,
    a primary rbp-relative cell offset to the secondary's offset for the
    same IR value. Canonicalization applies these maps to erase the
    decorrelation again, which is what makes the fault-free traces of the
    two variants comparable position by position.
    """

    seed: int
    register_map: dict[str, str]
    slot_maps: dict[str, dict[int, int]]


class DmeProgram(AsmProgram):
    """An :class:`AsmProgram` (the primary) carrying its decorrelated twin.

    The program *is* the primary variant — every consumer that treats it
    as a plain ``AsmProgram`` (site enumeration, static size, printing,
    campaign planning) sees exactly the raw backend output, so fault
    plans sampled against a DME build are bit-identical to plans sampled
    against ``raw``. The extra state (:attr:`secondary`, :attr:`maps`)
    only matters to the lockstep machine, which
    :class:`repro.machine.cpu.Machine` instantiates automatically via
    :meth:`machine_class`.
    """

    #: Telemetry/classification tag: which detector this program embeds.
    detector = "dme"

    def __init__(
        self,
        functions: list[AsmFunction],
        metadata: dict[str, str],
        secondary: AsmProgram,
        maps: DecorrelationMaps,
    ) -> None:
        super().__init__(functions=functions, metadata=metadata)
        self.secondary = secondary
        self.maps = maps
        #: (function, args) -> fault-free reference trace, filled lazily by
        #: the lockstep machine. Established before campaign workers fork,
        #: so children inherit it read-only.
        self.trace_cache: dict = {}

    def machine_class(self):
        """The machine type that executes this program (lockstep runner)."""
        from repro.faultinjection.dme import DmeMachine

        return DmeMachine

    def plain(self) -> AsmProgram:
        """The primary as a plain program, sharing the same instruction
        objects (and therefore uids and code indices) — reference runs use
        this to avoid recursing into lockstep machinery."""
        return AsmProgram(functions=self.functions,
                          metadata=dict(self.metadata))

    def copy(self) -> "DmeProgram":
        primary = super().copy()
        return DmeProgram(primary.functions, dict(self.metadata),
                          self.secondary.copy(), self.maps)


def _secondary_knobs(seed: int) -> LoweringKnobs:
    """Seeded decorrelation knobs, guaranteed distinct from the defaults.

    The accumulator role always moves off ``rax`` and the auxiliary role
    off ``rcx`` (and off the chosen accumulator), so every scratch role
    *and* every arg/result slot genuinely differs between the variants.
    """
    rng = DeterministicRng(seed)
    acc = rng.choice([root for root in ACC_ROOTS if root != "rax"])
    aux = rng.choice(
        [root for root in AUX_ROOTS if root not in ("rcx", acc)]
    )
    return LoweringKnobs(slot_seed=seed, acc=acc, aux=aux, tag_backend=True)


def build_dme_program(module: IRModule,
                      seed: int = DME_DEFAULT_SEED) -> DmeProgram:
    """Compile ``module`` into a verified DME variant pair.

    The primary uses default lowering (plus backend origin tags, so
    telemetry can attribute fault sites to backend-inserted work); the
    secondary uses :func:`_secondary_knobs`. The pure-renaming property is
    proven structurally by :func:`verify_decorrelation` before the pair is
    returned — a pair this function returns cannot diverge on a fault-free
    run unless the machine itself is buggy (which is exactly what the
    ``dme-divergence`` fuzz oracle hunts for).
    """
    primary = compile_module(module, LoweringKnobs(tag_backend=True))
    knobs = _secondary_knobs(seed)
    secondary = compile_module(module, knobs)
    slot_maps = {
        func.name: dict(FrameLayout(func, slot_seed=seed).slot_map)
        for func in module.functions
    }
    maps = DecorrelationMaps(
        seed=seed, register_map=dict(knobs.register_map()),
        slot_maps=slot_maps,
    )
    verify_decorrelation(primary, secondary, maps)
    return DmeProgram(primary.functions, dict(primary.metadata),
                      secondary, maps)


def static_ordinals(program: AsmProgram) -> dict[int, int]:
    """uid -> program-local static ordinal, the canonical instruction name.

    Ordinals are stable across the variant pair because decorrelation is a
    pure renaming: instruction *i* of the primary corresponds to
    instruction *i* of the secondary.
    """
    return {instr.uid: i for i, instr in enumerate(program.instructions())}


# ---------------------------------------------------------------------------
# Structural verification: the secondary is a pure renaming of the primary.
# ---------------------------------------------------------------------------


def _registers_match(prim: "Register", sec: "Register",
                     register_map: dict[str, str]) -> bool:
    """``sec`` equals ``prim`` either literally (pinned sequences: idiv,
    shift counts, setcc, ABI registers, frame pointers) or through the
    role map at identical width."""
    if prim.name == sec.name:
        return True
    mapped = register_map.get(prim.root)
    return (mapped is not None and sec.root == mapped
            and sec.width == prim.width)


def _operands_match(prim, sec, register_map: dict[str, str],
                    slot_map: dict[int, int]) -> bool:
    if type(prim) is not type(sec):
        return False
    if isinstance(prim, Imm):
        return prim.value == sec.value
    if isinstance(prim, LabelRef):
        return prim.name == sec.name
    if isinstance(prim, Reg):
        return _registers_match(prim.register, sec.register, register_map)
    if isinstance(prim, Mem):
        if (prim.base is None) != (sec.base is None):
            return False
        if (prim.index is None) != (sec.index is None):
            return False
        if prim.base is not None and not _registers_match(
                prim.base, sec.base, register_map):
            return False
        if prim.index is not None and not _registers_match(
                prim.index, sec.index, register_map):
            return False
        if prim.scale != sec.scale:
            return False
        expected = prim.disp
        if (prim.base is not None and prim.base.root == "rbp"
                and prim.disp in slot_map):
            expected = slot_map[prim.disp]
        return sec.disp == expected
    return prim == sec  # pragma: no cover - no further operand kinds


def _instruction_mismatch(func: str, label: str, index: int,
                          prim: "Instruction", sec: "Instruction") -> str:
    return (
        f"{func}/{label}[{index}]: secondary is not a pure renaming of the "
        f"primary: {prim.mnemonic} {', '.join(map(str, prim.operands))} "
        f"vs {sec.mnemonic} {', '.join(map(str, sec.operands))}"
    )


def verify_decorrelation(primary: AsmProgram, secondary: AsmProgram,
                         maps: DecorrelationMaps) -> None:
    """Prove the pure-renaming property; raise :class:`TransformError` else.

    Walks the two programs position by position and requires identical
    shape everywhere: same functions, same blocks, same instruction count,
    same mnemonic/origin per position, and operands equal modulo
    ``maps.register_map`` (role renaming) and the per-function slot
    permutation (rbp-relative arg/result cells only — alloca storage and
    every other displacement must match literally).

    This is the differential gate that makes DME's zero-false-positive
    claim *checkable at build time*: any backend change that breaks the
    renaming (an extra spill in one variant, a pinned register that leaked
    into a permuted role) fails here instead of as a spurious runtime
    divergence.
    """
    if primary.function_names() != secondary.function_names():
        raise TransformError(
            f"dme: variant function lists differ: "
            f"{primary.function_names()} vs {secondary.function_names()}"
        )
    for pfunc, sfunc in zip(primary.functions, secondary.functions):
        slot_map = maps.slot_maps.get(pfunc.name, {})
        plabels = [block.label for block in pfunc.blocks]
        slabels = [block.label for block in sfunc.blocks]
        if plabels != slabels:
            raise TransformError(
                f"dme: {pfunc.name}: block structure differs: "
                f"{plabels} vs {slabels}"
            )
        for pblock, sblock in zip(pfunc.blocks, sfunc.blocks):
            if len(pblock.instructions) != len(sblock.instructions):
                raise TransformError(
                    f"dme: {pfunc.name}/{pblock.label}: instruction counts "
                    f"differ ({len(pblock.instructions)} vs "
                    f"{len(sblock.instructions)}); decorrelation must be a "
                    f"pure renaming"
                )
            for index, (prim, sec) in enumerate(
                    zip(pblock.instructions, sblock.instructions)):
                if (prim.mnemonic != sec.mnemonic
                        or prim.origin != sec.origin
                        or len(prim.operands) != len(sec.operands)):
                    raise TransformError(_instruction_mismatch(
                        pfunc.name, pblock.label, index, prim, sec))
                for prim_op, sec_op in zip(prim.operands, sec.operands):
                    if not _operands_match(prim_op, sec_op,
                                           maps.register_map, slot_map):
                        raise TransformError(_instruction_mismatch(
                            pfunc.name, pblock.label, index, prim, sec))
