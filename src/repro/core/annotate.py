"""Instruction annotation (paper Sec. III-B1, second half).

FERRUM's static analysis walks every instruction and decides which
protection strategy applies:

* **SIMD-ENABLED-INSTRUCTIONS** — the destination register is not among the
  sources (the paper's "source register differs from destination"
  criterion), so the instruction can simply be re-executed into a spare
  register (or, for 64-bit loads, straight into an XMM lane) and both
  results shifted into SIMD registers for a batched check (Fig. 6);
* **GENERAL-INSTRUCTIONS** — read-modify-write shapes and everything else
  re-executable: duplicated with a scalar spare register and checked
  immediately (Fig. 4);
* **COMPARE** — ``cmp``/``test`` feeding a conditional jump: protected with
  deferred detection via ``set<cc>`` capture pairs (Fig. 5); a
  ``cmp``+``set<cc>`` materialization pair is duplicated and checked as a
  unit;
* **SPECIAL** recipes for instructions with implicit destinations
  (``idiv``, ``cltd``/``cqto``) and for ``pop``;
* **NONE** — no register destination (stores, push, control flow): not a
  fault site under the paper's model, nothing to duplicate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.asm.instructions import Instruction, InstrKind
from repro.asm.operands import Mem, Reg
from repro.asm.registers import RegisterKind
from repro.errors import TransformError


class Protection(enum.Enum):
    """Protection strategy chosen for one instruction."""

    SIMD = "simd"
    GENERAL = "general"
    COMPARE = "compare"          # cmp/test + j<cc> (deferred, Fig. 5)
    COMPARE_SETCC = "compare_setcc"  # cmp/test + set<cc> materialization
    IDIV = "idiv"
    CONVERT = "convert"          # cltd / cqto
    POP = "pop"
    NONE = "none"


@dataclass(frozen=True)
class Annotation:
    """Classification of one instruction within its block."""

    protection: Protection
    #: For COMPARE/COMPARE_SETCC: the flag-consuming instruction.
    consumer: Instruction | None = None


def is_rmw(instr: Instruction) -> bool:
    """True when the destination root also appears among the sources."""
    dests = {reg.root for reg in instr.dest_registers() if reg.root != "rflags"}
    if not dests:
        return False
    sources = {reg.root for reg in instr.read_registers()}
    for op in instr.operands[:-1] if instr.spec.has_dest else instr.operands:
        if isinstance(op, Mem):
            sources.update(reg.root for reg in op.registers())
    # Memory *destinations* never make an instruction RMW here; address
    # registers of a store are reads, and stores have no register dest.
    dest_op = instr.dest
    if isinstance(dest_op, Mem):
        return False
    return bool(dests & sources)


def _writes_gpr(instr: Instruction) -> bool:
    dest = instr.dest
    return isinstance(dest, Reg) and dest.register.kind is RegisterKind.GPR


def classify_block(instructions: list[Instruction]) -> list[Annotation]:
    """Annotate each instruction of a basic block.

    Consumes the cmp-consumer pairing: a ``cmp``/``test`` must be directly
    followed by its ``j<cc>`` or ``set<cc>`` (the only shapes the -O0
    backend emits); anything else is a pipeline error worth failing loudly
    on rather than silently leaving unprotected.
    """
    annotations: list[Annotation] = []
    for index, instr in enumerate(instructions):
        kind = instr.kind

        if kind in (InstrKind.CMP, InstrKind.TEST):
            consumer = instructions[index + 1] if index + 1 < len(instructions) else None
            if consumer is not None and consumer.kind is InstrKind.JCC:
                annotations.append(Annotation(Protection.COMPARE, consumer))
            elif consumer is not None and consumer.kind is InstrKind.SETCC:
                annotations.append(Annotation(Protection.COMPARE_SETCC, consumer))
            else:
                raise TransformError(
                    f"cmp/test not followed by j<cc> or set<cc>: "
                    f"{instr.mnemonic} then "
                    f"{consumer.mnemonic if consumer else 'end of block'}"
                )
            continue

        if kind is InstrKind.SETCC:
            # Folded into its compare's COMPARE_SETCC recipe.
            annotations.append(Annotation(Protection.NONE))
            continue

        if kind is InstrKind.IDIV:
            annotations.append(Annotation(Protection.IDIV))
            continue

        if kind is InstrKind.CONVERT:
            annotations.append(Annotation(Protection.CONVERT))
            continue

        if kind is InstrKind.POP:
            annotations.append(Annotation(Protection.POP))
            continue

        if kind in (InstrKind.MOV, InstrKind.MOVEXT, InstrKind.LEA):
            if _writes_gpr(instr) and not is_rmw(instr):
                annotations.append(Annotation(Protection.SIMD))
            elif _writes_gpr(instr):
                annotations.append(Annotation(Protection.GENERAL))
            else:
                annotations.append(Annotation(Protection.NONE))
            continue

        if kind in (InstrKind.ALU, InstrKind.SHIFT, InstrKind.UNARY):
            if _writes_gpr(instr):
                annotations.append(Annotation(Protection.GENERAL))
            else:
                annotations.append(Annotation(Protection.NONE))
            continue

        # push, control flow, vector code, nop: nothing to duplicate.
        annotations.append(Annotation(Protection.NONE))
    return annotations
