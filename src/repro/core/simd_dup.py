"""SIMD-batched duplication (paper Sec. III-B3, Fig. 6).

Results of up to four protected instructions are collected into two XMM
pairs — the duplicate chain in one register of each pair, the original
results in the other — then merged into two YMM registers with
``vinserti128`` and compared with a single ``vpxor`` + ``vptest`` + ``jne``.

Capture invariants the batcher maintains:

* lane 0 of a pair is written with ``movq`` (which zeroes lane 1, so a
  partially filled pair still compares equal in its empty lane);
* lane 1 is written with ``pinsrq $1``;
* 64-bit loads re-execute **directly into the lane** (the paper's fast
  path: ``movq -24(%rbp), %xmm0``); everything else re-executes into the
  scratch GPR first and is then inserted;
* 32-bit results compare as zero-extended 64-bit lane values — sound
  because x86-64 32-bit register writes zero the upper half, and both the
  original and the duplicate are captured through 64-bit views;
* a flush emits nothing when the batch is empty, and equalizes the unused
  upper YMM lane when only one pair is filled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.instructions import Instruction, InstrKind, ins
from repro.asm.operands import Imm, LabelRef, Mem, Reg
from repro.asm.registers import gpr_with_width, xmm_of, ymm_of
from repro.core.general_dup import reexecute_into
from repro.core.spare_regs import RegisterPlan
from repro.errors import TransformError


def _is_direct_load(instr: Instruction) -> bool:
    """64-bit mem->gpr move whose duplicate can target an XMM lane directly."""
    return (
        instr.kind is InstrKind.MOV
        and instr.spec.width == 64
        and isinstance(instr.operands[0], Mem)
        and isinstance(instr.operands[1], Reg)
    )


@dataclass
class SimdBatcher:
    """Per-basic-block batch state machine."""

    plan: RegisterPlan
    detect_label: str
    batch_size: int = 4
    scratch_requisitioned: str | None = None  # set by the driver per block
    count: int = field(default=0, init=False)
    captures: int = field(default=0, init=False)
    flushes: int = field(default=0, init=False)

    def _scratch_root(self) -> str:
        if self.plan.simd_scratch is not None:
            return self.plan.simd_scratch
        if self.scratch_requisitioned is not None:
            return self.scratch_requisitioned
        raise TransformError("SIMD capture without a scratch register")

    def capture(self, instr: Instruction) -> list[Instruction]:
        """Instructions to place *after* ``instr``; may end with a flush."""
        if self.plan.xmm is None:
            raise TransformError("SIMD capture without spare XMM registers")
        dest = instr.dest
        assert isinstance(dest, Reg)
        dup_lo, orig_lo, dup_hi, orig_hi = self.plan.xmm
        pair_dup = xmm_of(dup_lo if self.count < 2 else dup_hi)
        pair_orig = xmm_of(orig_lo if self.count < 2 else orig_hi)
        lane = self.count % 2

        out: list[Instruction] = []
        dest64 = Reg(gpr_with_width(dest.root, 64))
        if lane == 0:
            out.append(ins("movq", dest64, Reg(pair_orig), origin="capture",
                           comment="capture original result"))
        else:
            out.append(ins("pinsrq", Imm(1), dest64, Reg(pair_orig),
                           origin="capture", comment="capture original result"))

        if _is_direct_load(instr):
            mem = instr.operands[0]
            if lane == 0:
                out.append(ins("movq", mem, Reg(pair_dup), origin="dup",
                               comment="re-execute load into SIMD lane"))
            else:
                out.append(ins("pinsrq", Imm(1), mem, Reg(pair_dup),
                               origin="dup",
                               comment="re-execute load into SIMD lane"))
        else:
            scratch = self._scratch_root()
            out.append(reexecute_into(instr, scratch))
            scratch64 = Reg(gpr_with_width(scratch, 64))
            if lane == 0:
                out.append(ins("movq", scratch64, Reg(pair_dup),
                               origin="capture"))
            else:
                out.append(ins("pinsrq", Imm(1), scratch64, Reg(pair_dup),
                               origin="capture"))

        self.count += 1
        self.captures += 1
        if self.count >= self.batch_size:
            out.extend(self.flush())
        return out

    def flush(self) -> list[Instruction]:
        """Compare all pending lanes at once (Fig. 6's check sequence).

        Must only be called where FLAGS are architecturally dead: the
        sequence ends in ``vptest`` + ``jne``.
        """
        if self.count == 0:
            return []
        dup_lo, orig_lo, dup_hi, orig_hi = self.plan.xmm or (0, 1, 2, 3)
        ymm_dup = Reg(ymm_of(dup_lo))
        ymm_orig = Reg(ymm_of(orig_lo))
        out: list[Instruction] = []
        if self.count <= 2:
            # Only the low pair is filled: copy one xmm into both upper
            # lanes so they compare equal.
            filler = Reg(xmm_of(dup_lo))
            out.append(ins("vinserti128", Imm(1), filler, ymm_dup, ymm_dup,
                           origin="check", comment="equalize unused lane"))
            out.append(ins("vinserti128", Imm(1), filler, ymm_orig, ymm_orig,
                           origin="check", comment="equalize unused lane"))
        else:
            out.append(ins("vinserti128", Imm(1), Reg(xmm_of(dup_hi)),
                           ymm_dup, ymm_dup, origin="check"))
            out.append(ins("vinserti128", Imm(1), Reg(xmm_of(orig_hi)),
                           ymm_orig, ymm_orig, origin="check"))
        out.append(ins("vpxor", ymm_orig, ymm_dup, ymm_dup, origin="check"))
        out.append(ins("vptest", ymm_dup, ymm_dup, origin="check"))
        out.append(ins("jne", LabelRef(self.detect_label), origin="check"))
        self.count = 0
        self.flushes += 1
        return out
