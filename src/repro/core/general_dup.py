"""Scalar duplication recipes (paper Figs. 4 and 7, plus special cases).

Each recipe returns the instructions to place *before* and *after* the
original instruction. The after-sequence re-executes the computation into a
spare register and traps to the detection handler on mismatch with a
non-destructive ``cmp`` (flags are architecturally dead at every point the
driver applies these recipes).

Read-modify-write instructions (x86 two-operand ALU shapes, where the
destination is also a source) get a *pre-copy*: the destination's old value
is saved into the spare first, and the duplicate replays the operation on
the spare — this is how an ``addl %eax, %eax`` or ``subq $32, %rsp`` is
duplicated without undoing the original.
"""

from __future__ import annotations

from repro.asm.instructions import Instruction, InstrKind, ins
from repro.asm.operands import Imm, LabelRef, Mem, Operand, Reg
from repro.asm.registers import Register, get_register, gpr_with_width
from repro.core.annotate import is_rmw
from repro.errors import TransformError

_RSP = get_register("rsp")


def _suffix(width: int) -> str:
    return {8: "b", 16: "w", 32: "l", 64: "q"}[width]


def _remap_operand(op: Operand, old_root: str, new_root: str) -> Operand:
    """Replace references to ``old_root`` with ``new_root`` in one operand."""
    if isinstance(op, Reg) and op.root == old_root:
        return Reg(gpr_with_width(new_root, op.width))
    if isinstance(op, Mem):
        base = op.base
        index = op.index
        if base is not None and base.root == old_root:
            base = gpr_with_width(new_root, base.width)
        if index is not None and index.root == old_root:
            index = gpr_with_width(new_root, index.width)
        if base is not op.base or index is not op.index:
            return Mem(disp=op.disp, base=base, index=index, scale=op.scale)
    return op


def reexecute_into(instr: Instruction, spare_root: str) -> Instruction:
    """A duplicate of ``instr`` computing into ``spare_root``.

    The destination register is redirected to the spare; for RMW shapes the
    driver must have pre-copied the destination into the spare, because all
    source references to the destination root are redirected too.
    """
    dest = instr.dest
    if not isinstance(dest, Reg):
        raise TransformError(f"cannot re-execute {instr.mnemonic}: no register dest")
    old_root = dest.root
    if instr.kind is InstrKind.SHIFT:
        count = instr.operands[0]
        if isinstance(count, Reg) and count.root == old_root:
            raise TransformError(
                "cannot duplicate a shift whose count register is its "
                "destination (never emitted by the backend)"
            )
    operands = tuple(
        _remap_operand(op, old_root, spare_root) for op in instr.operands
    )
    return instr.copy(operands=operands, origin="dup",
                      comment=f"dup of {instr.mnemonic}")


def _check(dest: Register, spare_root: str, detect_label: str) -> list[Instruction]:
    """Compare the spare against the destination; jump to detect on mismatch."""
    width = dest.width
    spare = Reg(gpr_with_width(spare_root, width))
    return [
        ins(f"cmp{_suffix(width)}", spare, Reg(dest), origin="check"),
        ins("jne", LabelRef(detect_label), origin="check"),
    ]


def general_recipe(instr: Instruction, spare_root: str,
                   detect_label: str) -> tuple[list[Instruction], list[Instruction]]:
    """Fig. 4: (pre, post) instruction lists around a GENERAL instruction."""
    dest = instr.dest
    assert isinstance(dest, Reg)
    pre: list[Instruction] = []
    if is_rmw(instr):
        pre.append(ins("movq", Reg(gpr_with_width(dest.root, 64)),
                       Reg(gpr_with_width(spare_root, 64)),
                       origin="pre", comment="pre-copy RMW destination"))
    post = [reexecute_into(instr, spare_root)]
    post.extend(_check(dest.register, spare_root, detect_label))
    return pre, post


def convert_recipe(instr: Instruction, spare_root: str,
                   detect_label: str) -> list[Instruction]:
    """Duplicate ``cltd``/``cqto``/``cltq`` with an arithmetic-shift replay.

    ``cltd`` computes ``edx = eax >> 31`` (arithmetic); ``cqto`` computes
    ``rdx = rax >> 63``; ``cltq`` is ``rax = sext(eax)`` which replays as a
    ``movslq``.
    """
    if instr.mnemonic == "cltq":
        spare64 = Reg(gpr_with_width(spare_root, 64))
        return [
            ins("movslq", Reg(get_register("eax")), spare64, origin="dup"),
            ins("cmpq", spare64, Reg(get_register("rax")), origin="check"),
            ins("jne", LabelRef(detect_label), origin="check"),
        ]
    if instr.mnemonic == "cltd":
        spare32 = Reg(gpr_with_width(spare_root, 32))
        return [
            ins("movl", Reg(get_register("eax")), spare32, origin="dup"),
            ins("sarl", Imm(31), spare32, origin="dup"),
            ins("cmpl", spare32, Reg(get_register("edx")), origin="check"),
            ins("jne", LabelRef(detect_label), origin="check"),
        ]
    if instr.mnemonic == "cqto":
        spare64 = Reg(gpr_with_width(spare_root, 64))
        return [
            ins("movq", Reg(get_register("rax")), spare64, origin="dup"),
            ins("sarq", Imm(63), spare64, origin="dup"),
            ins("cmpq", spare64, Reg(get_register("rdx")), origin="check"),
            ins("jne", LabelRef(detect_label), origin="check"),
        ]
    raise TransformError(f"no convert recipe for {instr.mnemonic}")


def pop_recipe(instr: Instruction, detect_label: str) -> list[Instruction]:
    """Protect ``popq %reg``: compare against the just-popped stack slot.

    After the pop, ``rsp`` has moved past the value, which still sits at
    ``-8(%rsp)``; a memory-operand compare re-reads it without needing any
    spare register, so this recipe also works under full register scarcity.
    """
    dest = instr.dest
    assert isinstance(dest, Reg)
    return [
        ins("cmpq", Mem(disp=-8, base=_RSP), dest, origin="check",
            comment="re-read popped value"),
        ins("jne", LabelRef(detect_label), origin="check"),
    ]


def idiv_recipe(instr: Instruction, spares: tuple[str, str, str, str],
                detect_label: str) -> tuple[list[Instruction], list[Instruction]]:
    """Duplicate ``idiv``: save the dividend, replay, compare both results.

    Needs four spares: two to hold the pre-division ``rax``/``rdx``
    (dividend), two to stash the original quotient/remainder while the
    duplicate division runs.
    """
    src = instr.operands[0]
    if isinstance(src, Reg) and src.root in ("rax", "rdx"):
        raise TransformError("idiv source in rax/rdx cannot be duplicated")
    width = instr.spec.width
    s_div_lo, s_div_hi, s_quot, s_rem = (
        Reg(gpr_with_width(root, 64)) for root in spares
    )
    rax = Reg(get_register("rax"))
    rdx = Reg(get_register("rdx"))
    cmp_q = Reg(gpr_with_width(spares[2], width))
    cmp_r = Reg(gpr_with_width(spares[3], width))
    res_q = Reg(gpr_with_width("rax", width))
    res_r = Reg(gpr_with_width("rdx", width))

    pre = [
        ins("movq", rax, s_div_lo, origin="pre", comment="save dividend low"),
        ins("movq", rdx, s_div_hi, origin="pre", comment="save dividend high"),
    ]
    post = [
        ins("movq", rax, s_quot, origin="dup", comment="stash quotient"),
        ins("movq", rdx, s_rem, origin="dup", comment="stash remainder"),
        ins("movq", s_div_lo, rax, origin="dup", comment="restore dividend"),
        ins("movq", s_div_hi, rdx, origin="dup"),
        instr.copy(origin="dup", comment="duplicate division"),
        ins(f"cmp{_suffix(width)}", cmp_q, res_q, origin="check"),
        ins("jne", LabelRef(detect_label), origin="check"),
        ins(f"cmp{_suffix(width)}", cmp_r, res_r, origin="check"),
        ins("jne", LabelRef(detect_label), origin="check"),
    ]
    return pre, post
