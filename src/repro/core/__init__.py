"""The paper's contribution: assembly-level EDDI transforms.

* :mod:`repro.core.ferrum` — FERRUM (AS₂ in Table I): SIMD-batched
  duplication, deferred flag detection, stack-level register requisition.
* :mod:`repro.core.hybrid` — HYBRID-ASSEMBLY-LEVEL-EDDI (AS₁): immediate
  scalar duplication at assembly level with branch/comparison protection
  delegated to IR-level signatures.

Both are built on a shared duplication engine; FERRUM enables the SIMD and
compare-deferral features, the hybrid baseline disables them — exactly the
AS₂/AS₁ distinction of the paper's Table I.
"""

from repro.core.config import FerrumConfig
from repro.core.annotate import Protection, classify_block
from repro.core.dme import (
    DecorrelationMaps,
    DmeProgram,
    build_dme_program,
    verify_decorrelation,
)
from repro.core.ferrum import FerrumStats, FerrumTransform, protect_program
from repro.core.hybrid import HybridStats, protect_program_hybrid
from repro.core.validate import check_protection_invariants

__all__ = [
    "DecorrelationMaps",
    "DmeProgram",
    "FerrumConfig",
    "FerrumStats",
    "FerrumTransform",
    "HybridStats",
    "Protection",
    "build_dme_program",
    "check_protection_invariants",
    "classify_block",
    "protect_program",
    "protect_program_hybrid",
    "verify_decorrelation",
]
