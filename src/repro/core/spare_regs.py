"""Spare-register planning (paper Sec. III-B1, first half + III-B4).

FERRUM needs, per function:

* two persistent byte-capable GPRs for deferred compare detection
  (the paper's ``%r11b``/``%r12b`` pair, Fig. 5);
* one scalar scratch GPR for GENERAL duplication (Fig. 4);
* one scratch GPR that SIMD captures re-execute into (Fig. 6);
* four spare XMM registers (two result pairs merged into two YMM).

When the scan finds fewer spares than that, the plan records *fallbacks*:
scratch registers are requisitioned per basic block with push/pop
bracketing (Fig. 7), and compare captures are spilled to two slots carved
out of an extended stack frame (registers cannot carry them across the
block boundary to the successor's entry check once they have been popped).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.analysis import scan_register_usage
from repro.asm.operands import Imm, Reg
from repro.asm.program import AsmFunction
from repro.core.config import FerrumConfig
from repro.errors import TransformError


@dataclass(frozen=True)
class RegisterPlan:
    """Protection-register assignment for one function."""

    general: str | None        # scalar dup scratch root, None -> requisition
    simd_scratch: str | None   # SIMD re-execution root, None -> requisition
    cmp_a: str | None          # compare capture A, None -> frame slots
    cmp_b: str | None
    xmm: tuple[int, int, int, int] | None  # (dup_lo, orig_lo, dup_hi, orig_hi)
    extra: tuple[str, ...] = ()  # additional scratch (idiv needs four)
    cmp_slot_a: int = 0        # rbp-relative offsets when cmp_a/b are None
    cmp_slot_b: int = 0

    @property
    def simd_available(self) -> bool:
        return self.xmm is not None

    @property
    def cmp_in_registers(self) -> bool:
        return self.cmp_a is not None and self.cmp_b is not None

    def spare_roots(self) -> tuple[str, ...]:
        """Every plan-owned root — excluded from per-block requisition."""
        roots = [r for r in (self.general, self.simd_scratch,
                             self.cmp_a, self.cmp_b) if r is not None]
        roots.extend(self.extra)
        return tuple(roots)

    def scratch_pool(self) -> tuple[str, ...]:
        """Roots safe to clobber inside one protected-use sequence.

        Excludes the compare-capture pair: its values stay live from the
        captures at the end of a block to the entry checks of the
        successors, and any clobber in between would leave the pair
        unequal — a guaranteed false detection at the next entry check.
        """
        roots = [r for r in (self.general, self.simd_scratch) if r is not None]
        roots.extend(self.extra)
        return tuple(roots)


def _extend_frame(func: AsmFunction, extra: int) -> int:
    """Grow the function's frame by ``extra`` bytes; return old frame size.

    Looks for the prologue's ``subq $N, %rsp`` in the entry block and bumps
    it (inserting one when the frame was empty). The new bytes sit at the
    deepest rbp-relative offsets, inside the frame, so they survive calls —
    unlike red-zone slots.
    """
    entry = func.entry
    for index, instr in enumerate(entry.instructions[:4]):
        if (
            instr.mnemonic == "subq"
            and isinstance(instr.operands[0], Imm)
            and isinstance(instr.operands[1], Reg)
            and instr.operands[1].root == "rsp"
        ):
            old = instr.operands[0].value
            entry.instructions[index] = instr.copy(
                operands=(Imm(old + extra), instr.operands[1]),
                comment="frame extended for compare-capture slots",
            )
            return old
    # No subq: insert one after the `movq %rsp, %rbp` of the prologue.
    for index, instr in enumerate(entry.instructions[:4]):
        if (
            instr.mnemonic == "movq"
            and isinstance(instr.operands[1], Reg)
            and instr.operands[1].root == "rbp"
            and isinstance(instr.operands[0], Reg)
            and instr.operands[0].root == "rsp"
        ):
            from repro.asm.instructions import ins
            from repro.asm.registers import get_register

            entry.instructions.insert(
                index + 1,
                ins("subq", Imm(extra), Reg(get_register("rsp")),
                    comment="frame extended for compare-capture slots"),
            )
            return 0
    raise TransformError(
        f"{func.name}: cannot find prologue to extend the frame"
    )


def build_register_plan(func: AsmFunction, config: FerrumConfig,
                        shuffle_seed: int | None = None) -> RegisterPlan:
    """Scan ``func`` and assign protection registers (with fallbacks).

    ``shuffle_seed`` deterministically permutes the spare-register
    preference order before assignment (per-function stream). Any
    permutation yields an equally valid plan — the spare sets are exactly
    the registers the function provably never touches — so this is a
    decorrelation knob: two plans built with different seeds place the
    protection state in different registers. The default ``None`` keeps
    the historical priority order bit-for-bit.
    """
    usage = scan_register_usage(func)
    spare_gprs = [
        root for root in usage.spare_gprs
        if root not in config.pretend_used_gprs
    ]
    spare_xmm = [
        root for root in usage.spare_vectors
        if root not in config.pretend_used_xmm
    ]
    if shuffle_seed is not None:
        import zlib

        from repro.utils.rng import DeterministicRng

        rng = DeterministicRng(shuffle_seed).fork(
            zlib.crc32(func.name.encode("utf-8"))
        )
        spare_gprs = rng.shuffled(spare_gprs)
        spare_xmm = rng.shuffled(spare_xmm)

    # Assignment priority: the general scratch comes first — it is the only
    # register that can protect rsp-manipulating instructions (prologue
    # subq, epilogue movq), which per-block requisition cannot cover. The
    # compare pair comes next (it carries state across block boundaries);
    # the SIMD scratch and idiv extras degrade to per-block requisition.
    general = spare_gprs.pop(0) if spare_gprs else None
    if len(spare_gprs) >= 2:
        cmp_a = spare_gprs.pop(0)
        cmp_b = spare_gprs.pop(0)
    else:
        cmp_a = cmp_b = None  # need both or neither
    simd_scratch = spare_gprs.pop(0) if spare_gprs else None
    extra = tuple(spare_gprs[:2])  # idiv needs four scratch roots in total

    xmm: tuple[int, int, int, int] | None = None
    if config.use_simd and len(spare_xmm) >= 4:
        indices = tuple(int(root[3:]) for root in spare_xmm[:4])
        xmm = (indices[0], indices[1], indices[2], indices[3])

    cmp_slot_a = cmp_slot_b = 0
    if config.protect_compares and cmp_a is None:
        old_size = _extend_frame(func, 16)
        cmp_slot_a = -(old_size + 8)
        cmp_slot_b = -(old_size + 16)

    return RegisterPlan(
        general=general,
        simd_scratch=simd_scratch,
        cmp_a=cmp_a,
        cmp_b=cmp_b,
        xmm=xmm,
        extra=extra,
        cmp_slot_a=cmp_slot_a,
        cmp_slot_b=cmp_slot_b,
    )
