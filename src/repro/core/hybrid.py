"""HYBRID-ASSEMBLY-LEVEL-EDDI: the paper's second baseline (Sec. IV-A1).

Per Table I, the hybrid technique protects ``basic``, ``store``, ``call``
and ``mapping`` instructions by immediate scalar duplication at assembly
level (AS₁ — the Fig. 4 method, no SIMD), while ``branch`` and
``comparison`` instructions are protected at IR level through signatures.

This module provides the assembly half: the shared duplication engine with
SIMD and compare-deferral turned off. The IR half is
:func:`repro.eddi.signatures.protect_branches_with_signatures`; the two are
composed by :mod:`repro.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import AsmProgram
from repro.core.config import FerrumConfig
from repro.core.ferrum import FerrumStats, FerrumTransform

#: Capability row for the paper's Table I.
CAPABILITIES = {
    "basic": "AS1", "store": "AS1", "branch": "IR",
    "call": "AS1", "mapping": "AS1", "comparison": "IR",
}


@dataclass
class HybridStats:
    """Assembly-side statistics of the hybrid baseline."""

    asm: FerrumStats

    @property
    def protected_instructions(self) -> int:
        return self.asm.protected_instructions


def protect_program_hybrid(
    program: AsmProgram, config: FerrumConfig | None = None
) -> tuple[AsmProgram, HybridStats]:
    """Apply the AS₁ scalar-duplication half of the hybrid baseline.

    ``program`` must already carry the IR-level signature protection for
    branches and comparisons (see :mod:`repro.pipeline`); this pass leaves
    cmp/test/set<cc>/j<cc> untouched and duplicates everything else with
    immediate scalar checks.
    """
    base = config or FerrumConfig()
    engine_config = FerrumConfig(
        use_simd=False,
        protect_compares=False,
        simd_batch=base.simd_batch,
        pretend_used_gprs=base.pretend_used_gprs,
        pretend_used_xmm=base.pretend_used_xmm,
    )
    protected, stats = FerrumTransform(engine_config).protect(program)
    protected.metadata["protection"] = "hybrid-assembly-eddi"
    return protected, HybridStats(asm=stats)
