"""Static validation of protection invariants in transformed programs.

The fault-injection campaigns verify protection *empirically*; this module
checks the structural discipline a correct transform must obey, so a
regression fails fast with a named invariant instead of a mysterious
false detection three layers down:

* **flags discipline** — between a flag-producing ``cmp``/``test``/
  ``vptest`` and its consuming ``j<cc>``/``set<cc>``, no instruction may
  overwrite RFLAGS;
* **checker targets** — every checker branch (``origin="check"`` ``jne``)
  jumps to a detect block that calls the detection builtin;
* **batch discipline** — every ``vptest`` is immediately preceded by the
  ``vpxor`` that computes the lane difference;
* **bracket balance** — requisition ``push``/``pop`` pairs (``origin=
  "pre"``) balance within every basic block, so rsp is consistent on all
  paths.
"""

from __future__ import annotations

from repro.asm.instructions import Instruction, InstrKind
from repro.asm.program import AsmProgram
from repro.errors import TransformError
from repro.machine.builtins import DETECT_FUNCTION


def _consumes_flags(instr: Instruction) -> bool:
    return instr.spec.reads_flags


def _produces_flags(instr: Instruction) -> bool:
    return instr.spec.writes_flags


def check_flags_discipline(program: AsmProgram) -> None:
    """No flag producer may be shadowed before its consumer runs.

    Walk each block; whenever flags are produced, any later flag *consumer*
    in the block must see the most recent producer — i.e. a consumer never
    follows two producers without consuming in between **unless** the
    intervening producer is itself part of a protection pair (a duplicate
    comparison feeding its own ``set<cc>``). The practical invariant that
    catches real bugs: a ``j<cc>``/``set<cc>`` must be *immediately*
    preceded (modulo non-flag instructions) by some producer, and a
    checker ``jne`` must directly follow its compare.
    """
    for func in program.functions:
        for block in func.blocks:
            flags_valid = False
            for instr in block.instructions:
                if _consumes_flags(instr):
                    if not flags_valid:
                        raise TransformError(
                            f"{func.name}/{block.label}: {instr.mnemonic} "
                            "consumes flags but no producer is live"
                        )
                if _produces_flags(instr):
                    flags_valid = True
                elif instr.kind in (InstrKind.CALL,):
                    flags_valid = False  # calls clobber flags


def check_checker_targets(program: AsmProgram) -> None:
    """Every protection checker branch must reach a detection block."""
    detect_labels = set()
    for func in program.functions:
        for block in func.blocks:
            if any(
                instr.kind is InstrKind.CALL
                and instr.target_label == DETECT_FUNCTION
                for instr in block.instructions
            ):
                detect_labels.add(block.label)
    for func in program.functions:
        for block in func.blocks:
            for instr in block.instructions:
                if instr.origin == "check" and instr.kind is InstrKind.JCC:
                    target = instr.target_label
                    if target not in detect_labels:
                        raise TransformError(
                            f"{func.name}/{block.label}: checker branch "
                            f"targets {target!r}, not a detect block"
                        )


def check_batch_discipline(program: AsmProgram) -> None:
    """``vptest`` must directly follow the ``vpxor`` producing its operand."""
    for func in program.functions:
        for block in func.blocks:
            previous: Instruction | None = None
            for instr in block.instructions:
                if instr.kind is InstrKind.VECTEST:
                    if previous is None or previous.kind is not InstrKind.VECALU:
                        raise TransformError(
                            f"{func.name}/{block.label}: vptest without an "
                            "immediately preceding vpxor"
                        )
                previous = instr


def check_bracket_balance(program: AsmProgram) -> None:
    """Requisition push/pop brackets must balance within each block."""
    for func in program.functions:
        for block in func.blocks:
            depth = 0
            for instr in block.instructions:
                if instr.origin != "pre":
                    continue
                if instr.kind is InstrKind.PUSH:
                    depth += 1
                elif instr.kind is InstrKind.POP:
                    depth -= 1
                    if depth < 0:
                        raise TransformError(
                            f"{func.name}/{block.label}: requisition pop "
                            "without a matching push"
                        )
            if depth != 0:
                raise TransformError(
                    f"{func.name}/{block.label}: {depth} requisition "
                    "push(es) not popped"
                )


def check_protection_invariants(program: AsmProgram) -> None:
    """Run every structural protection check; raises TransformError."""
    check_flags_discipline(program)
    check_checker_targets(program)
    check_batch_discipline(program)
    check_bracket_balance(program)
