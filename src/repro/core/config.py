"""Configuration for the assembly-level duplication engine."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FerrumConfig:
    """Knobs of the FERRUM transform (defaults reproduce the paper).

    Attributes:
        use_simd: batch duplicated results into SIMD registers and check
            four at a time (AS₂); ``False`` falls back to immediate scalar
            checks for every instruction (AS₁ behaviour).
        protect_compares: apply deferred detection (Fig. 5) to cmp/test
            and set<cc>. The hybrid baseline turns this off because its
            comparison/branch protection happens at IR level.
        simd_batch: how many 64-bit results share one SIMD check. The
            paper's design fills 2×2 XMM registers and merges into YMM,
            i.e. a batch of 4; smaller values are allowed for ablations.
        pretend_used_gprs: extra GPR roots the spare-register scan must
            treat as occupied. The -O0 backend leaves r10-r15 free, so this
            is how tests and ablations exercise the stack-level redundancy
            path (Fig. 7) that real register-starved code would take.
        pretend_used_xmm: same for vector registers (forces the scalar
            fallback when fewer than 4 XMM lanes remain).
    """

    use_simd: bool = True
    protect_compares: bool = True
    simd_batch: int = 4
    pretend_used_gprs: frozenset[str] = field(default_factory=frozenset)
    pretend_used_xmm: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.simd_batch not in (1, 2, 3, 4):
            raise ValueError("simd_batch must be between 1 and 4")
