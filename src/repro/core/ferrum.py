"""FERRUM: the assembly-level EDDI transform (paper Sec. III).

Drives the four mechanisms over every function of a program:

1. static analysis — spare-register discovery and instruction annotation
   (:mod:`repro.core.spare_regs`, :mod:`repro.core.annotate`);
2. SIMD-batched duplication for SIMD-ENABLED instructions
   (:mod:`repro.core.simd_dup`), flushed at every point where flags must
   stay intact or control may leave the block;
3. scalar duplication with immediate checks for GENERAL instructions and
   the special shapes (:mod:`repro.core.general_dup`);
4. deferred detection for comparisons (:mod:`repro.core.cmp_protect`) with
   entry checks in both successors;

falling back to stack-level register requisition (Fig. 7) whenever the
function's spare registers don't cover a block's needs. Requisitioned
registers are bracketed with push/pop *around each protected use*, so the
scheme stays correct across prologues, epilogues and calls; instructions
that manipulate ``rsp`` itself (frame setup/teardown) cannot be protected
with a requisitioned register — FERRUM requires at least one function-wide
spare for those, and raises :class:`TransformError` otherwise.

Running the transform with ``use_simd=False`` and ``protect_compares=False``
yields the AS₁ engine of the HYBRID-ASSEMBLY-LEVEL-EDDI baseline
(:mod:`repro.core.hybrid`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.instructions import Instruction, InstrKind, ins
from repro.asm.operands import LabelRef, Reg
from repro.asm.program import AsmBlock, AsmFunction, AsmProgram
from repro.asm.registers import gpr_with_width
from repro.core.annotate import Annotation, Protection, classify_block
from repro.core.cmp_protect import CompareProtector
from repro.core.config import FerrumConfig
from repro.core.general_dup import (
    convert_recipe,
    general_recipe,
    idiv_recipe,
    pop_recipe,
)
from repro.core.simd_dup import SimdBatcher, _is_direct_load
from repro.core.spare_regs import RegisterPlan, build_register_plan
from repro.errors import TransformError
from repro.machine.builtins import DETECT_FUNCTION


@dataclass
class FerrumStats:
    """Counters describing what the transform did."""

    functions: int = 0
    simd_protected: int = 0
    general_protected: int = 0
    compare_branches: int = 0
    compare_setcc: int = 0
    idiv_protected: int = 0
    convert_protected: int = 0
    pop_protected: int = 0
    simd_flushes: int = 0
    requisitioned_uses: int = 0
    entry_checks: int = 0
    input_instructions: int = 0
    output_instructions: int = 0

    @property
    def protected_instructions(self) -> int:
        return (
            self.simd_protected + self.general_protected
            + self.compare_branches + self.compare_setcc
            + self.idiv_protected + self.convert_protected
            + self.pop_protected
        )

    def merge(self, other: "FerrumStats") -> None:
        for name in vars(other):
            setattr(self, name, getattr(self, name) + getattr(other, name))


#: Capability row for the paper's Table I (AS2 = assembly level with SIMD).
CAPABILITIES = {
    "basic": "AS2", "store": "AS2", "branch": "AS2",
    "call": "AS2", "mapping": "AS2", "comparison": "AS2",
}


def _push(root: str) -> Instruction:
    return ins("pushq", Reg(gpr_with_width(root, 64)), origin="pre",
               comment="requisition register")


def _pop(root: str) -> Instruction:
    return ins("popq", Reg(gpr_with_width(root, 64)), origin="pre",
               comment="restore requisitioned register")


def _reads_rsp(instr: Instruction) -> bool:
    return "rsp" in instr.register_roots()


class _ScratchProvider:
    """Resolves scratch registers: plan spares or per-use requisition (Fig. 7).

    ``acquire`` returns ``(root, requisitioned)``; when ``requisitioned``
    is true the caller must bracket the *entire* use sequence with
    push/pop. Per-use bracketing makes any non-reserved, non-plan register
    safe to borrow regardless of how the rest of the block uses it — the
    only constraint is that the borrowed register must not be one the
    protected instruction itself reads or writes.
    """

    def __init__(self, plan: RegisterPlan) -> None:
        from repro.asm.analysis import SPARE_PREFERENCE
        from repro.asm.registers import RESERVED_GPRS

        self._plan = plan
        self._candidates = tuple(
            root for root in SPARE_PREFERENCE
            if root not in plan.spare_roots() and root not in RESERVED_GPRS
        )

    def _pick(self, exclude: frozenset[str], taken: tuple[str, ...] = ()) -> str:
        for root in self._candidates:
            if root not in exclude and root not in taken:
                return root
        raise TransformError("no requisitionable register available")

    def acquire_general(self, instr: Instruction) -> tuple[str, bool]:
        if self._plan.general is not None:
            return self._plan.general, False
        if _reads_rsp(instr):
            raise TransformError(
                "protecting an rsp-manipulating instruction requires at "
                "least one function-wide spare register"
            )
        return self._pick(instr.register_roots()), True

    def acquire_simd_scratch(self, instr: Instruction) -> tuple[str, bool]:
        if self._plan.simd_scratch is not None:
            return self._plan.simd_scratch, False
        return self.acquire_general(instr)

    def acquire_many(self, count: int,
                     instr: Instruction) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """``count`` distinct clobberable roots: (roots, requisitioned subset).

        Draws from the plan's scratch pool — never the compare-capture
        pair, whose values must survive to the successors' entry checks —
        then per-use requisitions, avoiding the instruction's own roots.
        """
        roots = list(self._plan.scratch_pool())
        requisitioned: list[str] = []
        exclude = instr.register_roots()
        while len(roots) < count:
            root = self._pick(exclude, tuple(roots))
            roots.append(root)
            requisitioned.append(root)
        return tuple(roots[:count]), tuple(requisitioned)

    def requisition_for_compare(self, cmp_instr: Instruction) -> str:
        return self._pick(cmp_instr.register_roots())

    def requisition_for_entry_check(self) -> str:
        return self._pick(frozenset())


class FerrumTransform:
    """Applies FERRUM (or the AS₁ subset) to assembly programs."""

    def __init__(self, config: FerrumConfig | None = None) -> None:
        self.config = config or FerrumConfig()

    # -- public API ----------------------------------------------------------

    def protect(self, program: AsmProgram) -> tuple[AsmProgram, FerrumStats]:
        """Return a protected deep copy of ``program`` plus statistics."""
        protected = program.copy()
        stats = FerrumStats()
        for func in protected.functions:
            stats.merge(self._protect_function(func))
        protected.metadata["protection"] = (
            "ferrum" if self.config.use_simd else "assembly-scalar"
        )
        return protected, stats

    # -- function-level driver ---------------------------------------------

    def _detect_label(self, func: AsmFunction) -> str:
        return f".L{func.name}__ferrum_detect"

    def _protect_function(self, func: AsmFunction) -> FerrumStats:
        stats = FerrumStats(functions=1, input_instructions=func.static_size())
        plan = build_register_plan(func, self.config)
        detect = self._detect_label(func)
        protector = CompareProtector(plan, detect)

        original_blocks = list(func.blocks)
        for index, block in enumerate(original_blocks):
            fallthrough = (
                original_blocks[index + 1].label
                if index + 1 < len(original_blocks) else None
            )
            self._protect_block(block, fallthrough, plan, protector, stats)

        if self.config.protect_compares:
            provider = _ScratchProvider(plan)
            for label in sorted(protector.pending_entry_checks):
                target = func.block(label)
                requisition = None
                if not plan.cmp_in_registers:
                    requisition = provider.requisition_for_entry_check()
                target.instructions[0:0] = protector.entry_check(requisition)
                stats.entry_checks += 1

        detect_block = func.add_block(detect)
        detect_block.append(ins("call", LabelRef(DETECT_FUNCTION),
                                origin="check"))
        detect_block.append(ins("retq", origin="check"))

        stats.compare_branches += protector.protected_branches
        stats.compare_setcc += protector.protected_setcc
        stats.output_instructions += func.static_size()
        return stats

    # -- block-level driver --------------------------------------------------

    def _protect_block(
        self,
        block: AsmBlock,
        fallthrough: str | None,
        plan: RegisterPlan,
        protector: CompareProtector,
        stats: FerrumStats,
    ) -> None:
        config = self.config
        detect = protector.detect_label
        annotations = classify_block(block.instructions)
        scratch = _ScratchProvider(plan)

        use_simd = config.use_simd and plan.simd_available
        batcher = SimdBatcher(plan, detect, config.simd_batch) if use_simd else None

        def flush() -> list[Instruction]:
            return batcher.flush() if batcher is not None else []

        def wrapped(root: str, requisitioned: bool,
                    body: list[Instruction]) -> list[Instruction]:
            if not requisitioned:
                return body
            stats.requisitioned_uses += 1
            return [_push(root), *body, _pop(root)]

        out: list[Instruction] = []
        instrs = block.instructions
        index = 0
        while index < len(instrs):
            instr = instrs[index]
            ann: Annotation = annotations[index]
            protection = ann.protection

            if instr.origin not in ("orig", "backend"):
                # Instrumentation emitted by an IR-level protection pass
                # (checks, signature updates): already redundant, never
                # re-duplicated. Keep the batch's flag discipline intact.
                # Backend-tagged instructions (spills/reloads/frame code,
                # see LoweringKnobs.tag_backend) are real program work and
                # are protected like untagged ones.
                if instr.kind in (InstrKind.CMP, InstrKind.TEST,
                                  InstrKind.JMP, InstrKind.RET,
                                  InstrKind.CALL, InstrKind.JCC):
                    out.extend(flush())
                out.append(instr)
                index += 1
                continue

            if protection is Protection.SIMD and batcher is not None:
                out.append(instr)
                if _is_direct_load(instr):
                    out.extend(batcher.capture(instr))
                else:
                    root, requisitioned = scratch.acquire_simd_scratch(instr)
                    batcher.scratch_requisitioned = root
                    out.extend(wrapped(root, requisitioned,
                                       batcher.capture(instr)))
                stats.simd_protected += 1

            elif protection in (Protection.SIMD, Protection.GENERAL):
                root, requisitioned = scratch.acquire_general(instr)
                pre, post = general_recipe(instr, root, detect)
                out.extend(wrapped(root, requisitioned,
                                   [*pre, instr, *post]))
                stats.general_protected += 1

            elif protection is Protection.CONVERT:
                root, requisitioned = scratch.acquire_general(instr)
                out.append(instr)
                out.extend(wrapped(root, requisitioned,
                                   convert_recipe(instr, root, detect)))
                stats.convert_protected += 1

            elif protection is Protection.POP:
                out.append(instr)
                out.extend(pop_recipe(instr, detect))
                stats.pop_protected += 1

            elif protection is Protection.IDIV:
                roots, requisitioned = scratch.acquire_many(4, instr)
                pre, post = idiv_recipe(instr, roots[:4], detect)
                body = [*pre, instr, *post]
                for req_root in reversed(requisitioned):
                    body = [_push(req_root), *body, _pop(req_root)]
                    stats.requisitioned_uses += 1
                out.extend(body)
                stats.idiv_protected += 1

            elif protection is Protection.COMPARE:
                out.extend(flush())  # vptest clobbers FLAGS: before the cmp
                jcc = instrs[index + 1]
                if config.protect_compares:
                    # Both control-flow successors of the protected branch
                    # need an entry check: the jcc target, plus either the
                    # following jmp's target (the backend's two-jump form)
                    # or the layout fall-through block.
                    successors = [jcc.target_label or ""]
                    follower = (instrs[index + 2]
                                if index + 2 < len(instrs) else None)
                    if follower is not None and follower.kind is InstrKind.JMP:
                        successors.append(follower.target_label or "")
                    elif follower is None:
                        if fallthrough is not None:
                            successors.append(fallthrough)
                    else:
                        raise TransformError(
                            "conditional branch is not at the end of its "
                            "basic block"
                        )
                    requisition = None
                    if not plan.cmp_in_registers:
                        requisition = scratch.requisition_for_compare(instr)
                    out.extend(protector.protect_branch_compare(
                        instr, jcc, tuple(successors), requisition
                    ))
                else:
                    out.append(instr)
                out.append(jcc)
                index += 2
                continue

            elif protection is Protection.COMPARE_SETCC:
                out.extend(flush())
                setcc = instrs[index + 1]
                if config.protect_compares:
                    root, requisitioned = scratch.acquire_general(instr)
                    sequence = protector.protect_setcc_pair(instr, setcc, root)
                    if requisitioned:
                        # The original pair stays outside the bracket; only
                        # the duplicate + check need the scratch register.
                        out.append(sequence[0])
                        out.append(sequence[1])
                        out.extend(wrapped(root, True, sequence[2:]))
                    else:
                        out.extend(sequence)
                else:
                    out.append(instr)
                    out.append(setcc)
                index += 2
                continue

            else:  # Protection.NONE
                if instr.kind in (InstrKind.JMP, InstrKind.RET,
                                  InstrKind.CALL, InstrKind.JCC):
                    out.extend(flush())
                out.append(instr)

            index += 1

        out.extend(flush())
        if batcher is not None:
            stats.simd_flushes += batcher.flushes
        block.instructions = out


def protect_program(
    program: AsmProgram, config: FerrumConfig | None = None
) -> tuple[AsmProgram, FerrumStats]:
    """Apply FERRUM to ``program``; returns (protected copy, stats)."""
    return FerrumTransform(config).protect(program)
