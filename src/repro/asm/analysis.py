"""Static register-usage analysis (Sec. III-B1 of the paper, step 1).

FERRUM's first phase scans the whole function and records which
general-purpose and SIMD registers the program ever touches; the complement
(minus reserved registers) is the spare set available for duplication.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.instructions import InstrKind
from repro.asm.liveness import instruction_defs, instruction_uses
from repro.asm.program import AsmBlock, AsmFunction, AsmProgram
from repro.asm.registers import GPR64, RESERVED_GPRS
from repro.utils.graph import innermost_headers

#: Preferred allocation order for spare GPRs: the "new" registers first, the
#: classic scratch registers last, callee-saved ones excluded (using them
#: would force save/restore code in every prologue).
SPARE_PREFERENCE: tuple[str, ...] = (
    "r10", "r11", "r12", "r13", "r14", "r15",
    "r8", "r9", "rcx", "rdx", "rsi", "rdi", "rax", "rbx",
)

_VECTOR_ROOTS: tuple[str, ...] = tuple(f"ymm{i}" for i in range(16))


@dataclass(frozen=True)
class RegisterUsage:
    """Which register roots a function uses, split by class."""

    gprs: frozenset[str]
    vectors: frozenset[str]

    @property
    def spare_gprs(self) -> tuple[str, ...]:
        """Unused, non-reserved GPR roots in preference order."""
        return tuple(
            root
            for root in SPARE_PREFERENCE
            if root not in self.gprs and root not in RESERVED_GPRS
        )

    @property
    def spare_vectors(self) -> tuple[str, ...]:
        """Unused vector roots (``ymmN`` names) in index order."""
        return tuple(root for root in _VECTOR_ROOTS if root not in self.vectors)


def scan_register_usage(func: AsmFunction) -> RegisterUsage:
    """Scan every instruction and collect touched register roots.

    Calls are *not* treated as using every caller-saved register here: this
    scan asks "which registers does this code's own text mention", which is
    the correct question for spare-register discovery because protection
    values never live across a call (batches flush at sync points).
    """
    gprs: set[str] = set()
    vectors: set[str] = set()
    for instr in func.instructions():
        if instr.kind is InstrKind.CALL:
            continue
        roots = set(instruction_uses(instr)) | set(instruction_defs(instr))
        for root in roots:
            if root in GPR64:
                gprs.add(root)
            elif root.startswith("ymm"):
                vectors.add(root)
    return RegisterUsage(frozenset(gprs), frozenset(vectors))


def loop_regions(func: AsmFunction) -> dict[str, str]:
    """Map each block label to its section-region key.

    Region keys are ``"<function>"`` for blocks outside any loop and
    ``"<function>@<header-label>"`` for blocks whose innermost natural loop
    is headed by ``<header-label>``. These are the boundaries compositional
    campaigns section the dynamic trace at (functions and loop nests —
    FastFlip's granularity), derived from the same CFG the transforms use.
    """
    succs = {blk.label: func.successors(blk) for blk in func.blocks}
    headers = innermost_headers(
        func.entry.label, [blk.label for blk in func.blocks], succs
    )
    return {
        label: func.name if header is None else f"{func.name}@{header}"
        for label, header in headers.items()
    }


def instruction_regions(program: AsmProgram) -> dict[int, str]:
    """Map every instruction uid to its region key (see :func:`loop_regions`)."""
    regions: dict[int, str] = {}
    for func in program.functions:
        by_label = loop_regions(func)
        for blk in func.blocks:
            region = by_label[blk.label]
            for instr in blk.instructions:
                regions[instr.uid] = region
    return regions


def region_function(region: str) -> str:
    """The function name a region key belongs to."""
    return region.split("@", 1)[0]


def roots_touched_in_block(block: AsmBlock) -> frozenset[str]:
    """GPR roots that a single block's own instructions mention.

    Used by stack-level redundancy (paper Fig. 7) to find registers that are
    safe to requisition with push/pop inside one block.
    """
    roots: set[str] = set()
    for instr in block.instructions:
        if instr.kind is InstrKind.CALL:
            roots.update(GPR64)  # a call may clobber anything caller-saved
            continue
        for root in instruction_uses(instr) | instruction_defs(instr):
            if root in GPR64:
                roots.add(root)
    return frozenset(roots)


def requisition_candidates(block: AsmBlock) -> tuple[str, ...]:
    """GPR roots that can be temporarily freed inside ``block`` (Fig. 7).

    A candidate is any non-reserved GPR the block itself never touches; its
    caller-visible value is preserved by push/pop bracketing, so liveness
    outside the block is irrelevant.
    """
    touched = roots_touched_in_block(block)
    return tuple(
        root
        for root in SPARE_PREFERENCE
        if root not in touched and root not in RESERVED_GPRS
    )
