"""Register liveness analysis over assembly CFGs.

Works at register-*root* granularity (``eax`` and ``rax`` are one node), the
granularity the protection transforms reason at: a spare register must be
dead as a whole 64-bit (or 256-bit) entity.

Calls are modeled with the SysV convention: a call reads the argument
registers and clobbers the caller-saved set. This is conservative for the
-O0 backend (which passes at most six integer arguments) and keeps the
analysis intraprocedural.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.instructions import Instruction, InstrKind
from repro.asm.program import AsmBlock, AsmFunction
from repro.asm.registers import ARG_GPRS, CALLEE_SAVED, GPR64

#: Caller-saved GPR roots (clobbered by a call under SysV).
CALLER_SAVED: frozenset[str] = frozenset(
    root for root in GPR64 if root not in CALLEE_SAVED and root != "rsp"
)

#: Vector roots are all caller-saved under SysV.
CALLER_SAVED_VECTORS: frozenset[str] = frozenset(f"ymm{i}" for i in range(16))

#: Registers read by a ``retq`` (the integer return value).
RETURN_ROOTS: frozenset[str] = frozenset({"rax", "rsp"})


def instruction_uses(instr: Instruction) -> frozenset[str]:
    """Register roots read by ``instr`` (including implicit call/ret reads)."""
    if instr.kind is InstrKind.CALL:
        # Conservative: assume all argument registers may carry arguments.
        return frozenset(ARG_GPRS) | {"rsp"}
    if instr.kind is InstrKind.RET:
        return RETURN_ROOTS
    uses = {reg.root for reg in instr.read_registers()}
    if instr.kind in (InstrKind.PUSH, InstrKind.POP):
        uses.add("rsp")
    return frozenset(uses)


def instruction_defs(instr: Instruction) -> frozenset[str]:
    """Register roots written by ``instr`` (including call clobbers)."""
    if instr.kind is InstrKind.CALL:
        return CALLER_SAVED | CALLER_SAVED_VECTORS | {"rsp"}
    defs = {reg.root for reg in instr.dest_registers() if reg.root != "rflags"}
    if instr.kind in (InstrKind.PUSH, InstrKind.POP):
        defs.add("rsp")
    return frozenset(defs)


@dataclass
class LivenessResult:
    """Per-block live-in/live-out sets of register roots."""

    live_in: dict[str, frozenset[str]] = field(default_factory=dict)
    live_out: dict[str, frozenset[str]] = field(default_factory=dict)

    def live_at_entry(self, label: str) -> frozenset[str]:
        return self.live_in.get(label, frozenset())

    def live_at_exit(self, label: str) -> frozenset[str]:
        return self.live_out.get(label, frozenset())


def _block_use_def(block: AsmBlock) -> tuple[frozenset[str], frozenset[str]]:
    """(upward-exposed uses, defs) for a basic block."""
    uses: set[str] = set()
    defs: set[str] = set()
    for instr in block.instructions:
        for root in instruction_uses(instr):
            if root not in defs:
                uses.add(root)
        defs.update(instruction_defs(instr))
    return frozenset(uses), frozenset(defs)


def compute_liveness(func: AsmFunction) -> LivenessResult:
    """Classic backward may-liveness to a fixpoint over the function CFG."""
    use_def = {blk.label: _block_use_def(blk) for blk in func.blocks}
    live_in: dict[str, frozenset[str]] = {blk.label: frozenset() for blk in func.blocks}
    live_out: dict[str, frozenset[str]] = {blk.label: frozenset() for blk in func.blocks}
    order = list(reversed(func.blocks))

    changed = True
    while changed:
        changed = False
        for blk in order:
            out: set[str] = set()
            for succ in func.successors(blk):
                out.update(live_in.get(succ, frozenset()))
            uses, defs = use_def[blk.label]
            new_in = uses | (frozenset(out) - defs)
            if frozenset(out) != live_out[blk.label] or new_in != live_in[blk.label]:
                live_out[blk.label] = frozenset(out)
                live_in[blk.label] = new_in
                changed = True
    return LivenessResult(live_in, live_out)


def live_before_each(
    block: AsmBlock, live_out: frozenset[str]
) -> list[frozenset[str]]:
    """Live sets immediately *before* each instruction of ``block``.

    Computed by walking backwards from ``live_out``; index ``i`` of the
    result corresponds to ``block.instructions[i]``.
    """
    result: list[frozenset[str]] = [frozenset()] * len(block.instructions)
    live = set(live_out)
    for i in range(len(block.instructions) - 1, -1, -1):
        instr = block.instructions[i]
        live -= instruction_defs(instr)
        live |= instruction_uses(instr)
        result[i] = frozenset(live)
    return result
