"""Register liveness analysis over assembly CFGs.

Works at register-*root* granularity (``eax`` and ``rax`` are one node), the
granularity the protection transforms reason at: a spare register must be
dead as a whole 64-bit (or 256-bit) entity.

Calls are modeled with the SysV convention: a call reads the argument
registers and clobbers the caller-saved set. This is conservative for the
-O0 backend (which passes at most six integer arguments) and keeps the
analysis intraprocedural.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.instructions import Instruction, InstrKind
from repro.asm.operands import Imm
from repro.asm.program import AsmBlock, AsmFunction
from repro.asm.registers import ARG_GPRS, CALLEE_SAVED, GPR64
from repro.machine.flags import CF_BIT, OF_BIT, PF_BIT, SF_BIT, ZF_BIT

#: Caller-saved GPR roots (clobbered by a call under SysV).
CALLER_SAVED: frozenset[str] = frozenset(
    root for root in GPR64 if root not in CALLEE_SAVED and root != "rsp"
)

#: Vector roots are all caller-saved under SysV.
CALLER_SAVED_VECTORS: frozenset[str] = frozenset(f"ymm{i}" for i in range(16))

#: Registers read by a ``retq`` (the integer return value).
RETURN_ROOTS: frozenset[str] = frozenset({"rax", "rsp"})


def instruction_uses(instr: Instruction) -> frozenset[str]:
    """Register roots read by ``instr`` (including implicit call/ret reads)."""
    if instr.kind is InstrKind.CALL:
        # Conservative: assume all argument registers may carry arguments.
        return frozenset(ARG_GPRS) | {"rsp"}
    if instr.kind is InstrKind.RET:
        return RETURN_ROOTS
    uses = {reg.root for reg in instr.read_registers()}
    if instr.kind in (InstrKind.PUSH, InstrKind.POP):
        uses.add("rsp")
    return frozenset(uses)


def instruction_defs(instr: Instruction) -> frozenset[str]:
    """Register roots written by ``instr`` (including call clobbers)."""
    if instr.kind is InstrKind.CALL:
        return CALLER_SAVED | CALLER_SAVED_VECTORS | {"rsp"}
    defs = {reg.root for reg in instr.dest_registers() if reg.root != "rflags"}
    if instr.kind in (InstrKind.PUSH, InstrKind.POP):
        defs.add("rsp")
    return frozenset(defs)


#: The five modeled RFLAGS bits, as a bit-set over RFLAGS positions.
ALL_FLAG_BITS: frozenset[int] = frozenset(
    (CF_BIT, PF_BIT, ZF_BIT, SF_BIT, OF_BIT)
)

#: Condition code -> RFLAGS bits consumed (:func:`condition_holds`). PF is
#: never consumed by any modeled condition, so a PF fault is observable only
#: through a later full-flags read (call/ret, conservatively).
CC_READS: dict[str, frozenset[int]] = {
    "e": frozenset({ZF_BIT}),
    "ne": frozenset({ZF_BIT}),
    "l": frozenset({SF_BIT, OF_BIT}),
    "ge": frozenset({SF_BIT, OF_BIT}),
    "le": frozenset({ZF_BIT, SF_BIT, OF_BIT}),
    "g": frozenset({ZF_BIT, SF_BIT, OF_BIT}),
    "b": frozenset({CF_BIT}),
    "ae": frozenset({CF_BIT}),
    "be": frozenset({CF_BIT, ZF_BIT}),
    "a": frozenset({CF_BIT, ZF_BIT}),
    "s": frozenset({SF_BIT}),
    "ns": frozenset({SF_BIT}),
}

_NO_BITS: frozenset[int] = frozenset()
_NON_CF_BITS: frozenset[int] = ALL_FLAG_BITS - {CF_BIT}

#: Instruction kinds that deterministically write all five flags.
_FULL_FLAG_WRITERS = (
    InstrKind.ALU, InstrKind.CMP, InstrKind.TEST, InstrKind.VECTEST,
)


def _shift_count(instr: Instruction) -> int | None:
    """Static shift count, or ``None`` when it comes from ``%cl``."""
    src = instr.operands[0]
    if isinstance(src, Imm):
        return src.value & (63 if instr.spec.width == 64 else 31)
    return None


def flag_bits_read(instr: Instruction) -> frozenset[int]:
    """RFLAGS bits ``instr`` consumes.

    ``jcc``/``setcc`` read their condition's bits; ``inc``/``dec`` read CF
    (they must preserve it through the read-modify-write of RFLAGS).
    ``call``/``ret`` conservatively read every bit — flags could in
    principle be consumed after the control transfer, and keeping that
    assumption makes the analysis safely intraprocedural.
    """
    kind = instr.kind
    if kind in (InstrKind.JCC, InstrKind.SETCC):
        return CC_READS[instr.spec.cc or ""]
    if kind is InstrKind.UNARY and instr.mnemonic[:3] in ("inc", "dec"):
        return frozenset({CF_BIT})
    if kind in (InstrKind.CALL, InstrKind.RET):
        return ALL_FLAG_BITS
    return _NO_BITS


def flag_bits_written(instr: Instruction) -> frozenset[int]:
    """RFLAGS bits ``instr`` *always* overwrites (must-def, not may-def).

    Conditional writers are reported as writing nothing: an ``rcx``-count
    shift leaves flags untouched when the dynamic count is zero, so it can
    never justify eliding an earlier flag computation. Immediate-count
    shifts are decided statically.
    """
    kind = instr.kind
    if kind in _FULL_FLAG_WRITERS:
        return ALL_FLAG_BITS
    if kind is InstrKind.SHIFT:
        count = _shift_count(instr)
        return ALL_FLAG_BITS if count else _NO_BITS
    if kind is InstrKind.UNARY:
        op = instr.mnemonic[:3]
        if op == "neg":
            return ALL_FLAG_BITS
        if op in ("inc", "dec"):
            return _NON_CF_BITS
        return _NO_BITS  # not: flags untouched
    return _NO_BITS


def instruction_uses_with_flags(instr: Instruction) -> frozenset[str]:
    """:func:`instruction_uses` extended with an ``rflags`` pseudo-root."""
    uses = instruction_uses(instr)
    if flag_bits_read(instr):
        return uses | {"rflags"}
    return uses


def instruction_defs_with_flags(instr: Instruction) -> frozenset[str]:
    """:func:`instruction_defs` extended with an ``rflags`` pseudo-root.

    ``rflags`` is reported as defined only when the instruction overwrites
    *all five* modeled bits — partial writers (``inc``/``dec``) cannot kill
    the root as a whole.
    """
    defs = instruction_defs(instr)
    if flag_bits_written(instr) == ALL_FLAG_BITS:
        return defs | {"rflags"}
    return defs


@dataclass
class LivenessResult:
    """Per-block live-in/live-out sets of register roots."""

    live_in: dict[str, frozenset[str]] = field(default_factory=dict)
    live_out: dict[str, frozenset[str]] = field(default_factory=dict)

    def live_at_entry(self, label: str) -> frozenset[str]:
        return self.live_in.get(label, frozenset())

    def live_at_exit(self, label: str) -> frozenset[str]:
        return self.live_out.get(label, frozenset())


def _block_use_def(block: AsmBlock) -> tuple[frozenset[str], frozenset[str]]:
    """(upward-exposed uses, defs) for a basic block."""
    uses: set[str] = set()
    defs: set[str] = set()
    for instr in block.instructions:
        for root in instruction_uses(instr):
            if root not in defs:
                uses.add(root)
        defs.update(instruction_defs(instr))
    return frozenset(uses), frozenset(defs)


def compute_liveness(func: AsmFunction) -> LivenessResult:
    """Classic backward may-liveness to a fixpoint over the function CFG."""
    use_def = {blk.label: _block_use_def(blk) for blk in func.blocks}
    live_in: dict[str, frozenset[str]] = {blk.label: frozenset() for blk in func.blocks}
    live_out: dict[str, frozenset[str]] = {blk.label: frozenset() for blk in func.blocks}
    order = list(reversed(func.blocks))

    changed = True
    while changed:
        changed = False
        for blk in order:
            out: set[str] = set()
            for succ in func.successors(blk):
                out.update(live_in.get(succ, frozenset()))
            uses, defs = use_def[blk.label]
            new_in = uses | (frozenset(out) - defs)
            if frozenset(out) != live_out[blk.label] or new_in != live_in[blk.label]:
                live_out[blk.label] = frozenset(out)
                live_in[blk.label] = new_in
                changed = True
    return LivenessResult(live_in, live_out)


def live_before_each(
    block: AsmBlock, live_out: frozenset[str]
) -> list[frozenset[str]]:
    """Live sets immediately *before* each instruction of ``block``.

    Computed by walking backwards from ``live_out``; index ``i`` of the
    result corresponds to ``block.instructions[i]``.
    """
    result: list[frozenset[str]] = [frozenset()] * len(block.instructions)
    live = set(live_out)
    for i in range(len(block.instructions) - 1, -1, -1):
        instr = block.instructions[i]
        live -= instruction_defs(instr)
        live |= instruction_uses(instr)
        result[i] = frozenset(live)
    return result
