"""Program-level assembly containers: blocks, functions, programs, CFG.

A function is an ordered list of labeled basic blocks; control transfers via
explicit terminators (``jmp``/``j<cc>``/``retq``) or by falling through to
the next block in order, matching how the backend lays code out. The CFG is
derived, never stored, so transforms can freely rewrite instruction lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.asm.instructions import Instruction, InstrKind
from repro.errors import AsmError


@dataclass
class AsmBlock:
    """A labeled basic block: straight-line code ending at a terminator.

    Non-terminator branches (``call``) may appear mid-block. The block label
    doubles as the CFG node identity within its function.
    """

    label: str
    instructions: list[Instruction] = field(default_factory=list)

    def append(self, instr: Instruction) -> None:
        self.instructions.append(instr)

    def extend(self, instrs: Iterable[Instruction]) -> None:
        self.instructions.extend(instrs)

    @property
    def terminator(self) -> Instruction | None:
        """The trailing terminator instruction, if the block has one."""
        if self.instructions and self.instructions[-1].kind.is_terminator:
            return self.instructions[-1]
        return None

    def body_and_terminator(self) -> tuple[list[Instruction], Instruction | None]:
        """Split into (non-terminator prefix, terminator-or-None)."""
        term = self.terminator
        if term is None:
            return list(self.instructions), None
        return list(self.instructions[:-1]), term

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class AsmFunction:
    """An assembly function: ordered basic blocks, entry first."""

    name: str
    blocks: list[AsmBlock] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.blocks:
            self.blocks = [AsmBlock(self.name)]

    @property
    def entry(self) -> AsmBlock:
        return self.blocks[0]

    def block(self, label: str) -> AsmBlock:
        """Look up a block by label; raises AsmError when absent."""
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise AsmError(f"no block {label!r} in function {self.name}")

    def has_block(self, label: str) -> bool:
        return any(blk.label == label for blk in self.blocks)

    def add_block(self, label: str) -> AsmBlock:
        """Append a fresh empty block and return it."""
        if self.has_block(label):
            raise AsmError(f"duplicate block label {label!r} in {self.name}")
        blk = AsmBlock(label)
        self.blocks.append(blk)
        return blk

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in layout order."""
        for blk in self.blocks:
            yield from blk.instructions

    def static_size(self) -> int:
        """Static instruction count (the paper's Sec. IV-B3 size metric)."""
        return sum(len(blk) for blk in self.blocks)

    # -- CFG -----------------------------------------------------------------

    def successors(self, block: AsmBlock) -> list[str]:
        """Labels of CFG successor blocks of ``block``.

        The backend lowers a two-way branch either as a trailing ``j<cc>``
        (taken target plus layout fallthrough) or as a ``j<cc>``/``jmp``
        pair when neither arm is the next block in layout — so conditional
        jumps *before* the terminator contribute edges too.
        """
        term = block.terminator
        idx = self.blocks.index(block)
        fallthrough = (
            self.blocks[idx + 1].label if idx + 1 < len(self.blocks) else None
        )
        succs: list[str] = []

        def add(label: str | None) -> None:
            if label is not None and label not in succs:
                succs.append(label)

        body = block.instructions[:-1] if term is not None \
            else block.instructions
        for instr in body:
            if instr.kind is InstrKind.JCC:
                add(instr.target_label)
        if term is None:
            add(fallthrough)
        elif term.kind is InstrKind.RET:
            pass
        elif term.kind is InstrKind.JMP:
            add(term.target_label)
        else:
            # Trailing conditional branch: taken target plus fallthrough.
            add(term.target_label)
            add(fallthrough)
        return succs

    def predecessors(self) -> dict[str, list[str]]:
        """Map block label -> labels of predecessor blocks."""
        preds: dict[str, list[str]] = {blk.label: [] for blk in self.blocks}
        for blk in self.blocks:
            for succ in self.successors(blk):
                if succ in preds:
                    preds[succ].append(blk.label)
        return preds

    def branch_targets(self) -> set[str]:
        """Every label referenced by a jump inside this function."""
        targets = set()
        for instr in self.instructions():
            if instr.kind in (InstrKind.JMP, InstrKind.JCC):
                label = instr.target_label
                if label is not None:
                    targets.add(label)
        return targets


@dataclass
class AsmProgram:
    """A whole program: ordered functions plus optional provenance metadata.

    ``metadata`` carries free-form tags such as which protection transform
    produced the program; nothing in execution depends on it.
    """

    functions: list[AsmFunction] = field(default_factory=list)
    metadata: dict[str, str] = field(default_factory=dict)

    def function(self, name: str) -> AsmFunction:
        for func in self.functions:
            if func.name == name:
                return func
        raise AsmError(f"no function {name!r} in program")

    def has_function(self, name: str) -> bool:
        return any(func.name == name for func in self.functions)

    def add_function(self, func: AsmFunction) -> AsmFunction:
        if self.has_function(func.name):
            raise AsmError(f"duplicate function {func.name!r}")
        self.functions.append(func)
        return func

    def function_names(self) -> list[str]:
        return [func.name for func in self.functions]

    def static_size(self) -> int:
        """Total static instruction count across all functions."""
        return sum(func.static_size() for func in self.functions)

    def instructions(self) -> Iterator[Instruction]:
        for func in self.functions:
            yield from func.instructions()

    def copy(self) -> "AsmProgram":
        """Deep copy with fresh instruction objects (new uids)."""
        prog = AsmProgram(metadata=dict(self.metadata))
        for func in self.functions:
            new_func = AsmFunction(func.name, [
                AsmBlock(blk.label, [instr.copy() for instr in blk.instructions])
                for blk in func.blocks
            ])
            prog.add_function(new_func)
        return prog


def validate_program(program: AsmProgram) -> None:
    """Check structural invariants; raises :class:`AsmError` on violation.

    * block labels unique within each function,
    * every jump target resolves to a block in the same function,
    * every call target resolves to a program function or a known builtin.
    """
    from repro.machine.builtins import is_builtin  # local import: layering

    for func in program.functions:
        seen: set[str] = set()
        for blk in func.blocks:
            if blk.label in seen:
                raise AsmError(f"duplicate label {blk.label!r} in {func.name}")
            seen.add(blk.label)
        for blk in func.blocks:
            for instr in blk.instructions:
                if instr.kind in (InstrKind.JMP, InstrKind.JCC):
                    target = instr.target_label
                    if target is None or target not in seen:
                        raise AsmError(
                            f"{func.name}: jump to unknown label {target!r}"
                        )
                elif instr.kind is InstrKind.CALL:
                    target = instr.target_label
                    if target is None:
                        raise AsmError(f"{func.name}: indirect call unsupported")
                    if not program.has_function(target) and not is_builtin(target):
                        raise AsmError(
                            f"{func.name}: call to unknown function {target!r}"
                        )
