"""AT&T-syntax text rendering of the assembly model.

The printer and :mod:`repro.asm.parser` form a round-trip pair:
``parse_program(format_program(p))`` reproduces ``p`` up to instruction
uids. Property tests pin this invariant.
"""

from __future__ import annotations

from repro.asm.instructions import Instruction
from repro.asm.program import AsmBlock, AsmFunction, AsmProgram


def format_instruction(instr: Instruction) -> str:
    """Render one instruction (no indentation, optional trailing comment)."""
    text = instr.mnemonic
    if instr.operands:
        text += " " + ", ".join(str(op) for op in instr.operands)
    if instr.comment:
        text += f"  # {instr.comment}"
    return text


def format_block(block: AsmBlock) -> str:
    lines = [f"{block.label}:"]
    lines.extend(f"\t{format_instruction(instr)}" for instr in block.instructions)
    return "\n".join(lines)


def format_function(func: AsmFunction) -> str:
    lines = [f"\t.globl {func.name}"]
    lines.extend(format_block(blk) for blk in func.blocks)
    return "\n".join(lines)


def format_program(program: AsmProgram) -> str:
    """Render a whole program as AT&T assembly text."""
    parts = ["\t.text"]
    parts.extend(format_function(func) for func in program.functions)
    return "\n".join(parts) + "\n"
