"""AT&T-syntax assembly text parser (inverse of :mod:`repro.asm.printer`).

Accepts the dialect the printer emits plus common cosmetic variation:
flexible whitespace, ``#`` comments, blank lines. Functions are introduced
by a ``.globl name`` directive followed by the matching label; any other
label opens a new basic block of the current function.
"""

from __future__ import annotations

import re

from repro.asm.instructions import Instruction
from repro.asm.operands import Imm, LabelRef, Mem, Operand, Reg
from repro.asm.program import AsmBlock, AsmFunction, AsmProgram
from repro.asm.registers import get_register, is_register_name
from repro.errors import AsmParseError

_LABEL_RE = re.compile(r"^([.\w$@]+):$")
_MEM_RE = re.compile(r"^(-?\d*)\(([^)]*)\)$")
_INT_RE = re.compile(r"^-?\d+$")


def parse_operand(text: str, line: int = 0) -> Operand:
    """Parse one operand in AT&T syntax.

    >>> parse_operand("$5")
    Imm(value=5)
    >>> parse_operand("-8(%rbp)").disp
    -8
    """
    text = text.strip()
    if not text:
        raise AsmParseError("empty operand", line)
    if text.startswith("$"):
        body = text[1:]
        if not _INT_RE.match(body):
            raise AsmParseError(f"bad immediate {text!r}", line)
        return Imm(int(body))
    if text.startswith("%"):
        return Reg(get_register(text))
    match = _MEM_RE.match(text)
    if match:
        disp = int(match.group(1)) if match.group(1) not in ("", "-") else 0
        parts = [p.strip() for p in match.group(2).split(",")]
        base = None
        index = None
        scale = 1
        if parts and parts[0]:
            base = get_register(parts[0])
        if len(parts) >= 2 and parts[1]:
            index = get_register(parts[1])
        if len(parts) >= 3 and parts[2]:
            if not _INT_RE.match(parts[2]):
                raise AsmParseError(f"bad scale in {text!r}", line)
            scale = int(parts[2])
        return Mem(disp=disp, base=base, index=index, scale=scale)
    if _INT_RE.match(text):
        # Absolute memory reference: bare displacement.
        return Mem(disp=int(text))
    if is_register_name(text):
        raise AsmParseError(f"register {text!r} missing % sigil", line)
    return LabelRef(text)


def _split_operands(text: str) -> list[str]:
    """Split an operand list on top-level commas (parens protect commas)."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


def parse_instruction(text: str, line: int = 0) -> Instruction:
    """Parse one instruction line (without label), e.g. ``movq %rax, %rbx``."""
    comment = None
    if "#" in text:
        text, comment = text.split("#", 1)
        comment = comment.strip() or None
    text = text.strip()
    if not text:
        raise AsmParseError("empty instruction", line)
    fields = text.split(None, 1)
    mnemonic = fields[0]
    operand_text = fields[1] if len(fields) > 1 else ""
    operands = tuple(
        parse_operand(part, line) for part in _split_operands(operand_text)
    )
    try:
        return Instruction(mnemonic, operands, comment=comment)
    except Exception as exc:  # re-tag with line info
        raise AsmParseError(str(exc), line) from exc


def parse_program(text: str) -> AsmProgram:
    """Parse a full program in the printer's dialect."""
    program = AsmProgram()
    pending_globl: str | None = None
    func: AsmFunction | None = None
    block: AsmBlock | None = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip() if raw.lstrip().startswith(".") else raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("."):
            directive = line.split()
            if directive[0] == ".globl":
                if len(directive) != 2:
                    raise AsmParseError(".globl needs a name", lineno)
                pending_globl = directive[1]
                continue
            if directive[0] in (".text", ".data", ".align", ".section"):
                continue
            # Labels may also start with '.', e.g. .LBB0_1 — fall through.
        match = _LABEL_RE.match(line)
        if match:
            label = match.group(1)
            if pending_globl is not None:
                if label != pending_globl:
                    raise AsmParseError(
                        f"label {label!r} does not match .globl {pending_globl!r}",
                        lineno,
                    )
                func = AsmFunction(label, [AsmBlock(label)])
                program.add_function(func)
                block = func.blocks[0]
                pending_globl = None
            else:
                if func is None:
                    raise AsmParseError(f"label {label!r} outside a function", lineno)
                block = func.add_block(label)
            continue
        if func is None or block is None:
            raise AsmParseError(f"instruction outside a function: {line!r}", lineno)
        block.append(parse_instruction(raw, lineno))
    if pending_globl is not None:
        raise AsmParseError(f".globl {pending_globl!r} without body", 0)
    return program
