"""Assembly operand model (AT&T syntax).

Four operand shapes cover the emitted ISA subset:

* :class:`Imm` — ``$42`` immediates.
* :class:`Reg` — ``%rax`` register references.
* :class:`Mem` — ``disp(%base,%index,scale)`` effective addresses.
* :class:`LabelRef` — jump/call targets such as ``.LBB0_3`` or ``printf``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.asm.registers import Register


@dataclass(frozen=True)
class Imm:
    """An immediate operand: ``$value``."""

    value: int

    def __str__(self) -> str:
        return f"${self.value}"


@dataclass(frozen=True)
class Reg:
    """A register operand: ``%name``."""

    register: Register

    def __str__(self) -> str:
        return str(self.register)

    @property
    def name(self) -> str:
        return self.register.name

    @property
    def root(self) -> str:
        return self.register.root

    @property
    def width(self) -> int:
        return self.register.width


@dataclass(frozen=True)
class Mem:
    """A memory operand: ``disp(%base,%index,scale)``.

    Any of ``base``/``index`` may be absent; ``scale`` is 1, 2, 4 or 8.
    """

    disp: int = 0
    base: Register | None = None
    index: Register | None = None
    scale: int = 1

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid scale {self.scale}")
        if self.index is None and self.scale != 1:
            # Without an index the scale is meaningless; normalize so that
            # structural equality matches addressing equality.
            object.__setattr__(self, "scale", 1)

    def __str__(self) -> str:
        disp = str(self.disp) if self.disp else ""
        if self.base is None and self.index is None:
            return f"{self.disp}"
        inner = str(self.base) if self.base is not None else ""
        if self.index is not None:
            inner += f",{self.index},{self.scale}"
        return f"{disp}({inner})"

    def registers(self) -> tuple[Register, ...]:
        """The registers read to form the effective address."""
        regs = []
        if self.base is not None:
            regs.append(self.base)
        if self.index is not None:
            regs.append(self.index)
        return tuple(regs)


@dataclass(frozen=True)
class LabelRef:
    """A symbolic code reference: a branch target or callee name."""

    name: str

    def __str__(self) -> str:
        return self.name


Operand = Union[Imm, Reg, Mem, LabelRef]
