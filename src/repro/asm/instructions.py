"""Instruction model and per-mnemonic metadata.

Each :class:`Instruction` is a mnemonic plus operand list in AT&T order
(sources first, destination last). A static :class:`InstrSpec` table supplies
everything the analyses need without switching on strings at every call
site: operation width, destination position, flag behaviour, condition
codes, and a coarse kind used by the machine semantics, the timing model and
the protection transforms.

The modeled subset is exactly what the -O0 backend and the three protection
transforms emit; :func:`get_spec` raises on anything else so typos surface
at construction time rather than at simulation time.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable

from repro.asm.operands import LabelRef, Mem, Operand, Reg
from repro.asm.registers import FLAGS, Register, get_register
from repro.errors import AsmError


class InstrKind(enum.Enum):
    """Coarse semantic class of a mnemonic."""

    MOV = "mov"          # register/memory data movement
    MOVEXT = "movext"    # widening moves (movslq, movzbl, ...)
    LEA = "lea"
    ALU = "alu"          # add/sub/imul/and/or/xor
    SHIFT = "shift"
    UNARY = "unary"      # neg/not/inc/dec
    CMP = "cmp"
    TEST = "test"
    SETCC = "setcc"
    JMP = "jmp"
    JCC = "jcc"
    CALL = "call"
    RET = "ret"
    PUSH = "push"
    POP = "pop"
    CONVERT = "convert"  # cltq/cltd/cqto
    IDIV = "idiv"
    VECMOV = "vecmov"    # movq / pinsrq involving xmm
    VECINSERT = "vecinsert"  # vinserti128
    VECALU = "vecalu"    # vpxor
    VECTEST = "vectest"  # vptest
    NOP = "nop"

    @property
    def is_terminator(self) -> bool:
        return self in (InstrKind.JMP, InstrKind.JCC, InstrKind.RET)

    @property
    def is_branch(self) -> bool:
        return self in (InstrKind.JMP, InstrKind.JCC, InstrKind.CALL, InstrKind.RET)

    @property
    def is_vector(self) -> bool:
        return self in (
            InstrKind.VECMOV,
            InstrKind.VECINSERT,
            InstrKind.VECALU,
            InstrKind.VECTEST,
        )


#: Condition codes supported by ``set<cc>``/``j<cc>``.
CONDITION_CODES: tuple[str, ...] = (
    "e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae", "s", "ns",
)

#: cc -> cc for the inverted condition.
INVERTED_CC: dict[str, str] = {
    "e": "ne", "ne": "e", "l": "ge", "ge": "l", "le": "g", "g": "le",
    "b": "ae", "ae": "b", "be": "a", "a": "be", "s": "ns", "ns": "s",
}

_SUFFIX_WIDTH = {"b": 8, "w": 16, "l": 32, "q": 64}


@dataclass(frozen=True)
class InstrSpec:
    """Static metadata for one mnemonic."""

    mnemonic: str
    kind: InstrKind
    width: int                 # operation width in bits; 0 when irrelevant
    n_operands: int
    has_dest: bool             # last operand is an architectural destination
    writes_flags: bool = False
    reads_flags: bool = False
    cc: str | None = None      # condition code for j<cc>/set<cc>
    src_width: int = 0         # source width for widening moves


def _specs() -> dict[str, InstrSpec]:
    table: dict[str, InstrSpec] = {}

    def add(spec: InstrSpec) -> None:
        if spec.mnemonic in table:
            raise AsmError(f"duplicate spec for {spec.mnemonic}")
        table[spec.mnemonic] = spec

    for suffix, width in _SUFFIX_WIDTH.items():
        add(InstrSpec(f"mov{suffix}", InstrKind.MOV, width, 2, True))
        add(InstrSpec(f"cmp{suffix}", InstrKind.CMP, width, 2, False, writes_flags=True))
        add(InstrSpec(f"test{suffix}", InstrKind.TEST, width, 2, False, writes_flags=True))
        for op in ("add", "sub", "and", "or", "xor"):
            add(InstrSpec(f"{op}{suffix}", InstrKind.ALU, width, 2, True, writes_flags=True))

    for suffix in ("l", "q"):
        width = _SUFFIX_WIDTH[suffix]
        add(InstrSpec(f"imul{suffix}", InstrKind.ALU, width, 2, True, writes_flags=True))
        for op in ("shl", "sar", "shr"):
            add(InstrSpec(f"{op}{suffix}", InstrKind.SHIFT, width, 2, True, writes_flags=True))
        for op in ("neg", "not", "inc", "dec"):
            add(InstrSpec(f"{op}{suffix}", InstrKind.UNARY, width, 1, True,
                          writes_flags=(op != "not")))
        add(InstrSpec(f"idiv{suffix}", InstrKind.IDIV, width, 1, False, writes_flags=True))

    # Widening moves: mnemonic encodes source and destination widths.
    add(InstrSpec("movslq", InstrKind.MOVEXT, 64, 2, True, src_width=32))
    add(InstrSpec("movsbl", InstrKind.MOVEXT, 32, 2, True, src_width=8))
    add(InstrSpec("movsbq", InstrKind.MOVEXT, 64, 2, True, src_width=8))
    add(InstrSpec("movzbl", InstrKind.MOVEXT, 32, 2, True, src_width=8))
    add(InstrSpec("movzbq", InstrKind.MOVEXT, 64, 2, True, src_width=8))
    add(InstrSpec("movzwl", InstrKind.MOVEXT, 32, 2, True, src_width=16))

    add(InstrSpec("leaq", InstrKind.LEA, 64, 2, True))

    add(InstrSpec("pushq", InstrKind.PUSH, 64, 1, False))
    add(InstrSpec("popq", InstrKind.POP, 64, 1, True))

    add(InstrSpec("cltq", InstrKind.CONVERT, 64, 0, False))   # rax = sx(eax)
    add(InstrSpec("cltd", InstrKind.CONVERT, 32, 0, False))   # edx:eax = sx(eax)
    add(InstrSpec("cqto", InstrKind.CONVERT, 64, 0, False))   # rdx:rax = sx(rax)

    add(InstrSpec("jmp", InstrKind.JMP, 0, 1, False))
    add(InstrSpec("call", InstrKind.CALL, 0, 1, False))
    add(InstrSpec("retq", InstrKind.RET, 0, 0, False))
    for cc in CONDITION_CODES:
        add(InstrSpec(f"j{cc}", InstrKind.JCC, 0, 1, False, reads_flags=True, cc=cc))
        add(InstrSpec(f"set{cc}", InstrKind.SETCC, 8, 1, True, reads_flags=True, cc=cc))

    # Vector subset used by FERRUM's SIMD batching (Fig. 6 of the paper).
    add(InstrSpec("vmovq", InstrKind.VECMOV, 64, 2, True))
    add(InstrSpec("pinsrq", InstrKind.VECMOV, 64, 3, True))
    add(InstrSpec("pextrq", InstrKind.VECMOV, 64, 3, True))
    add(InstrSpec("vinserti128", InstrKind.VECINSERT, 128, 4, True))
    add(InstrSpec("vpxor", InstrKind.VECALU, 256, 3, True))
    add(InstrSpec("vptest", InstrKind.VECTEST, 256, 2, False, writes_flags=True))

    add(InstrSpec("nop", InstrKind.NOP, 0, 0, False))
    return table


_SPEC_TABLE: dict[str, InstrSpec] = _specs()


def get_spec(mnemonic: str) -> InstrSpec:
    """The :class:`InstrSpec` for ``mnemonic``; raises AsmError if unknown."""
    try:
        return _SPEC_TABLE[mnemonic]
    except KeyError:
        raise AsmError(f"unsupported mnemonic {mnemonic!r}") from None


def known_mnemonics() -> tuple[str, ...]:
    """Every supported mnemonic (deterministic order)."""
    return tuple(_SPEC_TABLE)


_instr_ids = itertools.count()


@dataclass(eq=False)
class Instruction:
    """One assembly instruction: mnemonic + operands in AT&T order.

    Attributes:
        mnemonic: e.g. ``"movq"``.
        operands: sources first, destination last (AT&T convention).
        comment: optional trailing ``#`` comment, preserved by the printer.
        origin: provenance tag set by the transforms (``"orig"``,
            ``"dup"``, ``"check"``...) — used by tests and by reports, never
            by semantics.
        uid: unique id so equal-looking instructions stay distinguishable
            inside CFG maps.
    """

    mnemonic: str
    operands: tuple[Operand, ...] = ()
    comment: str | None = None
    origin: str = "orig"
    uid: int = field(default_factory=lambda: next(_instr_ids))

    def __post_init__(self) -> None:
        spec = get_spec(self.mnemonic)
        self.operands = tuple(self.operands)
        if len(self.operands) != spec.n_operands:
            raise AsmError(
                f"{self.mnemonic} expects {spec.n_operands} operands, "
                f"got {len(self.operands)}"
            )
        # Hot-path caches: the simulator queries these per dynamic
        # instruction; operands are never mutated after construction
        # (transforms build fresh instructions via copy()).
        self._spec = spec
        self._dest_registers: tuple[Register, ...] | None = None

    @property
    def spec(self) -> InstrSpec:
        return self._spec

    @property
    def kind(self) -> InstrKind:
        return self._spec.kind

    # -- structural accessors ------------------------------------------------

    @property
    def dest(self) -> Operand | None:
        """The architectural destination operand, if the mnemonic has one."""
        if self.spec.has_dest:
            return self.operands[-1]
        return None

    @property
    def sources(self) -> tuple[Operand, ...]:
        """Explicit source operands (everything but the destination)."""
        if self.spec.has_dest:
            return self.operands[:-1]
        return self.operands

    @property
    def target_label(self) -> str | None:
        """Branch/call target label, when the instruction has one."""
        if self.kind in (InstrKind.JMP, InstrKind.JCC, InstrKind.CALL):
            op = self.operands[0]
            if isinstance(op, LabelRef):
                return op.name
        return None

    # -- register effects ----------------------------------------------------

    def dest_registers(self) -> tuple[Register, ...]:
        """Architectural registers written by this instruction.

        Implicit destinations are included (``idiv`` writes rax/rdx, the
        converts write rax or rdx). ``cmp``/``test``/``vptest`` report the
        FLAGS pseudo-register, matching the paper's treatment of flag faults
        as injectable destinations (Fig. 9). Stack-pointer side effects of
        push/pop/call/ret are *not* reported: they are not fault-injection
        sites under the paper's model.
        """
        if self._dest_registers is not None:
            return self._dest_registers
        self._dest_registers = self._compute_dest_registers()
        return self._dest_registers

    def _compute_dest_registers(self) -> tuple[Register, ...]:
        kind = self.kind
        if kind in (InstrKind.CMP, InstrKind.TEST, InstrKind.VECTEST):
            return (FLAGS,)
        if kind is InstrKind.IDIV:
            width = self.spec.width
            if width == 64:
                return (get_register("rax"), get_register("rdx"))
            return (get_register("eax"), get_register("edx"))
        if kind is InstrKind.CONVERT:
            if self.mnemonic == "cltq":
                return (get_register("rax"),)
            if self.mnemonic == "cltd":
                return (get_register("edx"),)
            return (get_register("rdx"),)
        dest = self.dest
        if isinstance(dest, Reg):
            return (dest.register,)
        return ()

    def read_registers(self) -> tuple[Register, ...]:
        """Architectural registers read (explicit operands + implicits)."""
        regs: list[Register] = []
        for i, op in enumerate(self.operands):
            is_dest = self.spec.has_dest and i == len(self.operands) - 1
            if isinstance(op, Reg):
                # Destinations of pure moves are write-only; RMW ops and
                # partial vector writes also read their destination.
                if not is_dest or self.kind in (
                    InstrKind.ALU,
                    InstrKind.SHIFT,
                    InstrKind.UNARY,
                    InstrKind.VECALU,
                    InstrKind.VECINSERT,
                ) or self.mnemonic == "pinsrq":
                    regs.append(op.register)
            elif isinstance(op, Mem):
                regs.extend(op.registers())
        if self.kind is InstrKind.IDIV:
            if self.spec.width == 64:
                regs += [get_register("rax"), get_register("rdx")]
            else:
                regs += [get_register("eax"), get_register("edx")]
        elif self.kind is InstrKind.CONVERT:
            regs.append(get_register("rax" if self.mnemonic == "cqto" else "eax"))
        return tuple(regs)

    def register_roots(self) -> frozenset[str]:
        """Roots of every register this instruction touches (reads or writes)."""
        roots = {r.root for r in self.read_registers()}
        roots.update(r.root for r in self.dest_registers())
        for op in self.operands:
            if isinstance(op, Mem):
                roots.update(r.root for r in op.registers())
            elif isinstance(op, Reg):
                roots.add(op.root)
        roots.discard("rflags")
        return frozenset(roots)

    def reads_memory(self) -> bool:
        """True when any source operand (or pop) reads memory."""
        if self.kind is InstrKind.LEA:
            return False  # lea only computes the address
        if self.kind in (InstrKind.POP, InstrKind.RET):
            return True
        for i, op in enumerate(self.operands):
            is_dest = self.spec.has_dest and i == len(self.operands) - 1
            if isinstance(op, Mem) and not is_dest:
                return True
        # RMW memory destinations also read; the backend never emits them,
        # but a mov-to-mem never reads its destination.
        return False

    def writes_memory(self) -> bool:
        """True when the destination is memory (or the op pushes)."""
        if self.kind in (InstrKind.PUSH, InstrKind.CALL):
            return True
        dest = self.dest
        return isinstance(dest, Mem)

    def is_fault_site(self) -> bool:
        """True when the paper's fault model can target this instruction.

        A fault site is any dynamic instruction with at least one register
        (or FLAGS) destination.
        """
        return bool(self.dest_registers())

    def copy(self, **overrides: object) -> "Instruction":
        """A fresh instruction (new uid) with selected fields replaced."""
        kwargs = {
            "mnemonic": self.mnemonic,
            "operands": self.operands,
            "comment": self.comment,
            "origin": self.origin,
        }
        kwargs.update(overrides)  # type: ignore[arg-type]
        return Instruction(**kwargs)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        ops = ", ".join(str(o) for o in self.operands)
        return f"<Instruction {self.mnemonic} {ops}>".replace(" >", ">")


def ins(mnemonic: str, *operands: Operand, comment: str | None = None,
        origin: str = "orig") -> Instruction:
    """Shorthand constructor used heavily by the backend and transforms."""
    return Instruction(mnemonic, tuple(operands), comment=comment, origin=origin)


def iter_instructions(seq: Iterable[Instruction]) -> Iterable[Instruction]:
    """Identity iterator, kept for symmetric naming with program helpers."""
    return iter(seq)
