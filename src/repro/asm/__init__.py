"""x86-64 assembly substrate.

This subpackage models the slice of x86-64 (AT&T syntax) that the backend
emits and the protection transforms manipulate: registers with sub-register
aliasing, operands, instructions with per-mnemonic metadata, a text
parser/printer pair, a program/CFG representation, and liveness analysis.
"""

from repro.asm.instructions import Instruction, InstrSpec, get_spec
from repro.asm.operands import Imm, LabelRef, Mem, Operand, Reg
from repro.asm.parser import parse_program, parse_instruction
from repro.asm.printer import format_instruction, format_program
from repro.asm.program import AsmBlock, AsmFunction, AsmProgram
from repro.asm.registers import (
    FLAGS,
    GPR64,
    Register,
    RegisterKind,
    XMM,
    YMM,
    get_register,
)

__all__ = [
    "AsmBlock",
    "AsmFunction",
    "AsmProgram",
    "FLAGS",
    "GPR64",
    "Imm",
    "InstrSpec",
    "Instruction",
    "LabelRef",
    "Mem",
    "Operand",
    "Reg",
    "Register",
    "RegisterKind",
    "XMM",
    "YMM",
    "format_instruction",
    "format_program",
    "get_register",
    "get_spec",
    "parse_instruction",
    "parse_program",
]
