"""x86-64 register model.

Registers are interned: :func:`get_register` returns a canonical
:class:`Register` object per architectural name, and every sub-register knows
its 64-bit (or 256-bit, for vectors) *root* so aliasing is explicit. The
machine's register file stores one value per root and materializes
sub-register views on access.

FERRUM's static analysis works in terms of roots: a function that touches
``%eax`` has used the ``rax`` root, and ``%xmm3`` occupies the low lane of the
``ymm3`` root.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import UnknownRegisterError


class RegisterKind(enum.Enum):
    """Architectural register classes."""

    GPR = "gpr"
    VECTOR = "vector"
    FLAGS = "flags"
    IP = "ip"


@dataclass(frozen=True)
class Register:
    """One architectural register name.

    Attributes:
        name: assembly name without the ``%`` sigil, e.g. ``"eax"``.
        root: name of the widest alias (``"rax"`` for ``"eax"``; vectors root
            at their ``ymm`` form).
        width: width in bits of this view.
        kind: the register class.
        offset: bit offset of this view inside the root (always 0 here; x86
            high-byte registers like ``ah`` are deliberately unsupported).
    """

    name: str
    root: str
    width: int
    kind: RegisterKind
    offset: int = 0

    def __str__(self) -> str:
        return f"%{self.name}"

    @property
    def is_gpr(self) -> bool:
        return self.kind is RegisterKind.GPR

    @property
    def is_vector(self) -> bool:
        return self.kind is RegisterKind.VECTOR


_GPR_FAMILIES: dict[str, tuple[str, str, str]] = {
    # root: (32-bit, 16-bit, 8-bit low)
    "rax": ("eax", "ax", "al"),
    "rbx": ("ebx", "bx", "bl"),
    "rcx": ("ecx", "cx", "cl"),
    "rdx": ("edx", "dx", "dl"),
    "rsi": ("esi", "si", "sil"),
    "rdi": ("edi", "di", "dil"),
    "rbp": ("ebp", "bp", "bpl"),
    "rsp": ("esp", "sp", "spl"),
    "r8": ("r8d", "r8w", "r8b"),
    "r9": ("r9d", "r9w", "r9b"),
    "r10": ("r10d", "r10w", "r10b"),
    "r11": ("r11d", "r11w", "r11b"),
    "r12": ("r12d", "r12w", "r12b"),
    "r13": ("r13d", "r13w", "r13b"),
    "r14": ("r14d", "r14w", "r14b"),
    "r15": ("r15d", "r15w", "r15b"),
}

GPR64: tuple[str, ...] = tuple(_GPR_FAMILIES)

#: Registers the SysV-ish calling convention reserves: stack/frame pointers.
RESERVED_GPRS: frozenset[str] = frozenset({"rsp", "rbp"})

#: Integer argument registers, in order (SysV AMD64).
ARG_GPRS: tuple[str, ...] = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")

#: Callee-saved registers under the SysV AMD64 convention.
CALLEE_SAVED: frozenset[str] = frozenset({"rbx", "rbp", "r12", "r13", "r14", "r15"})

XMM: tuple[str, ...] = tuple(f"xmm{i}" for i in range(16))
YMM: tuple[str, ...] = tuple(f"ymm{i}" for i in range(16))

_REGISTRY: dict[str, Register] = {}


def _register(reg: Register) -> Register:
    _REGISTRY[reg.name] = reg
    return reg


for _root, (_r32, _r16, _r8) in _GPR_FAMILIES.items():
    _register(Register(_root, _root, 64, RegisterKind.GPR))
    _register(Register(_r32, _root, 32, RegisterKind.GPR))
    _register(Register(_r16, _root, 16, RegisterKind.GPR))
    _register(Register(_r8, _root, 8, RegisterKind.GPR))

for _i in range(16):
    _register(Register(f"ymm{_i}", f"ymm{_i}", 256, RegisterKind.VECTOR))
    _register(Register(f"xmm{_i}", f"ymm{_i}", 128, RegisterKind.VECTOR))

FLAGS: Register = _register(Register("rflags", "rflags", 64, RegisterKind.FLAGS))
RIP: Register = _register(Register("rip", "rip", 64, RegisterKind.IP))


def get_register(name: str) -> Register:
    """Look up a register by assembly name (with or without ``%``).

    Raises:
        UnknownRegisterError: if the name is not part of the modeled ISA.
    """
    key = name.lstrip("%").lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise UnknownRegisterError(f"unknown register {name!r}") from None


def is_register_name(name: str) -> bool:
    """True when ``name`` (sans ``%``) names a modeled register."""
    return name.lstrip("%").lower() in _REGISTRY


def gpr_with_width(root: str, width: int) -> Register:
    """The sub-register view of GPR ``root`` at ``width`` bits.

    >>> gpr_with_width("rax", 32).name
    'eax'
    """
    if root not in _GPR_FAMILIES:
        raise UnknownRegisterError(f"{root!r} is not a GPR root")
    if width == 64:
        return get_register(root)
    r32, r16, r8 = _GPR_FAMILIES[root]
    try:
        return get_register({32: r32, 16: r16, 8: r8}[width])
    except KeyError:
        raise UnknownRegisterError(f"no {width}-bit view of {root}") from None


def xmm_of(index: int) -> Register:
    """The ``xmm`` register of a lane index (0-15)."""
    return get_register(f"xmm{index}")


def ymm_of(index: int) -> Register:
    """The ``ymm`` register of a lane index (0-15)."""
    return get_register(f"ymm{index}")


def all_registers() -> tuple[Register, ...]:
    """Every modeled architectural register name (deterministic order)."""
    return tuple(_REGISTRY.values())
