"""LUD: LU decomposition (Rodinia: Linear Algebra).

Doolittle decomposition without pivoting on a diagonally dominant integer
matrix scaled by Q8.8 fixed point, so the elimination uses real divisions.
Outputs checksums of the L and U factors.
"""

SUITE = "Rodinia"
DOMAIN = "Linear Algebra"


def source(scale: int = 1) -> str:
    """Mini-C source; ``scale`` grows the matrix dimension."""
    n = 8 + 2 * scale
    return f"""
int main() {{
    int n = {n};
    srand(7);

    // Diagonally dominant matrix in Q8.8: off-diagonal in [-16, 16),
    // diagonal = row sum of |off-diagonal| + positive slack.
    int* a = malloc(n * n * 4);
    for (int i = 0; i < n; i++) {{
        int rowsum = 0;
        for (int j = 0; j < n; j++) {{
            if (i != j) {{
                int v = (rand_next() % 32) - 16;
                a[i * n + j] = v * 256;
                if (v < 0) {{ rowsum += -v; }} else {{ rowsum += v; }}
            }}
        }}
        a[i * n + i] = (rowsum + 8 + rand_next() % 8) * 256;
    }}

    // In-place Doolittle: L below the diagonal, U on and above.
    for (int k = 0; k < n; k++) {{
        int pivot = a[k * n + k];
        for (int i = k + 1; i < n; i++) {{
            int factor = (a[i * n + k] * 256) / pivot;   // Q8.8 divide
            a[i * n + k] = factor;
            for (int j = k + 1; j < n; j++) {{
                a[i * n + j] = a[i * n + j] - ((factor * a[k * n + j]) >> 8);
            }}
        }}
    }}

    long lsum = 0;
    long usum = 0;
    for (int i = 0; i < n; i++) {{
        for (int j = 0; j < n; j++) {{
            if (j < i) {{ lsum += a[i * n + j]; }}
            else {{ usum += a[i * n + j]; }}
        }}
    }}
    print_long(lsum);
    print_long(usum);
    return 0;
}}
"""
