"""Needle: Needleman-Wunsch alignment (Rodinia: Dynamic Programming).

Full (n+1)x(n+1) score-matrix global alignment of two random integer
sequences with a substitution reward and linear gap penalty. Outputs the
alignment score and a matrix checksum.
"""

SUITE = "Rodinia"
DOMAIN = "Dynamic Programming"


def source(scale: int = 1) -> str:
    """Mini-C source; ``scale`` grows both sequence lengths."""
    n = 10 + 3 * scale
    return f"""
int max3(int a, int b, int c) {{
    int m = a;
    if (b > m) {{ m = b; }}
    if (c > m) {{ m = c; }}
    return m;
}}

int main() {{
    int n = {n};
    int gap = -2;
    srand(31);

    int* seq1 = malloc(n * 4);
    int* seq2 = malloc(n * 4);
    for (int i = 0; i < n; i++) {{ seq1[i] = rand_next() % 4; }}
    for (int i = 0; i < n; i++) {{ seq2[i] = rand_next() % 4; }}

    int dim = n + 1;
    int* score = malloc(dim * dim * 4);
    for (int i = 0; i < dim; i++) {{ score[i * dim] = i * gap; }}
    for (int j = 0; j < dim; j++) {{ score[j] = j * gap; }}

    for (int i = 1; i < dim; i++) {{
        for (int j = 1; j < dim; j++) {{
            int match = -1;
            if (seq1[i - 1] == seq2[j - 1]) {{ match = 2; }}
            int diag = score[(i - 1) * dim + (j - 1)] + match;
            int up = score[(i - 1) * dim + j] + gap;
            int left = score[i * dim + (j - 1)] + gap;
            score[i * dim + j] = max3(diag, up, left);
        }}
    }}

    long checksum = 0;
    for (int i = 0; i < dim * dim; i++) {{ checksum += score[i]; }}
    print_int(score[dim * dim - 1]);
    print_long(checksum);
    return 0;
}}
"""
