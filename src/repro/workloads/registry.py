"""Workload registry: the paper's Table II benchmark suite."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import WorkloadError
from repro.workloads import (
    backprop,
    bfs,
    kmeans,
    knn,
    lud,
    needle,
    particlefilter,
    pathfinder,
)


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark: metadata (Table II) plus a parameterized source."""

    name: str
    suite: str
    domain: str
    source_fn: Callable[[int], str]

    def source(self, scale: int = 1) -> str:
        """Mini-C source text at the given problem scale (>= 1)."""
        if scale < 1:
            raise WorkloadError(f"scale must be >= 1, got {scale}")
        return self.source_fn(scale)


_WORKLOADS: tuple[WorkloadSpec, ...] = (
    WorkloadSpec("backprop", backprop.SUITE, backprop.DOMAIN, backprop.source),
    WorkloadSpec("bfs", bfs.SUITE, bfs.DOMAIN, bfs.source),
    WorkloadSpec("pathfinder", pathfinder.SUITE, pathfinder.DOMAIN,
                 pathfinder.source),
    WorkloadSpec("lud", lud.SUITE, lud.DOMAIN, lud.source),
    WorkloadSpec("needle", needle.SUITE, needle.DOMAIN, needle.source),
    WorkloadSpec("knn", knn.SUITE, knn.DOMAIN, knn.source),
    WorkloadSpec("kmeans", kmeans.SUITE, kmeans.DOMAIN, kmeans.source),
    WorkloadSpec("particlefilter", particlefilter.SUITE,
                 particlefilter.DOMAIN, particlefilter.source),
)

_BY_NAME = {spec.name: spec for spec in _WORKLOADS}


def all_workloads() -> tuple[WorkloadSpec, ...]:
    """Every registered workload, in the paper's Table II order."""
    return _WORKLOADS


def workload_names() -> tuple[str, ...]:
    return tuple(spec.name for spec in _WORKLOADS)


def get_workload(name: str) -> WorkloadSpec:
    """Look up one workload by name; raises WorkloadError when unknown."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {', '.join(_BY_NAME)}"
        ) from None
