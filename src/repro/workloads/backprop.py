"""Backprop: feed-forward network training (Rodinia: Machine Learning).

A small 8-4-1 multilayer perceptron trained with backpropagation in Q8.8
fixed point. The sigmoid is replaced by the fast squash ``x / (1 + |x|)``
(division-based, so the kernel exercises ``idiv`` protection paths).
"""

SUITE = "Rodinia"
DOMAIN = "Machine Learning"


def source(scale: int = 1) -> str:
    """Mini-C source; ``scale`` multiplies the number of training epochs."""
    epochs = scale
    return f"""
// Q8.8 fixed-point helpers ------------------------------------------------
int fx_mul(int a, int b) {{
    return (a * b) >> 8;
}}

int fx_squash(int x) {{
    // x / (1 + |x|), a division-based sigmoid stand-in.
    int ax = x;
    if (ax < 0) {{ ax = -ax; }}
    return (x * 256) / (256 + ax);
}}

int main() {{
    int n_in = 8;
    int n_hid = 4;
    srand(1234);

    int* input = malloc(32);
    int* w1 = malloc(128);        // 8 x 4 input->hidden
    int* w2 = malloc(16);         // 4 x 1 hidden->output
    int* hidden = malloc(16);
    int* delta1 = malloc(16);

    for (int i = 0; i < n_in * n_hid; i++) {{ w1[i] = rand_next() % 128 - 64; }}
    for (int j = 0; j < n_hid; j++) {{ w2[j] = rand_next() % 128 - 64; }}

    long checksum = 0;
    for (int epoch = 0; epoch < {epochs}; epoch++) {{
        for (int sample = 0; sample < 6; sample++) {{
            for (int i = 0; i < n_in; i++) {{
                input[i] = (rand_next() % 512) - 256;
            }}
            int target = (rand_next() % 512) - 256;

            // Forward pass.
            for (int j = 0; j < n_hid; j++) {{
                int acc = 0;
                for (int i = 0; i < n_in; i++) {{
                    acc += fx_mul(input[i], w1[i * n_hid + j]);
                }}
                hidden[j] = fx_squash(acc);
            }}
            int out = 0;
            for (int j = 0; j < n_hid; j++) {{
                out += fx_mul(hidden[j], w2[j]);
            }}
            out = fx_squash(out);

            // Backward pass (learning rate 1/16).
            int err = target - out;
            for (int j = 0; j < n_hid; j++) {{
                delta1[j] = fx_mul(err, w2[j]);
                w2[j] += fx_mul(err, hidden[j]) / 16;
            }}
            for (int j = 0; j < n_hid; j++) {{
                for (int i = 0; i < n_in; i++) {{
                    w1[i * n_hid + j] += fx_mul(delta1[j], input[i]) / 16;
                }}
            }}
            checksum += err;
        }}
    }}

    long wsum = 0;
    for (int i = 0; i < n_in * n_hid; i++) {{ wsum += w1[i]; }}
    for (int j = 0; j < n_hid; j++) {{ wsum += w2[j]; }}
    print_long(checksum);
    print_long(wsum);
    return 0;
}}
"""
