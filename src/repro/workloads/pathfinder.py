"""Pathfinder: grid shortest path (Rodinia: Dynamic Programming).

Row-by-row DP over a random cost grid; each cell takes the cheapest of the
three predecessors above it — the exact Rodinia pathfinder kernel. Outputs
the minimum path cost and the checksum of the final DP row.
"""

SUITE = "Rodinia"
DOMAIN = "Dynamic Programming"


def source(scale: int = 1) -> str:
    """Mini-C source; ``scale`` multiplies the number of rows."""
    rows = 10 * scale
    cols = 20
    return f"""
int min2(int a, int b) {{
    if (a < b) {{ return a; }}
    return b;
}}

int main() {{
    int rows = {rows};
    int cols = {cols};
    srand(4242);

    int* wall = malloc(rows * cols * 4);
    for (int i = 0; i < rows * cols; i++) {{ wall[i] = rand_next() % 10; }}

    int* dst = malloc(cols * 4);
    int* src = malloc(cols * 4);
    for (int j = 0; j < cols; j++) {{ dst[j] = wall[j]; }}

    for (int r = 1; r < rows; r++) {{
        for (int j = 0; j < cols; j++) {{ src[j] = dst[j]; }}
        for (int j = 0; j < cols; j++) {{
            int best = src[j];
            if (j > 0) {{ best = min2(best, src[j - 1]); }}
            if (j < cols - 1) {{ best = min2(best, src[j + 1]); }}
            dst[j] = wall[r * cols + j] + best;
        }}
    }}

    int best = dst[0];
    long checksum = 0;
    for (int j = 0; j < cols; j++) {{
        best = min2(best, dst[j]);
        checksum += dst[j];
    }}
    print_int(best);
    print_long(checksum);
    return 0;
}}
"""
