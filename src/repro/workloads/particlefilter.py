"""Particlefilter: sequential Monte Carlo estimator (Rodinia: Noise estimator).

Tracks a 1-D random walk with a particle filter in integer arithmetic:
propagate particles with LCG noise, weight by inverse absolute observation
error, estimate by weighted mean (long division), and resample with a
cumulative-weight wheel. Outputs the tracking error checksum and the final
estimate.
"""

SUITE = "Rodinia"
DOMAIN = "Noise estimator"


def source(scale: int = 1) -> str:
    """Mini-C source; ``scale`` multiplies the particle count."""
    particles = 16 * scale
    steps = 4
    return f"""
int main() {{
    int n = {particles};
    int steps = {steps};
    srand(777);

    int* x = malloc(n * 4);        // particle states
    int* w = malloc(n * 4);        // weights
    long* cumulative = malloc(n * 8);
    int* resampled = malloc(n * 4);

    int true_state = 500;
    for (int i = 0; i < n; i++) {{ x[i] = 500 + rand_next() % 21 - 10; }}

    long error_sum = 0;
    int estimate = 0;
    for (int step = 0; step < steps; step++) {{
        true_state += rand_next() % 11 - 5;
        int observation = true_state + rand_next() % 7 - 3;

        // Propagate and weight: w = 4096 / (1 + |x - z|).
        for (int i = 0; i < n; i++) {{
            x[i] += rand_next() % 11 - 5;
            int err = x[i] - observation;
            if (err < 0) {{ err = -err; }}
            w[i] = 4096 / (1 + err);
        }}

        // Weighted-mean estimate.
        long wsum = 0;
        long xw = 0;
        for (int i = 0; i < n; i++) {{
            wsum += w[i];
            xw += x[i] * w[i];
        }}
        estimate = xw / wsum;
        error_sum += estimate - true_state;

        // Systematic resampling via the cumulative weight wheel.
        long acc = 0;
        for (int i = 0; i < n; i++) {{
            acc += w[i];
            cumulative[i] = acc;
        }}
        for (int i = 0; i < n; i++) {{
            long pick = (wsum * (i * 2 + 1)) / (n * 2);
            int chosen = n - 1;
            for (int j = 0; j < n; j++) {{
                if (cumulative[j] > pick) {{
                    chosen = j;
                    j = n;          // break out of the scan
                }}
            }}
            resampled[i] = x[chosen];
        }}
        for (int i = 0; i < n; i++) {{ x[i] = resampled[i]; }}
    }}

    print_int(estimate);
    print_long(error_sum);
    return 0;
}}
"""
