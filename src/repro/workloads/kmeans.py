"""Kmeans: k-means clustering (Rodinia: Data Mining).

Lloyd iterations over random 2-D integer points with three centroids:
assignment by squared distance, centroid update by integer mean (division
protected by the idiv recipe). Outputs centroid coordinates and the final
assignment checksum.
"""

SUITE = "Rodinia"
DOMAIN = "Data Mining"


def source(scale: int = 1) -> str:
    """Mini-C source; ``scale`` multiplies the point count."""
    points = 28 * scale
    iterations = 3
    return f"""
int main() {{
    int n = {points};
    int k = 3;
    int iters = {iterations};
    srand(2024);

    int* px = malloc(n * 4);
    int* py = malloc(n * 4);
    int* assign = malloc(n * 4);
    int* cx = malloc(k * 4);
    int* cy = malloc(k * 4);
    int* sum_x = malloc(k * 4);
    int* sum_y = malloc(k * 4);
    int* count = malloc(k * 4);

    for (int i = 0; i < n; i++) {{
        int cluster = rand_next() % k;
        px[i] = cluster * 300 + rand_next() % 100;
        py[i] = cluster * 300 + rand_next() % 100;
        assign[i] = 0;
    }}
    for (int c = 0; c < k; c++) {{
        cx[c] = px[c];
        cy[c] = py[c];
    }}

    for (int it = 0; it < iters; it++) {{
        for (int c = 0; c < k; c++) {{
            sum_x[c] = 0;
            sum_y[c] = 0;
            count[c] = 0;
        }}
        for (int i = 0; i < n; i++) {{
            int best = 0;
            int best_d = 2000000000;
            for (int c = 0; c < k; c++) {{
                int dx = px[i] - cx[c];
                int dy = py[i] - cy[c];
                int d = dx * dx + dy * dy;
                if (d < best_d) {{
                    best_d = d;
                    best = c;
                }}
            }}
            assign[i] = best;
            sum_x[best] += px[i];
            sum_y[best] += py[i];
            count[best] += 1;
        }}
        for (int c = 0; c < k; c++) {{
            if (count[c] > 0) {{
                cx[c] = sum_x[c] / count[c];
                cy[c] = sum_y[c] / count[c];
            }}
        }}
    }}

    long checksum = 0;
    for (int i = 0; i < n; i++) {{ checksum += assign[i] * (i + 1); }}
    for (int c = 0; c < k; c++) {{
        print_int(cx[c]);
        print_int(cy[c]);
    }}
    print_long(checksum);
    return 0;
}}
"""
