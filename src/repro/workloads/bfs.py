"""BFS: breadth-first search (Rodinia: Graph Algorithm).

CSR-style adjacency (offsets + edge array) over a deterministic random
graph (ring plus chords), classic two-array frontier expansion. Outputs the
visit count and the sum of node levels.
"""

SUITE = "Rodinia"
DOMAIN = "Graph Algorithm"


def source(scale: int = 1) -> str:
    """Mini-C source; ``scale`` multiplies the node count."""
    nodes = 48 * scale
    return f"""
int main() {{
    int n = {nodes};
    int deg = 3;                     // ring edge + 2 chords per node
    int m = n * deg;
    srand(99);

    int* offsets = malloc((n + 1) * 4);
    int* edges = malloc(m * 4);
    for (int v = 0; v < n; v++) {{
        offsets[v] = v * deg;
        edges[v * deg] = (v + 1) % n;          // ring
        edges[v * deg + 1] = rand_next() % n;  // chord
        edges[v * deg + 2] = rand_next() % n;  // chord
    }}
    offsets[n] = m;

    int* level = malloc(n * 4);
    int* frontier = malloc(n * 4);
    int* next_frontier = malloc(n * 4);
    for (int v = 0; v < n; v++) {{ level[v] = -1; }}

    level[0] = 0;
    frontier[0] = 0;
    int frontier_size = 1;
    int visited = 1;
    int depth = 0;

    while (frontier_size > 0) {{
        int next_size = 0;
        depth++;
        for (int f = 0; f < frontier_size; f++) {{
            int v = frontier[f];
            int start = offsets[v];
            int stop = offsets[v + 1];
            for (int e = start; e < stop; e++) {{
                int w = edges[e];
                if (level[w] < 0) {{
                    level[w] = depth;
                    next_frontier[next_size] = w;
                    next_size++;
                    visited++;
                }}
            }}
        }}
        for (int f = 0; f < next_size; f++) {{ frontier[f] = next_frontier[f]; }}
        frontier_size = next_size;
    }}

    long level_sum = 0;
    for (int v = 0; v < n; v++) {{ level_sum += level[v]; }}
    print_int(visited);
    print_long(level_sum);
    return 0;
}}
"""
