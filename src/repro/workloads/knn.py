"""kNN: k nearest neighbors (Rodinia: Machine Learning).

Squared-Euclidean nearest-neighbor search of one query point over a random
2-D record set, with repeated selection of the k closest (the Rodinia "nn"
pattern of a distance pass plus a winner scan). Outputs the index sum and
distance sum of the k winners.
"""

SUITE = "Rodinia"
DOMAIN = "Machine Learning"


def source(scale: int = 1) -> str:
    """Mini-C source; ``scale`` multiplies the record count."""
    records = 60 * scale
    k = 5
    return f"""
int sq_dist(int x1, int y1, int x2, int y2) {{
    int dx = x1 - x2;
    int dy = y1 - y2;
    return dx * dx + dy * dy;
}}

int main() {{
    int n = {records};
    int k = {k};
    srand(555);

    int* xs = malloc(n * 4);
    int* ys = malloc(n * 4);
    int* dist = malloc(n * 4);
    int* taken = malloc(n * 4);
    for (int i = 0; i < n; i++) {{
        xs[i] = rand_next() % 1000;
        ys[i] = rand_next() % 1000;
        taken[i] = 0;
    }}
    int qx = rand_next() % 1000;
    int qy = rand_next() % 1000;

    for (int i = 0; i < n; i++) {{
        dist[i] = sq_dist(xs[i], ys[i], qx, qy);
    }}

    long index_sum = 0;
    long dist_sum = 0;
    for (int round = 0; round < k; round++) {{
        int best = -1;
        int best_dist = 2000000000;
        for (int i = 0; i < n; i++) {{
            if (taken[i] == 0 && dist[i] < best_dist) {{
                best = i;
                best_dist = dist[i];
            }}
        }}
        taken[best] = 1;
        index_sum += best;
        dist_sum += best_dist;
    }}

    print_long(index_sum);
    print_long(dist_sum);
    return 0;
}}
"""
