"""Rodinia-like benchmark workloads (paper Table II).

The paper evaluates eight Rodinia benchmarks. Rodinia itself is a C/OpenMP
suite that cannot run on this self-contained substrate, so each benchmark
is re-implemented in mini-C preserving its domain and dataflow character
(Table II: machine learning, graph traversal, dynamic programming, linear
algebra, data mining, noise estimation). Floating point is replaced by
fixed-point integer arithmetic — EDDI's mechanics are type-agnostic, and
the protection transforms never special-case value semantics.

Every workload prints checksums through the deterministic runtime, which
is what fault-injection campaigns diff for SDC classification.
"""

from repro.workloads.registry import (
    WorkloadSpec,
    all_workloads,
    get_workload,
    workload_names,
)

__all__ = ["WorkloadSpec", "all_workloads", "get_workload", "workload_names"]
