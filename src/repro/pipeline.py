"""End-to-end compilation pipeline: mini-C source -> protected executables.

One call builds any subset of the four variants evaluated in the paper:

* ``raw`` — unprotected: source -> IR -> x86-64;
* ``ir-eddi`` — IR-LEVEL-EDDI baseline: EDDI pass on the IR, then the
  ordinary backend;
* ``hybrid`` — HYBRID-ASSEMBLY-LEVEL-EDDI baseline: signature branch
  protection at IR level, then scalar AS₁ duplication on the compiled
  assembly;
* ``ferrum`` — FERRUM: ordinary compilation, then the AS₂ transform with
  SIMD batching and deferred flag detection;
* ``dme`` — divergent multi-version execution: no inserted checks at all;
  the backend compiles a second, structurally decorrelated variant
  (shuffled stack slots, permuted scratch-register roles) and the machine
  runs the pair in lockstep, detecting faults as canonical-trace
  divergence (see :mod:`repro.core.dme`).

Each variant re-runs the (deterministic) frontend so the transforms can
mutate their module freely. Transform wall-clock time is recorded per
variant — the paper's Sec. IV-B3 metric.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.asm.program import AsmProgram, validate_program
from repro.backend import compile_module
from repro.core.config import FerrumConfig
from repro.core.dme import build_dme_program
from repro.core.ferrum import protect_program
from repro.core.validate import check_protection_invariants
from repro.core.hybrid import protect_program_hybrid
from repro.eddi.ir_eddi import protect_module
from repro.eddi.signatures import protect_branches_with_signatures
from repro.errors import ReproError
from repro.ir.module import IRModule
from repro.ir.verifier import verify_module
from repro.minic import compile_to_ir

#: Variant names in canonical (paper) order, plus the DME detector.
VARIANTS: tuple[str, ...] = ("raw", "ir-eddi", "hybrid", "ferrum", "dme")


@dataclass
class CompiledVariant:
    """One protection variant of a program."""

    name: str
    asm: AsmProgram
    ir: IRModule
    stats: Any = None
    transform_seconds: float = 0.0

    @property
    def static_size(self) -> int:
        return self.asm.static_size()


@dataclass
class BuildResult:
    """All requested variants of one source program."""

    source: str
    variants: dict[str, CompiledVariant] = field(default_factory=dict)

    def __getitem__(self, name: str) -> CompiledVariant:
        try:
            return self.variants[name]
        except KeyError:
            raise ReproError(f"variant {name!r} was not built") from None


def _build_raw(source: str) -> CompiledVariant:
    ir = compile_to_ir(source)
    return CompiledVariant("raw", compile_module(ir), ir)


def _build_ir_eddi(source: str) -> CompiledVariant:
    ir = compile_to_ir(source)
    start = time.perf_counter()
    stats = protect_module(ir)
    elapsed = time.perf_counter() - start
    verify_module(ir)
    return CompiledVariant("ir-eddi", compile_module(ir), ir, stats, elapsed)


def _build_hybrid(source: str, config: FerrumConfig | None) -> CompiledVariant:
    ir = compile_to_ir(source)
    start = time.perf_counter()
    sig_stats = protect_branches_with_signatures(ir)
    asm = compile_module(ir)
    protected, asm_stats = protect_program_hybrid(asm, config)
    elapsed = time.perf_counter() - start
    return CompiledVariant(
        "hybrid", protected, ir,
        {"signatures": sig_stats, "asm": asm_stats}, elapsed,
    )


def _build_ferrum(source: str, config: FerrumConfig | None) -> CompiledVariant:
    ir = compile_to_ir(source)
    asm = compile_module(ir)
    start = time.perf_counter()
    protected, stats = protect_program(asm, config)
    elapsed = time.perf_counter() - start
    return CompiledVariant("ferrum", protected, ir, stats, elapsed)


def _build_dme(source: str) -> CompiledVariant:
    ir = compile_to_ir(source)
    start = time.perf_counter()
    program = build_dme_program(ir)
    elapsed = time.perf_counter() - start
    validate_program(program.secondary)
    stats = {
        "slot_seed": program.maps.seed,
        "register_map": dict(program.maps.register_map),
    }
    return CompiledVariant("dme", program, ir, stats, elapsed)


def build_variants(
    source: str,
    names: tuple[str, ...] = VARIANTS,
    config: FerrumConfig | None = None,
) -> BuildResult:
    """Compile ``source`` into every requested protection variant.

    Every produced program is structurally validated (labels and call
    targets resolve) before it is returned.
    """
    result = BuildResult(source)
    for name in names:
        if name == "raw":
            variant = _build_raw(source)
        elif name == "ir-eddi":
            variant = _build_ir_eddi(source)
        elif name == "hybrid":
            variant = _build_hybrid(source, config)
        elif name == "ferrum":
            variant = _build_ferrum(source, config)
        elif name == "dme":
            variant = _build_dme(source)
        else:
            raise ReproError(f"unknown variant {name!r}")
        validate_program(variant.asm)
        if name in ("hybrid", "ferrum"):
            # Structural validation alone accepts a transform that silently
            # breaks protection discipline (clobbered flags between capture
            # and consumer, unbatched checks, unbalanced brackets); the
            # invariant check makes such a build fail loudly instead of
            # shipping a variant with degraded coverage.
            check_protection_invariants(variant.asm)
        result.variants[name] = variant
    return result
