"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class MiniCError(ReproError):
    """Base class for frontend (mini-C) errors."""


class LexError(MiniCError):
    """Raised when the lexer meets a character it cannot tokenize."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class ParseError(MiniCError):
    """Raised when the parser meets an unexpected token."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class SemanticError(MiniCError):
    """Raised by semantic analysis (type errors, undefined names...)."""


class IRError(ReproError):
    """Base class for IR-level errors."""


class IRVerifyError(IRError):
    """Raised when an IR module violates a structural invariant."""


class IRInterpError(IRError):
    """Raised when the IR interpreter meets an unexecutable situation."""


class BackendError(ReproError):
    """Raised by the IR -> assembly backend."""


class AsmError(ReproError):
    """Base class for assembly-layer errors."""


class AsmParseError(AsmError):
    """Raised when assembly text cannot be parsed."""

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class UnknownRegisterError(AsmError):
    """Raised when a register name does not exist on the target."""


class TransformError(ReproError):
    """Raised when a protection transform cannot be applied."""


class SpareRegisterError(TransformError):
    """Raised when a transform cannot find the registers it needs."""


class MachineError(ReproError):
    """Base class for machine-simulator errors."""


class MachineFault(MachineError):
    """An architectural fault (e.g. out-of-bounds memory access).

    In outcome classification these map to *crash*.
    """


class SegmentationFault(MachineFault):
    """Memory access outside any mapped segment."""


class EngineConfigError(MachineFault, ValueError):
    """An unknown execution engine was requested.

    Raised for a bad ``engine=`` argument or ``FERRUM_ENGINE`` value; the
    message lists the valid engine names. Derives from both
    :class:`MachineFault` (the machine-layer hierarchy) and ``ValueError``
    (it is a configuration error, not an architectural event).
    """


class IllegalInstructionError(MachineFault):
    """The CPU met an instruction it cannot execute."""


class ExecutionLimitExceeded(MachineError):
    """The dynamic instruction budget was exhausted (classified as timeout)."""


class DetectionExit(MachineError):
    """A protection checker detected a mismatch and stopped the program.

    This is the *success* path of an EDDI transform at runtime; the fault
    injection campaign classifies it as *detected*.
    """


class DmeDivergenceError(MachineError):
    """The two DME variants diverged on a fault-free run.

    This must never happen: the decorrelated variant is required to be
    observably identical to the primary in the absence of faults. A
    divergence without an injected fault is a compiler/decorrelation bug
    (and a fuzz-oracle finding), not a detection — detections under an
    injected fault raise :class:`DetectionExit` instead.
    """


class InjectionError(ReproError):
    """Raised when a fault cannot be injected as requested."""


class JournalError(ReproError):
    """Raised on a journal integrity violation (non-tail corruption)."""


class ServiceError(ReproError):
    """Raised by the durable campaign service (bad spec, state mismatch...)."""


class EvaluationError(ReproError):
    """Raised by the evaluation/experiment harness."""


class WorkloadError(ReproError):
    """Raised when a workload is missing or mis-configured."""
