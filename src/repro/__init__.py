"""Reproduction of FERRUM (DSN 2024): fast assembly-level error detection.

A self-contained software stack reproducing *"A Fast Low-Level Error
Detection Technique"*: a mini-C -> IR -> x86-64 compiler, an architectural
machine simulator with a cycle model, three EDDI protection transforms
(IR-level, hybrid assembly-level, and FERRUM with SIMD batching), an
assembly-level fault injector, eight Rodinia-like workloads, and an
evaluation harness regenerating every table and figure of the paper.

Typical use::

    from repro import build_variants, run_campaign, Machine

    build = build_variants(source_code)          # raw/ir-eddi/hybrid/ferrum
    result = Machine(build["ferrum"].asm).run()  # execute
    campaign = run_campaign(build["ferrum"].asm, samples=200, seed=1)

See ``examples/`` for runnable walkthroughs and ``ferrum-eval`` for the
paper's experiments.
"""

from repro.core.config import FerrumConfig
from repro.core.ferrum import FerrumStats, protect_program
from repro.core.hybrid import protect_program_hybrid
from repro.eddi.ir_eddi import protect_module
from repro.eddi.signatures import protect_branches_with_signatures
from repro.faultinjection.campaign import (
    CampaignResult,
    run_campaign,
    run_ir_campaign,
)
from repro.faultinjection.outcome import Outcome, sdc_coverage
from repro.machine.cpu import Machine, RunResult
from repro.machine.timing import TimingConfig
from repro.minic import compile_to_ir
from repro.backend import compile_module
from repro.pipeline import BuildResult, CompiledVariant, build_variants
from repro.workloads import all_workloads, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "BuildResult",
    "CampaignResult",
    "CompiledVariant",
    "FerrumConfig",
    "FerrumStats",
    "Machine",
    "Outcome",
    "RunResult",
    "TimingConfig",
    "all_workloads",
    "build_variants",
    "compile_module",
    "compile_to_ir",
    "get_workload",
    "protect_branches_with_signatures",
    "protect_module",
    "protect_program",
    "protect_program_hybrid",
    "run_campaign",
    "run_ir_campaign",
    "sdc_coverage",
    "workload_names",
]
