"""Mini-C abstract syntax tree.

Plain dataclasses; every node carries the source line for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TypeName:
    """A source-level type: base ('int' | 'long' | 'void') plus pointer depth."""

    base: str
    pointer_depth: int = 0

    def __str__(self) -> str:
        return self.base + "*" * self.pointer_depth

    @property
    def is_pointer(self) -> bool:
        return self.pointer_depth > 0

    @property
    def is_void(self) -> bool:
        return self.base == "void" and self.pointer_depth == 0


# -- expressions --------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    line: int


@dataclass(frozen=True)
class IntLiteral(Expr):
    value: int


@dataclass(frozen=True)
class VarRef(Expr):
    name: str


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # '-' | '!'
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # arithmetic, comparison, shift, bitwise, '&&', '||'
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class Index(Expr):
    base: Expr
    index: Expr


@dataclass(frozen=True)
class CallExpr(Expr):
    callee: str
    args: tuple[Expr, ...]


# -- statements ---------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    line: int


@dataclass(frozen=True)
class Block(Stmt):
    statements: tuple[Stmt, ...]


@dataclass(frozen=True)
class Declaration(Stmt):
    type: TypeName
    name: str
    array_size: int | None = None
    init: Expr | None = None


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = value`` (compound ops are desugared by the parser)."""

    target: Expr  # VarRef or Index
    value: Expr


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then_body: Stmt
    else_body: Stmt | None = None


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass(frozen=True)
class For(Stmt):
    init: Stmt | None
    cond: Expr | None
    step: Stmt | None
    body: Stmt


@dataclass(frozen=True)
class Return(Stmt):
    value: Expr | None = None


@dataclass(frozen=True)
class Break(Stmt):
    pass


@dataclass(frozen=True)
class Continue(Stmt):
    pass


# -- top level ----------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    type: TypeName
    name: str


@dataclass(frozen=True)
class FunctionDef:
    line: int
    return_type: TypeName
    name: str
    params: tuple[Param, ...]
    body: Block


@dataclass(frozen=True)
class Program:
    functions: tuple[FunctionDef, ...] = field(default_factory=tuple)
