"""Mini-C lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexError

KEYWORDS = frozenset({
    "int", "long", "void", "if", "else", "while", "for",
    "return", "break", "continue",
})

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = (
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "<<", ">>",
)
_SINGLE_OPS = "+-*/%<>=!&|^(){}[];,"


class TokenKind(enum.Enum):
    INT_LITERAL = "int_literal"
    IDENT = "ident"
    KEYWORD = "keyword"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"<{self.kind.value} {self.text!r} @{self.line}:{self.column}>"


def tokenize(source: str) -> list[Token]:
    """Tokenize mini-C source; raises :class:`LexError` on bad input."""
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        char = source[i]
        if char in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise LexError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        if char.isdigit():
            start = i
            start_line, start_col = line, col
            while i < n and source[i].isdigit():
                advance(1)
            if i < n and (source[i].isalpha() or source[i] == "_"):
                raise LexError(
                    f"bad number suffix {source[i]!r}", line, col
                )
            tokens.append(Token(TokenKind.INT_LITERAL, source[start:i],
                                start_line, start_col))
            continue
        if char.isalpha() or char == "_":
            start = i
            start_line, start_col = line, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            text = source[start:i]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        matched = False
        for op in _MULTI_OPS:
            if source.startswith(op, i):
                tokens.append(Token(TokenKind.OP, op, line, col))
                advance(len(op))
                matched = True
                break
        if matched:
            continue
        if char in _SINGLE_OPS:
            tokens.append(Token(TokenKind.OP, char, line, col))
            advance(1)
            continue
        raise LexError(f"unexpected character {char!r}", line, col)

    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
