"""Mini-C AST -> IR lowering with type checking (clang -O0 style).

Every local variable and parameter gets an ``alloca`` slot; reads load the
slot and writes store it. Values never flow between basic blocks except
through memory. Both properties match clang -O0 and are load-bearing for
the reproduction: the backend-inserted reloads they force are precisely the
fault sites IR-level EDDI cannot see (paper Sec. IV-B1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SemanticError
from repro.ir.builder import IRBuilder
from repro.ir.instructions import Ret
from repro.ir.module import IRBlock, IRFunction, IRModule
from repro.ir.types import I1, I32, I64, PointerType, Type, VOID
from repro.ir.values import Constant, Value
from repro.minic import ast

_INT = ast.TypeName("int")
_LONG = ast.TypeName("long")
_VOID = ast.TypeName("void")
#: Wildcard pointer type of ``malloc`` results.
_WILD_PTR = ast.TypeName("void", 1)

#: Builtin signatures: name -> (param types, return type).
BUILTINS: dict[str, tuple[tuple[ast.TypeName, ...], ast.TypeName]] = {
    "malloc": ((_INT,), _WILD_PTR),
    "free": ((_WILD_PTR,), _VOID),
    "print_int": ((_INT,), _VOID),
    "print_long": ((_LONG,), _VOID),
    "srand": ((_INT,), _VOID),
    "rand_next": ((), _INT),
    "exit": ((_INT,), _VOID),
}

_CMP_PREDS = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle",
              ">": "sgt", ">=": "sge"}
_ARITH_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
              "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr"}


def _ir_type(tn: ast.TypeName) -> Type:
    if tn.is_pointer:
        inner = ast.TypeName(tn.base, tn.pointer_depth - 1)
        if inner.is_void:
            return PointerType(None)
        return PointerType(_ir_type(inner))
    if tn.base == "int":
        return I32
    if tn.base == "long":
        return I64
    if tn.base == "void":
        return VOID
    raise SemanticError(f"unknown type {tn}")


@dataclass
class _Binding:
    slot: Value               # the alloca (or, for arrays, the array alloca)
    type: ast.TypeName        # declared source type (arrays: element type + ptr)
    is_array: bool = False


@dataclass(frozen=True)
class _Typed:
    """A lowered expression: IR value plus its source-level type."""

    value: Value
    type: ast.TypeName


class _FunctionLowering:
    def __init__(self, module: IRModule, func_ast: ast.FunctionDef,
                 signatures: dict[str, tuple[tuple[ast.TypeName, ...],
                                             ast.TypeName]]) -> None:
        self.module = module
        self.func_ast = func_ast
        self.signatures = signatures
        self.function = IRFunction(
            func_ast.name,
            [(p.name, _ir_type(p.type)) for p in func_ast.params],
            _ir_type(func_ast.return_type),
        )
        self.builder = IRBuilder(self.function)
        self.scopes: list[dict[str, _Binding]] = []
        self.loop_stack: list[tuple[IRBlock, IRBlock]] = []  # (continue, break)

    def _err(self, line: int, message: str) -> SemanticError:
        return SemanticError(f"{self.func_ast.name}:{line}: {message}")

    # -- scope handling ------------------------------------------------------

    def _declare(self, line: int, name: str, binding: _Binding) -> None:
        if name in self.scopes[-1]:
            raise self._err(line, f"redeclaration of {name!r}")
        self.scopes[-1][name] = binding

    def _lookup(self, line: int, name: str) -> _Binding:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise self._err(line, f"use of undeclared variable {name!r}")

    # -- type coercion -------------------------------------------------------

    def _coerce(self, line: int, typed: _Typed, target: ast.TypeName) -> Value:
        source = typed.type
        if source == target:
            return typed.value
        if source.is_pointer and target.is_pointer:
            # Wildcard pointers (malloc / free) adopt/erase the pointee.
            if source == _WILD_PTR or target == _WILD_PTR:
                return typed.value
            raise self._err(line, f"cannot convert {source} to {target}")
        if source.is_pointer or target.is_pointer:
            raise self._err(line, f"cannot convert {source} to {target}")
        if target.base == "long" and source.base == "int":
            return self.builder.cast("sext", typed.value, I64)
        if target.base == "int" and source.base == "long":
            return self.builder.cast("trunc", typed.value, I32)
        raise self._err(line, f"cannot convert {source} to {target}")

    def _promote_pair(self, line: int, lhs: _Typed, rhs: _Typed) \
            -> tuple[Value, Value, ast.TypeName]:
        if lhs.type.is_pointer or rhs.type.is_pointer:
            raise self._err(line, "pointer arithmetic only supports p + i")
        common = _LONG if "long" in (lhs.type.base, rhs.type.base) else _INT
        return (self._coerce(line, lhs, common),
                self._coerce(line, rhs, common), common)

    # -- expressions -----------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> _Typed:
        if isinstance(expr, ast.IntLiteral):
            if -(2 ** 31) <= expr.value < 2 ** 31:
                return _Typed(Constant(expr.value, I32), _INT)
            return _Typed(Constant(expr.value, I64), _LONG)
        if isinstance(expr, ast.VarRef):
            binding = self._lookup(expr.line, expr.name)
            if binding.is_array:
                # Array-to-pointer decay: the slot address is the value.
                return _Typed(binding.slot, binding.type)
            value = self.builder.load(binding.slot, name=expr.name)
            return _Typed(value, binding.type)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Index):
            ptr, elem_type = self._element_pointer(expr)
            return _Typed(self.builder.load(ptr), elem_type)
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr)
        raise self._err(expr.line, f"cannot lower expression {type(expr).__name__}")

    def _lower_unary(self, expr: ast.Unary) -> _Typed:
        operand = self._lower_expr(expr.operand)
        if expr.op == "-":
            if operand.type.is_pointer:
                raise self._err(expr.line, "cannot negate a pointer")
            zero = Constant(0, _ir_type(operand.type))
            return _Typed(self.builder.binop("sub", zero, operand.value),
                          operand.type)
        # '!': compare against zero, materialize as int 0/1.
        zero = Constant(0, _ir_type(operand.type) if not operand.type.is_pointer
                        else I64)
        cond = self.builder.icmp("eq", operand.value, zero)
        return _Typed(self.builder.cast("zext", cond, I32), _INT)

    def _lower_binary(self, expr: ast.Binary) -> _Typed:
        if expr.op in ("&&", "||"):
            return self._lower_short_circuit(expr)
        if expr.op in _CMP_PREDS:
            cond = self._lower_comparison(expr)
            return _Typed(self.builder.cast("zext", cond, I32), _INT)
        lhs = self._lower_expr(expr.lhs)
        rhs = self._lower_expr(expr.rhs)
        if expr.op == "+" and (lhs.type.is_pointer or rhs.type.is_pointer):
            ptr, idx = (lhs, rhs) if lhs.type.is_pointer else (rhs, lhs)
            if idx.type.is_pointer:
                raise self._err(expr.line, "cannot add two pointers")
            index = self._coerce(expr.line, idx, _LONG)
            return _Typed(self.builder.ptradd(ptr.value, index), ptr.type)
        if expr.op == "-" and lhs.type.is_pointer:
            if rhs.type.is_pointer:
                raise self._err(expr.line, "pointer difference unsupported")
            index = self._coerce(expr.line, rhs, _LONG)
            zero = Constant(0, I64)
            neg = self.builder.binop("sub", zero, index)
            return _Typed(self.builder.ptradd(lhs.value, neg), lhs.type)
        a, b, common = self._promote_pair(expr.line, lhs, rhs)
        op = _ARITH_OPS.get(expr.op)
        if op is None:
            raise self._err(expr.line, f"unsupported operator {expr.op!r}")
        return _Typed(self.builder.binop(op, a, b), common)

    def _lower_short_circuit(self, expr: ast.Binary) -> _Typed:
        """``a && b`` / ``a || b`` with a result slot (value flows via memory)."""
        result_slot = self.builder.alloca(I32, name=f"sc{expr.line}")
        is_and = expr.op == "&&"
        rhs_block = self.builder.new_block("sc_rhs")
        short_block = self.builder.new_block("sc_short")
        join_block = self.builder.new_block("sc_join")

        lhs_cond = self._lower_condition(expr.lhs)
        if is_and:
            self.builder.br(lhs_cond, rhs_block.label, short_block.label)
        else:
            self.builder.br(lhs_cond, short_block.label, rhs_block.label)

        self.builder.position_at(short_block)
        self.builder.store(Constant(0 if is_and else 1, I32), result_slot)
        self.builder.jump(join_block.label)

        self.builder.position_at(rhs_block)
        rhs_cond = self._lower_condition(expr.rhs)
        rhs_int = self.builder.cast("zext", rhs_cond, I32)
        self.builder.store(rhs_int, result_slot)
        self.builder.jump(join_block.label)

        self.builder.position_at(join_block)
        return _Typed(self.builder.load(result_slot), _INT)

    def _lower_comparison(self, expr: ast.Binary) -> Value:
        """Lower a comparison operator to a bare ``i1`` (no zext)."""
        lhs = self._lower_expr(expr.lhs)
        rhs = self._lower_expr(expr.rhs)
        if lhs.type.is_pointer != rhs.type.is_pointer:
            raise self._err(expr.line, "comparison of pointer and integer")
        if lhs.type.is_pointer:
            return self.builder.icmp(_CMP_PREDS[expr.op], lhs.value, rhs.value)
        a, b, _ = self._promote_pair(expr.line, lhs, rhs)
        return self.builder.icmp(_CMP_PREDS[expr.op], a, b)

    def _lower_condition(self, expr: ast.Expr) -> Value:
        """Lower an expression to an ``i1`` for branching.

        Comparisons and ``!`` feed the branch directly (the clang -O0
        shape); anything else is compared against zero.
        """
        if isinstance(expr, ast.Binary) and expr.op in _CMP_PREDS:
            return self._lower_comparison(expr)
        if isinstance(expr, ast.Unary) and expr.op == "!":
            operand = self._lower_expr(expr.operand)
            zero_type = I64 if operand.type.is_pointer else _ir_type(operand.type)
            return self.builder.icmp("eq", operand.value,
                                     Constant(0, zero_type))
        typed = self._lower_expr(expr)
        if typed.value.type == I1:
            return typed.value
        zero_type = I64 if typed.type.is_pointer else _ir_type(typed.type)
        return self.builder.icmp("ne", typed.value, Constant(0, zero_type))

    def _element_pointer(self, expr: ast.Index) -> tuple[Value, ast.TypeName]:
        base = self._lower_expr(expr.base)
        if not base.type.is_pointer:
            raise self._err(expr.line, "indexing a non-pointer")
        if base.type == _WILD_PTR:
            raise self._err(expr.line, "cannot index a void pointer")
        index = self._lower_expr(expr.index)
        index64 = self._coerce(expr.line, index, _LONG)
        elem_type = ast.TypeName(base.type.base, base.type.pointer_depth - 1)
        return self.builder.ptradd(base.value, index64), elem_type

    def _lower_call(self, expr: ast.CallExpr) -> _Typed:
        if expr.callee in self.signatures:
            param_types, return_type = self.signatures[expr.callee]
        elif expr.callee in BUILTINS:
            param_types, return_type = BUILTINS[expr.callee]
        else:
            raise self._err(expr.line, f"call to unknown function {expr.callee!r}")
        if len(expr.args) != len(param_types):
            raise self._err(
                expr.line,
                f"{expr.callee} expects {len(param_types)} args, got {len(expr.args)}",
            )
        args = []
        for arg_expr, param_type in zip(expr.args, param_types):
            typed = self._lower_expr(arg_expr)
            args.append(self._coerce(arg_expr.line, typed, param_type))
        value = self.builder.call(expr.callee, args, _ir_type(return_type),
                                  name=expr.callee)
        return _Typed(value, return_type)

    # -- statements ------------------------------------------------------

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if self.builder.terminated:
            return  # unreachable code after return/break: drop it
        if isinstance(stmt, ast.Block):
            self.scopes.append({})
            for inner in stmt.statements:
                self._lower_stmt(inner)
            self.scopes.pop()
        elif isinstance(stmt, ast.Declaration):
            self._lower_declaration(stmt)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise self._err(stmt.line, "break outside a loop")
            self.builder.jump(self.loop_stack[-1][1].label)
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise self._err(stmt.line, "continue outside a loop")
            self.builder.jump(self.loop_stack[-1][0].label)
        else:
            raise self._err(stmt.line, f"cannot lower {type(stmt).__name__}")

    def _lower_declaration(self, stmt: ast.Declaration) -> None:
        if stmt.array_size is not None:
            elem = _ir_type(stmt.type)
            slot = self.builder.alloca(elem, count=stmt.array_size,
                                       name=stmt.name)
            pointer_type = ast.TypeName(stmt.type.base,
                                        stmt.type.pointer_depth + 1)
            self._declare(stmt.line, stmt.name,
                          _Binding(slot, pointer_type, is_array=True))
            return
        slot = self.builder.alloca(_ir_type(stmt.type), name=stmt.name)
        self._declare(stmt.line, stmt.name, _Binding(slot, stmt.type))
        if stmt.init is not None:
            typed = self._lower_expr(stmt.init)
            self.builder.store(self._coerce(stmt.line, typed, stmt.type), slot)

    def _lower_assign(self, stmt: ast.Assign) -> None:
        if isinstance(stmt.target, ast.VarRef):
            binding = self._lookup(stmt.line, stmt.target.name)
            if binding.is_array:
                raise self._err(stmt.line, "cannot assign to an array")
            typed = self._lower_expr(stmt.value)
            self.builder.store(self._coerce(stmt.line, typed, binding.type),
                               binding.slot)
        else:
            assert isinstance(stmt.target, ast.Index)
            ptr, elem_type = self._element_pointer(stmt.target)
            typed = self._lower_expr(stmt.value)
            self.builder.store(self._coerce(stmt.line, typed, elem_type), ptr)

    def _lower_if(self, stmt: ast.If) -> None:
        then_block = self.builder.new_block("if_then")
        join_block = self.builder.new_block("if_join")
        else_block = (self.builder.new_block("if_else")
                      if stmt.else_body is not None else join_block)

        cond = self._lower_condition(stmt.cond)
        self.builder.br(cond, then_block.label, else_block.label)

        self.builder.position_at(then_block)
        self._lower_stmt(stmt.then_body)
        if not self.builder.terminated:
            self.builder.jump(join_block.label)

        if stmt.else_body is not None:
            self.builder.position_at(else_block)
            self._lower_stmt(stmt.else_body)
            if not self.builder.terminated:
                self.builder.jump(join_block.label)

        self.builder.position_at(join_block)

    def _lower_while(self, stmt: ast.While) -> None:
        cond_block = self.builder.new_block("while_cond")
        body_block = self.builder.new_block("while_body")
        end_block = self.builder.new_block("while_end")

        self.builder.jump(cond_block.label)
        self.builder.position_at(cond_block)
        cond = self._lower_condition(stmt.cond)
        self.builder.br(cond, body_block.label, end_block.label)

        self.builder.position_at(body_block)
        self.loop_stack.append((cond_block, end_block))
        self._lower_stmt(stmt.body)
        self.loop_stack.pop()
        if not self.builder.terminated:
            self.builder.jump(cond_block.label)

        self.builder.position_at(end_block)

    def _lower_for(self, stmt: ast.For) -> None:
        self.scopes.append({})
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        cond_block = self.builder.new_block("for_cond")
        body_block = self.builder.new_block("for_body")
        step_block = self.builder.new_block("for_step")
        end_block = self.builder.new_block("for_end")

        self.builder.jump(cond_block.label)
        self.builder.position_at(cond_block)
        if stmt.cond is not None:
            cond = self._lower_condition(stmt.cond)
            self.builder.br(cond, body_block.label, end_block.label)
        else:
            self.builder.jump(body_block.label)

        self.builder.position_at(body_block)
        self.loop_stack.append((step_block, end_block))
        self._lower_stmt(stmt.body)
        self.loop_stack.pop()
        if not self.builder.terminated:
            self.builder.jump(step_block.label)

        self.builder.position_at(step_block)
        if stmt.step is not None:
            self._lower_stmt(stmt.step)
        self.builder.jump(cond_block.label)

        self.builder.position_at(end_block)
        self.scopes.pop()

    def _lower_return(self, stmt: ast.Return) -> None:
        declared = self.func_ast.return_type
        if declared.is_void:
            if stmt.value is not None:
                raise self._err(stmt.line, "void function returns a value")
            self.builder.ret()
            return
        if stmt.value is None:
            raise self._err(stmt.line, "non-void function returns nothing")
        typed = self._lower_expr(stmt.value)
        self.builder.ret(self._coerce(stmt.line, typed, declared))

    # -- driver ------------------------------------------------------------

    def lower(self) -> IRFunction:
        entry = self.function.add_block("entry")
        self.builder.position_at(entry)
        self.scopes.append({})
        for param, arg in zip(self.func_ast.params, self.function.args):
            slot = self.builder.alloca(_ir_type(param.type),
                                       name=f"{param.name}.addr")
            self.builder.store(arg, slot)
            self._declare(self.func_ast.line, param.name,
                          _Binding(slot, param.type))
        self._lower_stmt(self.func_ast.body)
        if not self.builder.terminated:
            if self.func_ast.return_type.is_void:
                self.builder.ret()
            elif self.func_ast.name == "main":
                self.builder.ret(Constant(0, I32))
            else:
                raise self._err(self.func_ast.line,
                                "control reaches end of non-void function")
        self.scopes.pop()
        self._prune_unreachable_blocks()
        return self.function

    def _prune_unreachable_blocks(self) -> None:
        """Drop blocks with no terminator left dangling by early returns."""
        for block in self.function.blocks:
            if block.terminator is None and not block.instructions:
                # Empty join block after a statement that always returns:
                # give it an explicit terminator so the verifier passes.
                if self.func_ast.return_type.is_void:
                    block.append(Ret())
                else:
                    block.append(
                        Ret(Constant(0, _ir_type(self.func_ast.return_type)))
                    )


def compile_to_ir(source: str) -> IRModule:
    """Compile mini-C source text to a verified IR module."""
    from repro.ir.verifier import verify_module
    from repro.minic.parser import parse

    program = parse(source)
    module = IRModule()
    signatures = {
        f.name: (tuple(p.type for p in f.params), f.return_type)
        for f in program.functions
    }
    if len(signatures) != len(program.functions):
        raise SemanticError("duplicate function definition")
    for func_ast in program.functions:
        if func_ast.name in BUILTINS:
            raise SemanticError(f"{func_ast.name!r} shadows a builtin")
        module.add_function(
            _FunctionLowering(module, func_ast, signatures).lower()
        )
    verify_module(module)
    return module
