"""Recursive-descent parser for mini-C.

Produces the AST of :mod:`repro.minic.ast`. Compound assignments and
``++``/``--`` are desugared here (``x += e`` becomes ``x = x + e``) so the
lowering stage only sees plain assignments.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.minic import ast
from repro.minic.lexer import Token, TokenKind, tokenize

_BASE_TYPES = ("int", "long", "void")

#: Binary operator precedence tiers, weakest first.
_PRECEDENCE: tuple[tuple[str, ...], ...] = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)

_COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
                 "<<=": "<<", ">>=": ">>"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _error(self, message: str) -> ParseError:
        tok = self._current
        return ParseError(message, tok.line, tok.column)

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check(self, kind: TokenKind, text: str | None = None) -> bool:
        tok = self._current
        return tok.kind is kind and (text is None or tok.text == text)

    def _match(self, kind: TokenKind, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, text: str | None = None) -> Token:
        token = self._match(kind, text)
        if token is None:
            want = text or kind.value
            raise self._error(f"expected {want!r}, found {self._current.text!r}")
        return token

    def _at_type(self) -> bool:
        return self._current.kind is TokenKind.KEYWORD and \
            self._current.text in _BASE_TYPES

    # -- grammar -------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        functions = []
        while not self._check(TokenKind.EOF):
            functions.append(self._function())
        return ast.Program(tuple(functions))

    def _type_name(self) -> ast.TypeName:
        base = self._expect(TokenKind.KEYWORD).text
        if base not in _BASE_TYPES:
            raise self._error(f"{base!r} is not a type")
        depth = 0
        while self._match(TokenKind.OP, "*"):
            depth += 1
        return ast.TypeName(base, depth)

    def _function(self) -> ast.FunctionDef:
        line = self._current.line
        return_type = self._type_name()
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.OP, "(")
        params: list[ast.Param] = []
        if not self._check(TokenKind.OP, ")"):
            while True:
                ptype = self._type_name()
                pname = self._expect(TokenKind.IDENT).text
                params.append(ast.Param(ptype, pname))
                if not self._match(TokenKind.OP, ","):
                    break
        self._expect(TokenKind.OP, ")")
        body = self._block()
        return ast.FunctionDef(line, return_type, name, tuple(params), body)

    def _block(self) -> ast.Block:
        line = self._current.line
        self._expect(TokenKind.OP, "{")
        statements: list[ast.Stmt] = []
        while not self._check(TokenKind.OP, "}"):
            if self._check(TokenKind.EOF):
                raise self._error("unterminated block")
            statements.append(self._statement())
        self._expect(TokenKind.OP, "}")
        return ast.Block(line, tuple(statements))

    def _statement(self) -> ast.Stmt:
        line = self._current.line
        if self._check(TokenKind.OP, "{"):
            return self._block()
        if self._check(TokenKind.KEYWORD, "if"):
            return self._if()
        if self._check(TokenKind.KEYWORD, "while"):
            return self._while()
        if self._check(TokenKind.KEYWORD, "for"):
            return self._for()
        if self._match(TokenKind.KEYWORD, "return"):
            value = None
            if not self._check(TokenKind.OP, ";"):
                value = self._expression()
            self._expect(TokenKind.OP, ";")
            return ast.Return(line, value)
        if self._match(TokenKind.KEYWORD, "break"):
            self._expect(TokenKind.OP, ";")
            return ast.Break(line)
        if self._match(TokenKind.KEYWORD, "continue"):
            self._expect(TokenKind.OP, ";")
            return ast.Continue(line)
        if self._at_type():
            return self._declaration()
        stmt = self._simple_statement()
        self._expect(TokenKind.OP, ";")
        return stmt

    def _declaration(self) -> ast.Stmt:
        line = self._current.line
        type_name = self._type_name()
        if type_name.is_void:
            raise self._error("cannot declare a void variable")
        name = self._expect(TokenKind.IDENT).text
        array_size = None
        init = None
        if self._match(TokenKind.OP, "["):
            size_tok = self._expect(TokenKind.INT_LITERAL)
            array_size = int(size_tok.text)
            self._expect(TokenKind.OP, "]")
        if self._match(TokenKind.OP, "="):
            if array_size is not None:
                raise self._error("array initializers are not supported")
            init = self._expression()
        self._expect(TokenKind.OP, ";")
        return ast.Declaration(line, type_name, name, array_size, init)

    def _if(self) -> ast.Stmt:
        line = self._current.line
        self._expect(TokenKind.KEYWORD, "if")
        self._expect(TokenKind.OP, "(")
        cond = self._expression()
        self._expect(TokenKind.OP, ")")
        then_body = self._statement()
        else_body = None
        if self._match(TokenKind.KEYWORD, "else"):
            else_body = self._statement()
        return ast.If(line, cond, then_body, else_body)

    def _while(self) -> ast.Stmt:
        line = self._current.line
        self._expect(TokenKind.KEYWORD, "while")
        self._expect(TokenKind.OP, "(")
        cond = self._expression()
        self._expect(TokenKind.OP, ")")
        body = self._statement()
        return ast.While(line, cond, body)

    def _for(self) -> ast.Stmt:
        line = self._current.line
        self._expect(TokenKind.KEYWORD, "for")
        self._expect(TokenKind.OP, "(")
        init: ast.Stmt | None = None
        if not self._check(TokenKind.OP, ";"):
            init = self._declaration_or_simple()
        else:
            self._expect(TokenKind.OP, ";")
        cond: ast.Expr | None = None
        if not self._check(TokenKind.OP, ";"):
            cond = self._expression()
        self._expect(TokenKind.OP, ";")
        step: ast.Stmt | None = None
        if not self._check(TokenKind.OP, ")"):
            step = self._simple_statement()
        self._expect(TokenKind.OP, ")")
        body = self._statement()
        return ast.For(line, init, cond, step, body)

    def _declaration_or_simple(self) -> ast.Stmt:
        if self._at_type():
            return self._declaration()  # consumes the ';'
        stmt = self._simple_statement()
        self._expect(TokenKind.OP, ";")
        return stmt

    def _simple_statement(self) -> ast.Stmt:
        """Assignment, increment, or bare expression (no trailing ';')."""
        line = self._current.line
        expr = self._expression()
        if self._match(TokenKind.OP, "="):
            value = self._expression()
            return ast.Assign(line, self._require_lvalue(expr), value)
        for op_text, base_op in _COMPOUND_OPS.items():
            if self._match(TokenKind.OP, op_text):
                value = self._expression()
                target = self._require_lvalue(expr)
                return ast.Assign(line, target,
                                  ast.Binary(line, base_op, expr, value))
        if self._match(TokenKind.OP, "++"):
            target = self._require_lvalue(expr)
            one = ast.IntLiteral(line, 1)
            return ast.Assign(line, target, ast.Binary(line, "+", expr, one))
        if self._match(TokenKind.OP, "--"):
            target = self._require_lvalue(expr)
            one = ast.IntLiteral(line, 1)
            return ast.Assign(line, target, ast.Binary(line, "-", expr, one))
        return ast.ExprStmt(line, expr)

    def _require_lvalue(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, (ast.VarRef, ast.Index)):
            return expr
        raise self._error("assignment target must be a variable or index")

    # -- expressions -----------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._binary(0)

    def _binary(self, tier: int) -> ast.Expr:
        if tier >= len(_PRECEDENCE):
            return self._unary()
        lhs = self._binary(tier + 1)
        ops = _PRECEDENCE[tier]
        while self._current.kind is TokenKind.OP and self._current.text in ops:
            op = self._advance().text
            rhs = self._binary(tier + 1)
            lhs = ast.Binary(lhs.line, op, lhs, rhs)
        return lhs

    def _unary(self) -> ast.Expr:
        line = self._current.line
        if self._match(TokenKind.OP, "-"):
            return ast.Unary(line, "-", self._unary())
        if self._match(TokenKind.OP, "!"):
            return ast.Unary(line, "!", self._unary())
        if self._match(TokenKind.OP, "+"):
            return self._unary()
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            if self._match(TokenKind.OP, "["):
                index = self._expression()
                self._expect(TokenKind.OP, "]")
                expr = ast.Index(expr.line, expr, index)
            elif self._check(TokenKind.OP, "(") and isinstance(expr, ast.VarRef):
                self._advance()
                args: list[ast.Expr] = []
                if not self._check(TokenKind.OP, ")"):
                    while True:
                        args.append(self._expression())
                        if not self._match(TokenKind.OP, ","):
                            break
                self._expect(TokenKind.OP, ")")
                expr = ast.CallExpr(expr.line, expr.name, tuple(args))
            else:
                return expr

    def _primary(self) -> ast.Expr:
        tok = self._current
        if tok.kind is TokenKind.INT_LITERAL:
            self._advance()
            return ast.IntLiteral(tok.line, int(tok.text))
        if tok.kind is TokenKind.IDENT:
            self._advance()
            return ast.VarRef(tok.line, tok.text)
        if self._match(TokenKind.OP, "("):
            expr = self._expression()
            self._expect(TokenKind.OP, ")")
            return expr
        raise self._error(f"unexpected token {tok.text!r}")


def parse(source: str) -> ast.Program:
    """Parse mini-C source text into an AST."""
    return _Parser(tokenize(source)).parse_program()
