"""Mini-C frontend.

A small C-like language sufficient for the Rodinia-style workloads:

* types ``int`` (32-bit), ``long`` (64-bit), ``void``, and pointers;
* functions, locals, fixed-size local arrays (which decay to pointers);
* ``if``/``else``, ``while``, ``for``, ``break``, ``continue``, ``return``;
* integer arithmetic (`+ - * / % << >> & | ^`), comparisons, short-circuit
  ``&&``/``||``, unary ``-``/``!``, compound assignment, ``++``/``--``;
* indexing ``p[i]`` on pointers/arrays, address-free (no ``&``);
* builtin runtime: ``malloc``, ``free``, ``print_int``, ``print_long``,
  ``srand``, ``rand_next``, ``exit``.

Lowering is clang -O0 style: every local lives in an ``alloca`` slot and
every expression loads/stores through it — deliberately, because the
paper's cross-layer effects come from compiling exactly this IR shape.
"""

from repro.minic.lexer import Token, TokenKind, tokenize
from repro.minic.parser import parse
from repro.minic.lowering import compile_to_ir

__all__ = ["Token", "TokenKind", "compile_to_ir", "parse", "tokenize"]
