"""Bit-level helpers shared by the machine simulator and the fault injector.

All register values are stored as unsigned Python integers masked to the
register width; these helpers centralize the masking and signedness rules so
instruction semantics stay short and uniform.
"""

from __future__ import annotations

_MASK_CACHE = {w: (1 << w) - 1 for w in (1, 8, 16, 32, 64, 128, 256)}


def mask_for_width(width: int) -> int:
    """Return an all-ones mask for a bit ``width``.

    >>> hex(mask_for_width(8))
    '0xff'
    """
    try:
        return _MASK_CACHE[width]
    except KeyError:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}") from None
        return (1 << width) - 1


def to_unsigned(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits, interpreting it as unsigned.

    >>> to_unsigned(-1, 8)
    255
    """
    return value & mask_for_width(width)


def to_signed(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as a two's-complement int.

    >>> to_signed(255, 8)
    -1
    >>> to_signed(127, 8)
    127
    """
    value &= mask_for_width(width)
    sign_bit = 1 << (width - 1)
    if value & sign_bit:
        return value - (1 << width)
    return value


def sign_extend(value: int, from_width: int, to_width: int) -> int:
    """Sign-extend the low ``from_width`` bits of ``value`` to ``to_width``.

    >>> hex(sign_extend(0xFF, 8, 16))
    '0xffff'
    """
    if to_width < from_width:
        raise ValueError(
            f"cannot sign-extend from {from_width} to narrower {to_width}"
        )
    return to_unsigned(to_signed(value, from_width), to_width)


def zero_extend(value: int, from_width: int) -> int:
    """Zero-extend: simply truncate to ``from_width`` bits (upper bits clear)."""
    return to_unsigned(value, from_width)


def trunc_div(dividend: int, divisor: int) -> int:
    """Integer division truncating toward zero (x86 ``idiv`` rounding).

    Computed entirely in integer arithmetic: ``int(a / b)`` goes through a
    float and silently loses precision once ``a`` exceeds 2**53.

    >>> trunc_div(7, 2), trunc_div(-7, 2), trunc_div(7, -2)
    (3, -3, -3)
    >>> trunc_div((1 << 62) + 12345, 7)
    658812288346771464
    """
    quotient = abs(dividend) // abs(divisor)
    return -quotient if (dividend < 0) != (divisor < 0) else quotient


def flip_bit(value: int, bit: int, width: int) -> int:
    """Return ``value`` with bit index ``bit`` flipped, masked to ``width``.

    This is the primitive used by the fault injector to realize a single
    bit-flip transient fault in a destination register.

    >>> flip_bit(0, 3, 8)
    8
    >>> flip_bit(8, 3, 8)
    0
    """
    if not 0 <= bit < width:
        raise ValueError(f"bit {bit} out of range for width {width}")
    return (value ^ (1 << bit)) & mask_for_width(width)


def popcount(value: int) -> int:
    """Number of set bits (used for parity-flag semantics)."""
    return bin(value & ((1 << 256) - 1)).count("1")


def parity_even(value: int) -> bool:
    """x86 parity flag: set when the low byte has an even number of set bits."""
    return popcount(value & 0xFF) % 2 == 0
