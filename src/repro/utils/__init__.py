"""Small shared utilities: bit manipulation, deterministic RNG, text tables."""

from repro.utils.bitops import (
    flip_bit,
    mask_for_width,
    sign_extend,
    to_signed,
    to_unsigned,
)
from repro.utils.rng import DeterministicRng
from repro.utils.text import format_table

__all__ = [
    "DeterministicRng",
    "flip_bit",
    "format_table",
    "mask_for_width",
    "sign_extend",
    "to_signed",
    "to_unsigned",
]
