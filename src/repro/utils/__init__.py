"""Small shared utilities: bits, RNG, text tables, journaling, locking."""

from repro.utils.bitops import (
    flip_bit,
    mask_for_width,
    sign_extend,
    to_signed,
    to_unsigned,
)
from repro.utils.journal import (
    Journal,
    append_jsonl,
    durable_replace,
    fsync_dir,
    scan_jsonl,
)
from repro.utils.locking import FileLock, LockHeldError
from repro.utils.rng import DeterministicRng
from repro.utils.text import format_table

__all__ = [
    "DeterministicRng",
    "FileLock",
    "Journal",
    "LockHeldError",
    "append_jsonl",
    "durable_replace",
    "flip_bit",
    "format_table",
    "fsync_dir",
    "mask_for_width",
    "scan_jsonl",
    "sign_extend",
    "to_signed",
    "to_unsigned",
]
