"""Advisory file locking for single-writer on-disk state.

The campaign service holds one :class:`FileLock` on its state directory
for its whole run so two services can never interleave journal appends.
The lock is advisory (``flock``-based where available): it protects
cooperating processes, not against hostile writers.

``flock`` locks die with their holder, so a ``kill -9`` never leaves a
stale lock behind — exactly the property a kill-anywhere-resumable
service needs. On platforms without ``fcntl`` the class degrades to a
create-exclusive pidfile with staleness detection (a dead holder's lock
is reclaimed).
"""

from __future__ import annotations

import os

from repro.errors import ServiceError

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    except OSError:  # pragma: no cover
        return False
    return True


class LockHeldError(ServiceError):
    """The lock is currently held by another live process."""


class FileLock:
    """An exclusive advisory lock on one path.

    Usage::

        with FileLock(state_dir / "lock"):
            ...  # sole writer of the state directory

    ``acquire`` raises :class:`LockHeldError` when another live process
    holds the lock; it never blocks.
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._fd: int | None = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> "FileLock":
        if self._fd is not None:
            return self
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                os.close(fd)
                raise LockHeldError(
                    f"{self.path} is locked by another campaign service; "
                    f"only one service may own a state directory at a time"
                ) from None
        else:  # pragma: no cover - non-POSIX fallback
            data = os.pread(fd, 32, 0).decode("ascii", "replace").strip()
            if data.isdigit() and _pid_alive(int(data)):
                os.close(fd)
                raise LockHeldError(
                    f"{self.path} is held by live pid {data}"
                )
        os.ftruncate(fd, 0)
        os.pwrite(fd, f"{os.getpid()}\n".encode("ascii"), 0)
        self._fd = fd
        return self

    def release(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:  # pragma: no cover
                pass
        os.close(fd)

    def close_inherited(self) -> None:
        """Drop a fork-inherited copy of the lock without releasing it.

        ``flock`` locks attach to the open file description, which fork
        shares between parent and child: a child calling :meth:`release`
        would ``LOCK_UN`` the parent's lock too. Worker processes call
        this instead — it closes the child's fd (so the lock dies when
        the *parent* does, not when the longest-lived worker does) while
        the parent's descriptor keeps the lock held.
        """
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        os.close(fd)

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()
