"""Plain-text table rendering for experiment reports.

The evaluation harness prints paper-style tables (Table I, Table II, the
Fig. 10/11 series) to stdout; this module holds the one formatting routine
they share.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    >>> print(format_table(["a", "b"], [[1, 22]]))
    a | b
    --+---
    1 | 22
    """
    cells = [[str(h) for h in headers]]
    cells.extend([str(c) for c in row] for row in rows)
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def percent(value: float, digits: int = 1) -> str:
    """Format a ratio as a percentage string: 0.2983 -> '29.8%'."""
    return f"{value * 100:.{digits}f}%"
