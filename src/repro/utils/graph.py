"""Generic CFG analyses: dominators and natural-loop detection.

Compositional campaigns (``repro.faultinjection.compose``) partition a
program into sections at function and loop-nest boundaries. The loop
structure comes from the classic construction: a back edge is an edge
``u -> h`` where ``h`` dominates ``u``; its natural loop is ``h`` plus
every node that reaches ``u`` without passing through ``h``. The algorithms
here are graph-shaped only — node identity is opaque — so the assembly CFG
(:mod:`repro.asm.analysis`) and the IR CFG (:mod:`repro.ir.loops`) share
one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence, TypeVar

Node = TypeVar("Node", bound=Hashable)


def reachable(
    entry: Node, succs: Mapping[Node, Sequence[Node]]
) -> set[Node]:
    """Nodes reachable from ``entry`` (including it) via ``succs``."""
    seen = {entry}
    work = [entry]
    while work:
        node = work.pop()
        for succ in succs.get(node, ()):
            if succ not in seen:
                seen.add(succ)
                work.append(succ)
    return seen


def dominators(
    entry: Node, nodes: Sequence[Node], succs: Mapping[Node, Sequence[Node]]
) -> dict[Node, set[Node]]:
    """Map each reachable node to its dominator set (iterative dataflow).

    Unreachable nodes are omitted: they have no dominators in the usual
    sense and never participate in loops that execution can enter. The
    CFGs this runs on are function bodies (tens of blocks), so the simple
    O(n^2)-per-pass set iteration is plenty.
    """
    live = reachable(entry, succs)
    order = [node for node in nodes if node in live]
    preds: dict[Node, list[Node]] = {node: [] for node in order}
    for node in order:
        for succ in succs.get(node, ()):
            if succ in preds:
                preds[succ].append(node)
    dom: dict[Node, set[Node]] = {node: set(order) for node in order}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for node in order:
            if node == entry:
                continue
            meets = [dom[p] for p in preds[node]]
            new = set.intersection(*meets) if meets else set()
            new.add(node)
            if new != dom[node]:
                dom[node] = new
                changed = True
    return dom


@dataclass(frozen=True)
class Loop:
    """One natural loop: its header and every node in its body.

    ``body`` includes the header. ``depth`` is the nesting depth (1 for an
    outermost loop); loops sharing a header (multiple back edges) are merged
    into one, as is standard.
    """

    header: Hashable
    body: frozenset
    depth: int = 1


def natural_loops(
    entry: Node, nodes: Sequence[Node], succs: Mapping[Node, Sequence[Node]]
) -> list[Loop]:
    """All natural loops of the CFG, outermost first within ties.

    Returns one :class:`Loop` per distinct header, with bodies of
    same-header back edges merged and ``depth`` computed by counting the
    loops that strictly contain each header.
    """
    dom = dominators(entry, nodes, succs)
    bodies: dict[Node, set[Node]] = {}
    for node in dom:
        for succ in succs.get(node, ()):
            if succ in dom and succ in dom[node]:  # back edge node -> succ
                body = bodies.setdefault(succ, {succ})
                work = [node]
                while work:
                    cur = work.pop()
                    if cur in body:
                        continue
                    body.add(cur)
                    work.extend(
                        p for p in dom
                        if cur in succs.get(p, ()) and p not in body
                    )
    loops = []
    for header, body in bodies.items():
        # Merged natural loops nest or are disjoint, so "contained in k loop
        # bodies (including your own)" is exactly the nesting depth.
        depth = sum(1 for other_body in bodies.values() if body <= other_body)
        loops.append(Loop(header, frozenset(body), depth))
    loops.sort(key=lambda loop: (loop.depth, str(loop.header)))
    return loops


def innermost_headers(
    entry: Node, nodes: Sequence[Node], succs: Mapping[Node, Sequence[Node]]
) -> dict[Node, Node | None]:
    """Map every node to the header of its innermost containing loop.

    Nodes outside any loop (and unreachable nodes) map to ``None``. The
    innermost loop of a node is the smallest-body loop containing it —
    natural loops of the same function either nest or are disjoint once
    same-header loops are merged, so smallest-body is well defined.
    """
    loops = natural_loops(entry, nodes, succs)
    result: dict[Node, Node | None] = {node: None for node in nodes}
    for node in nodes:
        containing = [loop for loop in loops if node in loop.body]
        if containing:
            innermost = min(
                containing, key=lambda loop: (len(loop.body), str(loop.header))
            )
            result[node] = innermost.header
    return result
