"""Deterministic random number generation.

Every stochastic choice in the library (fault-site sampling, workload input
generation) flows through :class:`DeterministicRng` so that experiments are
reproducible from a single integer seed. The generator is a thin wrapper over
:class:`random.Random` with a few domain helpers; it exists so call sites
never touch the global ``random`` module.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """Seeded RNG used for every random decision in the library."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this generator was constructed with."""
        return self._seed

    def fork(self, stream: int) -> "DeterministicRng":
        """Derive an independent child generator for a numbered stream.

        Campaigns fork one child per injection run so that adding or removing
        runs never perturbs the samples drawn by other runs.
        """
        return DeterministicRng((self._seed * 1_000_003 + stream) & 0x7FFF_FFFF_FFFF_FFFF)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(seq)

    def sample_bit(self, width: int) -> int:
        """Uniform bit index for a register of ``width`` bits."""
        return self._random.randrange(width)

    def shuffled(self, seq: Sequence[T]) -> list[T]:
        """Return a new shuffled list, leaving the input untouched."""
        items = list(seq)
        self._random.shuffle(items)
        return items
