"""Crash-durable JSONL journaling primitives.

The durable campaign service (:mod:`repro.faultinjection.service`) records
every shard state transition in an append-only JSONL journal and persists
results as atomically-renamed segment files. This module owns the two
durability idioms both rely on:

* **Atomic, fsync'd line appends** — each record is serialized to one
  ``\\n``-terminated line and written with a *single* ``write`` call,
  followed (by default) by ``flush`` + ``fsync``. A crash between appends
  therefore loses at most the record being written, never an earlier one,
  and a torn write can only affect the final line of the file.
* **Torn-tail tolerance** — :func:`scan_jsonl` parses a journal written
  under the discipline above and treats an unparsable *final* line as a
  torn write (returning the byte offset of the last complete record so
  callers can truncate before appending again). Corruption anywhere else
  is a real integrity violation and raises :class:`JournalError`.

:func:`fsync_dir` and :func:`durable_replace` cover the companion idiom:
write a whole file to a temp name, fsync it, ``os.replace`` into place,
fsync the directory — after which the file either exists with complete
contents or not at all.
"""

from __future__ import annotations

import json
import os
from typing import IO, Any

from repro.errors import JournalError


def fsync_dir(path) -> None:
    """fsync the directory containing (or at) ``path``, best effort.

    Needed after ``os.replace`` for the rename itself to be durable. Some
    filesystems refuse ``open(dir)``/``fsync(dirfd)``; those errors are
    swallowed — the rename is still atomic, just not yet on stable storage.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def durable_replace(tmp_path, final_path) -> None:
    """Atomically move a fully-written temp file into place, durably.

    fsyncs the temp file's contents, renames it over ``final_path`` and
    fsyncs the parent directory: observers either see the complete file or
    no file, even across a crash.
    """
    fd = os.open(os.fspath(tmp_path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp_path, final_path)
    fsync_dir(os.path.dirname(os.path.abspath(os.fspath(final_path))))


def append_jsonl(handle: IO[str], record: Any, fsync: bool = True) -> None:
    """Append one record as a single-``write`` JSONL line.

    The serialized line (key-sorted for byte determinism) is handed to the
    file object in one call so a crash can tear at most this line; with
    ``fsync`` the line is on stable storage before the call returns. The
    line is always flushed to the OS, even without ``fsync``, so forked
    worker processes never inherit half-buffered journal data.
    """
    handle.write(json.dumps(record, sort_keys=True) + "\n")
    handle.flush()
    if fsync:
        os.fsync(handle.fileno())


def scan_jsonl(path) -> tuple[list[Any], int, bool]:
    """Parse a JSONL file written with atomic line appends.

    Returns ``(records, clean_bytes, torn)``: the parsed records,
    the byte length of the newline-terminated prefix they occupy, and
    whether a torn trailing record was skipped. Only the *final* line may
    fail to parse (or lack its newline) — that is the torn-write signature
    of a killed writer; a bad line anywhere else raises
    :class:`JournalError` because single-write appends cannot produce it.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    records: list[Any] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            return records, offset, True  # unterminated tail: torn write
        line = data[offset:newline]
        if line.strip():
            try:
                records.append(json.loads(line.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                if data.find(b"\n", newline + 1) < 0 and newline + 1 >= len(data):
                    return records, offset, True  # torn final line
                raise JournalError(
                    f"{path}: corrupt record at byte {offset} is not the "
                    f"final line — the file was not written with atomic "
                    f"line appends: {exc}"
                ) from exc
        offset = newline + 1
    return records, offset, False


class Journal:
    """Append-only JSONL journal with torn-tail repair on open.

    Opening replays the existing file (if any) through :func:`scan_jsonl`;
    a torn trailing record — the signature of a ``kill -9`` mid-append —
    is physically truncated away so subsequent appends never concatenate
    onto a half-written line. The replayed records are exposed as
    ``journal.recovered``.
    """

    def __init__(self, path, fsync: bool = True) -> None:
        self.path = os.fspath(path)
        self.fsync = fsync
        self.recovered: list[Any] = []
        if os.path.exists(self.path):
            records, clean_bytes, torn = scan_jsonl(self.path)
            self.recovered = records
            if torn:
                with open(self.path, "r+b") as handle:
                    handle.truncate(clean_bytes)
                    if fsync:
                        handle.flush()
                        os.fsync(handle.fileno())
        self._handle: IO[str] | None = open(self.path, "a", encoding="utf-8")

    def append(self, record: Any) -> None:
        if self._handle is None:
            raise JournalError(f"journal {self.path} is closed")
        append_jsonl(self._handle, record, fsync=self.fsync)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
