"""Segmented byte-addressable memory.

Three segments cover what compiled workloads need: a heap served by the
``malloc`` builtin, a downward-growing stack, and a small globals area. Any
access outside a mapped segment raises :class:`SegmentationFault`, which the
fault-injection campaign classifies as a crash — exactly how a wild pointer
dereference behaves on the paper's real machine.

Writes are tracked at page granularity (:data:`PAGE_SIZE`), which makes
:meth:`Memory.snapshot` / :meth:`Memory.restore` cost O(touched pages)
instead of O(address space) — the primitive under the checkpointed
fault-injection engine (see ``docs/fault_model.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SegmentationFault

#: Granularity of dirty tracking for memory snapshots (bytes).
PAGE_SIZE = 4096
_PAGE_SHIFT = 12


@dataclass(frozen=True)
class MemoryLayout:
    """Base addresses and sizes of the three segments (bytes)."""

    globals_base: int = 0x0001_0000
    globals_size: int = 16 * 1024
    heap_base: int = 0x0010_0000
    heap_size: int = 2 * 1024 * 1024
    stack_top: int = 0x7FFF_0000
    stack_size: int = 256 * 1024

    @property
    def stack_base(self) -> int:
        return self.stack_top - self.stack_size


@dataclass(frozen=True)
class MemorySnapshot:
    """Dirty pages of every segment at one instant.

    ``pages[i]`` maps page index -> immutable page contents for segment
    ``i`` (in :class:`Memory`'s segment order); only pages written since the
    memory was constructed appear, so snapshot size tracks the program's
    working set, not the mapped address space.
    """

    pages: tuple[dict[int, bytes], ...]


class _Segment:
    __slots__ = ("name", "start", "data", "dirty")

    def __init__(self, name: str, start: int, size: int) -> None:
        self.name = name
        self.start = start
        self.data = bytearray(size)
        self.dirty: set[int] = set()

    @property
    def end(self) -> int:
        return self.start + len(self.data)

    def contains(self, addr: int, size: int) -> bool:
        return self.start <= addr and addr + size <= self.end

    def snapshot_pages(self) -> dict[int, bytes]:
        data = self.data
        return {
            page: bytes(data[page << _PAGE_SHIFT : (page + 1) << _PAGE_SHIFT])
            for page in self.dirty
        }

    def reset(self) -> None:
        """Zero every dirty page in place; cost is O(pages written so far)."""
        data = self.data
        size = len(data)
        for page in self.dirty:
            start = page << _PAGE_SHIFT
            end = min(start + PAGE_SIZE, size)
            data[start:end] = bytes(end - start)
        self.dirty.clear()

    def restore_pages(self, pages: dict[int, bytes]) -> None:
        data = self.data
        # Pages written after the snapshot but untouched before it revert
        # to their zero-fill state.
        for page in self.dirty - pages.keys():
            start = page << _PAGE_SHIFT
            data[start : start + PAGE_SIZE] = bytes(PAGE_SIZE)
        for page, contents in pages.items():
            start = page << _PAGE_SHIFT
            data[start : start + len(contents)] = contents
        # In place, not rebound: the fused execution engine captures
        # ``dirty.add`` as a bound method at translation time, so the set —
        # like the backing bytearray — must stay identity-stable across
        # restores.
        self.dirty.clear()
        self.dirty.update(pages)


class Memory:
    """Little-endian memory over the configured segments."""

    def __init__(self, layout: MemoryLayout | None = None) -> None:
        self.layout = layout or MemoryLayout()
        # Stack first: rbp-relative slot traffic dominates -O0 code, so the
        # linear segment scan should hit it on the first probe.
        self._segments = (
            _Segment("stack", self.layout.stack_base, self.layout.stack_size),
            _Segment("heap", self.layout.heap_base, self.layout.heap_size),
            _Segment("globals", self.layout.globals_base, self.layout.globals_size),
        )

    def _segment_for(self, addr: int, size: int) -> _Segment:
        for seg in self._segments:
            if seg.contains(addr, size):
                return seg
        raise SegmentationFault(
            f"access of {size} bytes at {addr:#x} hits no mapped segment"
        )

    def read_uint(self, addr: int, size: int) -> int:
        """Read ``size`` bytes at ``addr`` as a little-endian unsigned int."""
        seg = self._segment_for(addr, size)
        off = addr - seg.start
        return int.from_bytes(seg.data[off : off + size], "little")

    def write_uint(self, addr: int, value: int, size: int) -> None:
        """Write the low ``size`` bytes of ``value`` at ``addr``."""
        seg = self._segment_for(addr, size)
        off = addr - seg.start
        seg.data[off : off + size] = (value & ((1 << (size * 8)) - 1)).to_bytes(
            size, "little"
        )
        first = off >> _PAGE_SHIFT
        last = (off + size - 1) >> _PAGE_SHIFT
        seg.dirty.add(first)
        if last != first:
            seg.dirty.add(last)

    def read_bytes(self, addr: int, size: int) -> bytes:
        seg = self._segment_for(addr, size)
        off = addr - seg.start
        return bytes(seg.data[off : off + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        seg = self._segment_for(addr, len(data))
        off = addr - seg.start
        seg.data[off : off + len(data)] = data
        seg.dirty.update(
            range(off >> _PAGE_SHIFT, ((off + len(data) - 1) >> _PAGE_SHIFT) + 1)
        )

    def reset(self) -> None:
        """Return memory to its zero-fill construction state, in place.

        Only pages actually written are cleared, so resetting between runs
        is O(working set) rather than O(address space). The segment
        bytearrays keep their identity — the translated execution engine
        captures this object (and its bound read/write methods) once at
        translation time.
        """
        for seg in self._segments:
            seg.reset()

    # -- divergence-cone write tracking ------------------------------------

    def begin_write_watch(self) -> tuple[set[int], ...]:
        """Start tracking pages written from this instant.

        Each segment's dirty set is saved aside and cleared *in place* (the
        fused engine captures ``dirty.add`` as a bound method at translation
        time, so the set object must keep its identity). Until
        :meth:`end_write_watch` the live dirty sets contain exactly the
        pages written since this call — the memory half of a faulted run's
        divergence cone (see :mod:`repro.machine.converge`).
        """
        saved = tuple(set(seg.dirty) for seg in self._segments)
        for seg in self._segments:
            seg.dirty.clear()
        return saved

    def watched_writes(self) -> tuple[set[int], ...]:
        """Per-segment pages written since :meth:`begin_write_watch`.

        Returns the live dirty sets — read-only use; copy before mutating.
        """
        return tuple(seg.dirty for seg in self._segments)

    def end_write_watch(self, saved: tuple[set[int], ...]) -> None:
        """Merge the pre-watch dirty pages back into the live sets.

        Must run before any :meth:`restore`: the restore path zero-fills
        ``dirty - snapshot`` pages, so a truncated dirty set would leak
        stale page contents into the next run.
        """
        for seg, before in zip(self._segments, saved):
            seg.dirty |= before

    def page_view(self, segment: int, page: int) -> memoryview:
        """Read-only, copy-free view of one page of segment ``segment``."""
        seg = self._segments[segment]
        start = page << _PAGE_SHIFT
        return memoryview(seg.data)[start : start + PAGE_SIZE]

    # -- checkpoint/restore ------------------------------------------------

    def snapshot(self) -> MemorySnapshot:
        """Capture every dirty page; cost is O(pages written so far)."""
        return MemorySnapshot(
            pages=tuple(seg.snapshot_pages() for seg in self._segments)
        )

    def restore(self, snap: MemorySnapshot) -> None:
        """Return memory exactly to ``snap``'s contents.

        Cost is O(pages dirty now ∪ pages dirty at snapshot time): dirtied
        pages absent from the snapshot are zeroed, snapshotted pages are
        copied back, everything else is untouched (still zero-fill).
        """
        for seg, pages in zip(self._segments, snap.pages):
            seg.restore_pages(pages)
