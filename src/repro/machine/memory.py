"""Segmented byte-addressable memory.

Three segments cover what compiled workloads need: a heap served by the
``malloc`` builtin, a downward-growing stack, and a small globals area. Any
access outside a mapped segment raises :class:`SegmentationFault`, which the
fault-injection campaign classifies as a crash — exactly how a wild pointer
dereference behaves on the paper's real machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SegmentationFault


@dataclass(frozen=True)
class MemoryLayout:
    """Base addresses and sizes of the three segments (bytes)."""

    globals_base: int = 0x0001_0000
    globals_size: int = 16 * 1024
    heap_base: int = 0x0010_0000
    heap_size: int = 2 * 1024 * 1024
    stack_top: int = 0x7FFF_0000
    stack_size: int = 256 * 1024

    @property
    def stack_base(self) -> int:
        return self.stack_top - self.stack_size


class _Segment:
    __slots__ = ("name", "start", "data")

    def __init__(self, name: str, start: int, size: int) -> None:
        self.name = name
        self.start = start
        self.data = bytearray(size)

    @property
    def end(self) -> int:
        return self.start + len(self.data)

    def contains(self, addr: int, size: int) -> bool:
        return self.start <= addr and addr + size <= self.end


class Memory:
    """Little-endian memory over the configured segments."""

    def __init__(self, layout: MemoryLayout | None = None) -> None:
        self.layout = layout or MemoryLayout()
        # Stack first: rbp-relative slot traffic dominates -O0 code, so the
        # linear segment scan should hit it on the first probe.
        self._segments = (
            _Segment("stack", self.layout.stack_base, self.layout.stack_size),
            _Segment("heap", self.layout.heap_base, self.layout.heap_size),
            _Segment("globals", self.layout.globals_base, self.layout.globals_size),
        )

    def _segment_for(self, addr: int, size: int) -> _Segment:
        for seg in self._segments:
            if seg.contains(addr, size):
                return seg
        raise SegmentationFault(
            f"access of {size} bytes at {addr:#x} hits no mapped segment"
        )

    def read_uint(self, addr: int, size: int) -> int:
        """Read ``size`` bytes at ``addr`` as a little-endian unsigned int."""
        seg = self._segment_for(addr, size)
        off = addr - seg.start
        return int.from_bytes(seg.data[off : off + size], "little")

    def write_uint(self, addr: int, value: int, size: int) -> None:
        """Write the low ``size`` bytes of ``value`` at ``addr``."""
        seg = self._segment_for(addr, size)
        off = addr - seg.start
        seg.data[off : off + size] = (value & ((1 << (size * 8)) - 1)).to_bytes(
            size, "little"
        )

    def read_bytes(self, addr: int, size: int) -> bytes:
        seg = self._segment_for(addr, size)
        off = addr - seg.start
        return bytes(seg.data[off : off + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        seg = self._segment_for(addr, len(data))
        off = addr - seg.start
        seg.data[off : off + len(data)] = data
