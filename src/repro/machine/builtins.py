"""Builtin runtime functions the machine provides to compiled programs.

The mini-C workloads rely on a tiny libc-like runtime; rather than compiling
one, the machine services these calls natively (they are *not* fault-
injection targets, mirroring how the paper's protection scope excludes
library code). Arguments arrive in the SysV integer argument registers,
results return in ``rax``.

Provided:

* ``malloc(size)`` / ``free(ptr)`` — bump allocator over the heap segment.
* ``print_int(x)`` / ``print_long(x)`` — append a line of program output.
* ``srand(seed)`` / ``rand_next()`` — deterministic LCG, so workload inputs
  are reproducible across raw and protected runs.
* ``exit(code)`` — stop the program.
* ``__eddi_detect()`` — the detection handler every checker jumps to; raises
  :class:`DetectionExit`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import DetectionExit, MachineFault
from repro.utils.bitops import to_signed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.cpu import Machine

#: Name of the detection handler checkers call (the paper's
#: ``exit_function``).
DETECT_FUNCTION = "__eddi_detect"

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


def _arg(machine: "Machine", index: int) -> int:
    from repro.asm.registers import ARG_GPRS, get_register

    return machine.registers.read(get_register(ARG_GPRS[index]))


def _builtin_malloc(machine: "Machine") -> int:
    size = _arg(machine, 0)
    aligned = (size + 15) & ~15
    layout = machine.memory.layout
    if machine.heap_cursor + aligned > layout.heap_base + layout.heap_size:
        raise MachineFault(f"heap exhausted allocating {size} bytes")
    addr = machine.heap_cursor
    machine.heap_cursor += max(aligned, 16)
    return addr


def _builtin_free(machine: "Machine") -> int:
    # Bump allocator: free is a no-op, like many arena allocators.
    return 0


def _builtin_print_int(machine: "Machine") -> int:
    value = to_signed(_arg(machine, 0), 32)
    machine.output.append(str(value))
    return 0


def _builtin_print_long(machine: "Machine") -> int:
    value = to_signed(_arg(machine, 0), 64)
    machine.output.append(str(value))
    return 0


def _builtin_srand(machine: "Machine") -> int:
    machine.lcg_state = _arg(machine, 0) & _LCG_MASK
    return 0


def _builtin_rand_next(machine: "Machine") -> int:
    machine.lcg_state = (machine.lcg_state * _LCG_MULT + _LCG_INC) & _LCG_MASK
    # Positive 31-bit result, like libc rand().
    return (machine.lcg_state >> 33) & 0x7FFF_FFFF


def _builtin_exit(machine: "Machine") -> int:
    machine.request_exit(to_signed(_arg(machine, 0), 32))
    return 0


def _builtin_detect(machine: "Machine") -> int:
    raise DetectionExit("EDDI checker reported a mismatch")


_BUILTINS: dict[str, Callable[["Machine"], int]] = {
    "malloc": _builtin_malloc,
    "free": _builtin_free,
    "print_int": _builtin_print_int,
    "print_long": _builtin_print_long,
    "srand": _builtin_srand,
    "rand_next": _builtin_rand_next,
    "exit": _builtin_exit,
    DETECT_FUNCTION: _builtin_detect,
}


def is_builtin(name: str) -> bool:
    """True when ``name`` is serviced natively by the machine."""
    return name in _BUILTINS


def builtin_names() -> tuple[str, ...]:
    return tuple(_BUILTINS)


def get_builtin(name: str) -> Callable[["Machine"], int]:
    """The builtin callable itself, for pre-resolution at program load."""
    return _BUILTINS[name]


def call_builtin(machine: "Machine", name: str) -> int:
    """Execute builtin ``name``; returns the value to place in ``rax``."""
    return _BUILTINS[name](machine)
