"""The machine: program loading, fetch/execute loop, fault-site hooks.

A :class:`Machine` is constructed once per program; each :meth:`Machine.run`
resets architectural state and executes from a chosen entry function until
``ret`` to the sentinel frame, an ``exit`` call, an architectural fault, the
instruction budget, or a protection-checker detection.

Fault injection attaches through ``fault_hook``: the machine numbers every
dynamically executed *fault site* (instruction with at least one register or
FLAGS destination, the paper's fault model) and invokes the hook right after
the instruction's writeback, which is where a transient fault in the
destination register manifests.

Execution is also *resumable*: :meth:`Machine.run_to_site` runs fault-free
up to a chosen site ordinal and returns a :class:`MachineSnapshot` — a deep,
O(touched pages) copy of all architectural state — and :meth:`Machine.run`
accepts ``resume_from`` to continue from such a snapshot. The checkpointed
fault-injection engine (``repro.faultinjection.campaign``) uses this to
execute the shared golden prefix of a campaign once instead of once per
sampled fault.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.asm.instructions import Instruction, InstrKind
from repro.asm.program import AsmProgram, validate_program
from repro.asm.registers import ARG_GPRS, get_register
from repro.errors import (
    EngineConfigError,
    ExecutionLimitExceeded,
    MachineError,
    MachineFault,
)
from repro.machine.builtins import get_builtin, is_builtin
from repro.machine.memory import Memory, MemoryLayout, MemorySnapshot
from repro.machine.semantics import Flow
from repro.machine.state import RegisterFile, RegisterFileSnapshot
from repro.machine.timing import TimingConfig, TimingModel
from repro.utils.bitops import to_signed

#: Return-address sentinel marking the bottom of the call stack.
_SENTINEL = (1 << 64) - 1

#: Supported execution engines: the pre-translated threaded-code engine, the
#: superblock-fusing engine layered on top of it, and the reference
#: interpreter kept as the semantic oracle.
ENGINES = ("translated", "fused", "reference")

#: Environment variable overriding the default engine (used when ``engine``
#: is not passed explicitly; see ``docs/performance.md``).
ENGINE_ENV_VAR = "FERRUM_ENGINE"

#: Shared empty granule list for instructions with no memory traffic.
_NO_GRANULES: list[int] = []

_RSP = get_register("rsp")
_RAX = get_register("rax")
_EAX = get_register("eax")

FaultHook = Callable[["Machine", Instruction, int], None]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one complete (non-crashing) program execution."""

    exit_code: int
    output: tuple[str, ...]
    dynamic_instructions: int
    fault_sites: int
    cycles: int | None = None

    @property
    def output_text(self) -> str:
        return "\n".join(self.output)


@dataclass(frozen=True)
class MachineSnapshot:
    """Deep copy of all architectural and runtime state at one loop point.

    Snapshots are taken at an instruction boundary (never mid-instruction),
    so restoring one and running forward is bit-identical to having run
    straight through. ``executed`` and ``sites`` are cumulative from program
    entry, which keeps instruction budgets and site ordinals of resumed runs
    identical to a from-scratch execution.
    """

    pc: int
    executed: int
    sites: int
    registers: RegisterFileSnapshot
    memory: MemorySnapshot
    output: tuple[str, ...]
    heap_cursor: int
    lcg_state: int


class Machine:
    """Executes an :class:`AsmProgram` over simulated architectural state."""

    def __new__(cls, program: AsmProgram, *args, **kwargs) -> "Machine":
        # Programs that embed a runtime detector (e.g. DME's lockstep
        # variant pair) name their machine type via a ``machine_class``
        # hook; constructing ``Machine(program)`` then transparently yields
        # that subclass, so campaign engines, the compose cache and the
        # durable service never special-case detector programs.
        if cls is Machine:
            factory = getattr(program, "machine_class", None)
            if factory is not None:
                return object.__new__(factory())
        return object.__new__(cls)

    def __init__(
        self,
        program: AsmProgram,
        layout: MemoryLayout | None = None,
        max_instructions: int = 50_000_000,
        engine: str | None = None,
    ) -> None:
        """Load ``program`` and pick an execution engine.

        ``engine`` selects ``"translated"`` (pre-compiled threaded code, the
        default), ``"fused"`` (superblocks compiled over the threaded code,
        with dead-flag elision; see ``docs/performance.md``) or
        ``"reference"`` (the per-instruction handler interpreter, kept as
        the semantic oracle). When not passed explicitly, the
        ``FERRUM_ENGINE`` environment variable is honored. All engines are
        bit-identical in results, fault-site numbering, counters, snapshots
        and telemetry; timing-model runs always execute on the reference
        loop, which observes per-access memory traffic.
        """
        validate_program(program)
        self.program = program
        self.layout = layout or MemoryLayout()
        self.max_instructions = max_instructions
        if engine is None:
            engine = os.environ.get(ENGINE_ENV_VAR, "").strip() or "translated"
        if engine not in ENGINES:
            raise EngineConfigError(
                f"unknown execution engine {engine!r} "
                f"(choose from {', '.join(ENGINES)})"
            )
        self.engine = engine

        self._code: list[Instruction] = []
        self._func_of: list[str] = []
        self._label_index: dict[tuple[str, str], int] = {}
        self._entry: dict[str, int] = {}
        for func in program.functions:
            self._entry[func.name] = len(self._code)
            for block in func.blocks:
                self._label_index[(func.name, block.label)] = len(self._code)
                for instr in block.instructions:
                    self._code.append(instr)
                    self._func_of.append(func.name)
        # Fast-path caches: handler and fault-site flag per code index.
        from repro.machine.semantics import handler_for

        self._handlers = [handler_for(instr) for instr in self._code]
        self._is_site = [bool(instr.dest_registers()) for instr in self._code]
        # Pre-resolved control-flow targets: validate_program guarantees
        # every jump label and call target resolves, so dynamic dispatch can
        # index these arrays instead of hashing (function, label) tuples.
        self._jump_pc: list[int] = [-1] * len(self._code)
        self._call_builtin_fn: list[Callable[["Machine"], int] | None] = (
            [None] * len(self._code)
        )
        self._call_entry_pc: list[int] = [-1] * len(self._code)
        for pc, instr in enumerate(self._code):
            kind = instr.kind
            if kind in (InstrKind.JMP, InstrKind.JCC):
                key = (self._func_of[pc], instr.target_label or "")
                self._jump_pc[pc] = self._label_index[key]
            elif kind is InstrKind.CALL:
                target = instr.target_label or ""
                if is_builtin(target):
                    self._call_builtin_fn[pc] = get_builtin(target)
                else:
                    self._call_entry_pc[pc] = self._entry[target]
        # Threaded code, built lazily on the first translated-engine run;
        # fused superblocks likewise on the first fused-engine run.
        self._translation = None
        self._fused = None

        # Mutable per-run state, initialized by _reset().
        self.registers = RegisterFile()
        self.memory = Memory(self.layout)
        self.output: list[str] = []
        self.heap_cursor = self.layout.heap_base
        self.lcg_state = 0x1234_5678
        self._exit_requested = False
        self._exit_code = 0
        self._mem_reads: list[tuple[int, int]] = []
        self._mem_writes: list[tuple[int, int]] = []
        self._collect_mem = False
        # Set by translated call/ret steps around work the reference engine
        # performs after counting the instruction as executed; on a fault,
        # the translated run loop uses it to keep halt counters identical.
        self._post_exec = False
        # Telemetry bookkeeping (see repro.faultinjection.telemetry):
        # executed count at the most recent fault-hook delivery, and at the
        # point a MachineError aborted the run. Their difference is the
        # detection latency in dynamic instructions when a checker fires.
        self.executed_at_site = 0
        self.halt_executed = 0
        self.halt_sites = 0

    # -- helpers used by semantics/builtins ---------------------------------

    def note_mem_read(self, addr: int, size: int) -> None:
        if self._collect_mem:
            self._mem_reads.append((addr, size))

    def note_mem_write(self, addr: int, size: int) -> None:
        if self._collect_mem:
            self._mem_writes.append((addr, size))

    def request_exit(self, code: int) -> None:
        self._exit_requested = True
        self._exit_code = code

    # -- execution -----------------------------------------------------------

    def _reset(self) -> None:
        # In place: the translated engine's compiled steps capture the
        # register-file dicts and memory object at translation time, so
        # their identity must survive across runs.
        self.registers.reset()
        self.memory.reset()
        self.output = []
        self.heap_cursor = self.layout.heap_base
        self.lcg_state = 0x1234_5678
        self._exit_requested = False
        self._exit_code = 0
        self._post_exec = False

    def _prepare(self, function: str, args: tuple[int, ...]) -> int:
        """Reset state and set up the sentinel frame; returns the entry pc."""
        self._reset()
        if function not in self._entry:
            raise MachineFault(f"no entry function {function!r}")
        if len(args) > len(ARG_GPRS):
            raise MachineFault(f"too many arguments ({len(args)})")
        for value, reg_name in zip(args, ARG_GPRS):
            self.registers.write(get_register(reg_name), value & ((1 << 64) - 1))
        rsp = self.layout.stack_top - 16
        self.registers.write(_RSP, rsp - 8)
        self.memory.write_uint(rsp - 8, _SENTINEL, 8)
        return self._entry[function]

    # -- checkpoint/restore ------------------------------------------------

    def _capture(self, pc: int, executed: int, sites: int) -> MachineSnapshot:
        return MachineSnapshot(
            pc=pc,
            executed=executed,
            sites=sites,
            registers=self.registers.snapshot_state(),
            memory=self.memory.snapshot(),
            output=tuple(self.output),
            heap_cursor=self.heap_cursor,
            lcg_state=self.lcg_state,
        )

    def restore_snapshot(self, snap: MachineSnapshot) -> None:
        """Restore all mutable state captured by a :class:`MachineSnapshot`.

        The program counter and the executed/site counters live in the run
        loop, not on the instance; callers resume them by passing the
        snapshot to :meth:`run`/:meth:`run_to_site` as ``resume_from``.
        """
        self.registers.restore_state(snap.registers)
        self.memory.restore(snap.memory)
        self.output = list(snap.output)
        self.heap_cursor = snap.heap_cursor
        self.lcg_state = snap.lcg_state
        self._exit_requested = False
        self._exit_code = 0
        self._collect_mem = False
        self._post_exec = False

    def run_to_site(
        self,
        target_site: int,
        function: str = "main",
        args: tuple[int, ...] = (),
        resume_from: MachineSnapshot | None = None,
        max_instructions: int | None = None,
    ) -> MachineSnapshot:
        """Execute fault-free up to site ``target_site`` and snapshot there.

        The machine stops at the first instruction boundary where
        ``target_site`` dynamic fault sites have completed — i.e. right
        before the instruction that will become site ``target_site``
        executes (modulo interleaved non-site instructions, which run after
        the resume). ``resume_from`` lets checkpoint collection advance
        incrementally: chaining calls executes the shared prefix exactly
        once overall.
        """
        if resume_from is not None:
            if resume_from.sites > target_site:
                raise MachineFault(
                    f"cannot run backwards: snapshot is at site "
                    f"{resume_from.sites}, target is {target_site}"
                )
            self.restore_snapshot(resume_from)
            pc = resume_from.pc
            executed = resume_from.executed
            sites = resume_from.sites
        else:
            pc = self._prepare(function, args)
            executed = 0
            sites = 0
            self._collect_mem = False
        budget = max_instructions if max_instructions is not None else self.max_instructions
        pc, executed, sites, stopped = self._engine_leg(
            pc, executed, sites, budget,
            fault_hook=None, fault_at=-1, stop_at_site=target_site,
        )
        if not stopped:
            raise MachineFault(
                f"program ended after {sites} fault sites, "
                f"before reaching site {target_site}"
            )
        return self._capture(pc, executed, sites)

    def run(
        self,
        function: str = "main",
        args: tuple[int, ...] = (),
        fault_hook: FaultHook | None = None,
        timing: TimingConfig | None = None,
        max_instructions: int | None = None,
        fault_at: int | None = None,
        resume_from: MachineSnapshot | None = None,
        converge: "object | None" = None,
    ) -> RunResult:
        """Execute ``function(*args)`` to completion.

        ``fault_at`` restricts ``fault_hook`` delivery to that single site
        ordinal, skipping the per-site Python call for every other site.
        ``resume_from`` continues from a :class:`MachineSnapshot` instead of
        program entry (``function``/``args`` are then ignored — they were
        fixed when the snapshot's run began); counters resume cumulatively,
        so results and budgets match a from-scratch run bit for bit.

        ``converge`` attaches a :class:`repro.machine.converge.
        ConvergenceMonitor` to a faulted run: execution stops at golden
        digest-trail boundaries, and once the divergence cone matches the
        fault-free trail the run finishes early with the golden outcome
        (bit-identical result; see ``docs/performance.md``). Ignored for
        timing-model runs, which stay on the reference loop.

        Raises:
            MachineFault / SegmentationFault: on architectural faults (crash).
            DetectionExit: when an EDDI checker fires.
            ExecutionLimitExceeded: on instruction-budget exhaustion (hang).
        """
        if resume_from is not None:
            if timing is not None:
                raise MachineFault("timing collection cannot resume a snapshot")
            self.restore_snapshot(resume_from)
            timer = None
            pc = resume_from.pc
            executed = resume_from.executed
            sites = resume_from.sites
        else:
            pc = self._prepare(function, args)
            timer = TimingModel(timing) if timing is not None else None
            self._collect_mem = timer is not None
            executed = 0
            sites = 0

        budget = max_instructions if max_instructions is not None else self.max_instructions
        if converge is not None and timer is None:
            return self._run_converged(
                pc, executed, sites, budget, fault_hook,
                -1 if fault_at is None else fault_at, converge,
            )
        pc, executed, sites, _ = self._engine_leg(
            pc, executed, sites, budget,
            fault_hook=fault_hook,
            fault_at=-1 if fault_at is None else fault_at,
            stop_at_site=None,
            timer=timer,
        )
        return RunResult(
            exit_code=self._exit_code,
            output=tuple(self.output),
            dynamic_instructions=executed,
            fault_sites=sites,
            cycles=timer.cycles if timer is not None else None,
        )

    def _engine_leg(
        self,
        pc: int,
        executed: int,
        sites: int,
        budget: int,
        fault_hook: FaultHook | None,
        fault_at: int,
        stop_at_site: int | None,
        timer: TimingModel | None = None,
    ) -> tuple[int, int, int, bool]:
        """One dispatch onto the selected engine, with snapshot bookkeeping.

        Generated translated/fused steps write the register dicts and
        ``rflags`` directly, bypassing :meth:`RegisterFile.write` — so the
        copy-on-write snapshot cache is invalidated once per leg: whenever
        the leg advanced ``executed`` (a leg that executed nothing wrote
        nothing), and unconditionally when it raised mid-flight (counters
        are unknown then). Timing-model legs always take the reference
        loop, which observes per-access memory traffic.
        """
        try:
            if self.engine == "translated" and timer is None:
                out = self._run_translated(
                    pc, executed, sites, budget, fault_hook, fault_at,
                    stop_at_site,
                )
            elif self.engine == "fused" and timer is None:
                out = self._run_fused(
                    pc, executed, sites, budget, fault_hook, fault_at,
                    stop_at_site,
                )
            else:
                out = self._execute_from(
                    pc, executed, sites, budget, fault_hook, fault_at,
                    timer, stop_at_site,
                )
        except BaseException:
            self.registers.note_direct_writes()
            raise
        if out[1] != executed:
            self.registers.note_direct_writes()
        return out

    def _run_converged(
        self,
        pc: int,
        executed: int,
        sites: int,
        budget: int,
        fault_hook: FaultHook | None,
        fault_at: int,
        monitor,
    ) -> RunResult:
        """Faulted execution with convergence early-exit.

        Runs engine legs between the golden trail's boundaries that lie
        after the flip site. At each boundary the monitor compares the
        divergence cone (registers plus pages written since the flip, plus
        the golden side's writes) against the fault-free trail; a full
        match proves the remainder of execution is bit-identical to golden,
        so the golden outcome is returned with counterfactual counters.
        The monitor gives up after a bounded number of failed compares,
        and the run then finishes on one plain leg — non-masked faults pay
        a bounded, small overhead.
        """
        hook = monitor.wrap(fault_hook)
        ended = False
        try:
            for entry in monitor.boundaries:
                pc, executed, sites, stopped = self._engine_leg(
                    pc, executed, sites, budget, hook, fault_at, entry.site,
                )
                if not stopped:
                    ended = True  # program finished before the boundary
                    break
                final = monitor.check(self, pc, executed, sites, entry, budget)
                if final is not None:
                    self._exit_code = final.exit_code
                    return final
                if monitor.gave_up:
                    break
            if not ended:
                pc, executed, sites, _ = self._engine_leg(
                    pc, executed, sites, budget, hook, fault_at, None,
                )
        finally:
            monitor.disarm(self)
        return RunResult(
            exit_code=self._exit_code,
            output=tuple(self.output),
            dynamic_instructions=executed,
            fault_sites=sites,
            cycles=None,
        )

    def _run_translated(
        self,
        pc: int,
        executed: int,
        sites: int,
        budget: int,
        fault_hook: FaultHook | None,
        fault_at: int,
        stop_at_site: int | None,
    ) -> tuple[int, int, int, bool]:
        """Execute on the threaded-code engine (translating on first use)."""
        from repro.machine.translate import execute_translated, translate_program

        if self._translation is None:
            self._translation = translate_program(self)
        return execute_translated(
            self, self._translation, pc, executed, sites, budget,
            fault_hook, fault_at, stop_at_site,
        )

    def _run_fused(
        self,
        pc: int,
        executed: int,
        sites: int,
        budget: int,
        fault_hook: FaultHook | None,
        fault_at: int,
        stop_at_site: int | None,
    ) -> tuple[int, int, int, bool]:
        """Execute on the superblock-fused engine (fusing on first use)."""
        from repro.machine.translate import execute_fused, translate_fused

        if self._fused is None:
            self._fused = translate_fused(self)
            self._translation = self._fused.base
        return execute_fused(
            self, self._fused, pc, executed, sites, budget,
            fault_hook, fault_at, stop_at_site,
        )

    def _execute_from(
        self,
        pc: int,
        executed: int,
        sites: int,
        budget: int,
        fault_hook: FaultHook | None,
        fault_at: int,
        timer: TimingModel | None,
        stop_at_site: int | None,
    ) -> tuple[int, int, int, bool]:
        """The fetch/execute loop; returns ``(pc, executed, sites, stopped)``.

        ``stopped`` is True only when ``stop_at_site`` was reached; normal
        termination (sentinel return or ``exit``) returns False with
        ``self._exit_code`` set. ``fault_at == -1`` delivers the hook at
        every site (the classic replay protocol).
        """
        code = self._code
        handlers = self._handlers
        is_site = self._is_site
        collect_mem = self._collect_mem
        code_len = len(code)

        try:
            while not self._exit_requested:
                if stop_at_site is not None and sites >= stop_at_site:
                    return pc, executed, sites, True
                if pc >= code_len or pc < 0:
                    raise MachineFault(f"execution fell outside code at index {pc}")
                if executed >= budget:
                    raise ExecutionLimitExceeded(
                        f"exceeded {budget} dynamic instructions"
                    )
                instr = code[pc]
                if collect_mem:
                    self._mem_reads.clear()
                    self._mem_writes.clear()
                effect = handlers[pc](self, instr)
                executed += 1

                if timer is not None:
                    # Skip list construction for the (dominant) instructions
                    # with no memory traffic.
                    if self._mem_reads:
                        reads: list[int] = []
                        for addr, size in self._mem_reads:
                            reads.extend(TimingModel.granules(addr, size))
                    else:
                        reads = _NO_GRANULES
                    if self._mem_writes:
                        writes: list[int] = []
                        for addr, size in self._mem_writes:
                            writes.extend(TimingModel.granules(addr, size))
                    else:
                        writes = _NO_GRANULES
                    timer.observe(instr, reads, writes, effect.taken)

                if is_site[pc]:
                    if fault_hook is not None and (fault_at < 0 or sites == fault_at):
                        self.executed_at_site = executed
                        fault_hook(self, instr, sites)
                    sites += 1

                flow = effect.flow
                if flow is Flow.NEXT:
                    pc += 1
                elif flow is Flow.JUMP:
                    # Pre-resolved at load (validate_program guarantees the
                    # label exists) — no per-jump tuple hash.
                    pc = self._jump_pc[pc]
                elif flow is Flow.CALL:
                    fn = self._call_builtin_fn[pc]
                    if fn is not None:
                        result = fn(self)
                        self.registers.write(_RAX, result & ((1 << 64) - 1))
                        pc += 1
                    else:
                        new_rsp = self.registers.read(_RSP) - 8
                        self.registers.write(_RSP, new_rsp)
                        self.memory.write_uint(new_rsp, pc + 1, 8)
                        pc = self._call_entry_pc[pc]
                elif flow is Flow.RET:
                    cur_rsp = self.registers.read(_RSP)
                    return_to = self.memory.read_uint(cur_rsp, 8)
                    self.registers.write(_RSP, cur_rsp + 8)
                    if return_to == _SENTINEL:
                        self._exit_code = to_signed(self.registers.read(_EAX), 32)
                        break
                    if return_to >= len(code):
                        raise MachineFault(
                            f"return to corrupted address {return_to:#x}"
                        )
                    pc = int(return_to)

        except MachineError:
            # Stamp where the run halted so injectors can compute
            # flip-to-detection latency without any per-instruction cost.
            self.halt_executed = executed
            self.halt_sites = sites
            raise
        return pc, executed, sites, False
