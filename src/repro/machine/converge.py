"""Golden digest trails and convergence early-exit for faulted runs.

The large masked majority of injected faults re-converges to the fault-free
execution within a short window: the flipped register is overwritten, the
perturbed pages are rewritten with the golden values, and from that point
the run is bit-identical to the golden one. FastFlip exploits exactly this
re-join point to collapse injection cost; MEEK bounds checker cost by only
inspecting state the error cone can reach. This module brings that dynamic
pruning to the campaign engines:

* :func:`record_trail` executes one fault-free pass per (program, input)
  unit — on whichever execution engine the machine uses, they are
  bit-identical — and records a :class:`ConvergenceTrail`: at every
  ``interval`` fault sites, a :class:`TrailEntry` with the pc/site/executed
  ordinals, a register-file snapshot, the output, allocator and PRNG
  cursors, cumulative per-page digests, and the set of pages written during
  the interval. Page digests are computed *incrementally* from the write
  watch, so trail cost is O(pages written) rather than O(working set) per
  boundary.

* :class:`ConvergenceMonitor` (one per faulted run, from
  :meth:`ConvergenceTrail.monitor`) arms a memory write watch at the flip
  and, at each boundary after it, compares only the **divergence cone**:
  registers plus the pages the faulted run wrote since the flip plus the
  pages the golden run wrote since the flip's interval (an over-
  approximation — comparing an extra page that matches is sound and pages
  outside the cone are equal by induction). On a full match the remainder
  of execution is provably bit-identical to golden, so the run finishes
  immediately with the golden outcome and counterfactual counters —
  including the budget check, so hang classification stays bit-identical.

Soundness of the golden-outcome substitution: the machine is deterministic
and closed — the next transition depends only on (pc, registers, memory,
output, heap cursor, PRNG state). If every component matches the golden
trail at the same site ordinal, every later transition matches too, so
exit code, output, remaining dynamic instructions and remaining fault
sites are exactly the golden ones. The only non-architectural input is the
instruction budget, which the monitor checks counterfactually before
converging. See ``docs/performance.md`` ("Dynamic convergence pruning").
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from dataclasses import dataclass

from repro.machine.cpu import Machine, RunResult
from repro.machine.memory import PAGE_SIZE
from repro.machine.state import RegisterFileSnapshot

#: Fault-free pages compare against the zero-fill image, not a stored digest.
_ZERO_PAGE = bytes(PAGE_SIZE)

#: Failed boundary compares before a monitor stops checking. A masked fault
#: converges within a few boundaries of the flip; a fault that is still
#: divergent after this many compares (dead-value flips that never get
#: overwritten, SDC, corrupted control flow) will almost never converge, so
#: the run finishes on one plain engine leg instead of stopping at every
#: remaining boundary.
GIVE_UP_AFTER = 8


def _page_digest(view) -> bytes:
    """16-byte BLAKE2b digest of one page (or page view)."""
    return hashlib.blake2b(view, digest_size=16).digest()


def trail_interval(fault_sites: int) -> int:
    """Default boundary spacing (in fault sites) for a digest trail.

    Dense enough that a masked run converges within a short suffix of the
    flip (the floor of 16 sites), sparse enough that trail recording and
    boundary stops stay a small fraction of campaign cost on long runs
    (the ``// 512`` term caps the boundary count at ~512).
    """
    return max(16, fault_sites // 512)


@dataclass(frozen=True)
class TrailEntry:
    """Golden architectural state at one trail boundary.

    ``digests[seg]`` maps page index -> digest for every page the golden
    run has written *up to* this boundary (cumulative); pages absent from
    it are still zero-fill. ``changed[seg]`` is the set of pages written
    *during* the interval ending here — the golden side's contribution to
    a divergence cone that opened in or before this interval.
    """

    site: int
    pc: int
    executed: int
    registers: RegisterFileSnapshot
    output: tuple[str, ...]
    heap_cursor: int
    lcg_state: int
    digests: tuple[dict[int, bytes], ...]
    changed: tuple[frozenset[int], ...]


@dataclass(frozen=True)
class ConvergenceTrail:
    """Digest trail of one fault-free (program, input) execution."""

    interval: int
    entries: tuple[TrailEntry, ...]
    total_executed: int
    total_sites: int
    output: tuple[str, ...]
    exit_code: int

    def monitor(self, flip_site: int) -> "ConvergenceMonitor | None":
        """Monitor for a run flipping at ``flip_site``; None if no boundary
        lies strictly after the flip (nothing to converge against)."""
        sites = [entry.site for entry in self.entries]
        start = bisect_right(sites, flip_site)
        if start >= len(self.entries):
            return None
        return ConvergenceMonitor(self, flip_site, self.entries[start:])

    def fingerprint(self) -> str:
        """Content hash of the trail, stable across engines and copies.

        Serializes only architectural facts (ordinals, register values,
        page digests, output) — no instruction uids, no object identities —
        so a trail recorded from ``program.copy()`` or on a different
        execution engine fingerprints identically. Used by the compose
        section cache to key cached results on the trail actually in force.
        """
        payload = {
            "version": 1,
            "interval": self.interval,
            "total_executed": self.total_executed,
            "total_sites": self.total_sites,
            "exit_code": self.exit_code,
            "output": list(self.output),
            "entries": [
                {
                    "site": entry.site,
                    "pc": entry.pc,
                    "executed": entry.executed,
                    "rflags": entry.registers.rflags,
                    "gprs": sorted(entry.registers.gprs.items()),
                    "vectors": sorted(entry.registers.vectors.items()),
                    "heap_cursor": entry.heap_cursor,
                    "lcg_state": entry.lcg_state,
                    "output": list(entry.output),
                    "digests": [
                        sorted((page, digest.hex()) for page, digest
                               in seg_digests.items())
                        for seg_digests in entry.digests
                    ],
                    "changed": [sorted(seg) for seg in entry.changed],
                }
                for entry in self.entries
            ],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def record_trail(
    program,
    golden: RunResult,
    function: str = "main",
    args: tuple[int, ...] = (),
    interval: int | None = None,
    machine: Machine | None = None,
) -> ConvergenceTrail:
    """Run ``program`` fault-free once and record its digest trail.

    ``golden`` must be the program's fault-free :class:`RunResult` (it
    fixes the boundary schedule and the trail's totals). Page digests are
    computed incrementally: a write watch is cleared at each boundary, so
    per boundary only the pages written during that interval are hashed,
    and cumulative digest maps share unchanged entries structurally.
    """
    if interval is None:
        interval = trail_interval(golden.fault_sites)
    if interval <= 0:
        raise ValueError(f"trail interval must be positive, got {interval}")
    if machine is None:
        machine = Machine(program)
    pc = machine._prepare(function, args)
    executed = 0
    sites = 0
    budget = machine.max_instructions
    segments = len(machine.memory.watched_writes())
    entries: list[TrailEntry] = []
    cumulative: list[dict[int, bytes]] = [{} for _ in range(segments)]
    # Watch from entry: the saved sets are merged back at the end, and the
    # pages cleared at each boundary accumulate here so restores after the
    # trail pass still see the complete dirty-page population.
    saved = machine.memory.begin_write_watch()
    accumulated = [set(pages) for pages in saved]
    try:
        for target in range(interval, golden.fault_sites, interval):
            pc, executed, sites, stopped = machine._engine_leg(
                pc, executed, sites, budget,
                fault_hook=None, fault_at=-1, stop_at_site=target,
            )
            if not stopped:  # pragma: no cover - golden fixes the schedule
                raise ValueError(
                    f"golden run ended at site {sites} before trail "
                    f"boundary {target}"
                )
            written = machine.memory.watched_writes()
            changed: list[frozenset[int]] = []
            digests: list[dict[int, bytes]] = []
            for seg, pages in enumerate(written):
                if pages:
                    fresh = dict(cumulative[seg])
                    for page in pages:
                        fresh[page] = _page_digest(
                            machine.memory.page_view(seg, page)
                        )
                    cumulative[seg] = fresh
                changed.append(frozenset(pages))
                digests.append(cumulative[seg])
                accumulated[seg] |= pages
                pages.clear()
            entries.append(TrailEntry(
                site=sites,
                pc=pc,
                executed=executed,
                registers=machine.registers.snapshot_state(),
                output=tuple(machine.output),
                heap_cursor=machine.heap_cursor,
                lcg_state=machine.lcg_state,
                digests=tuple(digests),
                changed=tuple(changed),
            ))
        pc, executed, sites, _ = machine._engine_leg(
            pc, executed, sites, budget,
            fault_hook=None, fault_at=-1, stop_at_site=None,
        )
    finally:
        for seg, pages in enumerate(machine.memory.watched_writes()):
            accumulated[seg] |= pages
        machine.memory.end_write_watch(tuple(accumulated))
    if (executed != golden.dynamic_instructions
            or sites != golden.fault_sites
            or tuple(machine.output) != golden.output
            or machine._exit_code != golden.exit_code):
        raise ValueError(
            "trail pass diverged from the golden result — "
            "program or inputs are not deterministic"
        )
    return ConvergenceTrail(
        interval=interval,
        entries=tuple(entries),
        total_executed=executed,
        total_sites=sites,
        output=tuple(machine.output),
        exit_code=machine._exit_code,
    )


class ConvergenceMonitor:
    """Per-faulted-run divergence-cone comparator against a golden trail.

    Lifecycle (driven by ``Machine._run_converged``): :meth:`wrap` wraps
    the injection hook so the memory write watch arms exactly at the flip;
    :meth:`check` runs at each boundary after the flip; :meth:`disarm`
    restores the watched dirty pages in a ``finally`` — it must run before
    any snapshot restore, whose zero-fill logic relies on complete dirty
    sets.
    """

    __slots__ = (
        "trail", "flip_site", "boundaries",
        "converged", "instructions_saved", "convergence_distance",
        "boundaries_compared", "gave_up",
        "_cone", "_armed", "_saved", "_failed",
    )

    def __init__(self, trail: ConvergenceTrail, flip_site: int,
                 boundaries: tuple[TrailEntry, ...]) -> None:
        self.trail = trail
        self.flip_site = flip_site
        self.boundaries = boundaries
        self.converged = False
        self.instructions_saved = 0
        self.convergence_distance = 0
        self.boundaries_compared = 0
        self.gave_up = False
        self._cone: list[set[int]] | None = None
        self._armed = False
        self._saved: tuple[set[int], ...] | None = None
        self._failed = 0

    def wrap(self, fault_hook):
        """Wrap ``fault_hook`` so the write watch arms right after the flip.

        The flip itself only perturbs registers (the paper's fault model),
        so arming after hook delivery captures exactly the pages written
        under the fault's influence. Keying on the site ordinal (not on
        ``fault_at``) makes this correct for both the checkpoint protocol
        (hook delivered once) and the replay protocol (hook at every site).
        """
        flip_site = self.flip_site

        def hooked(machine, instr, site):
            if fault_hook is not None:
                fault_hook(machine, instr, site)
            if site == flip_site and not self._armed:
                self._saved = machine.memory.begin_write_watch()
                self._armed = True

        return hooked

    def disarm(self, machine) -> None:
        """Merge pre-flip dirty pages back into the live sets."""
        if self._armed:
            machine.memory.end_write_watch(self._saved)
            self._armed = False
            self._saved = None

    def check(self, machine, pc: int, executed: int, sites: int,
              entry: TrailEntry, budget: int) -> RunResult | None:
        """Compare the divergence cone against ``entry``.

        Returns the golden-equivalent :class:`RunResult` when the faulted
        state provably rejoined the golden execution, else None. The cone
        accumulates the golden side's per-interval writes *before* any
        compare, so a failed boundary still contributes its interval to
        later checks.
        """
        if self.gave_up:
            return None
        self.boundaries_compared += 1
        cone = self._cone
        if cone is None:
            cone = self._cone = [set() for _ in entry.changed]
        for acc, changed in zip(cone, entry.changed):
            acc |= changed
        if (pc != entry.pc
                or not machine.registers.state_equals(entry.registers)
                or machine.heap_cursor != entry.heap_cursor
                or machine.lcg_state != entry.lcg_state
                or tuple(machine.output) != entry.output):
            return self._miss()
        remaining = self.trail.total_executed - entry.executed
        if executed + remaining > budget:
            # The real run would exhaust its budget in the (bit-identical)
            # suffix; keep executing so the hang classifies naturally.
            return self._miss()
        if not self._armed:  # pragma: no cover - flip precedes boundaries
            return self._miss()
        memory = machine.memory
        written = memory.watched_writes()
        for seg, (faulted, golden_cone, digests) in enumerate(
                zip(written, cone, entry.digests)):
            for page in faulted | golden_cone:
                view = memory.page_view(seg, page)
                want = digests.get(page)
                if want is None:
                    if view != _ZERO_PAGE:
                        return self._miss()
                elif _page_digest(view) != want:
                    return self._miss()
        self.converged = True
        self.instructions_saved = remaining
        self.convergence_distance = entry.site - self.flip_site
        return RunResult(
            exit_code=self.trail.exit_code,
            output=self.trail.output,
            dynamic_instructions=executed + remaining,
            fault_sites=sites + (self.trail.total_sites - entry.site),
            cycles=None,
        )

    def _miss(self) -> None:
        self._failed += 1
        if self._failed >= GIVE_UP_AFTER:
            self.gave_up = True
        return None
