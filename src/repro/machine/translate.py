"""Pre-translated threaded-code execution engine.

The reference interpreter (:meth:`repro.machine.cpu.Machine._execute_from`
plus :mod:`repro.machine.semantics`) re-resolves every operand through
isinstance chains and name-based register lookups, allocates control-effect
objects for branches, and repacks flag tuples on every arithmetic
instruction. FERRUM's own thesis — specialize at translation time, pay
nothing at run time — applies to the simulator itself: this module compiles
each :class:`~repro.asm.instructions.Instruction` *once* into a specialized
zero-argument closure ("threaded code"):

* register operands are resolved to direct slots in the register-file
  backing dict, with sub-register masks folded into the generated code;
* immediates are masked at translation time;
* memory-operand effective-address arithmetic is pre-bound (displacement
  folded, base/index roots captured);
* jump/call/fall-through targets are integer pc constants — a taken branch
  is ``return 17``, not a dict lookup;
* flag computation is specialized per opcode and width, with a precomputed
  parity table;
* no per-instruction ``ControlEffect`` allocation: each step returns the
  next pc directly (negative sentinels encode halt / fell-off-code).

The hot instruction kinds go through a small source-level code generator:
one operand/opcode *shape* maps to one cached ``make`` function (built with
:func:`compile`/``exec`` the first time the shape appears), and the
per-instruction constants — register roots, immediates, displacements, pc
targets — are bound as closure cells. A generated step therefore runs with
no nested Python calls beyond the unavoidable memory accessors.

Bit-identity contract: for any program, input, fault plan, snapshot or
budget, the translated engine produces exactly the same ``RunResult``,
fault-site numbering, ``executed``/``sites`` counters, exception type and
halt-counter stamps as the reference engine — including the *order* of
operand reads, register updates and faulting accesses within one
instruction. Instructions whose operand shapes fall outside the specialized
fast paths (vector ops, deliberately malformed operands) fall back to a
step that wraps the reference handler, so the two engines can never diverge
semantically.

Closures capture the machine's register-file dict and memory accessors
directly; :class:`~repro.machine.state.RegisterFile` and
:class:`~repro.machine.memory.Memory` guarantee those objects are
identity-stable across resets and snapshot restores.

A second, faster layer builds on the per-instruction translation:
:func:`translate_fused`/:func:`execute_fused` concatenate the generated
statement lists of whole basic blocks into single ``exec``-compiled
superblock bodies — flag computation elided where a block-local liveness
pass proves the bits dead, memory accesses inlined through a
segment-guessing fast path — while keeping the per-instruction steps as
the single-stepping fallback wherever a fault site, stop target or budget
boundary must be observed mid-block. The same bit-identity contract
applies; see the fusion section below and ``docs/performance.md``.
"""

from __future__ import annotations

import struct as _struct
from typing import TYPE_CHECKING, Callable

from repro.asm.instructions import InstrKind
from repro.asm.operands import Imm, Mem, Operand, Reg
from repro.asm.registers import Register, RegisterKind
from repro.errors import (
    ExecutionLimitExceeded,
    MachineError,
    MachineFault,
)
from repro.machine import flags as flg
from repro.machine.semantics import Flow, handler_for
from repro.utils.bitops import mask_for_width, trunc_div

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.cpu import Machine

#: Step-return sentinel: the program halted (sentinel ``ret`` or ``exit``).
_HALT = -1
#: Step-return sentinel: fall-through past the last instruction.
_FELL_OFF = -2

_M64 = (1 << 64) - 1
_M32 = (1 << 32) - 1

_CF = 1 << flg.CF_BIT
_ZF = 1 << flg.ZF_BIT
_SF = 1 << flg.SF_BIT
_OF = 1 << flg.OF_BIT
_CZ = _CF | _ZF
_CFOF = _CF | _OF

# The generated condition-code expressions hardcode the SF/OF bit distance;
# guard against the flag layout ever moving.
assert flg.SF_BIT == 7 and flg.OF_BIT == 11

#: Parity-flag contribution of every low-byte value (PF set on even parity).
_PARITY = tuple(
    (1 << flg.PF_BIT) if bin(byte).count("1") % 2 == 0 else 0
    for byte in range(256)
)

Step = Callable[[], int]


class TranslatedCode:
    """The compiled program: one step closure per code index."""

    __slots__ = ("steps", "site_flags", "code_len")

    def __init__(self, steps: list[Step], site_flags: list[int]) -> None:
        self.steps = steps
        self.site_flags = site_flags
        self.code_len = len(steps)


# -- code generation core ----------------------------------------------------

#: Globals visible to generated steps (flag constants, parity table,
#: fixed-width memory codecs).
_EXEC_GLOBALS = {
    "__builtins__": {},
    "_PARITY": _PARITY,
    "_CF": _CF,
    "_ZF": _ZF,
    "_SF": _SF,
    "_OF": _OF,
    "_CZ": _CZ,
    "_CFOF": _CFOF,
    "_M64": _M64,
    # Little-endian fixed-width codecs for the fused engine's inlined
    # memory fast path (one C call instead of segment lookup + slicing).
    "_U1": _struct.Struct("<B").unpack_from,
    "_U2": _struct.Struct("<H").unpack_from,
    "_U4": _struct.Struct("<I").unpack_from,
    "_U8": _struct.Struct("<Q").unpack_from,
    "_P1": _struct.Struct("<B").pack_into,
    "_P2": _struct.Struct("<H").pack_into,
    "_P4": _struct.Struct("<I").pack_into,
    "_P8": _struct.Struct("<Q").pack_into,
}

#: shape source -> compiled ``make`` function (shared across programs).
_MAKE_CACHE: dict[str, Callable[[dict], Step]] = {}


def _build_step(body: list[str], env: dict) -> Step:
    """Compile ``body`` lines into a step, binding ``env`` as closure cells.

    The rendered source depends only on the instruction *shape* (operand
    kinds, widths, opcode), so the compile cost is amortized across every
    instruction sharing that shape; per-instruction values (register roots,
    immediates, displacements, pc targets) and the machine's live state
    objects flow in through ``env`` and become closure cells — the fastest
    variable access a generated step can have.
    """
    lines = ["def make(env):"]
    for key in sorted(env):
        lines.append(f"    {key} = env[{key!r}]")
    lines.append("    def step():")
    for line in body:
        lines.append("        " + line)
    lines.append("    return step")
    source = "\n".join(lines)
    make = _MAKE_CACHE.get(source)
    if make is None:
        scope = dict(_EXEC_GLOBALS)
        exec(compile(source, "<ferrum-translate>", "exec"), scope)
        make = scope["make"]
        _MAKE_CACHE[source] = make
    return make(env)


def _is_gpr64(reg: Register | None) -> bool:
    return reg is not None and reg.kind is RegisterKind.GPR and reg.width == 64


def _addr_frag(mem: Mem, idx: int, env: dict) -> str | None:
    """Effective-address expression (64-bit GPR base/index only)."""
    base, index = mem.base, mem.index
    if base is not None and not _is_gpr64(base):
        return None
    if index is not None and not _is_gpr64(index):
        return None
    if base is None and index is None:
        env[f"D{idx}"] = mem.disp & _M64
        return f"D{idx}"
    env[f"D{idx}"] = mem.disp
    parts = [f"D{idx}"]
    if base is not None:
        env[f"B{idx}"] = base.root
        parts.append(f"g[B{idx}]")
    if index is not None:
        env[f"X{idx}"] = index.root
        if mem.scale == 1:
            parts.append(f"g[X{idx}]")
        else:
            env[f"S{idx}"] = mem.scale
            parts.append(f"g[X{idx}] * S{idx}")
    return "((" + " + ".join(parts) + ") & M64)"


def _read_frag(op: Operand, width: int, idx: int, env: dict) -> str | None:
    """Value expression matching ``semantics._read_operand``.

    Register operands read at *register* width (the reference rule); the
    produced value is bounded by ``max(width, reg.width)`` bits. Callers
    that need the value bounded to ``width`` must reject wider register
    operands (see :func:`_read_bounded` and the factories' guards).
    """
    if isinstance(op, Imm):
        env[f"A{idx}"] = op.value & mask_for_width(width)
        return f"A{idx}"
    if isinstance(op, Reg):
        reg = op.register
        if reg.kind is not RegisterKind.GPR:
            return None
        env[f"R{idx}"] = reg.root
        if reg.width == 64:
            return f"g[R{idx}]"
        env[f"RM{idx}"] = mask_for_width(reg.width)
        return f"(g[R{idx}] & RM{idx})"
    if isinstance(op, Mem):
        addr = _addr_frag(op, idx, env)
        if addr is None:
            return None
        env[f"N{idx}"] = width // 8
        return f"rd({addr}, N{idx})"
    return None


def _read_bounded(op: Operand, width: int, idx: int, env: dict) -> str | None:
    """Like :func:`_read_frag` but only for values bounded to ``width``."""
    if isinstance(op, Reg) and op.register.width > width:
        return None
    return _read_frag(op, width, idx, env)


def _write_frag(
    op: Operand, width: int, idx: int, env: dict
) -> Callable[[str], str] | None:
    """Statement builder matching ``semantics._write_operand``.

    The value expression passed in must be bounded to ``width`` bits.
    """
    if isinstance(op, Reg):
        reg = op.register
        if reg.kind is not RegisterKind.GPR:
            return None
        env[f"R{idx}"] = reg.root
        rw = reg.width
        if rw >= 32:
            if width > rw:  # e.g. a 64-bit value into a 32-bit view
                env[f"WM{idx}"] = mask_for_width(rw)
                return lambda v: f"g[R{idx}] = ({v}) & WM{idx}"
            # 32-bit writes zero-extend, 64-bit writes replace: plain store.
            return lambda v: f"g[R{idx}] = {v}"
        env[f"K{idx}"] = _M64 ^ mask_for_width(rw)
        if width > rw:
            env[f"WM{idx}"] = mask_for_width(rw)
            return lambda v: f"g[R{idx}] = (g[R{idx}] & K{idx}) | (({v}) & WM{idx})"
        return lambda v: f"g[R{idx}] = (g[R{idx}] & K{idx}) | ({v})"
    if isinstance(op, Mem):
        addr = _addr_frag(op, idx, env)
        if addr is None:
            return None
        env[f"N{idx}"] = width // 8
        return lambda v: f"wr({addr}, {v}, N{idx})"
    return None


#: Condition-code truthiness expressions over ``f`` (an RFLAGS value);
#: mirrors ``flags.condition_holds`` (SF at bit 7, OF at bit 11).
_CC_EXPR = {
    "e": "f & _ZF",
    "ne": "not f & _ZF",
    "l": "(f >> 7 ^ f >> 11) & 1",
    "ge": "not (f >> 7 ^ f >> 11) & 1",
    "le": "f & _ZF or (f >> 7 ^ f >> 11) & 1",
    "g": "not (f & _ZF or (f >> 7 ^ f >> 11) & 1)",
    "b": "f & _CF",
    "ae": "not f & _CF",
    "be": "f & _CZ",
    "a": "not f & _CZ",
    "s": "f & _SF",
    "ns": "not f & _SF",
}


def _zf_sf_pf_lines(result_var: str = "r", sgn: str = "SGN") -> list[str]:
    """The ZF/SF/PF epilogue shared by every flag-writing template.

    One fragment serves both emitters: the per-instruction step factories
    bind the sign-bit constant as the ``SGN`` closure cell, while the
    superblock fusion emitter passes it as a hex literal (``sgn``) so one
    fused body can mix widths without closure-cell name collisions.
    """
    return [
        f"f = _PARITY[{result_var} & 0xFF]",
        f"if {result_var} == 0:",
        "    f |= _ZF",
        f"if {result_var} & {sgn}:",
        "    f |= _SF",
    ]


# -- per-kind step factories -------------------------------------------------
#
# Every factory returns None when the operand shape falls outside its fast
# path; the caller then uses the generic reference-handler step, so the
# translated engine is total over the ISA by construction.


def _gen_mov(instr, width, nxt, env):
    src, dst = instr.operands
    read = _read_bounded(src, width, 0, env)
    write = _write_frag(dst, width, 1, env)
    if read is None or write is None:
        return None
    env["NXT"] = nxt
    return _build_step([write(read), "return NXT"], env)


def _gen_movext(instr, nxt, env):
    spec = instr.spec
    src, dst = instr.operands
    read = _read_bounded(src, spec.src_width, 0, env)
    write = _write_frag(dst, spec.width, 1, env)
    if read is None or write is None:
        return None
    env["NXT"] = nxt
    if instr.mnemonic.startswith("movz"):
        return _build_step([write(read), "return NXT"], env)
    env["SSGN"] = 1 << (spec.src_width - 1)
    env["EXT"] = mask_for_width(spec.width) ^ mask_for_width(spec.src_width)
    body = [
        f"v = {read}",
        "if v & SSGN:",
        "    v |= EXT",
        write("v"),
        "return NXT",
    ]
    return _build_step(body, env)


def _gen_lea(instr, nxt, env):
    src, dst = instr.operands
    if not isinstance(src, Mem):
        return None  # reference handler raises IllegalInstructionError
    addr = _addr_frag(src, 0, env)
    write = _write_frag(dst, 64, 1, env)
    if addr is None or write is None:
        return None
    env["NXT"] = nxt
    return _build_step([write(addr), "return NXT"], env)


def _alu_guard(src, dst, width) -> bool:
    """The reference reads register operands at *register* width; widths
    that disagree with the instruction width go through the oracle."""
    for op in (src, dst):
        if isinstance(op, Reg) and op.register.width != width:
            return False
    return True


def _gen_alu(instr, width, nxt, env):
    src, dst = instr.operands
    if not _alu_guard(src, dst, width):
        return None
    read_a = _read_frag(src, width, 0, env)
    read_b = _read_frag(dst, width, 1, env)
    write = _write_frag(dst, width, 1, env)
    if read_a is None or read_b is None or write is None:
        return None
    env["NXT"] = nxt
    env["M"] = mask_for_width(width)
    env["SGN"] = 1 << (width - 1)
    root = instr.mnemonic[:-1]

    if root == "add":
        body = [
            f"a = {read_a}",
            f"b = {read_b}",
            "full = a + b",
            "r = full & M",
            *_zf_sf_pf_lines(),
            "if full > M:",
            "    f |= _CF",
            "if not ((a ^ b) & SGN) and ((a ^ r) & SGN):",
            "    f |= _OF",
            "R.rflags = f",
            write("r"),
            "return NXT",
        ]
    elif root == "sub":
        body = [
            f"a = {read_a}",
            f"b = {read_b}",
            "r = (b - a) & M",
            *_zf_sf_pf_lines(),
            "if b < a:",
            "    f |= _CF",
            "if ((b ^ a) & SGN) and ((b ^ r) & SGN):",
            "    f |= _OF",
            "R.rflags = f",
            write("r"),
            "return NXT",
        ]
    elif root == "imul":
        env["MD"] = mask_for_width(width) + 1
        body = [
            f"a = {read_a}",
            f"b = {read_b}",
            "if a & SGN:",
            "    a -= MD",
            "if b & SGN:",
            "    b -= MD",
            "full = a * b",
            "r = full & M",
            *_zf_sf_pf_lines(),
            "if (r - MD if r & SGN else r) != full:",
            "    f |= _CFOF",
            "R.rflags = f",
            write("r"),
            "return NXT",
        ]
    elif root in ("and", "or", "xor"):
        sym = {"and": "&", "or": "|", "xor": "^"}[root]
        body = [
            f"a = {read_a}",  # src read first, as in the reference
            f"r = {read_b} {sym} a",
            *_zf_sf_pf_lines(),
            "R.rflags = f",
            write("r"),
            "return NXT",
        ]
    else:  # pragma: no cover - spec table guarantees the roots above
        return None
    return _build_step(body, env)


def _gen_cmp(instr, width, nxt, env):
    src, dst = instr.operands
    if not _alu_guard(src, dst, width):
        return None
    read_a = _read_frag(src, width, 0, env)
    read_b = _read_frag(dst, width, 1, env)
    if read_a is None or read_b is None:
        return None
    env["NXT"] = nxt
    env["M"] = mask_for_width(width)
    env["SGN"] = 1 << (width - 1)
    body = [
        f"a = {read_a}",
        f"b = {read_b}",
        "r = (b - a) & M",
        *_zf_sf_pf_lines(),
        "if b < a:",
        "    f |= _CF",
        "if ((b ^ a) & SGN) and ((b ^ r) & SGN):",
        "    f |= _OF",
        "R.rflags = f",
        "return NXT",
    ]
    return _build_step(body, env)


def _gen_test(instr, width, nxt, env):
    src, dst = instr.operands
    if not _alu_guard(src, dst, width):
        return None
    read_a = _read_frag(src, width, 0, env)
    read_b = _read_frag(dst, width, 1, env)
    if read_a is None or read_b is None:
        return None
    env["NXT"] = nxt
    env["SGN"] = 1 << (width - 1)
    body = [
        f"a = {read_a}",  # src read first, as in the reference
        f"r = {read_b} & a",
        *_zf_sf_pf_lines(),
        "R.rflags = f",
        "return NXT",
    ]
    return _build_step(body, env)


def _gen_shift(instr, width, nxt, env):
    src, dst = instr.operands
    if isinstance(dst, Reg) and dst.register.width != width:
        return None
    read_v = _read_frag(dst, width, 1, env)
    write = _write_frag(dst, width, 1, env)
    if read_v is None or write is None:
        return None
    count_mask = 63 if width == 64 else 31
    op = instr.mnemonic[:3]
    env["NXT"] = nxt

    if isinstance(src, Imm):
        count = src.value & count_mask
        if count == 0:
            # Flags and value unaffected — but the reference still performs
            # the operand read (a memory operand can segfault); mirror it.
            if isinstance(dst, Mem):
                return _build_step([read_v, "return NXT"], env)
            return _build_step(["return NXT"], env)
        env["M"] = mask_for_width(width)
        env["SGN"] = 1 << (width - 1)
        env["CNT"] = count
        if op == "shl":
            env["SH"] = width - count
            calc = ["r = (v << CNT) & M", "cf = (v >> SH) & 1"]
        elif op == "shr":
            env["SH"] = count - 1
            calc = ["r = v >> CNT", "cf = (v >> SH) & 1"]
        else:  # sar
            env["SH"] = count - 1
            env["MD"] = mask_for_width(width) + 1
            calc = [
                "r = ((v - MD if v & SGN else v) >> CNT) & M",
                "cf = (v >> SH) & 1",
            ]
        body = [
            f"v = {read_v}",
            *calc,
            *_zf_sf_pf_lines(),
            "if cf:",
            "    f |= _CF",
            "R.rflags = f",
            write("r"),
            "return NXT",
        ]
        return _build_step(body, env)

    if not (isinstance(src, Reg) and src.register.root == "rcx"):
        return None  # reference handler raises IllegalInstructionError
    env["M"] = mask_for_width(width)
    env["SGN"] = 1 << (width - 1)
    env["CM"] = count_mask
    env["W"] = width
    if op == "shl":
        calc = ["r = (v << c) & M", "cf = (v >> (W - c)) & 1"]
    elif op == "shr":
        calc = ["r = v >> c", "cf = (v >> (c - 1)) & 1"]
    else:  # sar
        env["MD"] = mask_for_width(width) + 1
        calc = [
            "r = ((v - MD if v & SGN else v) >> c) & M",
            "cf = (v >> (c - 1)) & 1",
        ]
    body = [
        'c = g["rcx"] & CM',
        f"v = {read_v}",  # read precedes the count-0 check (reference order)
        "if c == 0:",
        "    return NXT",
        *calc,
        *_zf_sf_pf_lines(),
        "if cf:",
        "    f |= _CF",
        "R.rflags = f",
        write("r"),
        "return NXT",
    ]
    return _build_step(body, env)


def _gen_unary(instr, width, nxt, env):
    (dst,) = instr.operands
    if isinstance(dst, Reg) and dst.register.width != width:
        return None
    read_v = _read_frag(dst, width, 1, env)
    write = _write_frag(dst, width, 1, env)
    if read_v is None or write is None:
        return None
    env["NXT"] = nxt
    env["M"] = mask_for_width(width)
    op = instr.mnemonic[:3]

    if op == "not":
        body = [f"v = {read_v}", write("~v & M"), "return NXT"]
        return _build_step(body, env)

    env["SGN"] = 1 << (width - 1)
    if op == "neg":
        body = [
            f"v = {read_v}",
            "r = (-v) & M",
            *_zf_sf_pf_lines(),
            "if v:",
            "    f |= _CF",
            "if v & SGN and r & SGN:",
            "    f |= _OF",
            "R.rflags = f",
            write("r"),
            "return NXT",
        ]
    elif op == "inc":
        body = [
            f"v = {read_v}",
            "r = (v + 1) & M",
            *_zf_sf_pf_lines(),
            "if not v & SGN and r & SGN:",
            "    f |= _OF",
            "R.rflags = f | (R.rflags & _CF)",  # inc preserves CF
            write("r"),
            "return NXT",
        ]
    else:  # dec
        body = [
            f"v = {read_v}",
            "r = (v - 1) & M",
            *_zf_sf_pf_lines(),
            "if v & SGN and not r & SGN:",
            "    f |= _OF",
            "R.rflags = f | (R.rflags & _CF)",  # dec preserves CF
            write("r"),
            "return NXT",
        ]
    return _build_step(body, env)


def _gen_setcc(instr, nxt, env):
    (dst,) = instr.operands
    cond = _CC_EXPR.get(instr.spec.cc or "")
    write = _write_frag(dst, 8, 1, env)
    if cond is None or write is None:
        return None
    env["NXT"] = nxt
    body = [
        "f = R.rflags",
        f"v = 1 if {cond} else 0",
        write("v"),
        "return NXT",
    ]
    return _build_step(body, env)


def _gen_jcc(instr, target_pc, nxt, env):
    cond = _CC_EXPR.get(instr.spec.cc or "")
    if cond is None:
        return None
    env["NXT"] = nxt
    env["TGT"] = target_pc
    return _build_step(["f = R.rflags", f"return TGT if {cond} else NXT"], env)


def _gen_push(instr, nxt, env):
    (src,) = instr.operands
    read = _read_frag(src, 64, 0, env)
    if read is None:
        return None
    env["NXT"] = nxt
    body = [
        f"v = {read}",
        'rsp = g["rsp"] - 8',  # unmasked, as the reference passes it on
        'g["rsp"] = rsp & _M64',
        "wr(rsp, v, 8)",
        "return NXT",
    ]
    return _build_step(body, env)


def _gen_pop(instr, nxt, env):
    (dst,) = instr.operands
    write = _write_frag(dst, 64, 1, env)
    if write is None:
        return None
    env["NXT"] = nxt
    body = [
        'rsp = g["rsp"]',
        "v = rd(rsp, 8)",
        'g["rsp"] = (rsp + 8) & _M64',
        write("v"),
        "return NXT",
    ]
    return _build_step(body, env)


# -- closure-based step factories (rare kinds) -------------------------------


def _steps_convert(instr, nxt, gprs):
    if instr.mnemonic == "cltq":
        def step() -> int:
            value = gprs["rax"] & _M32
            if value & 0x8000_0000:
                value |= 0xFFFF_FFFF_0000_0000
            gprs["rax"] = value
            return nxt
        return step
    if instr.mnemonic == "cltd":
        def step() -> int:
            gprs["rdx"] = _M32 if gprs["rax"] & 0x8000_0000 else 0
            return nxt
        return step

    def step() -> int:  # cqto
        gprs["rdx"] = _M64 if gprs["rax"] >> 63 else 0
        return nxt
    return step


def _steps_idiv(instr, width, nxt, gprs, env):
    (src,) = instr.operands
    if isinstance(src, Reg) and src.register.width != width:
        return None
    read = _read_frag(src, width, 0, env)
    if read is None:
        return None
    read_divisor = _build_step([f"return {read}"], env)
    mask = mask_for_width(width)
    sign = 1 << (width - 1)
    modulus = mask + 1
    double_sign = 1 << (2 * width - 1)
    double_modulus = 1 << (2 * width)
    q_min = -(1 << (width - 1))
    q_max = 1 << (width - 1)
    narrow = width == 32

    def step() -> int:
        raw = read_divisor()
        divisor = raw - modulus if raw & sign else raw
        if divisor == 0:
            raise MachineFault("integer division by zero")
        if narrow:
            hi = gprs["rdx"] & _M32
            lo = gprs["rax"] & _M32
        else:
            hi = gprs["rdx"]
            lo = gprs["rax"]
        dividend = (hi << width) | lo
        if dividend & double_sign:
            dividend -= double_modulus
        quotient = trunc_div(dividend, divisor)
        remainder = dividend - quotient * divisor
        if not q_min <= quotient < q_max:
            raise MachineFault("idiv quotient overflow")
        gprs["rax"] = quotient & mask
        gprs["rdx"] = remainder & mask
        return nxt
    return step


def _steps_ret(machine, gprs, memory, code_len):
    """``retq``: pop the return address; sentinel halts the program.

    The reference raises post-dispatch faults (unmapped stack, corrupted
    return address) *after* counting the instruction as executed, so the
    step flags the machine and the run loop adjusts the counter on error.
    """
    from repro.machine.cpu import _SENTINEL

    read_uint = memory.read_uint

    def step() -> int:
        machine._post_exec = True
        rsp = gprs["rsp"]
        return_to = read_uint(rsp, 8)
        gprs["rsp"] = (rsp + 8) & _M64
        if return_to == _SENTINEL:
            machine._post_exec = False
            value = gprs["rax"] & _M32
            machine._exit_code = value - (1 << 32) if value & 0x8000_0000 else value
            return _HALT
        if return_to >= code_len:
            raise MachineFault(f"return to corrupted address {return_to:#x}")
        machine._post_exec = False
        return return_to
    return step


def _steps_call(machine, pc, nxt, entry_pc, builtin_fn, gprs, memory):
    if builtin_fn is not None:
        def step() -> int:
            machine._post_exec = True  # builtin errors count the call as executed
            result = builtin_fn(machine)
            machine._post_exec = False
            gprs["rax"] = result & _M64
            if machine._exit_requested:
                return _HALT
            return nxt
        return step

    return_pc = pc + 1
    write_uint = memory.write_uint

    def step() -> int:
        machine._post_exec = True  # a stack overflow here is a post-exec fault
        new_rsp = gprs["rsp"] - 8  # unmasked, as the reference passes it on
        gprs["rsp"] = new_rsp & _M64
        write_uint(new_rsp, return_pc, 8)
        machine._post_exec = False
        return entry_pc
    return step


def _steps_generic(machine, instr, nxt, target_pc):
    """Reference-handler fallback for shapes outside the fast paths.

    Vector instructions and deliberately malformed operand shapes execute
    through the exact reference semantics, so specialization can never
    change behaviour — only speed. ``target_pc`` is the pre-resolved jump
    target for branch kinds (unused by straight-line instructions).
    """
    handler = handler_for(instr)

    def step() -> int:
        effect = handler(machine, instr)
        flow = effect.flow
        if flow is Flow.NEXT:
            return nxt
        if flow is Flow.JUMP:
            return target_pc
        raise MachineFault(
            f"unexpected control flow {flow} from fallback step"
        )  # pragma: no cover - CALL/RET are always specialized
    return step


def _is_vector_op(op: Operand) -> bool:
    return isinstance(op, Reg) and op.register.kind is RegisterKind.VECTOR


# -- program translation -----------------------------------------------------


def translate_program(machine: "Machine") -> TranslatedCode:
    """Compile every instruction of ``machine``'s program into a step."""
    registers = machine.registers
    gprs = registers._gprs
    memory = machine.memory
    # Live state bound into every generated step. RegisterFile and Memory
    # keep these objects identity-stable across reset/restore.
    base_env = {
        "g": gprs,
        "R": registers,
        "rd": memory.read_uint,
        "wr": memory.write_uint,
        "M64": _M64,
    }
    code = machine._code
    code_len = len(code)
    steps: list[Step] = []

    for pc, instr in enumerate(code):
        nxt = pc + 1 if pc + 1 < code_len else _FELL_OFF
        kind = instr.kind
        width = instr.spec.width
        env = dict(base_env)
        step: Step | None = None

        if kind is InstrKind.MOV:
            src, dst = instr.operands
            if not (_is_vector_op(src) or _is_vector_op(dst)):
                step = _gen_mov(instr, width, nxt, env)
        elif kind is InstrKind.MOVEXT:
            step = _gen_movext(instr, nxt, env)
        elif kind is InstrKind.LEA:
            step = _gen_lea(instr, nxt, env)
        elif kind is InstrKind.ALU:
            step = _gen_alu(instr, width, nxt, env)
        elif kind is InstrKind.SHIFT:
            step = _gen_shift(instr, width, nxt, env)
        elif kind is InstrKind.UNARY:
            step = _gen_unary(instr, width, nxt, env)
        elif kind is InstrKind.CMP:
            step = _gen_cmp(instr, width, nxt, env)
        elif kind is InstrKind.TEST:
            step = _gen_test(instr, width, nxt, env)
        elif kind is InstrKind.SETCC:
            step = _gen_setcc(instr, nxt, env)
        elif kind is InstrKind.PUSH:
            step = _gen_push(instr, nxt, env)
        elif kind is InstrKind.POP:
            step = _gen_pop(instr, nxt, env)
        elif kind is InstrKind.CONVERT:
            step = _steps_convert(instr, nxt, gprs)
        elif kind is InstrKind.IDIV:
            step = _steps_idiv(instr, width, nxt, gprs, env)
        elif kind is InstrKind.JMP:
            def step(_t=machine._jump_pc[pc]) -> int:
                return _t
        elif kind is InstrKind.JCC:
            step = _gen_jcc(instr, machine._jump_pc[pc], nxt, env)
        elif kind is InstrKind.CALL:
            step = _steps_call(machine, pc, nxt, machine._call_entry_pc[pc],
                               machine._call_builtin_fn[pc], gprs, memory)
        elif kind is InstrKind.RET:
            step = _steps_ret(machine, gprs, memory, code_len)
        elif kind is InstrKind.NOP:
            def step(_n=nxt) -> int:
                return _n

        if step is None:
            step = _steps_generic(machine, instr, nxt, machine._jump_pc[pc])
        steps.append(step)

    return TranslatedCode(steps, [1 if site else 0 for site in machine._is_site])


# -- execution loops ---------------------------------------------------------


def execute_translated(
    machine: "Machine",
    translation: TranslatedCode,
    pc: int,
    executed: int,
    sites: int,
    budget: int,
    fault_hook,
    fault_at: int,
    stop_at_site: int | None,
) -> tuple[int, int, int, bool]:
    """Drive the compiled steps; same contract as ``Machine._execute_from``.

    The no-hook/no-stop fast loop serves golden runs and fault-free suffix
    execution; the general loop adds fault-site delivery and checkpoint
    stops with exactly the reference engine's check ordering, counters and
    halt-stamp semantics.

    Because ``fault_hook`` and ``stop_at_site`` compose in one call (the
    general loop checks stop, then bounds, then budget, exactly like the
    reference engine), convergence early-exit needs no loop of its own:
    ``Machine._run_converged`` chains plain legs of this function between
    trail boundaries. Steps write ``_gprs``/``rflags`` behind the register
    file's back, so callers that cache register snapshots must go through
    ``Machine._engine_leg``, which invalidates the copy-on-write cache
    after every leg that executed an instruction.
    """
    steps = translation.steps
    site_flags = translation.site_flags
    code_len = translation.code_len

    if fault_hook is None and stop_at_site is None:
        try:
            if pc < 0 or pc >= code_len:
                raise MachineFault(f"execution fell outside code at index {pc}")
            while True:
                if executed >= budget:
                    raise ExecutionLimitExceeded(
                        f"exceeded {budget} dynamic instructions"
                    )
                new_pc = steps[pc]()
                executed += 1
                sites += site_flags[pc]
                if new_pc >= 0:
                    pc = new_pc
                    continue
                if new_pc == _HALT:
                    break
                raise MachineFault(
                    f"execution fell outside code at index {code_len}"
                )
        except MachineError:
            if machine._post_exec:
                machine._post_exec = False
                executed += 1  # the faulting call/ret did execute
            machine.halt_executed = executed
            machine.halt_sites = sites
            raise
        return pc, executed, sites, False

    code = machine._code
    try:
        while True:
            # Check order mirrors the reference loop: stop, bounds, budget.
            if stop_at_site is not None and sites >= stop_at_site:
                return pc, executed, sites, True
            if pc >= code_len or pc < 0:
                raise MachineFault(f"execution fell outside code at index {pc}")
            if executed >= budget:
                raise ExecutionLimitExceeded(
                    f"exceeded {budget} dynamic instructions"
                )
            new_pc = steps[pc]()
            executed += 1
            if site_flags[pc]:
                if fault_hook is not None and (fault_at < 0 or sites == fault_at):
                    machine.executed_at_site = executed
                    fault_hook(machine, code[pc], sites)
                sites += 1
            if new_pc >= 0:
                pc = new_pc
                continue
            if new_pc == _HALT:
                break
            # Fell off the end: next iteration faults, after the stop check —
            # matching the reference loop's check ordering.
            pc = code_len
    except MachineError:
        if machine._post_exec:
            machine._post_exec = False
            executed += 1  # the faulting call/ret did execute
        machine.halt_executed = executed
        machine.halt_sites = sites
        raise
    return pc, executed, sites, False


# -- superblock fusion --------------------------------------------------------
#
# The fused engine removes the remaining per-instruction cost of the
# threaded-code engine: instead of one closure call, one counter update and
# one loop iteration per instruction, each basic block / fall-through
# superblock compiles to ONE exec'd body — straight-line statements
# concatenated, with flag computation elided at interior instructions whose
# flags are provably dead (per-bit backward liveness over
# ``asm.liveness.flag_bits_read``/``flag_bits_written``, conservatively ALL
# bits live at every block exit, so the architectural RFLAGS value at any
# block boundary is always exact).
#
# Bit-identity is preserved by construction:
#
# * blocks are cut at calls, returns, ``idiv`` and any shape outside the
#   fast paths — those instructions execute through the per-instruction
#   translated steps, which the fused code object retains in full;
# * a block only runs fused when no observable event can occur inside it:
#   the instruction budget cannot expire mid-block, no ``stop_at_site``
#   boundary and no pending fault-site hook falls inside it — otherwise the
#   driver falls back to single-stepping, so ``run_to_site`` snapshots,
#   fault-site numbering and hook delivery are identical to the reference;
# * fused bodies with faultable statements (memory operands, push/pop)
#   stamp their intra-block progress (instructions and sites completed)
#   into a shared cell before each such statement, so ``halt_executed`` /
#   ``halt_sites`` stay exact when a segfault aborts a fused block.

from repro.asm.liveness import (  # noqa: E402  (fusion-only dependency)
    ALL_FLAG_BITS,
    _shift_count,
    flag_bits_read,
    flag_bits_written,
)

#: Kinds the fusion emitter can place inside a superblock body.
_FUSABLE_KINDS = frozenset({
    InstrKind.MOV, InstrKind.MOVEXT, InstrKind.LEA, InstrKind.ALU,
    InstrKind.SHIFT, InstrKind.UNARY, InstrKind.CMP, InstrKind.TEST,
    InstrKind.SETCC, InstrKind.PUSH, InstrKind.POP, InstrKind.CONVERT,
    InstrKind.NOP,
})


class FusedCode:
    """Fused superblocks over a :class:`TranslatedCode` fallback layer."""

    __slots__ = ("base", "fused_steps", "fused_len", "fused_sites", "progress")

    def __init__(self, base: TranslatedCode, fused_steps, fused_len,
                 fused_sites, progress) -> None:
        self.base = base
        self.fused_steps = fused_steps
        self.fused_len = fused_len
        self.fused_sites = fused_sites
        #: ``[instructions, sites]`` completed inside the currently-failing
        #: fused block; written by the generated except clause.
        self.progress = progress


def _can_fault(instr) -> bool:
    """Whether a fused statement for ``instr`` can raise a MachineError."""
    if instr.kind in (InstrKind.PUSH, InstrKind.POP):
        return True
    if instr.kind is InstrKind.LEA:
        return False  # address arithmetic only, no access
    return any(isinstance(op, Mem) for op in instr.operands)


def _seg_guess(mem: Mem) -> int:
    """Index into ``Memory._segments`` of the likeliest segment for ``mem``.

    ``rbp``/``rsp``-based addressing is stack traffic, absolute addresses
    are globals, everything else is pointer-chasing into the heap. A wrong
    guess only costs speed — the generated fast path re-checks bounds and
    falls back to the accessor — never correctness.
    """
    base = mem.base
    if base is not None and base.root in ("rbp", "rsp"):
        return 0  # stack
    if base is None and mem.index is None:
        return 2  # globals
    return 1  # heap


def _fread(op, width, idx, env, bounded=False):
    """``(lines, value_expr)`` reading ``op``; ``(None, None)`` if unfusable.

    Register and immediate operands read as a pure expression with no
    lines (the :func:`_read_frag` rules, including the register-width
    bounding caveat). Memory operands emit the fused engine's inlined fast
    path — a bounds check against the statically-guessed segment plus a
    struct codec over its backing bytearray — falling back to ``rd`` (which
    also owns the SegmentationFault) on a miss; the value lands in
    ``v{idx}``.
    """
    if isinstance(op, Mem):
        if width not in (8, 16, 32, 64):
            return None, None
        addr = _addr_frag(op, idx, env)
        if addr is None:
            return None, None
        n = width // 8
        k = _seg_guess(op)
        lines = [
            f"a{idx} = {addr}",
            f"if SEGB{k} <= a{idx} and a{idx} + {n} <= SEGE{k}:",
            f"    v{idx} = _U{n}(SEGD{k}, a{idx} - SEGB{k})[0]",
            "else:",
            f"    v{idx} = rd(a{idx}, {n})",
        ]
        return lines, f"v{idx}"
    expr = (_read_bounded if bounded else _read_frag)(op, width, idx, env)
    if expr is None:
        return None, None
    return [], expr


def _fwrite(op, width, idx, env, expr, have_addr=False):
    """Statements writing ``expr`` (bounded to ``width``) into ``op``.

    Memory destinations get the inlined fast path (struct codec plus the
    reference's dirty-page bookkeeping), falling back to ``wr`` on a
    bounds miss. ``have_addr`` reuses the ``a{idx}`` computed by this
    operand's read — sound only when no register feeding the address was
    written in between, which holds for every read-modify-write template
    here because the destination operand itself is the only write.
    """
    if isinstance(op, Mem):
        if width not in (8, 16, 32, 64):
            return None
        n = width // 8
        k = _seg_guess(op)
        lines = []
        if not have_addr:
            addr = _addr_frag(op, idx, env)
            if addr is None:
                return None
            lines.append(f"a{idx} = {addr}")
        if not expr.isidentifier():
            lines.append(f"w{idx} = {expr}")
            expr = f"w{idx}"
        lines.extend((
            f"if SEGB{k} <= a{idx} and a{idx} + {n} <= SEGE{k}:",
            f"    o{idx} = a{idx} - SEGB{k}",
            f"    _P{n}(SEGD{k}, o{idx}, {expr})",
            f"    SEGA{k}(o{idx} >> 12)",
        ))
        if n > 1:
            lines.append(f"    SEGA{k}((o{idx} + {n - 1}) >> 12)")
        lines.extend(("else:", f"    wr(a{idx}, {expr}, {n})"))
        return lines
    write = _write_frag(op, width, idx, env)
    if write is None:
        return None
    return [write(expr)]


def _fuse_mov(instr, width, j, env):
    src, dst = instr.operands
    if _is_vector_op(src) or _is_vector_op(dst):
        return None
    la, ea = _fread(src, width, 2 * j, env, bounded=True)
    if la is None:
        return None
    lw = _fwrite(dst, width, 2 * j + 1, env, ea)
    if lw is None:
        return None
    return [*la, *lw]


def _fuse_movext(instr, j, env):
    spec = instr.spec
    src, dst = instr.operands
    la, ea = _fread(src, spec.src_width, 2 * j, env, bounded=True)
    if la is None:
        return None
    if instr.mnemonic.startswith("movz"):
        lw = _fwrite(dst, spec.width, 2 * j + 1, env, ea)
        if lw is None:
            return None
        return [*la, *lw]
    ssgn = hex(1 << (spec.src_width - 1))
    ext = hex(mask_for_width(spec.width) ^ mask_for_width(spec.src_width))
    lw = _fwrite(dst, spec.width, 2 * j + 1, env, "v")
    if lw is None:
        return None
    return [*la, f"v = {ea}", f"if v & {ssgn}:", f"    v |= {ext}", *lw]


def _fuse_lea(instr, j, env):
    src, dst = instr.operands
    if not isinstance(src, Mem):
        return None
    addr = _addr_frag(src, 2 * j, env)
    if addr is None:
        return None
    lw = _fwrite(dst, 64, 2 * j + 1, env, addr)
    if lw is None:
        return None
    return lw


def _fuse_alu(instr, width, j, env, elide):
    src, dst = instr.operands
    if not _alu_guard(src, dst, width):
        return None
    la, ea = _fread(src, width, 2 * j, env)
    lb, eb = _fread(dst, width, 2 * j + 1, env)
    if la is None or lb is None:
        return None

    def write(expr):
        return _fwrite(dst, width, 2 * j + 1, env, expr,
                       have_addr=isinstance(dst, Mem))

    m = hex(mask_for_width(width))
    sgn = hex(1 << (width - 1))
    root = instr.mnemonic[:-1]
    pre = [*la, f"a = {ea}", *lb, f"b = {eb}"]
    wr_r = write("r")
    if wr_r is None:
        return None

    if root == "add":
        if elide:
            return [*pre, *write(f"(a + b) & {m}")]
        return [
            *pre,
            "full = a + b",
            f"r = full & {m}",
            *_zf_sf_pf_lines("r", sgn=sgn),
            f"if full > {m}:",
            "    f |= _CF",
            f"if not ((a ^ b) & {sgn}) and ((a ^ r) & {sgn}):",
            "    f |= _OF",
            "R.rflags = f",
            *wr_r,
        ]
    if root == "sub":
        if elide:
            return [*pre, *write(f"(b - a) & {m}")]
        return [
            *pre,
            f"r = (b - a) & {m}",
            *_zf_sf_pf_lines("r", sgn=sgn),
            "if b < a:",
            "    f |= _CF",
            f"if ((b ^ a) & {sgn}) and ((b ^ r) & {sgn}):",
            "    f |= _OF",
            "R.rflags = f",
            *wr_r,
        ]
    if root == "imul":
        md = hex(mask_for_width(width) + 1)
        body = [
            *pre,
            f"if a & {sgn}:",
            f"    a -= {md}",
            f"if b & {sgn}:",
            f"    b -= {md}",
            "full = a * b",
            f"r = full & {m}",
        ]
        if elide:
            return [*body, *wr_r]
        return [
            *body,
            *_zf_sf_pf_lines("r", sgn=sgn),
            f"if (r - {md} if r & {sgn} else r) != full:",
            "    f |= _CFOF",
            "R.rflags = f",
            *wr_r,
        ]
    if root in ("and", "or", "xor"):
        sym = {"and": "&", "or": "|", "xor": "^"}[root]
        body = [*pre, f"r = b {sym} a"]
        if elide:
            return [*body, *wr_r]
        return [*body, *_zf_sf_pf_lines("r", sgn=sgn), "R.rflags = f",
                *wr_r]
    return None  # pragma: no cover - spec table guarantees the roots above


def _fuse_cmp_test(instr, width, j, env, elide):
    src, dst = instr.operands
    if not _alu_guard(src, dst, width):
        return None
    la, ea = _fread(src, width, 2 * j, env)
    lb, eb = _fread(dst, width, 2 * j + 1, env)
    if la is None or lb is None:
        return None
    if elide:
        # Flags are dead: keep only the (possibly faulting) memory reads,
        # in the reference's src-then-dst order.
        return [*la, *lb]
    sgn = hex(1 << (width - 1))
    if instr.kind is InstrKind.TEST:
        return [*la, f"a = {ea}", *lb, f"r = {eb} & a",
                *_zf_sf_pf_lines("r", sgn=sgn), "R.rflags = f"]
    m = hex(mask_for_width(width))
    return [
        *la,
        f"a = {ea}",
        *lb,
        f"b = {eb}",
        f"r = (b - a) & {m}",
        *_zf_sf_pf_lines("r", sgn=sgn),
        "if b < a:",
        "    f |= _CF",
        f"if ((b ^ a) & {sgn}) and ((b ^ r) & {sgn}):",
        "    f |= _OF",
        "R.rflags = f",
    ]


def _fuse_shift(instr, width, j, env, elide):
    src, dst = instr.operands
    if isinstance(dst, Reg) and dst.register.width != width:
        return None
    lv, ev = _fread(dst, width, 2 * j + 1, env)
    if lv is None:
        return None
    wr_r = _fwrite(dst, width, 2 * j + 1, env, "r",
                   have_addr=isinstance(dst, Mem))
    if wr_r is None:
        return None
    count_mask = 63 if width == 64 else 31
    op = instr.mnemonic[:3]
    m = hex(mask_for_width(width))
    sgn = hex(1 << (width - 1))
    md = hex(mask_for_width(width) + 1)

    if isinstance(src, Imm):
        count = src.value & count_mask
        if count == 0:
            # Flags and value unaffected; mirror the reference's read.
            return lv if isinstance(dst, Mem) else []
        if op == "shl":
            calc = [f"r = (v << {count}) & {m}",
                    f"cf = (v >> {width - count}) & 1"]
        elif op == "shr":
            calc = [f"r = v >> {count}", f"cf = (v >> {count - 1}) & 1"]
        else:  # sar
            calc = [f"r = ((v - {md} if v & {sgn} else v) >> {count}) & {m}",
                    f"cf = (v >> {count - 1}) & 1"]
        if elide:
            return [*lv, f"v = {ev}", calc[0], *wr_r]
        return [*lv, f"v = {ev}", *calc, *_zf_sf_pf_lines("r", sgn=sgn),
                "if cf:", "    f |= _CF", "R.rflags = f", *wr_r]

    if not (isinstance(src, Reg) and src.register.root == "rcx"):
        return None
    if op == "shl":
        calc = [f"r = (v << c) & {m}", f"cf = (v >> ({width} - c)) & 1"]
    elif op == "shr":
        calc = ["r = v >> c", "cf = (v >> (c - 1)) & 1"]
    else:  # sar
        calc = [f"r = ((v - {md} if v & {sgn} else v) >> c) & {m}",
                "cf = (v >> (c - 1)) & 1"]
    if elide:
        inner = [calc[0], *wr_r]
    else:
        inner = [*calc, *_zf_sf_pf_lines("r", sgn=sgn),
                 "if cf:", "    f |= _CF", "R.rflags = f", *wr_r]
    return [
        f'c = g["rcx"] & {count_mask}',
        *lv,  # read precedes the count-0 check (reference order)
        f"v = {ev}",
        "if c:",
        *["    " + line for line in inner],
    ]


def _fuse_unary(instr, width, j, env, elide):
    (dst,) = instr.operands
    if isinstance(dst, Reg) and dst.register.width != width:
        return None
    lv, ev = _fread(dst, width, 2 * j + 1, env)
    if lv is None:
        return None

    def write(expr):
        return _fwrite(dst, width, 2 * j + 1, env, expr,
                       have_addr=isinstance(dst, Mem))

    wr_r = write("r")
    if wr_r is None:
        return None
    m = hex(mask_for_width(width))
    sgn = hex(1 << (width - 1))
    op = instr.mnemonic[:3]

    if op == "not":
        return [*lv, f"v = {ev}", *write(f"~v & {m}")]
    if op == "neg":
        if elide:
            return [*lv, f"v = {ev}", *write(f"(-v) & {m}")]
        return [
            *lv,
            f"v = {ev}",
            f"r = (-v) & {m}",
            *_zf_sf_pf_lines("r", sgn=sgn),
            "if v:",
            "    f |= _CF",
            f"if v & {sgn} and r & {sgn}:",
            "    f |= _OF",
            "R.rflags = f",
            *wr_r,
        ]
    delta = "+ 1" if op == "inc" else "- 1"
    if elide:
        return [*lv, f"v = {ev}", *write(f"(v {delta}) & {m}")]
    of_cond = (f"if not v & {sgn} and r & {sgn}:" if op == "inc"
               else f"if v & {sgn} and not r & {sgn}:")
    return [
        *lv,
        f"v = {ev}",
        f"r = (v {delta}) & {m}",
        *_zf_sf_pf_lines("r", sgn=sgn),
        of_cond,
        "    f |= _OF",
        "R.rflags = f | (R.rflags & _CF)",  # inc/dec preserve CF
        *wr_r,
    ]


def _fuse_setcc(instr, j, env):
    (dst,) = instr.operands
    cond = _CC_EXPR.get(instr.spec.cc or "")
    if cond is None:
        return None
    lw = _fwrite(dst, 8, 2 * j + 1, env, "v")
    if lw is None:
        return None
    return ["f = R.rflags", f"v = 1 if {cond} else 0", *lw]


def _fuse_convert(instr):
    if instr.mnemonic == "cltq":
        return [
            'v = g["rax"] & 0xffffffff',
            "if v & 0x80000000:",
            "    v |= 0xffffffff00000000",
            'g["rax"] = v',
        ]
    if instr.mnemonic == "cltd":
        return ['g["rdx"] = 0xffffffff if g["rax"] & 0x80000000 else 0']
    return ['g["rdx"] = 0xffffffffffffffff if g["rax"] >> 63 else 0']  # cqto


def _fuse_push(instr, j, env):
    (src,) = instr.operands
    lv, ev = _fread(src, 64, 2 * j, env)
    if lv is None:
        return None
    return [
        *lv,
        f"v = {ev}",
        'rsp = g["rsp"] - 8',  # unmasked, as the reference passes it on
        'g["rsp"] = rsp & _M64',
        "if SEGB0 <= rsp and rsp + 8 <= SEGE0:",
        "    o = rsp - SEGB0",
        "    _P8(SEGD0, o, v)",
        "    SEGA0(o >> 12)",
        "    SEGA0((o + 7) >> 12)",
        "else:",
        "    wr(rsp, v, 8)",
    ]


def _fuse_pop(instr, j, env):
    (dst,) = instr.operands
    lw = _fwrite(dst, 64, 2 * j + 1, env, "v")
    if lw is None:
        return None
    return [
        'rsp = g["rsp"]',
        "if SEGB0 <= rsp and rsp + 8 <= SEGE0:",
        "    v = _U8(SEGD0, rsp - SEGB0)[0]",
        "else:",
        "    v = rd(rsp, 8)",
        'g["rsp"] = (rsp + 8) & _M64',
        *lw,
    ]


def _fuse_instr_lines(instr, j, env, elide) -> list[str] | None:
    """Fused-body statements for one instruction (``None`` = not fusable)."""
    kind = instr.kind
    width = instr.spec.width
    if kind is InstrKind.MOV:
        return _fuse_mov(instr, width, j, env)
    if kind is InstrKind.MOVEXT:
        return _fuse_movext(instr, j, env)
    if kind is InstrKind.LEA:
        return _fuse_lea(instr, j, env)
    if kind is InstrKind.ALU:
        return _fuse_alu(instr, width, j, env, elide)
    if kind in (InstrKind.CMP, InstrKind.TEST):
        return _fuse_cmp_test(instr, width, j, env, elide)
    if kind is InstrKind.SHIFT:
        return _fuse_shift(instr, width, j, env, elide)
    if kind is InstrKind.UNARY:
        return _fuse_unary(instr, width, j, env, elide)
    if kind is InstrKind.SETCC:
        return _fuse_setcc(instr, j, env)
    if kind is InstrKind.CONVERT:
        return _fuse_convert(instr)
    if kind is InstrKind.PUSH:
        return _fuse_push(instr, j, env)
    if kind is InstrKind.POP:
        return _fuse_pop(instr, j, env)
    if kind is InstrKind.NOP:
        return []
    return None


def _dead_flag_elisions(run) -> list[bool]:
    """Per-instruction dead-flag verdicts via backward per-bit liveness.

    ALL five bits are treated as live at the block exit (the successor is
    unknown), so the last writer of any bit is never elided and RFLAGS is
    architecturally exact at every block boundary. Interior writers whose
    every possibly-written bit is overwritten before any read are elided.
    ``%cl``-count shifts may write all bits but must-write none, so they
    can be elided when all bits are dead but never kill a bit themselves.
    """
    live = set(ALL_FLAG_BITS)
    elide = [False] * len(run)
    for idx in range(len(run) - 1, -1, -1):
        instr = run[idx]
        must = flag_bits_written(instr)
        may = must
        if instr.kind is InstrKind.SHIFT and _shift_count(instr) is None:
            may = ALL_FLAG_BITS
        if may and not (may & live):
            elide[idx] = True
        live -= must
        live |= flag_bits_read(instr)
    return elide


def _fuse_block(machine, code, start, leaders, base_env, progress):
    """Compile the superblock at leader ``start``; None when < 2 instrs.

    Returns ``(step, instruction_count, site_count)``. The block extends
    through straight-line fusable instructions up to (and including) a
    terminating ``jmp``/``jcc``, and is cut at the next leader, at any
    call/ret/idiv, or at a shape outside the fast paths.
    """
    n = len(code)
    run = []
    j = start
    term = None
    while j < n:
        if j > start and j in leaders:
            break
        instr = code[j]
        kind = instr.kind
        if kind is InstrKind.JMP:
            term = ("jmp", None, machine._jump_pc[j])
            j += 1
            break
        if kind is InstrKind.JCC:
            cond = _CC_EXPR.get(instr.spec.cc or "")
            if cond is None:
                break
            term = ("jcc", cond, machine._jump_pc[j])
            j += 1
            break
        if kind not in _FUSABLE_KINDS:
            break
        if _fuse_instr_lines(instr, len(run), dict(base_env), False) is None:
            break
        run.append(instr)
        j += 1
    end = j
    length = end - start
    if length < 2:
        return None

    elide = _dead_flag_elisions(run)
    is_site = machine._is_site
    env = dict(base_env)
    faulting = any(_can_fault(instr) for instr in run)
    stmts: list[str] = []
    sites_before = 0
    for idx, instr in enumerate(run):
        if faulting and _can_fault(instr) and (idx or sites_before):
            # Progress stamp consumed by the generated except clause.
            stmts.append(f"N = {idx}")
            stmts.append(f"S = {sites_before}")
        stmts.extend(_fuse_instr_lines(instr, idx, env, elide[idx]))
        if is_site[start + idx]:
            sites_before += 1

    if term is None:
        env["NXT"] = end if end < n else _FELL_OFF
        stmts.append("return NXT")
    elif term[0] == "jmp":
        env["TGT"] = term[2]
        stmts.append("return TGT")
    else:
        env["TGT"] = term[2]
        env["NXT"] = end if end < n else _FELL_OFF
        stmts.append("f = R.rflags")
        stmts.append(f"return TGT if {term[1]} else NXT")

    if faulting:
        env["ME"] = MachineError
        env["PROG"] = progress
        body = ["N = 0", "S = 0", "try:"]
        body.extend("    " + line for line in stmts)
        body.extend(("except ME:", "    PROG[0] = N", "    PROG[1] = S",
                     "    raise"))
    else:
        body = stmts
    step = _build_step(body, env)
    block_sites = sum(1 for pc in range(start, end) if is_site[pc])
    return step, length, block_sites


def translate_fused(machine: "Machine") -> FusedCode:
    """Fuse superblocks over the per-instruction translation of ``machine``."""
    base = translate_program(machine)
    code = machine._code
    n = len(code)

    leaders = set(machine._entry.values())
    for pc in range(n):
        if machine._jump_pc[pc] >= 0:
            leaders.add(machine._jump_pc[pc])
        if machine._call_entry_pc[pc] >= 0:
            leaders.add(machine._call_entry_pc[pc])
        kind = code[pc].kind
        if (kind.is_branch or kind not in _FUSABLE_KINDS) and pc + 1 < n:
            leaders.add(pc + 1)

    registers = machine.registers
    base_env = {
        "g": registers._gprs,
        "R": registers,
        "rd": machine.memory.read_uint,
        "wr": machine.memory.write_uint,
        "M64": _M64,
    }
    # Segment bindings for the inlined memory fast path. Segment start,
    # backing bytearray and dirty set are identity-stable across resets and
    # snapshot restores (see repro.machine.memory), so capturing them at
    # fuse time is safe.
    for k, seg in enumerate(machine.memory._segments):
        base_env[f"SEGB{k}"] = seg.start
        base_env[f"SEGE{k}"] = seg.start + len(seg.data)
        base_env[f"SEGD{k}"] = seg.data
        base_env[f"SEGA{k}"] = seg.dirty.add
    progress = [0, 0]
    fused_steps: list[Step | None] = [None] * n
    fused_len = [0] * n
    fused_sites = [0] * n
    for start in sorted(leaders):
        if start >= n:
            continue
        built = _fuse_block(machine, code, start, leaders, base_env, progress)
        if built is None:
            continue
        fused_steps[start], fused_len[start], fused_sites[start] = built
    return FusedCode(base, fused_steps, fused_len, fused_sites, progress)


def execute_fused(
    machine: "Machine",
    fused: FusedCode,
    pc: int,
    executed: int,
    sites: int,
    budget: int,
    fault_hook,
    fault_at: int,
    stop_at_site: int | None,
) -> tuple[int, int, int, bool]:
    """Drive fused superblocks; same contract as ``execute_translated``.

    A block runs fused only when nothing observable can happen inside it —
    the budget cannot expire mid-block, no ``stop_at_site`` boundary and no
    hook-eligible fault site falls inside it. Everything else (including
    every instruction of a block containing the pending fault site)
    single-steps through the per-instruction translated steps, so counters,
    snapshots, hook delivery and fault-site numbering are bit-identical to
    the reference engine.
    """
    base = fused.base
    steps = base.steps
    site_flags = base.site_flags
    code_len = base.code_len
    fsteps = fused.fused_steps
    flen = fused.fused_len
    fsites = fused.fused_sites
    prog = fused.progress

    if fault_hook is None and stop_at_site is None:
        try:
            if pc < 0 or pc >= code_len:
                raise MachineFault(f"execution fell outside code at index {pc}")
            while True:
                fstep = fsteps[pc]
                if fstep is not None and executed + flen[pc] <= budget:
                    try:
                        new_pc = fstep()
                    except MachineError:
                        executed += prog[0]
                        sites += prog[1]
                        raise
                    executed += flen[pc]
                    sites += fsites[pc]
                else:
                    if executed >= budget:
                        raise ExecutionLimitExceeded(
                            f"exceeded {budget} dynamic instructions"
                        )
                    new_pc = steps[pc]()
                    executed += 1
                    sites += site_flags[pc]
                if new_pc >= 0:
                    pc = new_pc
                    continue
                if new_pc == _HALT:
                    break
                raise MachineFault(
                    f"execution fell outside code at index {code_len}"
                )
        except MachineError:
            if machine._post_exec:
                machine._post_exec = False
                executed += 1  # the faulting call/ret did execute
            machine.halt_executed = executed
            machine.halt_sites = sites
            raise
        return pc, executed, sites, False

    code = machine._code
    try:
        while True:
            # Check order mirrors the reference loop: stop, bounds, budget.
            if stop_at_site is not None and sites >= stop_at_site:
                return pc, executed, sites, True
            if pc >= code_len or pc < 0:
                raise MachineFault(f"execution fell outside code at index {pc}")
            fstep = fsteps[pc]
            if fstep is not None:
                if fault_hook is None:
                    hook_safe = True
                elif fault_at < 0:
                    hook_safe = fsites[pc] == 0
                else:
                    hook_safe = (fault_at < sites
                                 or sites + fsites[pc] <= fault_at)
            else:
                hook_safe = False
            if (hook_safe
                    and executed + flen[pc] <= budget
                    and (stop_at_site is None
                         or sites + fsites[pc] < stop_at_site)):
                try:
                    new_pc = fstep()
                except MachineError:
                    executed += prog[0]
                    sites += prog[1]
                    raise
                executed += flen[pc]
                sites += fsites[pc]
            else:
                if executed >= budget:
                    raise ExecutionLimitExceeded(
                        f"exceeded {budget} dynamic instructions"
                    )
                new_pc = steps[pc]()
                executed += 1
                if site_flags[pc]:
                    if fault_hook is not None and (fault_at < 0
                                                   or sites == fault_at):
                        machine.executed_at_site = executed
                        fault_hook(machine, code[pc], sites)
                    sites += 1
            if new_pc >= 0:
                pc = new_pc
                continue
            if new_pc == _HALT:
                break
            # Fell off the end: next iteration faults, after the stop check —
            # matching the reference loop's check ordering.
            pc = code_len
    except MachineError:
        if machine._post_exec:
            machine._post_exec = False
            executed += 1  # the faulting call/ret did execute
        machine.halt_executed = executed
        machine.halt_sites = sites
        raise
    return pc, executed, sites, False
