"""RFLAGS modeling: bit positions, arithmetic flag computation, conditions.

The five flags that matter to the modeled ISA (CF, PF, ZF, SF, OF) live at
their real x86 bit positions inside a 64-bit RFLAGS value, so a fault
injected "into the destination register" of a ``cmp`` (paper Fig. 9) is a
literal bit-flip in this word.
"""

from __future__ import annotations

from repro.utils.bitops import parity_even, to_signed, to_unsigned

CF_BIT = 0
PF_BIT = 2
ZF_BIT = 6
SF_BIT = 7
OF_BIT = 11

#: Bit positions eligible for flag-targeted fault injection.
INJECTABLE_FLAG_BITS: tuple[int, ...] = (CF_BIT, PF_BIT, ZF_BIT, SF_BIT, OF_BIT)


def pack_flags(cf: bool, pf: bool, zf: bool, sf: bool, of: bool) -> int:
    """Pack individual flags into an RFLAGS word."""
    return (
        (int(cf) << CF_BIT)
        | (int(pf) << PF_BIT)
        | (int(zf) << ZF_BIT)
        | (int(sf) << SF_BIT)
        | (int(of) << OF_BIT)
    )


def flags_for_result(result: int, width: int, cf: bool = False, of: bool = False) -> int:
    """RFLAGS after a logical op: ZF/SF/PF from result, CF/OF as given."""
    result = to_unsigned(result, width)
    zf = result == 0
    sf = bool(result >> (width - 1))
    pf = parity_even(result)
    return pack_flags(cf, pf, zf, sf, of)


def flags_for_add(a: int, b: int, width: int) -> tuple[int, int]:
    """(result, rflags) for ``a + b`` at ``width`` bits."""
    full = a + b
    result = to_unsigned(full, width)
    cf = full >> width != 0
    sa, sb, sr = to_signed(a, width), to_signed(b, width), to_signed(result, width)
    of = (sa >= 0) == (sb >= 0) and (sr >= 0) != (sa >= 0)
    return result, flags_for_result(result, width, cf=cf, of=of)


def flags_for_sub(a: int, b: int, width: int) -> tuple[int, int]:
    """(result, rflags) for ``a - b`` at ``width`` bits (also cmp)."""
    result = to_unsigned(a - b, width)
    cf = to_unsigned(a, width) < to_unsigned(b, width)
    sa, sb, sr = to_signed(a, width), to_signed(b, width), to_signed(result, width)
    of = (sa >= 0) != (sb >= 0) and (sr >= 0) != (sa >= 0)
    return result, flags_for_result(result, width, cf=cf, of=of)


def get_flag(rflags: int, bit: int) -> bool:
    return bool((rflags >> bit) & 1)


def condition_holds(cc: str, rflags: int) -> bool:
    """Evaluate an x86 condition code against an RFLAGS value.

    >>> condition_holds("e", 1 << ZF_BIT)
    True
    """
    cf = get_flag(rflags, CF_BIT)
    zf = get_flag(rflags, ZF_BIT)
    sf = get_flag(rflags, SF_BIT)
    of = get_flag(rflags, OF_BIT)
    if cc == "e":
        return zf
    if cc == "ne":
        return not zf
    if cc == "l":
        return sf != of
    if cc == "ge":
        return sf == of
    if cc == "le":
        return zf or sf != of
    if cc == "g":
        return not zf and sf == of
    if cc == "b":
        return cf
    if cc == "ae":
        return not cf
    if cc == "be":
        return cf or zf
    if cc == "a":
        return not cf and not zf
    if cc == "s":
        return sf
    if cc == "ns":
        return not sf
    raise ValueError(f"unknown condition code {cc!r}")
