"""Architectural simulator for the modeled x86-64 subset.

The machine executes :class:`repro.asm.AsmProgram` objects functionally
(register file with sub-register aliasing, RFLAGS, byte-addressable
segmented memory, SysV-ish calls, builtin runtime) and, optionally, through
an in-order scoreboard timing model that charges port pressure and
dependence stalls — the mechanism by which FERRUM's vector duplication is
cheaper than scalar duplication.
"""

from repro.machine.cpu import Machine, MachineSnapshot, RunResult
from repro.machine.memory import Memory, MemoryLayout, MemorySnapshot
from repro.machine.state import RegisterFile, RegisterFileSnapshot
from repro.machine.timing import TimingConfig, TimingModel

__all__ = [
    "Machine",
    "MachineSnapshot",
    "Memory",
    "MemoryLayout",
    "MemorySnapshot",
    "RegisterFile",
    "RegisterFileSnapshot",
    "RunResult",
    "TimingConfig",
    "TimingModel",
]
