"""Restricted-dataflow timing model.

The paper's central performance claim is architectural: scalar duplication
competes with the original program for integer/branch resources, while
FERRUM's SIMD duplication flows into otherwise idle vector units and
amortizes one checker branch over four protected results. This model charges
exactly those costs and nothing else. It approximates a modern out-of-order
core as a dataflow machine with three restrictions:

* **fetch bandwidth** — at most ``fetch_width`` instructions enter the
  window per cycle, and a *taken* branch redirects fetch with a penalty
  (never-taken checker branches are effectively free in the front end);
* **execution ports** — each instruction occupies one unit of its port
  class (INT/VEC/LOAD/STORE/BRANCH) for one cycle; saturated ports delay
  issue. One branch unit means a checker branch *per protected instruction*
  (the hybrid baseline) serializes at one per cycle, while one per four
  (FERRUM) does not;
* **true dependencies** — an instruction issues only when its source
  registers and source memory bytes are ready. The model is driven online by
  the functional simulator, which supplies real effective addresses, so
  store→load dependencies through stack slots — the serialization that makes
  -O0 code latency-bound — are tracked exactly. Duplicates and lane captures
  are off the critical path and overlap with the original chain.

``cycles`` is the completion time of the last instruction observed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.asm.instructions import Instruction, InstrKind
from repro.asm.operands import Mem, Reg
from repro.asm.registers import RegisterKind


class Port(enum.Enum):
    """Execution unit classes."""

    INT = "int"
    VEC = "vec"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"


@dataclass(frozen=True)
class TimingConfig:
    """Microarchitectural parameters.

    Defaults model a modest out-of-order core: 4-wide fetch, a 48-entry
    reorder buffer with in-order retirement, one load and one store pipe,
    two scalar ALUs, one branch unit — and a two-wide vector domain that
    ordinary integer code leaves idle, which is exactly the resource
    FERRUM's duplication strategy exploits (paper Sec. I: "under-utilized
    resources such as SIMD capability").
    """

    fetch_width: int = 4
    rob_size: int = 48
    ports: dict[Port, int] = field(
        default_factory=lambda: {
            Port.INT: 2,
            Port.VEC: 2,
            Port.LOAD: 1,
            Port.STORE: 1,
            Port.BRANCH: 1,
        }
    )
    latency_alu: int = 1
    latency_imul: int = 3
    latency_idiv: int = 20
    latency_load: int = 3
    latency_lea: int = 1
    latency_setcc: int = 1
    latency_vec_move: int = 1   # GPR/memory <-> vector lane insert
    latency_vec_alu: int = 1
    latency_vec_insert: int = 1
    taken_branch_penalty: int = 2


def port_of(instr: Instruction) -> Port:
    """Execution port class of an instruction."""
    kind = instr.kind
    if kind.is_vector or _touches_vector(instr):
        return Port.VEC
    if kind in (InstrKind.JMP, InstrKind.JCC, InstrKind.CALL, InstrKind.RET):
        return Port.BRANCH
    if kind is InstrKind.PUSH:
        return Port.STORE
    if kind is InstrKind.POP:
        return Port.LOAD
    if instr.writes_memory():
        return Port.STORE
    if instr.reads_memory() and kind in (InstrKind.MOV, InstrKind.MOVEXT):
        return Port.LOAD
    return Port.INT


def _touches_vector(instr: Instruction) -> bool:
    return any(
        isinstance(op, Reg) and op.register.kind is RegisterKind.VECTOR
        for op in instr.operands
    )


def latency_of(instr: Instruction, config: TimingConfig) -> int:
    """Result latency of an instruction under ``config``."""
    kind = instr.kind
    if kind is InstrKind.IDIV:
        return config.latency_idiv
    if kind is InstrKind.ALU and instr.mnemonic.startswith("imul"):
        return config.latency_imul
    if kind.is_vector or _touches_vector(instr):
        if kind in (InstrKind.VECALU, InstrKind.VECTEST):
            return config.latency_vec_alu
        if kind is InstrKind.VECINSERT:
            return config.latency_vec_insert
        return config.latency_vec_move
    if instr.reads_memory():
        return config.latency_load
    if kind is InstrKind.LEA:
        return config.latency_lea
    if kind is InstrKind.SETCC:
        return config.latency_setcc
    return config.latency_alu


class TimingModel:
    """Online model: feed instructions in trace order, read ``cycles``."""

    def __init__(self, config: TimingConfig | None = None) -> None:
        self.config = config or TimingConfig()
        self._reg_ready: dict[str, int] = {}
        self._mem_ready: dict[int, int] = {}
        self._port_free: dict[Port, list[int]] = {
            port: [0] * count for port, count in self.config.ports.items()
        }
        self._fetch_cycle = 0
        self._fetched_this_cycle = 0
        self._retire: list[int] = [0] * self.config.rob_size
        self._last_retire = 0
        self.cycles = 0
        self.instructions = 0

    # -- internals -----------------------------------------------------------

    def _fetch_slot(self) -> int:
        """Cycle this instruction enters the window.

        Bounded by fetch bandwidth and by reorder-buffer capacity: the
        instruction ``rob_size`` positions older must have retired. This is
        what makes sheer instruction volume cost real time — redundant
        work is only free while it fits in the window.
        """
        oldest = self._retire[self.instructions % self.config.rob_size]
        if oldest > self._fetch_cycle:
            self._fetch_cycle = oldest
            self._fetched_this_cycle = 0
        slot = self._fetch_cycle
        self._fetched_this_cycle += 1
        if self._fetched_this_cycle >= self.config.fetch_width:
            self._fetch_cycle += 1
            self._fetched_this_cycle = 0
        return slot

    def _redirect_fetch(self, cycle: int) -> None:
        if cycle > self._fetch_cycle:
            self._fetch_cycle = cycle
            self._fetched_this_cycle = 0

    def _sources_ready(self, instr: Instruction, read_granules: list[int]) -> int:
        ready = 0
        for reg in instr.read_registers():
            if reg.root != "rflags":
                ready = max(ready, self._reg_ready.get(reg.root, 0))
        for op in instr.operands:
            if isinstance(op, Mem):
                for reg in op.registers():
                    ready = max(ready, self._reg_ready.get(reg.root, 0))
        for granule in read_granules:
            ready = max(ready, self._mem_ready.get(granule, 0))
        # Non-branch flag readers (set<cc>) wait for the flags producer;
        # branches are predicted and do not wait.
        if instr.spec.reads_flags and instr.kind is not InstrKind.JCC:
            ready = max(ready, self._reg_ready.get("rflags", 0))
        return ready

    def _claim_port(self, port: Port, earliest: int) -> int:
        units = self._port_free[port]
        best = min(range(len(units)), key=lambda i: max(units[i], earliest))
        cycle = max(units[best], earliest)
        units[best] = cycle + 1
        return cycle

    # -- main entry ----------------------------------------------------------

    def observe(
        self,
        instr: Instruction,
        read_granules: list[int],
        write_granules: list[int],
        taken: bool,
    ) -> None:
        """Account one dynamically executed instruction."""
        fetch = self._fetch_slot()
        ready = self._sources_ready(instr, read_granules)
        issue = self._claim_port(port_of(instr), max(fetch, ready))
        latency = latency_of(instr, self.config)
        done = issue + latency

        for reg in instr.dest_registers():
            self._reg_ready[reg.root] = done
        if instr.spec.writes_flags:
            self._reg_ready["rflags"] = done
        for granule in write_granules:
            self._mem_ready[granule] = done
        if instr.kind in (
            InstrKind.PUSH, InstrKind.POP, InstrKind.CALL, InstrKind.RET,
        ):
            self._reg_ready["rsp"] = done
        if taken:
            self._redirect_fetch(issue + 1 + self.config.taken_branch_penalty)

        # In-order retirement: an instruction retires no earlier than its
        # completion and no earlier than its program-order predecessor.
        retired = max(done, self._last_retire)
        self._last_retire = retired
        self._retire[self.instructions % self.config.rob_size] = retired
        self.instructions += 1
        if done > self.cycles:
            self.cycles = done

    @staticmethod
    def granules(addr: int, size: int) -> list[int]:
        """8-byte dependence granules covering [addr, addr+size)."""
        first = addr >> 3
        last = (addr + max(size, 1) - 1) >> 3
        return list(range(first, last + 1))
