"""Architectural register file with x86-64 sub-register semantics.

Values are stored per register *root* (64-bit GPRs, 256-bit vectors). Reads
extract the view width; writes follow the hardware rules:

* 64-bit GPR writes replace the root;
* 32-bit writes zero-extend into the root (the famous x86-64 rule);
* 16/8-bit writes merge, preserving upper bits;
* 128-bit (xmm) writes merge into the low lane of the ymm root, preserving
  the upper lane — legacy-SSE behaviour, which FERRUM's ``movq``/``pinsrq``
  batching relies on;
* 256-bit writes replace the vector root.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.registers import GPR64, Register, RegisterKind
from repro.utils.bitops import flip_bit, mask_for_width, to_unsigned


@dataclass(frozen=True)
class RegisterFileSnapshot:
    """Immutable deep copy of one :class:`RegisterFile`'s state.

    Values are plain ints, so the copy cost is two small dict copies; the
    snapshot is safe to hold across arbitrary machine mutation and to share
    between forked campaign workers.
    """

    gprs: dict[str, int]
    vectors: dict[str, int]
    rflags: int


class RegisterFile:
    """GPRs, vector registers and RFLAGS of one hardware thread.

    The backing dicts (``_gprs``/``_vectors``) are identity-stable for the
    lifetime of the register file: :meth:`reset` and :meth:`restore_state`
    mutate them in place rather than rebinding. The translated execution
    engine (:mod:`repro.machine.translate`) relies on this — its compiled
    steps capture the dicts once at translation time.
    """

    def __init__(self) -> None:
        self._gprs: dict[str, int] = {root: 0 for root in GPR64}
        self._vectors: dict[str, int] = {f"ymm{i}": 0 for i in range(16)}
        self.rflags: int = 0
        # Copy-on-write snapshot support: ``_version`` advances on every
        # mutation path, and ``_cached`` remembers the last snapshot taken
        # (or restored) together with the version it reflects. Snapshots
        # are immutable, so an unchanged file can hand the same object out
        # again instead of deep-copying the dicts.
        self._version: int = 0
        self._cached: tuple[int, RegisterFileSnapshot] | None = None
        #: Deep copies actually performed by :meth:`snapshot_state`.
        self.snapshot_copies: int = 0
        #: Snapshot requests served from the copy-on-write cache.
        self.snapshot_hits: int = 0

    def note_direct_writes(self) -> None:
        """Invalidate the snapshot cache after writes that bypass this API.

        The translated/fused execution engines write ``_gprs`` entries and
        ``rflags`` directly from generated code; the machine calls this once
        per engine leg so copy-on-write snapshots never go stale.
        """
        self._version += 1

    def reset(self) -> None:
        """Zero every register in place (same dict objects, fresh values)."""
        gprs = self._gprs
        for root in gprs:
            gprs[root] = 0
        vectors = self._vectors
        for root in vectors:
            vectors[root] = 0
        self.rflags = 0
        self._version += 1

    # -- typed accessors -------------------------------------------------

    def read(self, reg: Register) -> int:
        """Read a register view as an unsigned int of its width."""
        if reg.kind is RegisterKind.GPR:
            return self._gprs[reg.root] & mask_for_width(reg.width)
        if reg.kind is RegisterKind.VECTOR:
            return self._vectors[reg.root] & mask_for_width(reg.width)
        if reg.kind is RegisterKind.FLAGS:
            return self.rflags
        raise ValueError(f"cannot read register {reg.name}")

    def write(self, reg: Register, value: int) -> None:
        """Write a register view, applying the width-dependent merge rules."""
        self._version += 1
        if reg.kind is RegisterKind.GPR:
            value = to_unsigned(value, reg.width)
            if reg.width == 64:
                self._gprs[reg.root] = value
            elif reg.width == 32:
                self._gprs[reg.root] = value  # implicit zero-extension
            else:
                mask = mask_for_width(reg.width)
                self._gprs[reg.root] = (self._gprs[reg.root] & ~mask) | value
        elif reg.kind is RegisterKind.VECTOR:
            value = to_unsigned(value, reg.width)
            if reg.width == 256:
                self._vectors[reg.root] = value
            else:  # xmm view: merge into low 128 bits, preserve upper lane
                mask = mask_for_width(128)
                self._vectors[reg.root] = (self._vectors[reg.root] & ~mask) | value
        elif reg.kind is RegisterKind.FLAGS:
            self.rflags = to_unsigned(value, 64)
        else:
            raise ValueError(f"cannot write register {reg.name}")

    # -- convenience names used by semantics/builtins --------------------

    def read_root(self, root: str) -> int:
        if root in self._gprs:
            return self._gprs[root]
        return self._vectors[root]

    def write_root(self, root: str, value: int) -> None:
        self._version += 1
        if root in self._gprs:
            self._gprs[root] = to_unsigned(value, 64)
        else:
            self._vectors[root] = to_unsigned(value, 256)

    # -- fault injection ---------------------------------------------------

    def flip(self, reg: Register, bit: int) -> None:
        """Flip one bit of a register view in place (the fault primitive)."""
        if reg.kind is RegisterKind.FLAGS:
            self._version += 1
            self.rflags = flip_bit(self.rflags, bit, 64)
            return
        value = self.read(reg)
        self.write(reg, flip_bit(value, bit, reg.width))

    def snapshot(self) -> dict[str, int]:
        """Copy of all register state (tests use this to diff runs)."""
        state = dict(self._gprs)
        state.update(self._vectors)
        state["rflags"] = self.rflags
        return state

    # -- checkpoint/restore ------------------------------------------------

    def snapshot_state(self) -> RegisterFileSnapshot:
        """Snapshot for checkpoint/restore (see :mod:`repro.machine.cpu`).

        Copy-on-write: if the file has not been written since the last
        snapshot (or restore), the cached snapshot object is returned and
        no dicts are copied. Snapshots are immutable, so sharing is safe.
        """
        cached = self._cached
        if cached is not None and cached[0] == self._version:
            self.snapshot_hits += 1
            return cached[1]
        snap = RegisterFileSnapshot(
            gprs=dict(self._gprs),
            vectors=dict(self._vectors),
            rflags=self.rflags,
        )
        self._cached = (self._version, snap)
        self.snapshot_copies += 1
        return snap

    def state_equals(self, snap: RegisterFileSnapshot) -> bool:
        """True iff the live state equals ``snap`` (no copies, no cache bump).

        The convergence monitor compares a faulted run's registers against
        golden trail entries at every boundary; a direct dict compare keeps
        that hot path allocation-free.
        """
        return (
            self.rflags == snap.rflags
            and self._gprs == snap.gprs
            and self._vectors == snap.vectors
        )

    def restore_state(self, snap: RegisterFileSnapshot) -> None:
        """Restore every register exactly as captured by ``snapshot_state``.

        In-place: snapshots always carry every root, so a dict update
        overwrites the complete state without rebinding the backing dicts
        (which compiled execution steps hold by reference). The restored
        snapshot seeds the copy-on-write cache — a snapshot taken before
        any further write returns ``snap`` itself, copy-free.
        """
        self._gprs.update(snap.gprs)
        self._vectors.update(snap.vectors)
        self.rflags = snap.rflags
        self._version += 1
        self._cached = (self._version, snap)
