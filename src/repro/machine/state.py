"""Architectural register file with x86-64 sub-register semantics.

Values are stored per register *root* (64-bit GPRs, 256-bit vectors). Reads
extract the view width; writes follow the hardware rules:

* 64-bit GPR writes replace the root;
* 32-bit writes zero-extend into the root (the famous x86-64 rule);
* 16/8-bit writes merge, preserving upper bits;
* 128-bit (xmm) writes merge into the low lane of the ymm root, preserving
  the upper lane — legacy-SSE behaviour, which FERRUM's ``movq``/``pinsrq``
  batching relies on;
* 256-bit writes replace the vector root.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.registers import GPR64, Register, RegisterKind
from repro.utils.bitops import flip_bit, mask_for_width, to_unsigned


@dataclass(frozen=True)
class RegisterFileSnapshot:
    """Immutable deep copy of one :class:`RegisterFile`'s state.

    Values are plain ints, so the copy cost is two small dict copies; the
    snapshot is safe to hold across arbitrary machine mutation and to share
    between forked campaign workers.
    """

    gprs: dict[str, int]
    vectors: dict[str, int]
    rflags: int


class RegisterFile:
    """GPRs, vector registers and RFLAGS of one hardware thread.

    The backing dicts (``_gprs``/``_vectors``) are identity-stable for the
    lifetime of the register file: :meth:`reset` and :meth:`restore_state`
    mutate them in place rather than rebinding. The translated execution
    engine (:mod:`repro.machine.translate`) relies on this — its compiled
    steps capture the dicts once at translation time.
    """

    def __init__(self) -> None:
        self._gprs: dict[str, int] = {root: 0 for root in GPR64}
        self._vectors: dict[str, int] = {f"ymm{i}": 0 for i in range(16)}
        self.rflags: int = 0

    def reset(self) -> None:
        """Zero every register in place (same dict objects, fresh values)."""
        gprs = self._gprs
        for root in gprs:
            gprs[root] = 0
        vectors = self._vectors
        for root in vectors:
            vectors[root] = 0
        self.rflags = 0

    # -- typed accessors -------------------------------------------------

    def read(self, reg: Register) -> int:
        """Read a register view as an unsigned int of its width."""
        if reg.kind is RegisterKind.GPR:
            return self._gprs[reg.root] & mask_for_width(reg.width)
        if reg.kind is RegisterKind.VECTOR:
            return self._vectors[reg.root] & mask_for_width(reg.width)
        if reg.kind is RegisterKind.FLAGS:
            return self.rflags
        raise ValueError(f"cannot read register {reg.name}")

    def write(self, reg: Register, value: int) -> None:
        """Write a register view, applying the width-dependent merge rules."""
        if reg.kind is RegisterKind.GPR:
            value = to_unsigned(value, reg.width)
            if reg.width == 64:
                self._gprs[reg.root] = value
            elif reg.width == 32:
                self._gprs[reg.root] = value  # implicit zero-extension
            else:
                mask = mask_for_width(reg.width)
                self._gprs[reg.root] = (self._gprs[reg.root] & ~mask) | value
        elif reg.kind is RegisterKind.VECTOR:
            value = to_unsigned(value, reg.width)
            if reg.width == 256:
                self._vectors[reg.root] = value
            else:  # xmm view: merge into low 128 bits, preserve upper lane
                mask = mask_for_width(128)
                self._vectors[reg.root] = (self._vectors[reg.root] & ~mask) | value
        elif reg.kind is RegisterKind.FLAGS:
            self.rflags = to_unsigned(value, 64)
        else:
            raise ValueError(f"cannot write register {reg.name}")

    # -- convenience names used by semantics/builtins --------------------

    def read_root(self, root: str) -> int:
        if root in self._gprs:
            return self._gprs[root]
        return self._vectors[root]

    def write_root(self, root: str, value: int) -> None:
        if root in self._gprs:
            self._gprs[root] = to_unsigned(value, 64)
        else:
            self._vectors[root] = to_unsigned(value, 256)

    # -- fault injection ---------------------------------------------------

    def flip(self, reg: Register, bit: int) -> None:
        """Flip one bit of a register view in place (the fault primitive)."""
        if reg.kind is RegisterKind.FLAGS:
            self.rflags = flip_bit(self.rflags, bit, 64)
            return
        value = self.read(reg)
        self.write(reg, flip_bit(value, bit, reg.width))

    def snapshot(self) -> dict[str, int]:
        """Copy of all register state (tests use this to diff runs)."""
        state = dict(self._gprs)
        state.update(self._vectors)
        state["rflags"] = self.rflags
        return state

    # -- checkpoint/restore ------------------------------------------------

    def snapshot_state(self) -> RegisterFileSnapshot:
        """Deep snapshot for checkpoint/restore (see :mod:`repro.machine.cpu`)."""
        return RegisterFileSnapshot(
            gprs=dict(self._gprs),
            vectors=dict(self._vectors),
            rflags=self.rflags,
        )

    def restore_state(self, snap: RegisterFileSnapshot) -> None:
        """Restore every register exactly as captured by ``snapshot_state``.

        In-place: snapshots always carry every root, so a dict update
        overwrites the complete state without rebinding the backing dicts
        (which compiled execution steps hold by reference).
        """
        self._gprs.update(snap.gprs)
        self._vectors.update(snap.vectors)
        self.rflags = snap.rflags
