"""Per-instruction execution semantics.

:func:`execute` interprets one instruction against a :class:`Machine`'s
architectural state and returns a :class:`ControlEffect` describing what the
fetch loop should do next. All values are unsigned Python ints masked to
their width; signedness enters only where x86 defines it (idiv, sign
extensions, SF/OF computation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.asm.instructions import Instruction, InstrKind
from repro.asm.operands import Imm, Mem, Operand, Reg
from repro.asm.registers import Register, RegisterKind, get_register
from repro.errors import IllegalInstructionError, MachineFault
from repro.machine import flags as flg
from repro.utils.bitops import (
    mask_for_width,
    sign_extend,
    to_signed,
    to_unsigned,
    trunc_div,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.cpu import Machine

_RSP = get_register("rsp")
_RAX = get_register("rax")
_EAX = get_register("eax")
_RDX = get_register("rdx")
_EDX = get_register("edx")
_CL = get_register("cl")


class Flow(enum.Enum):
    """What the fetch loop should do after an instruction."""

    NEXT = "next"
    JUMP = "jump"
    CALL = "call"
    RET = "ret"


@dataclass(frozen=True)
class ControlEffect:
    """Control-flow outcome of one executed instruction."""

    flow: Flow = Flow.NEXT
    target: str | None = None
    taken: bool = False  # a taken conditional/unconditional branch occurred

    @staticmethod
    def next() -> "ControlEffect":
        return _NEXT


_NEXT = ControlEffect()


def _effective_address(machine: "Machine", mem: Mem) -> int:
    addr = mem.disp
    if mem.base is not None:
        addr += machine.registers.read(mem.base)
    if mem.index is not None:
        addr += machine.registers.read(mem.index) * mem.scale
    return to_unsigned(addr, 64)


def _read_operand(machine: "Machine", op: Operand, width: int) -> int:
    if isinstance(op, Imm):
        return to_unsigned(op.value, width)
    if isinstance(op, Reg):
        return machine.registers.read(op.register)
    if isinstance(op, Mem):
        addr = _effective_address(machine, op)
        machine.note_mem_read(addr, width // 8)
        return machine.memory.read_uint(addr, width // 8)
    raise IllegalInstructionError(f"cannot read operand {op}")


def _write_operand(machine: "Machine", op: Operand, value: int, width: int) -> None:
    if isinstance(op, Reg):
        machine.registers.write(op.register, to_unsigned(value, width))
        return
    if isinstance(op, Mem):
        addr = _effective_address(machine, op)
        machine.note_mem_write(addr, width // 8)
        machine.memory.write_uint(addr, value, width // 8)
        return
    raise IllegalInstructionError(f"cannot write operand {op}")


def _is_vector_operand(op: Operand) -> bool:
    return isinstance(op, Reg) and op.register.kind is RegisterKind.VECTOR


def _exec_mov(machine: "Machine", instr: Instruction) -> ControlEffect:
    src, dst = instr.operands
    width = instr.spec.width
    if _is_vector_operand(src) or _is_vector_operand(dst):
        return _exec_vec_movq(machine, instr)
    value = _read_operand(machine, src, width)
    _write_operand(machine, dst, value, width)
    return ControlEffect.next()


def _exec_vec_movq(machine: "Machine", instr: Instruction) -> ControlEffect:
    """``movq``/``vmovq`` with an xmm operand: 64-bit lane move.

    Writing the xmm destination clears bits 64..127 (legacy-SSE ``movq``
    rule) while the register file preserves the upper ymm lane.
    """
    src, dst = instr.operands
    value = _read_operand(machine, src, 64 if not _is_vector_operand(src) else 64)
    if _is_vector_operand(src):
        value = machine.registers.read(src.register) & mask_for_width(64)
    if _is_vector_operand(dst):
        xmm = get_register(f"xmm{dst.register.root[3:]}" if dst.register.width == 256
                           else dst.register.name)
        machine.registers.write(xmm, value)  # zero-extends within the lane
    else:
        _write_operand(machine, dst, value, 64)
    return ControlEffect.next()


def _exec_movext(machine: "Machine", instr: Instruction) -> ControlEffect:
    src, dst = instr.operands
    spec = instr.spec
    value = _read_operand(machine, src, spec.src_width)
    if instr.mnemonic.startswith("movz"):
        extended = to_unsigned(value, spec.src_width)
    else:
        extended = sign_extend(value, spec.src_width, spec.width)
    _write_operand(machine, dst, extended, spec.width)
    return ControlEffect.next()


def _exec_lea(machine: "Machine", instr: Instruction) -> ControlEffect:
    src, dst = instr.operands
    if not isinstance(src, Mem):
        raise IllegalInstructionError("lea source must be a memory operand")
    addr = _effective_address(machine, src)  # no actual memory access
    _write_operand(machine, dst, addr, 64)
    return ControlEffect.next()


_ALU_RESULT = {
    "add": lambda a, b, w: flg.flags_for_add(b, a, w),
    "sub": lambda a, b, w: flg.flags_for_sub(b, a, w),
    "and": lambda a, b, w: (b & a, flg.flags_for_result(b & a, w)),
    "or": lambda a, b, w: (b | a, flg.flags_for_result(b | a, w)),
    "xor": lambda a, b, w: (b ^ a, flg.flags_for_result(b ^ a, w)),
}


def _exec_alu(machine: "Machine", instr: Instruction) -> ControlEffect:
    src, dst = instr.operands
    width = instr.spec.width
    root = instr.mnemonic[: -1]
    a = _read_operand(machine, src, width)
    b = _read_operand(machine, dst, width)
    if root == "imul":
        sa, sb = to_signed(a, width), to_signed(b, width)
        full = sa * sb
        result = to_unsigned(full, width)
        overflow = to_signed(result, width) != full
        rflags = flg.flags_for_result(result, width, cf=overflow, of=overflow)
    else:
        result, rflags = _ALU_RESULT[root](a, b, width)
    _write_operand(machine, dst, result, width)
    machine.registers.rflags = rflags
    return ControlEffect.next()


def _exec_shift(machine: "Machine", instr: Instruction) -> ControlEffect:
    src, dst = instr.operands
    width = instr.spec.width
    if isinstance(src, Imm):
        count = src.value & (63 if width == 64 else 31)
    elif isinstance(src, Reg) and src.register.root == "rcx":
        count = machine.registers.read(_CL) & (63 if width == 64 else 31)
    else:
        raise IllegalInstructionError("shift count must be immediate or %cl")
    value = _read_operand(machine, dst, width)
    op = instr.mnemonic[:3]
    if count == 0:
        return ControlEffect.next()  # flags unaffected, value unchanged
    if op == "shl":
        result = to_unsigned(value << count, width)
        cf = bool((value >> (width - count)) & 1) if count <= width else False
    elif op == "shr":
        result = value >> count
        cf = bool((value >> (count - 1)) & 1)
    else:  # sar
        result = to_unsigned(to_signed(value, width) >> count, width)
        cf = bool((value >> (count - 1)) & 1)
    _write_operand(machine, dst, result, width)
    machine.registers.rflags = flg.flags_for_result(result, width, cf=cf)
    return ControlEffect.next()


def _exec_unary(machine: "Machine", instr: Instruction) -> ControlEffect:
    (dst,) = instr.operands
    width = instr.spec.width
    value = _read_operand(machine, dst, width)
    op = instr.mnemonic[:3]
    if op == "neg":
        result, rflags = flg.flags_for_sub(0, value, width)
        machine.registers.rflags = rflags
    elif op == "not":
        result = to_unsigned(~value, width)  # flags untouched
    elif op == "inc":
        result, rflags = flg.flags_for_add(value, 1, width)
        # inc preserves CF
        cf_mask = 1 << flg.CF_BIT
        machine.registers.rflags = (rflags & ~cf_mask) | (
            machine.registers.rflags & cf_mask
        )
    else:  # dec
        result, rflags = flg.flags_for_sub(value, 1, width)
        cf_mask = 1 << flg.CF_BIT
        machine.registers.rflags = (rflags & ~cf_mask) | (
            machine.registers.rflags & cf_mask
        )
    _write_operand(machine, dst, result, width)
    return ControlEffect.next()


def _exec_cmp(machine: "Machine", instr: Instruction) -> ControlEffect:
    src, dst = instr.operands
    width = instr.spec.width
    a = _read_operand(machine, src, width)
    b = _read_operand(machine, dst, width)
    _, machine.registers.rflags = flg.flags_for_sub(b, a, width)
    return ControlEffect.next()


def _exec_test(machine: "Machine", instr: Instruction) -> ControlEffect:
    src, dst = instr.operands
    width = instr.spec.width
    a = _read_operand(machine, src, width)
    b = _read_operand(machine, dst, width)
    machine.registers.rflags = flg.flags_for_result(b & a, width)
    return ControlEffect.next()


def _exec_setcc(machine: "Machine", instr: Instruction) -> ControlEffect:
    (dst,) = instr.operands
    holds = flg.condition_holds(instr.spec.cc or "", machine.registers.rflags)
    _write_operand(machine, dst, int(holds), 8)
    return ControlEffect.next()


def _exec_push(machine: "Machine", instr: Instruction) -> ControlEffect:
    (src,) = instr.operands
    value = _read_operand(machine, src, 64)
    rsp = machine.registers.read(_RSP) - 8
    machine.registers.write(_RSP, rsp)
    machine.note_mem_write(rsp, 8)
    machine.memory.write_uint(rsp, value, 8)
    return ControlEffect.next()


def _exec_pop(machine: "Machine", instr: Instruction) -> ControlEffect:
    (dst,) = instr.operands
    rsp = machine.registers.read(_RSP)
    machine.note_mem_read(rsp, 8)
    value = machine.memory.read_uint(rsp, 8)
    machine.registers.write(_RSP, rsp + 8)
    _write_operand(machine, dst, value, 64)
    return ControlEffect.next()


def _exec_convert(machine: "Machine", instr: Instruction) -> ControlEffect:
    if instr.mnemonic == "cltq":
        eax = machine.registers.read(_EAX)
        machine.registers.write(_RAX, sign_extend(eax, 32, 64))
    elif instr.mnemonic == "cltd":
        eax = machine.registers.read(_EAX)
        machine.registers.write(_EDX, 0xFFFF_FFFF if eax >> 31 else 0)
    else:  # cqto
        rax = machine.registers.read(_RAX)
        machine.registers.write(_RDX, mask_for_width(64) if rax >> 63 else 0)
    return ControlEffect.next()


def _exec_idiv(machine: "Machine", instr: Instruction) -> ControlEffect:
    (src,) = instr.operands
    width = instr.spec.width
    divisor = to_signed(_read_operand(machine, src, width), width)
    if divisor == 0:
        raise MachineFault("integer division by zero")
    if width == 32:
        hi = machine.registers.read(_EDX)
        lo = machine.registers.read(_EAX)
    else:
        hi = machine.registers.read(_RDX)
        lo = machine.registers.read(_RAX)
    dividend = to_signed((hi << width) | lo, width * 2)
    quotient = trunc_div(dividend, divisor)
    remainder = dividend - quotient * divisor
    if not -(1 << (width - 1)) <= quotient < (1 << (width - 1)):
        raise MachineFault("idiv quotient overflow")
    if width == 32:
        machine.registers.write(_EAX, to_unsigned(quotient, 32))
        machine.registers.write(_EDX, to_unsigned(remainder, 32))
    else:
        machine.registers.write(_RAX, to_unsigned(quotient, 64))
        machine.registers.write(_RDX, to_unsigned(remainder, 64))
    return ControlEffect.next()


def _exec_pinsrq(machine: "Machine", instr: Instruction) -> ControlEffect:
    imm, src, dst = instr.operands
    if not isinstance(imm, Imm) or imm.value not in (0, 1):
        raise IllegalInstructionError("pinsrq lane must be $0 or $1")
    if not (isinstance(dst, Reg) and dst.register.width == 128):
        raise IllegalInstructionError("pinsrq destination must be an xmm register")
    value = _read_operand(machine, src, 64)
    current = machine.registers.read(dst.register)
    shift = imm.value * 64
    lane_mask = mask_for_width(64) << shift
    machine.registers.write(dst.register, (current & ~lane_mask) | (value << shift))
    return ControlEffect.next()


def _exec_pextrq(machine: "Machine", instr: Instruction) -> ControlEffect:
    imm, src, dst = instr.operands
    if not isinstance(imm, Imm) or imm.value not in (0, 1):
        raise IllegalInstructionError("pextrq lane must be $0 or $1")
    if not (isinstance(src, Reg) and src.register.width == 128):
        raise IllegalInstructionError("pextrq source must be an xmm register")
    value = (machine.registers.read(src.register) >> (imm.value * 64)) & mask_for_width(64)
    _write_operand(machine, dst, value, 64)
    return ControlEffect.next()


def _exec_vinserti128(machine: "Machine", instr: Instruction) -> ControlEffect:
    imm, xmm_src, ymm_src, ymm_dst = instr.operands
    if not isinstance(imm, Imm) or imm.value not in (0, 1):
        raise IllegalInstructionError("vinserti128 lane must be $0 or $1")
    lane = _read_operand(machine, xmm_src, 128) if isinstance(xmm_src, Mem) else (
        machine.registers.read(xmm_src.register)  # type: ignore[union-attr]
    )
    base = machine.registers.read(ymm_src.register)  # type: ignore[union-attr]
    shift = imm.value * 128
    lane_mask = mask_for_width(128) << shift
    result = (base & ~lane_mask) | ((lane & mask_for_width(128)) << shift)
    machine.registers.write(ymm_dst.register, result)  # type: ignore[union-attr]
    return ControlEffect.next()


def _exec_vpxor(machine: "Machine", instr: Instruction) -> ControlEffect:
    src1, src2, dst = instr.operands
    a = machine.registers.read(src1.register)  # type: ignore[union-attr]
    b = machine.registers.read(src2.register)  # type: ignore[union-attr]
    machine.registers.write(dst.register, a ^ b)  # type: ignore[union-attr]
    return ControlEffect.next()


def _exec_vptest(machine: "Machine", instr: Instruction) -> ControlEffect:
    src1, src2 = instr.operands
    a = machine.registers.read(src1.register)  # type: ignore[union-attr]
    b = machine.registers.read(src2.register)  # type: ignore[union-attr]
    zf = (a & b) == 0
    cf = (a & ~b) & mask_for_width(256) == 0
    machine.registers.rflags = flg.pack_flags(cf, False, zf, False, False)
    return ControlEffect.next()


def _exec_jmp(machine: "Machine", instr: Instruction) -> ControlEffect:
    return ControlEffect(Flow.JUMP, instr.target_label, taken=True)


def _exec_jcc(machine: "Machine", instr: Instruction) -> ControlEffect:
    if flg.condition_holds(instr.spec.cc or "", machine.registers.rflags):
        return ControlEffect(Flow.JUMP, instr.target_label, taken=True)
    return _NEXT


def _exec_call(machine: "Machine", instr: Instruction) -> ControlEffect:
    return ControlEffect(Flow.CALL, instr.target_label, taken=True)


def _exec_ret(machine: "Machine", instr: Instruction) -> ControlEffect:
    return ControlEffect(Flow.RET, None, taken=True)


def _exec_nop(machine: "Machine", instr: Instruction) -> ControlEffect:
    return _NEXT


def _exec_vecmov(machine: "Machine", instr: Instruction) -> ControlEffect:
    if instr.mnemonic in ("movq", "vmovq"):
        return _exec_vec_movq(machine, instr)
    if instr.mnemonic == "pinsrq":
        return _exec_pinsrq(machine, instr)
    return _exec_pextrq(machine, instr)


_DISPATCH = {
    InstrKind.MOV: _exec_mov,
    InstrKind.MOVEXT: _exec_movext,
    InstrKind.LEA: _exec_lea,
    InstrKind.ALU: _exec_alu,
    InstrKind.SHIFT: _exec_shift,
    InstrKind.UNARY: _exec_unary,
    InstrKind.CMP: _exec_cmp,
    InstrKind.TEST: _exec_test,
    InstrKind.SETCC: _exec_setcc,
    InstrKind.PUSH: _exec_push,
    InstrKind.POP: _exec_pop,
    InstrKind.CONVERT: _exec_convert,
    InstrKind.IDIV: _exec_idiv,
    InstrKind.JMP: _exec_jmp,
    InstrKind.JCC: _exec_jcc,
    InstrKind.CALL: _exec_call,
    InstrKind.RET: _exec_ret,
    InstrKind.NOP: _exec_nop,
    InstrKind.VECMOV: _exec_vecmov,
    InstrKind.VECINSERT: _exec_vinserti128,
    InstrKind.VECALU: _exec_vpxor,
    InstrKind.VECTEST: _exec_vptest,
}


def execute(machine: "Machine", instr: Instruction) -> ControlEffect:
    """Execute one instruction; returns the resulting control effect."""
    try:
        handler = _DISPATCH[instr.kind]
    except KeyError:
        raise IllegalInstructionError(
            f"no semantics for {instr.mnemonic}"
        ) from None
    return handler(machine, instr)


def handler_for(instr: Instruction):
    """Pre-resolved handler for one instruction (CPU fast path)."""
    try:
        return _DISPATCH[instr.kind]
    except KeyError:
        raise IllegalInstructionError(
            f"no semantics for {instr.mnemonic}"
        ) from None
