"""DME lockstep runtime: divergence between decorrelated variants = detection.

:mod:`repro.core.dme` builds a variant pair and proves, structurally, that
the secondary is a pure renaming of the primary. This module supplies the
runtime half:

* :func:`lockstep_reference` runs *both* variants fault-free off the same
  input and canonicalizes their traces — per dynamic fault site, the
  program-local static ordinal of the executing instruction plus the
  post-writeback values of its destination registers. Register names and
  frame offsets never enter the canonical form, so the permutation maps
  are erased by construction. Any mismatch (ordinal, values, output, exit
  code, counters) raises :class:`~repro.errors.DmeDivergenceError` — the
  differential gate behind DME's zero-false-positive claim, and the
  property the ``dme-divergence`` fuzz oracle hunts across generated
  programs.

* :class:`DmeMachine` is the :class:`~repro.machine.cpu.Machine` subclass
  that :class:`~repro.core.dme.DmeProgram` instantiates transparently.
  Fault-free runs execute the primary and validate the lockstep gate;
  injection runs compare the primary's post-writeback site values against
  the cached fault-free reference *before* each fault hook fires, so a
  flipped bit is caught at the first site where its damage surfaces (a
  :class:`~repro.errors.DetectionExit`, with the same latency telemetry
  the duplication detectors report) or, failing that, by the exit-time
  output/exit-code comparison.

The reference trace is established once per (program, function, args) and
cached on the program object, so campaign workers forked after the golden
run inherit it instead of re-running the pair.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.asm.instructions import Instruction
from repro.core.dme import DmeProgram, static_ordinals
from repro.errors import DetectionExit, DmeDivergenceError
from repro.machine.cpu import FaultHook, Machine, MachineSnapshot, RunResult
from repro.machine.memory import MemoryLayout
from repro.machine.timing import TimingConfig

__all__ = ["DmeMachine", "DmeTrace", "lockstep_reference"]


@dataclass(frozen=True)
class DmeTrace:
    """Canonical fault-free reference for one (function, args) execution.

    ``entries[site]`` is ``(primary_uid, dest_values)`` for dynamic fault
    site ``site``: the primary instruction that executed there and the
    post-writeback values of its destination registers. The uid stands in
    for the static ordinal (uids are unique per program, and the primary
    compares against its own trace), so site comparison is two tuple
    lookups per site.
    """

    entries: tuple[tuple[int, tuple[int, ...]], ...]
    output: tuple[str, ...]
    exit_code: int
    dynamic_instructions: int


def _dest_values(machine: Machine, instr: Instruction) -> tuple[int, ...]:
    read = machine.registers.read
    return tuple(read(register) for register in instr.dest_registers())


def _collect(machine: Machine, function: str, args: tuple[int, ...]):
    entries: list[tuple[int, tuple[int, ...]]] = []

    def capture(m: Machine, instr: Instruction, site: int) -> None:
        entries.append((instr.uid, _dest_values(m, instr)))

    result = machine.run(function=function, args=args, fault_hook=capture)
    return entries, result


def lockstep_reference(
    program: DmeProgram,
    function: str = "main",
    args: tuple[int, ...] = (),
    layout: MemoryLayout | None = None,
    engine: str | None = None,
    max_instructions: int = 50_000_000,
) -> DmeTrace:
    """Run the variant pair fault-free and prove observable equivalence.

    Returns the primary's canonical trace on success; raises
    :class:`DmeDivergenceError` at the first canonical-trace position (or
    output/exit/counter field) where the variants disagree. The primary is
    executed through its :meth:`~repro.core.dme.DmeProgram.plain` view so
    the reference run cannot recurse into lockstep machinery.
    """
    primary = Machine(program.plain(), layout=layout,
                      max_instructions=max_instructions, engine=engine)
    secondary = Machine(program.secondary, layout=layout,
                        max_instructions=max_instructions, engine=engine)
    p_entries, p_result = _collect(primary, function, args)
    s_entries, s_result = _collect(secondary, function, args)

    p_ordinal = static_ordinals(program)
    s_ordinal = static_ordinals(program.secondary)
    for site, ((p_uid, p_values), (s_uid, s_values)) in enumerate(
            zip(p_entries, s_entries)):
        if p_ordinal[p_uid] != s_ordinal[s_uid]:
            raise DmeDivergenceError(
                f"dme: {function}{tuple(args)}: fault-free control "
                f"divergence at site {site}: primary executes instruction "
                f"#{p_ordinal[p_uid]}, secondary #{s_ordinal[s_uid]}"
            )
        if p_values != s_values:
            raise DmeDivergenceError(
                f"dme: {function}{tuple(args)}: fault-free value divergence "
                f"at site {site} (instruction #{p_ordinal[p_uid]}): "
                f"primary wrote {p_values}, secondary {s_values}"
            )
    if len(p_entries) != len(s_entries):
        raise DmeDivergenceError(
            f"dme: {function}{tuple(args)}: fault-free site counts differ: "
            f"primary {len(p_entries)}, secondary {len(s_entries)}"
        )
    if (p_result.output != s_result.output
            or p_result.exit_code != s_result.exit_code
            or p_result.dynamic_instructions != s_result.dynamic_instructions):
        raise DmeDivergenceError(
            f"dme: {function}{tuple(args)}: fault-free exit divergence: "
            f"primary (exit={p_result.exit_code}, "
            f"executed={p_result.dynamic_instructions}) vs secondary "
            f"(exit={s_result.exit_code}, "
            f"executed={s_result.dynamic_instructions})"
        )
    return DmeTrace(
        entries=tuple(p_entries),
        output=p_result.output,
        exit_code=p_result.exit_code,
        dynamic_instructions=p_result.dynamic_instructions,
    )


class DmeMachine(Machine):
    """Lockstep execution of a :class:`~repro.core.dme.DmeProgram`.

    Constructed transparently by ``Machine(dme_program)``; the public
    :meth:`run`/:meth:`run_to_site` surface, counters, snapshots and
    telemetry fields are those of the base machine, so campaign engines,
    checkpointing, composition and the durable service drive it without
    special cases. Detection semantics:

    * every fault-hook run compares the post-writeback destination values
      at each dynamic site against the fault-free reference *before*
      delivering the hook (so the flip site itself compares clean values
      and can never self-detect spuriously), raising
      :class:`DetectionExit` at the first divergence;
    * a run that completes with output or exit code differing from the
      reference detects at exit (latency = remaining dynamic
      instructions), closing the silent-data-corruption window;
    * hook-free runs execute the primary and then validate the lockstep
      gate — a fault-free divergence raises :class:`DmeDivergenceError`,
      which is a loud failure, not a detection.
    """

    def __init__(
        self,
        program: DmeProgram,
        layout: MemoryLayout | None = None,
        max_instructions: int = 50_000_000,
        engine: str | None = None,
    ) -> None:
        if not isinstance(program, DmeProgram):
            raise TypeError(
                "DmeMachine requires a DmeProgram (primary plus "
                "decorrelated secondary); got a plain program"
            )
        super().__init__(program, layout, max_instructions, engine)
        # Entry point of the last prepared run; resumed runs (whose
        # function/args arguments the base contract ignores) look up their
        # reference trace through it.
        self._dme_key: tuple[str, tuple[int, ...]] | None = None

    def _prepare(self, function: str, args: tuple[int, ...]) -> int:
        self._dme_key = (function, tuple(args))
        return super()._prepare(function, args)

    def reference_trace(self, function: str = "main",
                        args: tuple[int, ...] = ()) -> DmeTrace:
        """The cached fault-free reference (established on first use)."""
        key = (function, tuple(args))
        trace = self.program.trace_cache.get(key)
        if trace is None:
            trace = lockstep_reference(
                self.program, function, tuple(args), layout=self.layout,
                engine=self.engine, max_instructions=self.max_instructions,
            )
            self.program.trace_cache[key] = trace
        return trace

    def _secondary_cycles(
        self,
        key: tuple[str, tuple[int, ...]],
        timing: TimingConfig,
        max_instructions: int | None,
    ) -> int:
        function, args = key
        secondary = Machine(self.program.secondary, layout=self.layout,
                            max_instructions=self.max_instructions,
                            engine=self.engine)
        result = secondary.run(function=function, args=args, timing=timing,
                               max_instructions=max_instructions)
        return result.cycles or 0

    def run(
        self,
        function: str = "main",
        args: tuple[int, ...] = (),
        fault_hook: FaultHook | None = None,
        timing: TimingConfig | None = None,
        max_instructions: int | None = None,
        fault_at: int | None = None,
        resume_from: MachineSnapshot | None = None,
        converge=None,
    ) -> RunResult:
        if resume_from is not None and self._dme_key is not None:
            key = self._dme_key
        else:
            key = (function, tuple(args))

        if fault_hook is None:
            result = super().run(function=function, args=args, timing=timing,
                                 max_instructions=max_instructions,
                                 resume_from=resume_from)
            trace = self.reference_trace(*key)
            if (result.output != trace.output
                    or result.exit_code != trace.exit_code):
                raise DmeDivergenceError(
                    f"dme: {key[0]}{key[1]}: fault-free run disagrees with "
                    f"the reference pair (exit {result.exit_code} vs "
                    f"{trace.exit_code})"
                )
            if timing is not None and result.cycles is not None:
                # Honest lockstep cost: both variants execute, so a timed
                # run is charged the sum of the pair's cycles.
                result = replace(
                    result,
                    cycles=result.cycles + self._secondary_cycles(
                        key, timing, max_instructions),
                )
            return result

        trace = self.reference_trace(*key)
        entries = trace.entries
        want = -1 if fault_at is None else fault_at

        def lockstep(machine: Machine, instr: Instruction, site: int) -> None:
            # Compare before delivering the flip: at the flip site the
            # destination values are still fault-free, so the comparison
            # can only fire at a *later* site, where the injected damage
            # has genuinely surfaced.
            if site >= len(entries):
                raise DetectionExit(
                    f"dme: control divergence at site {site}: the "
                    f"fault-free pair executes only {len(entries)} sites"
                )
            uid, values = entries[site]
            if uid != instr.uid:
                raise DetectionExit(
                    f"dme: control divergence at site {site}: "
                    f"{instr.mnemonic} does not match the reference trace"
                )
            if _dest_values(machine, instr) != values:
                raise DetectionExit(
                    f"dme: value divergence at site {site} "
                    f"({instr.mnemonic})"
                )
            if want < 0 or site == want:
                fault_hook(machine, instr, site)

        # Convergence composes with lockstep: the monitor wraps the
        # lockstep hook, and a converged boundary — full architectural
        # equality with the fault-free trail — implies every remaining
        # per-site comparison and the exit check would have passed, so
        # finishing with the golden outcome is sound for DME too.
        result = super().run(function=function, args=args,
                             fault_hook=lockstep, timing=timing,
                             max_instructions=max_instructions,
                             resume_from=resume_from, converge=converge)
        if (result.output != trace.output
                or result.exit_code != trace.exit_code):
            # Exit-time lockstep comparison: the run diverged in its
            # observable result without ever disagreeing at a site
            # boundary. Stamp the halt counters the way an in-run
            # DetectionExit would so latency telemetry stays meaningful.
            self.halt_executed = result.dynamic_instructions
            self.halt_sites = result.fault_sites
            raise DetectionExit(
                "dme: output divergence at program exit"
            )
        return result
