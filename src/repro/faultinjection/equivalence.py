"""Outcome-equivalence fault-site pruning: classify faults without running them.

A fault-injection campaign executes one full program run per sampled fault,
yet for most samples the outcome is already determined by the golden run:
the flipped bit is overwritten before any use (statically masked), or the
flip propagates through FERRUM's XOR-linear dup/check datapath straight
into a checker compare whose divergence is provable. This module classifies
such plans *without executing them*, by forward-propagating the exact XOR
delta of the flip along the recorded golden trace.

The scanner is sound by construction:

* every tracked location holds either the *exact* XOR delta between the
  faulty and golden value (registers, memory bytes) or an explicit
  "unknown" marker; flag bits track ``flip`` (exactly inverted), ``cmpz``
  (inverted iff the golden bit was set — the compare-against-equal shape)
  or ``unk``;
* any situation outside the delta-linear subset — corrupted address
  registers, unknown flags reaching a branch, ``idiv`` with corrupted
  inputs, divergence to anything but a detect block — abstains
  (``outcome=None``) and the plan is executed normally;
* a classified DETECTED requires a provably inverted branch whose taken
  path is exactly ``call __eddi_detect``, which yields the same
  :class:`~repro.faultinjection.outcome.Outcome` *and* detection latency
  the real injection would produce;
* a classified BENIGN requires the corrupted set to converge to empty, or
  to never be observed again by the remaining golden trace;
* a classified SDC requires an exact non-zero delta in the low 32 bits of
  ``rax`` at the final sentinel return (equal output, different exit code).

Classified plans are grouped into equivalence classes keyed by
(instruction uid, register, bit, verdict); unclassified duplicates of the
same (site, register, bit) — the machine is deterministic — are injected
once and their results replicated. Both collapse campaign cost while the
per-run outcomes, records and aggregate counts stay bit-identical to an
unpruned campaign (see ``docs/performance.md``).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass, field

from repro.asm.instructions import Instruction, InstrKind
from repro.asm.liveness import CC_READS, flag_bits_written, instruction_uses
from repro.asm.operands import Imm, Mem, Reg
from repro.asm.printer import format_instruction
from repro.asm.program import AsmProgram
from repro.asm.registers import RegisterKind
from repro.errors import InjectionError
from repro.faultinjection.outcome import Outcome
from repro.faultinjection.telemetry import FaultRecord, normalize_origin
from repro.machine import flags as flg
from repro.machine.builtins import DETECT_FUNCTION
from repro.machine.cpu import Machine, RunResult
from repro.utils.bitops import mask_for_width, parity_even

#: Scan gives up after this many propagation events (abstains).
MAX_EVENTS = 4096
#: Scan gives up when the corrupted set grows past this many locations.
MAX_LOCATIONS = 64

_M32 = mask_for_width(32)
_M64 = mask_for_width(64)
_M128 = mask_for_width(128)
_M256 = mask_for_width(256)

_ALL5 = (flg.CF_BIT, flg.PF_BIT, flg.ZF_BIT, flg.SF_BIT, flg.OF_BIT)
_NON_CF = (flg.PF_BIT, flg.ZF_BIT, flg.SF_BIT, flg.OF_BIT)

#: Registers each builtin reads (none touches memory; results depend only
#: on these arguments plus machine state that clean-argument calls keep
#: identical across the golden and faulty runs).
_BUILTIN_READS: dict[str, tuple[str, ...]] = {
    "malloc": ("rdi",),
    "free": (),
    "print_int": ("rdi",),
    "print_long": ("rdi",),
    "srand": ("rdi",),
    "rand_next": (),
    "exit": ("rdi",),
    DETECT_FUNCTION: (),
}

#: Condition codes whose truth value provably inverts when exactly one of
#: their consumed flag bits is exactly inverted.
_XOR_LINEAR_CCS = frozenset({"e", "ne", "b", "ae", "s", "ns", "l", "ge"})


class _Bail(Exception):
    """Internal: the scan left the provable subset; abstain."""


@dataclass(frozen=True)
class Verdict:
    """Result of classifying one (site, register, bit) without execution.

    ``outcome is None`` means the scanner abstained and the plan must be
    executed. ``latency`` is the detection latency in dynamic instructions
    for DETECTED verdicts (bit-identical to the real injector's).
    """

    outcome: Outcome | None
    latency: int | None = None
    events: int = 0
    static: bool = False


@dataclass
class PruningStats:
    """Telemetry for one pruned campaign (attached to CampaignResult)."""

    samples: int = 0
    classified: int = 0
    executed_injections: int = 0
    statically_masked: int = 0
    detected: int = 0
    benign: int = 0
    sdc: int = 0
    duplicates_collapsed: int = 0
    classes: int = 0
    scan_events: int = 0

    @property
    def executed_fraction(self) -> float:
        return self.executed_injections / self.samples if self.samples else 0.0


@dataclass
class PruningAnalysis:
    """Plan partition produced by :func:`analyze_plans`.

    ``synthesized`` holds (run_index, Outcome|FaultRecord) pairs produced
    without execution; ``to_execute`` the representative plans that must
    run; ``duplicates`` maps a representative run index to the run indices
    whose plans are bit-identical to it (same site/register/bit — the
    machine is deterministic, so their results are clones).
    """

    synthesized: list = field(default_factory=list)
    to_execute: list = field(default_factory=list)
    duplicates: dict[int, list[int]] = field(default_factory=dict)
    stats: PruningStats = field(default_factory=PruningStats)


@dataclass
class GoldenTrace:
    """One recorded golden execution: per-position pcs and memory traffic."""

    pcs: list[int]
    reads: dict[int, list[tuple[int, int]]]
    writes: dict[int, list[tuple[int, int]]]
    site_pos: list[int]
    result: RunResult
    exited_via_builtin: bool


def record_golden_trace(
    program: AsmProgram, function: str = "main", args: tuple[int, ...] = ()
) -> tuple[Machine, GoldenTrace]:
    """Run ``program`` fault-free on the reference engine, recording the pc
    of every executed instruction and every memory access (attributed to
    the instruction — or the call/ret flow step — that issued it).

    Detector programs (DME) are recorded through their ``plain()`` view —
    the same instruction objects without the lockstep machinery, so the
    trace is identical while the handler/memory interception below never
    interleaves with reference-pair establishment."""
    plain = getattr(program, "plain", None)
    machine = Machine(plain() if plain is not None else program,
                      engine="reference")
    pcs: list[int] = []
    reads: dict[int, list[tuple[int, int]]] = defaultdict(list)
    writes: dict[int, list[tuple[int, int]]] = defaultdict(list)

    real_handlers = machine._handlers

    def _wrap(pc, handler):
        def wrapped(m, instr):
            pcs.append(pc)
            return handler(m, instr)

        return wrapped

    machine._handlers = [_wrap(pc, h) for pc, h in enumerate(real_handlers)]
    memory = machine.memory
    real_read, real_write = memory.read_uint, memory.write_uint

    def read_uint(addr, size):
        if pcs:
            reads[len(pcs) - 1].append((addr, size))
        return real_read(addr, size)

    def write_uint(addr, value, size):
        if pcs:
            writes[len(pcs) - 1].append((addr, size))
        return real_write(addr, value, size)

    memory.read_uint = read_uint  # type: ignore[method-assign]
    memory.write_uint = write_uint  # type: ignore[method-assign]
    try:
        result = machine.run(function=function, args=args)
    finally:
        machine._handlers = real_handlers
        del memory.read_uint
        del memory.write_uint

    is_site = machine._is_site
    site_pos = [p for p, pc in enumerate(pcs) if is_site[pc]]
    trace = GoldenTrace(
        pcs=pcs,
        reads=dict(reads),
        writes=dict(writes),
        site_pos=site_pos,
        result=result,
        exited_via_builtin=machine._exit_requested,
    )
    return machine, trace


def _scan_roots(instr: Instruction, builtin: str | None) -> frozenset[str]:
    """Register roots whose corruption this instruction could observe or
    repair — the machine-semantics set, not the liveness over-approximation
    (a call does *not* clobber caller-saved registers here: the callee's
    own trace positions account for every real touch)."""
    roots: set[str] = set()
    for op in instr.operands:
        if isinstance(op, Reg):
            roots.add(op.register.root)
        elif isinstance(op, Mem):
            if op.base is not None:
                roots.add(op.base.root)
            if op.index is not None:
                roots.add(op.index.root)
    kind = instr.kind
    if kind in (InstrKind.PUSH, InstrKind.POP, InstrKind.RET, InstrKind.CALL):
        roots.add("rsp")
    if kind is InstrKind.RET:
        roots.add("rax")
    if kind in (InstrKind.IDIV, InstrKind.CONVERT):
        roots.update(("rax", "rdx"))
    if kind is InstrKind.CALL and builtin is not None:
        roots.update(_BUILTIN_READS.get(builtin, ()))
        roots.add("rax")
    return frozenset(roots)


def _touches_flags(instr: Instruction) -> bool:
    kind = instr.kind
    if kind in (InstrKind.ALU, InstrKind.CMP, InstrKind.TEST,
                InstrKind.VECTEST, InstrKind.SHIFT, InstrKind.JCC,
                InstrKind.SETCC):
        return True
    return kind is InstrKind.UNARY and instr.mnemonic[:3] != "not"


class TraceAnalyzer:
    """Classifies fault plans against one recorded golden trace."""

    def __init__(
        self,
        program: AsmProgram,
        function: str = "main",
        args: tuple[int, ...] = (),
    ) -> None:
        self.machine, self.trace = record_golden_trace(program, function, args)
        # DME mode: the program detects by comparing post-writeback site
        # values against its fault-free trace, so classification must judge
        # every intermediate site, not just the final output (see
        # _classify for the exact rules).
        self._dme = getattr(program, "detector", None) == "dme"
        m = self.machine
        self._code = m._code
        self._is_site = m._is_site
        self._jump_pc = m._jump_pc
        self._builtin_name = [
            (instr.target_label if m._call_builtin_fn[pc] is not None else None)
            for pc, instr in enumerate(self._code)
        ]
        self._scan_root_cache = [
            _scan_roots(instr, self._builtin_name[pc])
            for pc, instr in enumerate(self._code)
        ]
        self._flag_touch = [_touches_flags(instr) for instr in self._code]
        self._build_index()
        self._memo: dict[tuple[int, str, int], Verdict] = {}

    # -- event index ------------------------------------------------------

    def _build_index(self) -> None:
        reg_pos: dict[str, list[int]] = defaultdict(list)
        flag_pos: list[int] = []
        mem_pos: dict[int, list[int]] = defaultdict(list)
        scan_roots = self._scan_root_cache
        flag_touch = self._flag_touch
        trace = self.trace
        reads, writes = trace.reads, trace.writes
        for p, pc in enumerate(trace.pcs):
            for root in scan_roots[pc]:
                reg_pos[root].append(p)
            if flag_touch[pc]:
                flag_pos.append(p)
            for addr, size in reads.get(p, ()):
                for k in range(size):
                    lst = mem_pos[addr + k]
                    if not lst or lst[-1] != p:
                        lst.append(p)
            for addr, size in writes.get(p, ()):
                for k in range(size):
                    lst = mem_pos[addr + k]
                    if not lst or lst[-1] != p:
                        lst.append(p)
        self._reg_pos = dict(reg_pos)
        self._flag_pos = flag_pos
        self._mem_pos = dict(mem_pos)

    # -- public API -------------------------------------------------------

    def site_instruction(self, site_index: int) -> Instruction:
        return self._code[self.trace.pcs[self.trace.site_pos[site_index]]]

    def classify(self, site_index: int, register, bit: int) -> Verdict:
        """Verdict for flipping ``bit`` of ``register`` at dynamic site
        ``site_index`` (memoized; identical plans share one scan)."""
        key = (site_index, register.name, bit)
        verdict = self._memo.get(key)
        if verdict is None:
            verdict = self._classify(site_index, register, bit)
            self._memo[key] = verdict
        return verdict

    # -- static fast path -------------------------------------------------

    def _statically_dead(self, pc: int, register, bit: int) -> bool:
        """True when the flipped bit is provably overwritten before any use
        on the *static* fall-through path (def-use, per ``asm/liveness``)."""
        code = self._code
        if register.kind is RegisterKind.FLAGS:
            for nxt in range(pc + 1, len(code)):
                instr = code[nxt]
                kind = instr.kind
                if kind in (InstrKind.JCC, InstrKind.SETCC):
                    if bit in CC_READS[instr.spec.cc or ""]:
                        return False
                elif kind in (InstrKind.CALL, InstrKind.RET, InstrKind.JMP,
                              InstrKind.IDIV):
                    return False
                if bit in flag_bits_written(instr):
                    return True
                if kind.is_terminator:
                    return False
            return False
        if register.kind is not RegisterKind.GPR:
            return False
        root = register.root
        for nxt in range(pc + 1, len(code)):
            instr = code[nxt]
            if instr.kind.is_branch or instr.kind.is_terminator:
                return False
            if root in instruction_uses(instr):
                return False
            dest = instr.dest
            if (isinstance(dest, Reg) and dest.register.root == root
                    and dest.register.width >= 32
                    and instr.kind in (InstrKind.MOV, InstrKind.MOVEXT,
                                       InstrKind.LEA, InstrKind.POP)):
                return True
        return False

    # -- the delta scan ---------------------------------------------------

    def _classify(self, site_index: int, register, bit: int) -> Verdict:
        trace = self.trace
        pos = trace.site_pos[site_index]
        pc = trace.pcs[pos]
        if self._statically_dead(pc, register, bit):
            return Verdict(Outcome.BENIGN, events=0, static=True)

        # Corrupted-location state: exact XOR deltas or None (unknown).
        gpr: dict[str, int | None] = {}
        vec: dict[str, int | None] = {}
        fl: dict[int, str] = {}
        mem: dict[int, int | None] = {}

        kind_of = register.kind
        if kind_of is RegisterKind.FLAGS:
            fl[bit] = "flip"
        elif kind_of is RegisterKind.GPR:
            gpr[register.root] = 1 << bit
        else:
            vec[register.root] = 1 << bit

        code = self._code
        pcs = trace.pcs
        n = len(pcs)
        reg_pos = self._reg_pos
        flag_pos = self._flag_pos
        mem_pos = self._mem_pos

        # ---- helpers over the mutable state ----

        def view_delta(reg) -> int | None:
            if reg.kind is RegisterKind.GPR:
                d = gpr.get(reg.root, 0)
            else:
                d = vec.get(reg.root, 0)
            if d is None:
                return None
            return d & mask_for_width(reg.width)

        def write_reg(reg, dv: int | None) -> None:
            """Apply the register-file merge rules to a view-width delta."""
            if reg.kind is RegisterKind.GPR:
                store, full_mask, root = gpr, _M64, reg.root
                w = reg.width
                replace_w = 32  # >=32-bit GPR writes determine the root
            else:
                store, full_mask, root = vec, _M256, reg.root
                w = reg.width
                replace_w = 256
            if dv is not None:
                dv &= mask_for_width(w)
            if w >= replace_w and (reg.kind is RegisterKind.GPR or w == 256):
                new = dv  # zero-extending / replacing write
            elif reg.kind is RegisterKind.VECTOR:  # xmm view: low-lane merge
                old = store.get(root, 0)
                if old is None or dv is None:
                    new = None
                else:
                    new = (old & ~_M128) | dv
            else:  # sub-32 GPR merge
                old = store.get(root, 0)
                if old is None or dv is None:
                    new = None
                else:
                    new = (old & ~mask_for_width(w)) | dv
            if new == 0:
                store.pop(root, None)
            else:
                store[root] = None if new is None else new & full_mask

        def require_clean_addr(op: Mem) -> None:
            if op.base is not None and op.base.root in gpr:
                raise _Bail
            if op.index is not None and op.index.root in gpr:
                raise _Bail

        def mem_read_delta(addr: int, size: int) -> int | None:
            dv = 0
            for k in range(size):
                b = mem.get(addr + k, 0)
                if b is None:
                    return None
                dv |= b << (8 * k)
            return dv

        def mem_write_delta(addr: int, size: int, dv: int | None) -> None:
            for k in range(size):
                b = None if dv is None else (dv >> (8 * k)) & 0xFF
                if b == 0:
                    mem.pop(addr + k, None)
                else:
                    mem[addr + k] = b

        def read_op(op, width: int, reads_iter) -> int | None:
            if isinstance(op, Imm):
                return 0
            if isinstance(op, Reg):
                d = view_delta(op.register)
                return None if d is None else d & mask_for_width(width)
            require_clean_addr(op)
            addr, size = next(reads_iter)
            return mem_read_delta(addr, size)

        def write_op(op, dv: int | None, width: int, writes_iter) -> None:
            if isinstance(op, Reg):
                if dv is not None:
                    dv &= mask_for_width(width)
                write_reg(op.register, dv)
                return
            require_clean_addr(op)
            addr, size = next(writes_iter)
            mem_write_delta(addr, size, dv)

        def erase(bits) -> None:
            for b in bits:
                fl.pop(b, None)

        def unknown(bits) -> None:
            for b in bits:
                fl[b] = "unk"

        def result_flags(dr: int, width: int, cf_state: str | None) -> None:
            """Exact flag deltas after ``flags_for_result`` with result
            delta ``dr`` (OF cleared in both runs; ``cf_state`` None means
            CF cleared in both runs too)."""
            erase((flg.OF_BIT,))
            if cf_state is None:
                erase((flg.CF_BIT,))
            elif cf_state == "clean":
                erase((flg.CF_BIT,))
            else:
                fl[flg.CF_BIT] = cf_state
            if dr == 0:
                erase((flg.ZF_BIT, flg.SF_BIT, flg.PF_BIT))
                return
            fl[flg.ZF_BIT] = "cmpz"
            if (dr >> (width - 1)) & 1:
                fl[flg.SF_BIT] = "flip"
            else:
                erase((flg.SF_BIT,))
            if not parity_even(dr & 0xFF):
                fl[flg.PF_BIT] = "flip"
            else:
                erase((flg.PF_BIT,))

        detect_latency: list[int] = []

        def resolve_jcc(p: int, instr: Instruction) -> bool:
            """Handle a conditional branch event. Returns True when the
            faulty run provably reaches the detect handler (scan done);
            raises _Bail when the direction cannot be proven."""
            cc = instr.spec.cc or ""
            bits = CC_READS[cc]
            states = [fl.get(b) for b in bits]
            if all(s is None for s in states):
                return False  # same direction, nothing changes
            pc_here = pcs[p]
            if p + 1 >= n:
                raise _Bail
            jump_to = self._jump_pc[pc_here]
            fall_to = pc_here + 1
            golden_next = pcs[p + 1]
            golden_taken = golden_next == jump_to
            if jump_to == fall_to:
                return False  # both directions land on the same pc

            inverted = False
            if any(s == "unk" for s in states):
                raise _Bail
            if "cmpz" in states:
                if cc not in ("e", "ne") or len(bits) != 1:
                    raise _Bail
                golden_zf = golden_taken if cc == "e" else not golden_taken
                if not golden_zf:
                    raise _Bail  # golden bit clear: flip direction unknown
                inverted = True
            else:
                flips = sum(1 for s in states if s == "flip")
                if flips == 0:
                    return False
                if cc in ("l", "ge") and flips == 2:
                    return False  # SF and OF both invert: XOR unchanged
                if cc not in _XOR_LINEAR_CCS or flips != 1:
                    raise _Bail
                inverted = True
            if not inverted:
                return False
            target = fall_to if golden_taken else jump_to
            t_instr = code[target]
            if (t_instr.kind is InstrKind.CALL
                    and t_instr.target_label == DETECT_FUNCTION):
                # Faulty run: identical to golden through p (executed p+1),
                # then executes the detect call (p+2) which raises.
                detect_latency.append(p - pos + 1)
                return True
            raise _Bail

        sdc: list[bool] = []

        def step(p: int) -> bool:
            """Process one event; True ends the scan with a verdict."""
            instr = code[pcs[p]]
            kind = instr.kind
            width = instr.spec.width
            reads_iter = iter(trace.reads.get(p, ()))
            writes_iter = iter(trace.writes.get(p, ()))

            if kind is InstrKind.MOV:
                src, dst = instr.operands
                if (isinstance(src, Reg) and src.register.kind is RegisterKind.VECTOR) or (
                    isinstance(dst, Reg) and dst.register.kind is RegisterKind.VECTOR
                ):
                    return step_vec_movq(instr, reads_iter, writes_iter)
                dv = read_op(src, width, reads_iter)
                write_op(dst, dv, width, writes_iter)
            elif kind is InstrKind.MOVEXT:
                src, dst = instr.operands
                sw = instr.spec.src_width
                dv = read_op(src, sw, reads_iter)
                if dv is not None and instr.mnemonic.startswith("movs"):
                    if (dv >> (sw - 1)) & 1:
                        dv |= mask_for_width(width) ^ mask_for_width(sw)
                write_op(dst, dv, width, writes_iter)
            elif kind is InstrKind.LEA:
                src, dst = instr.operands
                corrupted = (
                    (src.base is not None and src.base.root in gpr)
                    or (src.index is not None and src.index.root in gpr)
                )
                write_op(dst, None if corrupted else 0, 64, writes_iter)
            elif kind is InstrKind.ALU:
                src, dst = instr.operands
                da = read_op(src, width, reads_iter)
                db = read_op(dst, width, reads_iter)
                root_op = instr.mnemonic[:-1]
                if da == 0 and db == 0:
                    write_op(dst, 0, width, writes_iter)
                    erase(_ALL5)
                elif root_op == "xor" and da is not None and db is not None:
                    dr = (da ^ db) & mask_for_width(width)
                    write_op(dst, dr, width, writes_iter)
                    if dr == 0:
                        erase(_ALL5)
                    else:
                        result_flags(dr, width, cf_state=None)
                elif root_op in ("and", "or"):
                    write_op(dst, None, width, writes_iter)
                    unknown((flg.ZF_BIT, flg.SF_BIT, flg.PF_BIT))
                    erase((flg.CF_BIT, flg.OF_BIT))
                else:  # add/sub/imul with a corrupted input
                    write_op(dst, None, width, writes_iter)
                    unknown(_ALL5)
            elif kind is InstrKind.CMP:
                src, dst = instr.operands
                da = read_op(src, width, reads_iter)
                db = read_op(dst, width, reads_iter)
                if da == 0 and db == 0:
                    erase(_ALL5)
                elif da is None or db is None:
                    unknown(_ALL5)
                elif ((da ^ db) & mask_for_width(width)) == 0:
                    erase((flg.ZF_BIT,))  # equal deltas: equality preserved
                    unknown((flg.CF_BIT, flg.PF_BIT, flg.SF_BIT, flg.OF_BIT))
                else:
                    fl[flg.ZF_BIT] = "cmpz"
                    unknown((flg.CF_BIT, flg.PF_BIT, flg.SF_BIT, flg.OF_BIT))
            elif kind is InstrKind.TEST:
                src, dst = instr.operands
                da = read_op(src, width, reads_iter)
                db = read_op(dst, width, reads_iter)
                if da == 0 and db == 0:
                    erase(_ALL5)
                else:
                    unknown((flg.ZF_BIT, flg.SF_BIT, flg.PF_BIT))
                    erase((flg.CF_BIT, flg.OF_BIT))
            elif kind is InstrKind.VECTEST:
                src1, src2 = instr.operands
                d1 = view_delta(src1.register)
                d2 = view_delta(src2.register)
                if d1 == 0 and d2 == 0:
                    erase(_ALL5)
                elif (d1 is not None and d1 == d2
                      and src1.register.root == src2.register.root):
                    # a & a == 0 iff a == 0: ZF follows the cmpz shape;
                    # CF = (a & ~a == 0) = 1 and PF/SF/OF = 0 in both runs.
                    fl[flg.ZF_BIT] = "cmpz"
                    erase((flg.CF_BIT, flg.PF_BIT, flg.SF_BIT, flg.OF_BIT))
                else:
                    unknown(_ALL5)
            elif kind is InstrKind.SHIFT:
                step_shift(instr, width, reads_iter, writes_iter)
            elif kind is InstrKind.UNARY:
                step_unary(instr, width, reads_iter, writes_iter)
            elif kind is InstrKind.SETCC:
                (dst,) = instr.operands
                cc = instr.spec.cc or ""
                bits = CC_READS[cc]
                states = [fl.get(b) for b in bits]
                if all(s is None for s in states):
                    write_op(dst, 0, 8, writes_iter)
                elif (cc in _XOR_LINEAR_CCS
                      and sum(1 for s in states if s == "flip") == 1
                      and all(s in (None, "flip") for s in states)):
                    write_op(dst, 1, 8, writes_iter)  # 0/1 always inverts
                else:
                    write_op(dst, None, 8, writes_iter)
            elif kind is InstrKind.JCC:
                return resolve_jcc(p, instr)
            elif kind is InstrKind.PUSH:
                if "rsp" in gpr:
                    raise _Bail
                (src,) = instr.operands
                dv = read_op(src, 64, reads_iter)
                addr, size = next(writes_iter)
                mem_write_delta(addr, size, dv)
            elif kind is InstrKind.POP:
                if "rsp" in gpr:
                    raise _Bail
                (dst,) = instr.operands
                addr, size = next(reads_iter)
                write_op(dst, mem_read_delta(addr, size), 64, writes_iter)
            elif kind is InstrKind.CALL:
                if "rsp" in gpr:
                    raise _Bail
                builtin = self._builtin_name[pcs[p]]
                if builtin is not None:
                    arg_roots = _BUILTIN_READS.get(builtin)
                    if arg_roots is None:
                        raise _Bail
                    if any(root in gpr for root in arg_roots):
                        raise _Bail
                    gpr.pop("rax", None)  # same return value in both runs
                else:
                    addr, size = next(writes_iter)
                    mem_write_delta(addr, size, 0)  # same return address
            elif kind is InstrKind.RET:
                if "rsp" in gpr:
                    raise _Bail
                addr, size = next(reads_iter)
                if mem_read_delta(addr, size) != 0:
                    raise _Bail  # corrupted return address
                if p == n - 1 and not trace.exited_via_builtin:
                    d = gpr.get("rax", 0)
                    if d is None:
                        raise _Bail
                    if d & _M32:
                        sdc.append(True)  # exit code provably differs
                        return True
            elif kind is InstrKind.IDIV:
                raise _Bail  # corrupted divisor/dividend can fault
            elif kind is InstrKind.CONVERT:
                d = gpr.get("rax", 0)
                if instr.mnemonic == "cltq":
                    if d is None:
                        gpr["rax"] = None
                    else:
                        d32 = d & _M32
                        new = d32 | (0xFFFF_FFFF_0000_0000 if d32 >> 31 else 0)
                        if new == 0:
                            gpr.pop("rax", None)
                        else:
                            gpr["rax"] = new
                else:  # cltd / cqto write rdx from rax's sign bit
                    if d is None:
                        gpr["rdx"] = None
                    else:
                        sign = (d >> 31) & 1 if instr.mnemonic == "cltd" else d >> 63
                        full = _M32 if instr.mnemonic == "cltd" else _M64
                        if sign:
                            gpr["rdx"] = full
                        else:
                            gpr.pop("rdx", None)
            elif kind is InstrKind.VECMOV:
                if instr.mnemonic in ("movq", "vmovq"):
                    return step_vec_movq(instr, reads_iter, writes_iter)
                if instr.mnemonic == "pinsrq":
                    imm, src, dst = instr.operands
                    dv = read_op(src, 64, reads_iter)
                    root = dst.register.root
                    old = vec.get(root, 0)
                    if old is None or dv is None:
                        vec[root] = None
                    else:
                        shift = imm.value * 64
                        low = (old & _M128 & ~(_M64 << shift)) | (dv << shift)
                        new = (old & ~_M128) | low
                        if new == 0:
                            vec.pop(root, None)
                        else:
                            vec[root] = new
                else:  # pextrq
                    imm, src, dst = instr.operands
                    d = vec.get(src.register.root, 0)
                    dv = None if d is None else (d >> (imm.value * 64)) & _M64
                    write_op(dst, dv, 64, writes_iter)
            elif kind is InstrKind.VECINSERT:
                imm, xmm_src, ymm_src, ymm_dst = instr.operands
                if isinstance(xmm_src, Mem):
                    require_clean_addr(xmm_src)
                    addr, size = next(reads_iter)
                    d_lane = mem_read_delta(addr, size)
                else:
                    d_lane = view_delta(xmm_src.register)
                d_base = vec.get(ymm_src.register.root, 0)
                root = ymm_dst.register.root
                if d_lane is None or d_base is None:
                    vec[root] = None
                else:
                    shift = imm.value * 128
                    new = (d_base & ~(_M128 << shift)) | ((d_lane & _M128) << shift)
                    if new == 0:
                        vec.pop(root, None)
                    else:
                        vec[root] = new
            elif kind is InstrKind.VECALU:  # vpxor
                src1, src2, dst = instr.operands
                da = vec.get(src1.register.root, 0)
                db = vec.get(src2.register.root, 0)
                root = dst.register.root
                if da is None or db is None:
                    vec[root] = None
                else:
                    new = da ^ db
                    if new == 0:
                        vec.pop(root, None)
                    else:
                        vec[root] = new
            # JMP / NOP touch nothing; fall through.
            return False

        def step_vec_movq(instr, reads_iter, writes_iter) -> bool:
            src, dst = instr.operands
            if isinstance(src, Reg) and src.register.kind is RegisterKind.VECTOR:
                d = vec.get(src.register.root, 0)
                dv = None if d is None else d & _M64
            else:
                dv = read_op(src, 64, reads_iter)
            if isinstance(dst, Reg) and dst.register.kind is RegisterKind.VECTOR:
                root = dst.register.root
                old = vec.get(root, 0)
                if old is None or dv is None:
                    vec[root] = None
                else:
                    # movq zeroes bits 64..127 in both runs; upper lane kept.
                    new = (old & ~_M128) | dv
                    if new == 0:
                        vec.pop(root, None)
                    else:
                        vec[root] = new
            else:
                write_op(dst, dv, 64, writes_iter)
            return False

        def step_shift(instr, width, reads_iter, writes_iter) -> None:
            src, dst = instr.operands
            if not isinstance(src, Imm):
                raise _Bail  # %cl count: dynamic count value unknown
            count = src.value & (63 if width == 64 else 31)
            dv = read_op(dst, width, reads_iter)
            if count == 0:
                return  # value and flags untouched
            if dv is None:
                write_op(dst, None, width, writes_iter)
                unknown((flg.CF_BIT, flg.ZF_BIT, flg.SF_BIT, flg.PF_BIT))
                erase((flg.OF_BIT,))
                return
            if dv == 0:
                write_op(dst, 0, width, writes_iter)
                erase(_ALL5)
                return
            mask = mask_for_width(width)
            op = instr.mnemonic[:3]
            if op == "shl":
                dr = (dv << count) & mask
                cf_bit = (dv >> (width - count)) & 1
            elif op == "shr":
                dr = dv >> count
                cf_bit = (dv >> (count - 1)) & 1
            else:  # sar: sign replication flips the filled bits too
                dr = dv >> count
                if (dv >> (width - 1)) & 1:
                    dr |= mask ^ (mask >> count)
                cf_bit = (dv >> (count - 1)) & 1
            write_op(dst, dr, width, writes_iter)
            result_flags(dr, width, cf_state="flip" if cf_bit else "clean")

        def step_unary(instr, width, reads_iter, writes_iter) -> None:
            (dst,) = instr.operands
            dv = read_op(dst, width, reads_iter)
            op = instr.mnemonic[:3]
            if op == "not":
                write_op(dst, dv, width, writes_iter)  # delta is preserved
                return
            if op == "neg":
                if dv == 0:
                    write_op(dst, 0, width, writes_iter)
                    erase(_ALL5)
                else:
                    write_op(dst, None, width, writes_iter)
                    unknown(_ALL5)
                return
            # inc/dec: CF is preserved (its corruption state carries over).
            if dv == 0:
                write_op(dst, 0, width, writes_iter)
                erase(_NON_CF)
            else:
                write_op(dst, None, width, writes_iter)
                unknown(_NON_CF)

        def dme_site_delta(p: int) -> str | None:
            """DME mode: judge the post-writeback destination delta of the
            site at trace position ``p`` (call only after ``step(p)``).

            The lockstep machine compares exactly these values against the
            fault-free reference, so an exact non-zero delta is a provable
            detection at this site and an exact zero is provably silent;
            anything uncertain abstains. FLAGS destinations (cmp/test)
            replace all five modeled bits, so the flag-state dict *is* the
            full rflags delta at that point: ``flip`` bits provably differ,
            ``cmpz``/``unk`` bits are unresolvable without golden flag
            values."""
            instr = code[pcs[p]]
            for dest in instr.dest_registers():
                if dest.kind is RegisterKind.FLAGS:
                    if not fl:
                        continue
                    if any(state == "flip" for state in fl.values()):
                        return "detect"
                    return "abstain"
                dv = view_delta(dest)
                if dv is None:
                    return "abstain"
                if dv:
                    return "detect"
            return None

        # ---- event loop ----

        def next_event(cursor: int) -> int | None:
            best: int | None = None
            for root in gpr:
                lst = reg_pos.get(root)
                if lst:
                    i = bisect_right(lst, cursor)
                    if i < len(lst) and (best is None or lst[i] < best):
                        best = lst[i]
            for root in vec:
                lst = reg_pos.get(root)
                if lst:
                    i = bisect_right(lst, cursor)
                    if i < len(lst) and (best is None or lst[i] < best):
                        best = lst[i]
            if fl:
                lst = flag_pos
                i = bisect_right(lst, cursor)
                if i < len(lst) and (best is None or lst[i] < best):
                    best = lst[i]
            for byte in mem:
                lst = mem_pos.get(byte)
                if lst:
                    i = bisect_right(lst, cursor)
                    if i < len(lst) and (best is None or lst[i] < best):
                        best = lst[i]
            return best

        events = 0
        cursor = pos
        try:
            while True:
                if not (gpr or vec or fl or mem):
                    return Verdict(Outcome.BENIGN, events=events)
                if len(gpr) + len(vec) + len(mem) > MAX_LOCATIONS:
                    return Verdict(None, events=events)
                p = next_event(cursor)
                if p is None:
                    # Corrupted state is never observed again: the remaining
                    # run (output, exit path) is bit-identical to golden.
                    return Verdict(Outcome.BENIGN, events=events)
                events += 1
                if events > MAX_EVENTS:
                    return Verdict(None, events=events)
                if step(p):
                    if detect_latency:
                        return Verdict(Outcome.DETECTED,
                                       latency=detect_latency[0],
                                       events=events)
                    if sdc:
                        if self._dme:
                            # The run completes on the golden path but with
                            # a different exit code: the lockstep machine
                            # detects at exit, after the remaining
                            # n - pos - 1 dynamic instructions.
                            return Verdict(Outcome.DETECTED,
                                           latency=n - pos - 1,
                                           events=events)
                        return Verdict(Outcome.SDC, events=events)
                    return Verdict(None, events=events)
                if self._dme and self._is_site[pcs[p]]:
                    judged = dme_site_delta(p)
                    if judged == "detect":
                        return Verdict(Outcome.DETECTED, latency=p - pos,
                                       events=events)
                    if judged == "abstain":
                        return Verdict(None, events=events)
                cursor = p
        except (_Bail, StopIteration):
            return Verdict(None, events=events)


def synthesize_record(
    run_index: int,
    plan,
    instr: Instruction,
    register,
    bit: int,
    verdict: Verdict,
) -> FaultRecord:
    """The :class:`FaultRecord` a real injection of ``plan`` would return
    (field-for-field identical to ``inject_asm_fault(telemetry=True)``)."""
    return FaultRecord(
        run_index=run_index,
        level="asm",
        site_index=plan.site_index,
        instruction=format_instruction(instr),
        mnemonic=instr.mnemonic,
        origin=normalize_origin(instr.origin),
        register=register.name,
        bit=bit,
        outcome=verdict.outcome,
        detection_latency=verdict.latency,
        instruction_uid=instr.uid,
    )


def analyze_plans(
    program: AsmProgram,
    plans,
    function: str = "main",
    args: tuple[int, ...] = (),
    telemetry: bool = False,
    analyzer: TraceAnalyzer | None = None,
) -> PruningAnalysis:
    """Partition ``plans`` (list of ``(run_index, FaultPlan)``) into
    synthesized results, representative plans to execute, and duplicate
    groups. See the module docstring for the soundness contract."""
    from repro.faultinjection.injector import _resolve_flip

    if analyzer is None:
        analyzer = TraceAnalyzer(program, function=function, args=args)
    analysis = PruningAnalysis()
    stats = analysis.stats
    stats.samples = len(plans)

    class_keys: set[tuple] = set()
    representative: dict[tuple, int] = {}

    for run_index, plan in plans:
        if plan.site_index >= len(analyzer.trace.site_pos):
            raise InjectionError(
                f"fault site {plan.site_index} outside golden population "
                f"({len(analyzer.trace.site_pos)} sites)"
            )
        instr = analyzer.site_instruction(plan.site_index)
        register, bit = _resolve_flip(instr, plan)
        verdict = analyzer.classify(plan.site_index, register, bit)
        stats.scan_events += verdict.events
        if verdict.outcome is not None:
            stats.classified += 1
            if verdict.static:
                stats.statically_masked += 1
            if verdict.outcome is Outcome.DETECTED:
                stats.detected += 1
            elif verdict.outcome is Outcome.BENIGN:
                stats.benign += 1
            else:
                stats.sdc += 1
            class_keys.add((instr.uid, register.name, bit,
                            verdict.outcome, verdict.latency))
            payload = (
                synthesize_record(run_index, plan, instr, register, bit,
                                  verdict)
                if telemetry else verdict.outcome
            )
            analysis.synthesized.append((run_index, payload))
            continue
        dup_key = (plan.site_index, register.name, bit)
        rep = representative.get(dup_key)
        if rep is None:
            representative[dup_key] = run_index
            analysis.to_execute.append((run_index, plan))
        else:
            analysis.duplicates.setdefault(rep, []).append(run_index)
            stats.duplicates_collapsed += 1
    stats.executed_injections = len(analysis.to_execute)
    stats.classes = len(class_keys) + len(analysis.to_execute)
    return analysis
