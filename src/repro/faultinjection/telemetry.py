"""Per-fault campaign telemetry: records, aggregation, JSONL streaming.

The paper's headline analysis is *attribution*: Figs. 8/9 trace every SDC
escape back to the static instruction the fault hit and its provenance
(application code vs backend-inserted duplication/capture/check code), and
the "fast" in the title is about how quickly a checker catches a flipped
bit. Outcome counters alone cannot reproduce that, so campaigns optionally
emit one :class:`FaultRecord` per injected fault:

* **where** — dynamic site ordinal, static instruction text, mnemonic,
  provenance tag (``app`` for application code; ``dup``/``pre``/
  ``capture``/``check`` for transform-inserted code), register and bit;
* **what** — the classified :class:`Outcome`;
* **how fast** — the detection latency: dynamic instructions executed from
  the bit flip to the ``DetectionExit``, for detected faults.

Records are plain data (JSON round-trippable) so large campaigns can
stream them to a :class:`JsonlSink` instead of holding them in memory.
Aggregation helpers build the per-origin / per-instruction outcome maps
and the detection-latency histogram the evaluation layer renders.

Telemetry is strictly observational: enabling it never changes which
faults are sampled or how outcomes classify, so telemetry-on campaigns
stay bit-identical in counts to telemetry-off ones.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import IO, Iterable

from repro.faultinjection.outcome import Outcome, OutcomeCounts


def normalize_origin(origin: str) -> str:
    """Map the transforms' ``"orig"`` tag to the report-facing ``"app"``.

    Transform-inserted tags (``dup``, ``pre``, ``capture``, ``check``) pass
    through unchanged; anything unknown does too, so new tags degrade to
    honest labels instead of errors.
    """
    return "app" if origin == "orig" else origin


@dataclass(frozen=True)
class FaultRecord:
    """Everything known about one injected fault and its consequence.

    ``detection_latency`` is the number of dynamic instructions executed
    after the bit flip up to and including the instruction whose checker
    raised :class:`repro.errors.DetectionExit`; ``None`` for every other
    outcome. Counters are cumulative-from-entry on both sides of the
    subtraction, so checkpointed and replayed executions report identical
    latencies.
    """

    run_index: int           # campaign run (RNG stream) that drew the plan
    level: str               # "asm" | "ir"
    site_index: int          # dynamic fault-site ordinal of the flip
    instruction: str         # static instruction, printed
    mnemonic: str            # asm mnemonic or IR opcode
    origin: str              # app | dup | pre | capture | check | ...
    register: str | None     # destination register hit (None at IR level)
    bit: int                 # resolved bit index within the destination
    outcome: Outcome
    detection_latency: int | None
    instruction_uid: int | None = None  # asm static-instruction identity

    def to_json(self) -> dict:
        """Plain-dict form with the enum flattened (one JSONL line)."""
        data = asdict(self)
        data["outcome"] = self.outcome.value
        return data

    @staticmethod
    def from_json(data: dict) -> "FaultRecord":
        fields = dict(data)
        fields["outcome"] = Outcome(fields["outcome"])
        return FaultRecord(**fields)


@dataclass
class CheckpointStats:
    """Execution-strategy counters for one checkpointed campaign.

    ``snapshot_bytes`` is the payload estimate of every cursor snapshot
    taken (dirty memory pages plus register/frame words), not process RSS;
    ``fast_forward_sites`` totals the sites each injection replayed between
    its region checkpoint and its own fault site.
    """

    snapshots: int = 0
    snapshot_bytes: int = 0
    restores: int = 0
    fast_forward_sites: int = 0

    def note_snapshot(self, snap: object) -> None:
        self.snapshots += 1
        self.snapshot_bytes += snapshot_nbytes(snap)

    def summary(self) -> str:
        return (
            f"{self.snapshots} snapshots ({self.snapshot_bytes} bytes), "
            f"{self.restores} restores, "
            f"{self.fast_forward_sites} sites fast-forwarded"
        )


def snapshot_nbytes(snap: object) -> int:
    """Estimated payload bytes of a Machine/IR snapshot.

    Duck-typed over both snapshot flavours: dirty memory pages are counted
    exactly; register files and IR frame environments as 8 bytes per value.
    """
    total = sum(
        len(page)
        for segment in snap.memory.pages  # type: ignore[attr-defined]
        for page in segment.values()
    )
    registers = getattr(snap, "registers", None)
    if registers is not None:
        total += 8 * (len(registers.gprs) + len(registers.vectors) + 1)
    frames = getattr(snap, "frames", None)
    if frames is not None:
        total += sum(8 * len(frame.values) for frame in frames)
    return total


class JsonlSink:
    """Streaming JSONL writer: one :class:`FaultRecord` object per line.

    Context-manager friendly; ``write`` flushes nothing itself (the OS
    buffer is plenty for campaign rates), ``close`` finalizes the file.
    Incremental campaigns append to an existing file with ``mode="a"``.
    """

    def __init__(self, path, mode: str = "w") -> None:
        self.path = path
        self._handle: IO[str] | None = open(path, mode, encoding="utf-8")
        self.written = 0

    def write(self, record: FaultRecord) -> None:
        if self._handle is None:
            raise ValueError(f"sink {self.path} is closed")
        self._handle.write(json.dumps(record.to_json(), sort_keys=True))
        self._handle.write("\n")
        self.written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(path) -> list[FaultRecord]:
    """Load every record from a JSONL file written by :class:`JsonlSink`."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(FaultRecord.from_json(json.loads(line)))
    return records


# -- aggregation -----------------------------------------------------------


def outcomes_by_origin(records: Iterable[FaultRecord]) -> dict[str, OutcomeCounts]:
    """Outcome histogram per provenance tag (the Fig. 8/9 attribution)."""
    by: dict[str, OutcomeCounts] = {}
    for record in records:
        by.setdefault(record.origin, OutcomeCounts()).record(record.outcome)
    return by


@dataclass
class SiteSummary:
    """Aggregated outcomes of every fault that hit one static instruction."""

    instruction: str
    origin: str
    outcomes: OutcomeCounts = field(default_factory=OutcomeCounts)

    @property
    def sdc(self) -> int:
        return self.outcomes[Outcome.SDC]


def outcomes_by_instruction(
    records: Iterable[FaultRecord],
) -> dict[tuple, SiteSummary]:
    """Per-static-instruction outcome map (FastFlip-style substrate).

    Keyed by ``instruction_uid`` where available (assembly level — distinct
    static instructions can print identically), falling back to the printed
    text (IR level).
    """
    by: dict[tuple, SiteSummary] = {}
    for record in records:
        key = (record.level, record.instruction_uid
               if record.instruction_uid is not None else record.instruction)
        summary = by.get(key)
        if summary is None:
            summary = by[key] = SiteSummary(record.instruction, record.origin)
        summary.outcomes.record(record.outcome)
    return by


def detection_latencies(records: Iterable[FaultRecord]) -> list[int]:
    """Latencies of every detected fault, in record order."""
    return [
        record.detection_latency
        for record in records
        if record.outcome is Outcome.DETECTED
        and record.detection_latency is not None
    ]


def latency_histogram(
    records: Iterable[FaultRecord],
) -> list[tuple[int, int, int]]:
    """Detection-latency histogram over power-of-two buckets.

    Returns ``(lo, hi, count)`` rows covering ``lo <= latency < hi``; empty
    when nothing was detected. Buckets grow geometrically because latencies
    span "next instruction" (a FERRUM check right after the flip) to whole
    loop bodies (deferred IR-level checks).
    """
    latencies = detection_latencies(records)
    if not latencies:
        return []
    peak = max(latencies)
    buckets: list[tuple[int, int, int]] = []
    lo, hi = 0, 1
    while lo <= peak:
        count = sum(1 for latency in latencies if lo <= latency < hi)
        buckets.append((lo, hi, count))
        lo, hi = hi, hi * 2
    return buckets
