"""Per-fault campaign telemetry: records, aggregation, JSONL streaming.

The paper's headline analysis is *attribution*: Figs. 8/9 trace every SDC
escape back to the static instruction the fault hit and its provenance
(application code vs backend-inserted duplication/capture/check code), and
the "fast" in the title is about how quickly a checker catches a flipped
bit. Outcome counters alone cannot reproduce that, so campaigns optionally
emit one :class:`FaultRecord` per injected fault:

* **where** — dynamic site ordinal, static instruction text, mnemonic,
  provenance tag (``app`` for application code; ``dup``/``pre``/
  ``capture``/``check`` for transform-inserted code), register and bit;
* **what** — the classified :class:`Outcome`;
* **how fast** — the detection latency: dynamic instructions executed from
  the bit flip to the ``DetectionExit``, for detected faults.

Records are plain data (JSON round-trippable) so large campaigns can
stream them to a :class:`JsonlSink` instead of holding them in memory.
Aggregation helpers build the per-origin / per-instruction outcome maps
and the detection-latency histogram the evaluation layer renders.

Telemetry is strictly observational: enabling it never changes which
faults are sampled or how outcomes classify, so telemetry-on campaigns
stay bit-identical in counts to telemetry-off ones.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import IO, Iterable

from repro.faultinjection.outcome import Outcome, OutcomeCounts


def normalize_origin(origin: str) -> str:
    """Map the transforms' ``"orig"`` tag to the report-facing ``"app"``.

    Transform-inserted tags (``dup``, ``pre``, ``capture``, ``check``) pass
    through unchanged; anything unknown does too, so new tags degrade to
    honest labels instead of errors.
    """
    return "app" if origin == "orig" else origin


@dataclass(frozen=True)
class FaultRecord:
    """Everything known about one injected fault and its consequence.

    ``detection_latency`` is the number of dynamic instructions executed
    after the bit flip up to and including the instruction whose checker
    raised :class:`repro.errors.DetectionExit`; ``None`` for every other
    outcome. Counters are cumulative-from-entry on both sides of the
    subtraction, so checkpointed and replayed executions report identical
    latencies.
    """

    run_index: int           # campaign run (RNG stream) that drew the plan
    level: str               # "asm" | "ir"
    site_index: int          # dynamic fault-site ordinal of the flip
    instruction: str         # static instruction, printed
    mnemonic: str            # asm mnemonic or IR opcode
    origin: str              # app | dup | pre | capture | check | ...
    register: str | None     # destination register hit (None at IR level)
    bit: int                 # resolved bit index within the destination
    outcome: Outcome
    detection_latency: int | None
    instruction_uid: int | None = None  # asm static-instruction identity

    def to_json(self) -> dict:
        """Plain-dict form with the enum flattened (one JSONL line)."""
        data = asdict(self)
        data["outcome"] = self.outcome.value
        return data

    @staticmethod
    def from_json(data: dict) -> "FaultRecord":
        fields = dict(data)
        fields["outcome"] = Outcome(fields["outcome"])
        return FaultRecord(**fields)


@dataclass
class CheckpointStats:
    """Execution-strategy counters for one checkpointed campaign.

    ``snapshot_bytes`` is the payload estimate of every cursor snapshot
    taken (dirty memory pages plus register/frame words), not process RSS;
    ``fast_forward_sites`` totals the sites each injection replayed between
    its region checkpoint and its own fault site.
    """

    snapshots: int = 0
    snapshot_bytes: int = 0
    restores: int = 0
    fast_forward_sites: int = 0

    def note_snapshot(self, snap: object) -> None:
        self.snapshots += 1
        self.snapshot_bytes += snapshot_nbytes(snap)

    def summary(self) -> str:
        return (
            f"{self.snapshots} snapshots ({self.snapshot_bytes} bytes), "
            f"{self.restores} restores, "
            f"{self.fast_forward_sites} sites fast-forwarded"
        )


def snapshot_nbytes(snap: object) -> int:
    """Estimated payload bytes of a Machine/IR snapshot.

    Duck-typed over both snapshot flavours: dirty memory pages are counted
    exactly; register files and IR frame environments as 8 bytes per value.
    """
    total = sum(
        len(page)
        for segment in snap.memory.pages  # type: ignore[attr-defined]
        for page in segment.values()
    )
    registers = getattr(snap, "registers", None)
    if registers is not None:
        total += 8 * (len(registers.gprs) + len(registers.vectors) + 1)
    frames = getattr(snap, "frames", None)
    if frames is not None:
        total += sum(8 * len(frame.values) for frame in frames)
    return total


@dataclass
class ConvergenceStats:
    """Economics of convergence early-exit (``converge=True`` campaigns).

    ``runs`` counts every injection that ran under a convergence monitor
    (including flips with no trail boundary after them); ``converged``
    counts runs that provably rejoined the golden execution at a boundary
    and were finished with the golden outcome. ``instructions_saved`` sums
    the dynamic instructions those runs skipped; ``distance_sites`` sums
    the flip-to-convergence distance in fault sites; and
    ``boundaries_compared`` counts divergence-cone comparisons performed
    (each O(registers + cone pages)). Mergeable across workers and shards
    — all fields are order-independent sums.
    """

    runs: int = 0
    converged: int = 0
    instructions_saved: int = 0
    distance_sites: int = 0
    boundaries_compared: int = 0

    def note(self, monitor) -> None:
        """Fold one finished run's monitor into the totals (None = no
        boundary after the flip; the run still counts toward ``runs``)."""
        self.runs += 1
        if monitor is None:
            return
        self.boundaries_compared += monitor.boundaries_compared
        if monitor.converged:
            self.converged += 1
            self.instructions_saved += monitor.instructions_saved
            self.distance_sites += monitor.convergence_distance

    def merge(self, other: "ConvergenceStats") -> None:
        self.runs += other.runs
        self.converged += other.converged
        self.instructions_saved += other.instructions_saved
        self.distance_sites += other.distance_sites
        self.boundaries_compared += other.boundaries_compared

    @property
    def converged_fraction(self) -> float:
        return self.converged / self.runs if self.runs else 0.0

    @property
    def mean_convergence_distance(self) -> float:
        """Mean flip-to-convergence distance in fault sites (converged runs)."""
        return self.distance_sites / self.converged if self.converged else 0.0

    def summary(self) -> dict:
        return {
            "runs": self.runs,
            "converged": self.converged,
            "converged_fraction": round(self.converged_fraction, 4),
            "instructions_saved": self.instructions_saved,
            "mean_convergence_distance": round(
                self.mean_convergence_distance, 2),
            "boundaries_compared": self.boundaries_compared,
        }


class JsonlSink:
    """Streaming JSONL writer: one :class:`FaultRecord` object per line.

    Context-manager friendly; each record is serialized to a single
    ``write`` call (so a killed campaign can tear at most the final line,
    never interleave two). ``fsync=True`` additionally flushes and fsyncs
    after every record, making each line durable the moment ``write``
    returns — the mode the campaign service's journals run in. ``close``
    finalizes the file (always flushing; fsyncing in fsync mode).
    Incremental campaigns append to an existing file with ``mode="a"``.
    """

    def __init__(self, path, mode: str = "w", fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self._handle: IO[str] | None = open(path, mode, encoding="utf-8")
        self.written = 0

    def write(self, record: FaultRecord) -> None:
        if self._handle is None:
            raise ValueError(f"sink {self.path} is closed")
        self._handle.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
        self.written += 1
        if self.fsync:
            self.sync()

    def sync(self) -> None:
        """Flush buffered lines and force them to stable storage."""
        if self._handle is None:
            raise ValueError(f"sink {self.path} is closed")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            if self.fsync:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(path) -> list[FaultRecord]:
    """Load every record from a JSONL file written by :class:`JsonlSink`.

    Tolerates a *torn trailing record* — the signature of a campaign
    killed mid-append (an unterminated final line, or a terminated final
    line that does not parse back into a :class:`FaultRecord`): the tail
    is dropped and every complete record is returned, so a killed
    campaign's stream is always loadable for resume. Corruption anywhere
    before the final line still raises — single-write appends cannot
    produce it, so it signals real file damage.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    records = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        terminated = newline >= 0
        line = data[offset:newline] if terminated else data[offset:]
        is_last = not terminated or newline + 1 >= len(data)
        if line.strip():
            try:
                records.append(
                    FaultRecord.from_json(json.loads(line.decode("utf-8")))
                )
            except (UnicodeDecodeError, ValueError, TypeError, KeyError) as exc:
                if is_last:
                    break  # torn trailing record: truncate, don't raise
                raise ValueError(
                    f"{path}: corrupt record at byte {offset} is not the "
                    f"final line: {exc}"
                ) from exc
        if not terminated:
            break
        offset = newline + 1
    return records


# -- aggregation -----------------------------------------------------------


def outcomes_by_origin(records: Iterable[FaultRecord]) -> dict[str, OutcomeCounts]:
    """Outcome histogram per provenance tag (the Fig. 8/9 attribution)."""
    by: dict[str, OutcomeCounts] = {}
    for record in records:
        by.setdefault(record.origin, OutcomeCounts()).record(record.outcome)
    return by


@dataclass
class SiteSummary:
    """Aggregated outcomes of every fault that hit one static instruction."""

    instruction: str
    origin: str
    outcomes: OutcomeCounts = field(default_factory=OutcomeCounts)

    @property
    def sdc(self) -> int:
        return self.outcomes[Outcome.SDC]


def outcomes_by_instruction(
    records: Iterable[FaultRecord],
) -> dict[tuple, SiteSummary]:
    """Per-static-instruction outcome map (FastFlip-style substrate).

    Keyed by ``instruction_uid`` where available (assembly level — distinct
    static instructions can print identically), falling back to the printed
    text (IR level).
    """
    by: dict[tuple, SiteSummary] = {}
    for record in records:
        key = (record.level, record.instruction_uid
               if record.instruction_uid is not None else record.instruction)
        summary = by.get(key)
        if summary is None:
            summary = by[key] = SiteSummary(record.instruction, record.origin)
        summary.outcomes.record(record.outcome)
    return by


@dataclass
class TelemetryAggregate:
    """Mergeable, constant-size summary of a stream of fault records.

    The durable campaign service merges per-shard partial aggregates into
    campaign totals instead of holding record lists in memory, so its
    resident footprint is bounded by the shard size, not the campaign
    size. ``add`` folds in one record; ``merge`` folds in another
    aggregate; both are associative and order-insensitive, so any shard
    partition (and any replay/resume interleaving) produces the identical
    aggregate a single sequential pass would.

    Latencies are kept as power-of-two bucket counts (bucket ``k`` covers
    ``[2**(k-1), 2**k)``; bucket 0 is latency 0), the exact shape
    :func:`latency_histogram` reports, so ``latency_rows()`` reproduces
    that helper's output without the record list.
    """

    records: int = 0
    counts: OutcomeCounts = field(default_factory=OutcomeCounts)
    by_origin: dict[str, OutcomeCounts] = field(default_factory=dict)
    latency_buckets: dict[int, int] = field(default_factory=dict)
    max_latency: int = -1

    def add(self, record: FaultRecord) -> None:
        self.records += 1
        self.counts.record(record.outcome)
        self.by_origin.setdefault(record.origin,
                                  OutcomeCounts()).record(record.outcome)
        if (record.outcome is Outcome.DETECTED
                and record.detection_latency is not None):
            latency = record.detection_latency
            bucket = latency.bit_length()
            self.latency_buckets[bucket] = (
                self.latency_buckets.get(bucket, 0) + 1
            )
            self.max_latency = max(self.max_latency, latency)

    def merge(self, other: "TelemetryAggregate") -> None:
        self.records += other.records
        for outcome, count in other.counts.counts.items():
            self.counts.counts[outcome] += count
        for origin, counts in other.by_origin.items():
            mine = self.by_origin.setdefault(origin, OutcomeCounts())
            for outcome, count in counts.counts.items():
                mine.counts[outcome] += count
        for bucket, count in other.latency_buckets.items():
            self.latency_buckets[bucket] = (
                self.latency_buckets.get(bucket, 0) + count
            )
        self.max_latency = max(self.max_latency, other.max_latency)

    def latency_rows(self) -> list[tuple[int, int, int]]:
        """The :func:`latency_histogram` rows, rebuilt from bucket counts."""
        if self.max_latency < 0:
            return []
        rows: list[tuple[int, int, int]] = []
        lo, hi, bucket = 0, 1, 0
        while lo <= self.max_latency:
            rows.append((lo, hi, self.latency_buckets.get(bucket, 0)))
            lo, hi, bucket = hi, hi * 2, bucket + 1
        return rows

    def to_json(self) -> dict:
        """Deterministic plain-dict form (JSON round-trippable)."""
        return {
            "records": self.records,
            "counts": {o.value: self.counts[o] for o in Outcome},
            "by_origin": {
                origin: {o.value: counts[o] for o in Outcome}
                for origin, counts in sorted(self.by_origin.items())
            },
            "latency_buckets": {
                str(bucket): count
                for bucket, count in sorted(self.latency_buckets.items())
            },
            "max_latency": self.max_latency,
        }

    @staticmethod
    def from_json(data: dict) -> "TelemetryAggregate":
        aggregate = TelemetryAggregate(records=data["records"],
                                       max_latency=data["max_latency"])
        for name, count in data["counts"].items():
            aggregate.counts.counts[Outcome(name)] = count
        for origin, counts in data["by_origin"].items():
            mine = aggregate.by_origin.setdefault(origin, OutcomeCounts())
            for name, count in counts.items():
                mine.counts[Outcome(name)] = count
        for bucket, count in data["latency_buckets"].items():
            aggregate.latency_buckets[int(bucket)] = count
        return aggregate


def detection_latencies(records: Iterable[FaultRecord]) -> list[int]:
    """Latencies of every detected fault, in record order."""
    return [
        record.detection_latency
        for record in records
        if record.outcome is Outcome.DETECTED
        and record.detection_latency is not None
    ]


def latency_histogram(
    records: Iterable[FaultRecord],
) -> list[tuple[int, int, int]]:
    """Detection-latency histogram over power-of-two buckets.

    Returns ``(lo, hi, count)`` rows covering ``lo <= latency < hi``; empty
    when nothing was detected. Buckets grow geometrically because latencies
    span "next instruction" (a FERRUM check right after the flip) to whole
    loop bodies (deferred IR-level checks).
    """
    latencies = detection_latencies(records)
    if not latencies:
        return []
    peak = max(latencies)
    buckets: list[tuple[int, int, int]] = []
    lo, hi = 0, 1
    while lo <= peak:
        count = sum(1 for latency in latencies if lo <= latency < hi)
        buckets.append((lo, hi, count))
        lo, hi = hi, hi * 2
    return buckets
