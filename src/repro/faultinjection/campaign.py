"""Fault-injection campaigns: many sampled faults, aggregated outcomes.

A campaign reproduces the paper's measurement protocol (Sec. IV-A2): N
independent runs, one uniformly sampled single-bit fault each, outcomes
aggregated into an :class:`OutcomeCounts` histogram. Sampling is fully
deterministic from a seed; each run forks its own RNG stream, so campaigns
are reproducible and embarrassingly parallel in structure.

Two execution engines serve the same sampled plans:

* ``engine="replay"`` — the classic protocol: every injection re-executes
  the program from instruction 0, so campaign cost is ~N × full-run time
  even though all runs share an identical golden prefix up to the fault
  site.
* ``engine="checkpoint"`` (default) — plans are sorted by dynamic site,
  grouped into checkpoint regions, and the shared golden prefix is executed
  exactly once: a cursor snapshot advances region to region
  (:meth:`Machine.run_to_site`), and each injection restores the region's
  O(touched pages) snapshot and runs only its own suffix. Outcomes are
  bit-identical to the replay engine (plans are RNG-independent and
  snapshots capture complete architectural state); only the execution
  strategy changes. See ``docs/fault_model.md``.

``telemetry=True`` (or a ``jsonl_path``) additionally collects one
:class:`FaultRecord` per fault — attribution, register/bit, detection
latency — plus :class:`CheckpointStats` under the checkpoint engine.
Telemetry is purely observational: outcome counts are bit-identical with
it on or off, and the default-off path adds no per-run work.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.asm.program import AsmProgram
from repro.errors import InjectionError
from repro.faultinjection.equivalence import (
    PruningAnalysis,
    PruningStats,
    analyze_plans,
)
from repro.faultinjection.injector import (
    FaultPlan,
    inject_asm_fault,
    inject_ir_fault,
)
from repro.faultinjection.outcome import Outcome, OutcomeCounts
from repro.faultinjection.telemetry import (
    CheckpointStats,
    ConvergenceStats,
    FaultRecord,
    JsonlSink,
)
from repro.ir.interp import IRInterpreter
from repro.ir.module import IRModule
from repro.machine.converge import ConvergenceTrail, record_trail
from repro.machine.cpu import Machine, MachineSnapshot
from repro.utils.rng import DeterministicRng

if TYPE_CHECKING:  # circular at runtime: compose builds on this module
    from repro.faultinjection.compose import ComposeStats

#: Execution strategies accepted by ``run_campaign``/``run_ir_campaign``.
ENGINES = ("checkpoint", "replay")

#: An (run_index, plan) pair — campaigns thread run indices through every
#: engine so telemetry records identify the RNG stream that drew them.
IndexedPlan = tuple[int, FaultPlan]


@dataclass
class CampaignResult:
    """Aggregated result of one injection campaign.

    ``records`` (telemetry campaigns only) holds one :class:`FaultRecord`
    per sample, sorted by run index; ``checkpoint_stats`` reports the
    checkpoint engine's snapshot/restore economics. Both are ``None`` when
    telemetry is off — the default — and their presence never changes
    ``outcomes``. ``compose_stats`` is filled only by
    :func:`repro.faultinjection.compose.compose_campaign` and reports the
    section partition and cache hit/miss economics; ``convergence_stats``
    is filled by ``converge=True`` campaigns and reports the convergence
    early-exit economics (converged fraction, instructions saved).
    """

    samples: int
    outcomes: OutcomeCounts = field(default_factory=OutcomeCounts)
    fault_sites: int = 0
    dynamic_instructions: int = 0
    records: list[FaultRecord] | None = None
    checkpoint_stats: CheckpointStats | None = None
    pruning_stats: PruningStats | None = None
    compose_stats: "ComposeStats | None" = None
    convergence_stats: ConvergenceStats | None = None

    @property
    def sdc_probability(self) -> float:
        return self.outcomes.sdc_probability

    def summary(self) -> str:
        parts = [
            f"{outcome.value}={self.outcomes[outcome]}" for outcome in Outcome
        ]
        return (
            f"{self.samples} faults over {self.fault_sites} sites: "
            + ", ".join(parts)
        )


def _expand_pruned(
    analysis: PruningAnalysis, executed, telemetry: bool
) -> list:
    """Results the pruning pass avoided executing.

    Synthesized verdicts are returned as-is; duplicate plans are served by
    cloning their representative's result (the machine is deterministic, so
    an identical (site, register, bit) flip yields an identical outcome),
    re-stamped with the duplicate's run index when telemetry is on.
    """
    extra = list(analysis.synthesized)
    if analysis.duplicates:
        by_run = dict(executed)
        for rep, dup_indices in analysis.duplicates.items():
            rep_result = by_run[rep]
            for dup in dup_indices:
                extra.append(
                    (dup, replace(rep_result, run_index=dup))
                    if telemetry else (dup, rep_result)
                )
    return extra


def _open_sink(jsonl_path, mode: str) -> JsonlSink | None:
    """Open the campaign's JSONL sink, validating the requested mode.

    ``mode="w"`` truncates (the default); ``mode="a"`` appends, which is
    what multi-invocation workflows — compositional campaigns above all —
    need to accumulate one stream across runs.
    """
    if jsonl_path is None:
        return None
    if mode not in ("w", "a"):
        raise InjectionError(
            f"jsonl_mode must be 'w' (truncate) or 'a' (append), got {mode!r}"
        )
    return JsonlSink(jsonl_path, mode=mode)


class _RunOrderedWriter:
    """Streams records to a sink in run-index order as they become available.

    Pruned campaigns complete their runs out of run-index order (executed
    representatives arrive in site order; synthesized verdicts exist before
    execution starts; duplicates complete when their representative does).
    This reorder buffer flushes each record the moment every lower run
    index has been written, so the final file stays byte-identical to the
    buffered (sorted-by-run-index) order — and it is *bounded*: synthesized
    verdicts are consulted lazily from the analysis at their flush point
    (never copied in), duplicate clones are materialized only at the
    instant they are written, and a representative's record is retained
    only until its last clone flushes. The buffer therefore holds at most
    the out-of-order executed records plus the representatives with
    pending clones, never the whole campaign; ``peak_buffer`` reports the
    high-water mark so tests can pin the bound.
    """

    def __init__(self, sink: JsonlSink, analysis: PruningAnalysis) -> None:
        self._sink = sink
        self._duplicates = analysis.duplicates
        self._dup_of = {
            dup: rep
            for rep, dups in analysis.duplicates.items()
            for dup in dups
        }
        self._last_dup = {
            rep: max(dups) for rep, dups in analysis.duplicates.items() if dups
        }
        # References into the analysis, not copies: synthesized records
        # already exist for the campaign result, so looking them up lazily
        # adds no resident memory.
        self._synth = dict(analysis.synthesized)
        self._pending: dict[int, FaultRecord] = {}
        self._rep_records: dict[int, FaultRecord] = {}
        self._next = 0
        self.peak_buffer = 0
        self._drain()  # a synthesized prefix may already start at run 0

    def _note_peak(self) -> None:
        resident = len(self._pending) + len(self._rep_records)
        if resident > self.peak_buffer:
            self.peak_buffer = resident

    def _drain(self) -> None:
        while True:
            run = self._next
            record = self._pending.pop(run, None)
            if record is None:
                record = self._synth.pop(run, None)
            if record is None:
                rep = self._dup_of.get(run)
                if rep is None or rep not in self._rep_records:
                    return  # gap: a lower run index is still executing
                record = replace(self._rep_records[rep], run_index=run)
                if run == self._last_dup[rep]:
                    del self._rep_records[rep]
            self._sink.write(record)
            self._next += 1

    def write(self, record: FaultRecord) -> None:
        """Engine-facing hook: accept one executed record."""
        run = record.run_index
        if run in self._duplicates:
            self._rep_records[run] = record
        if run != self._next:
            self._pending[run] = record
            self._note_peak()
            return
        self._sink.write(record)
        self._next += 1
        self._note_peak()
        self._drain()


def _checkpoint_schedule(
    plans: list[IndexedPlan], interval: int | None
) -> list[tuple[int, list[IndexedPlan]]]:
    """Group indexed plans by the checkpoint that serves them, by site.

    ``interval=None`` checkpoints at every distinct fault site (zero
    fast-forward per injection); ``interval=K`` snapshots only at multiples
    of K sites, trading up to K-1 sites of fast-forward per injection for
    fewer, coarser snapshots — the knob that matters when region snapshots
    must be materialized simultaneously (the multiprocessing path).
    """
    if interval is not None and interval < 1:
        raise InjectionError(f"checkpoint interval must be >= 1, got {interval}")
    regions: dict[int, list[IndexedPlan]] = {}
    for indexed in plans:
        site = indexed[1].site_index
        checkpoint = site if interval is None else site - site % interval
        regions.setdefault(checkpoint, []).append(indexed)
    return sorted(regions.items())


def _finish(
    result: CampaignResult,
    results,
    telemetry: bool,
    sink: JsonlSink | None,
    streamed: bool,
) -> CampaignResult:
    """Fold per-run results into the campaign aggregate.

    ``results`` is an iterable of (run_index, Outcome | FaultRecord); with
    telemetry the records are kept sorted by run index and — unless the
    sequential engine already ``streamed`` them — written to ``sink``.
    """
    if telemetry:
        ordered = [record for _, record in sorted(results,
                                                  key=lambda pair: pair[0])]
        for record in ordered:
            result.outcomes.record(record.outcome)
            if sink is not None and not streamed:
                sink.write(record)
        result.records = ordered
    else:
        for _, outcome in results:
            result.outcomes.record(outcome)
    return result


def _checkpointed_asm_results(
    program: AsmProgram,
    plans: list[IndexedPlan],
    golden,
    function: str,
    args: tuple[int, ...],
    interval: int | None,
    telemetry: bool = False,
    stats: CheckpointStats | None = None,
    sink=None,
    machine: Machine | None = None,
    cursor: MachineSnapshot | None = None,
    trail=None,
    conv_stats=None,
) -> list:
    """Serve all plans off one incremental golden-prefix pass (sequential).

    ``machine``/``cursor`` let compositional campaigns resume the pass from
    a section-entry snapshot instead of program entry; the default (both
    ``None``) executes the golden prefix from scratch, as flat campaigns do.
    ``trail``/``conv_stats`` thread convergence early-exit through every
    injection (see :func:`run_campaign`'s ``converge``).
    """
    results = []
    if machine is None:
        machine = Machine(program)
    for checkpoint_site, region_plans in _checkpoint_schedule(plans, interval):
        cursor = machine.run_to_site(checkpoint_site, function=function,
                                     args=args, resume_from=cursor)
        if stats is not None:
            stats.note_snapshot(cursor)
        for run_index, plan in region_plans:
            outcome = inject_asm_fault(program, plan, golden,
                                       function=function, args=args,
                                       machine=machine, resume_from=cursor,
                                       telemetry=telemetry,
                                       run_index=run_index,
                                       converge=trail,
                                       converge_stats=conv_stats)
            if stats is not None:
                stats.restores += 1
                stats.fast_forward_sites += plan.site_index - checkpoint_site
            if sink is not None and telemetry:
                sink.write(outcome)
            results.append((run_index, outcome))
    return results


def _checkpointed_ir_results(
    module: IRModule,
    plans: list[IndexedPlan],
    golden,
    function: str,
    args: tuple[int, ...],
    interval: int | None,
    telemetry: bool = False,
    stats: CheckpointStats | None = None,
    sink: JsonlSink | None = None,
) -> list:
    """IR twin of :func:`_checkpointed_asm_results`."""
    results = []
    interp = IRInterpreter(module)
    cursor = None
    for checkpoint_site, region_plans in _checkpoint_schedule(plans, interval):
        cursor = interp.run_to_site(checkpoint_site, function=function,
                                    args=args, resume_from=cursor)
        if stats is not None:
            stats.note_snapshot(cursor)
        for run_index, plan in region_plans:
            outcome = inject_ir_fault(module, plan, golden, function=function,
                                      args=args, interp=interp,
                                      resume_from=cursor, telemetry=telemetry,
                                      run_index=run_index)
            if stats is not None:
                stats.restores += 1
                stats.fast_forward_sites += plan.site_index - checkpoint_site
            if sink is not None and telemetry:
                sink.write(outcome)
            results.append((run_index, outcome))
    return results


#: State inherited by forked campaign workers (see ``run_campaign``).
_PARALLEL_STATE: dict = {}


def _parallel_inject(indexed: IndexedPlan):
    state = _PARALLEL_STATE
    run_index, plan = indexed
    return run_index, inject_asm_fault(
        state["program"], plan, state["golden"],
        function=state["function"], args=state["args"],
        telemetry=state["telemetry"], run_index=run_index,
    )


def _parallel_inject_region(region_index: int) -> list:
    """Worker for the checkpoint-aware pool: one restore-base per region."""
    state = _PARALLEL_STATE
    snapshot, region_plans = state["regions"][region_index]
    machine = state["machine"]
    return [
        (run_index,
         inject_asm_fault(state["program"], plan, state["golden"],
                          function=state["function"], args=state["args"],
                          machine=machine, resume_from=snapshot,
                          telemetry=state["telemetry"], run_index=run_index))
        for run_index, plan in region_plans
    ]


def _parallel_inject_converge(indexed: IndexedPlan):
    """Replay-engine worker with convergence early-exit.

    Returns ``((run_index, outcome), stats)`` so the parent can merge the
    per-run :class:`ConvergenceStats` deterministically (all fields are
    order-independent sums). Kept separate from :func:`_parallel_inject`
    so non-converge campaigns keep their exact result shape.
    """
    state = _PARALLEL_STATE
    run_index, plan = indexed
    stats = ConvergenceStats()
    outcome = inject_asm_fault(
        state["program"], plan, state["golden"],
        function=state["function"], args=state["args"],
        telemetry=state["telemetry"], run_index=run_index,
        converge=state["trail"], converge_stats=stats,
    )
    return (run_index, outcome), stats


def _parallel_inject_region_converge(region_index: int):
    """Checkpoint-engine region worker with convergence early-exit."""
    state = _PARALLEL_STATE
    snapshot, region_plans = state["regions"][region_index]
    machine = state["machine"]
    stats = ConvergenceStats()
    pairs = [
        (run_index,
         inject_asm_fault(state["program"], plan, state["golden"],
                          function=state["function"], args=state["args"],
                          machine=machine, resume_from=snapshot,
                          telemetry=state["telemetry"], run_index=run_index,
                          converge=state["trail"], converge_stats=stats))
        for run_index, plan in region_plans
    ]
    return pairs, stats


def _parallel_inject_ir(indexed: IndexedPlan):
    state = _PARALLEL_STATE
    run_index, plan = indexed
    return run_index, inject_ir_fault(
        state["module"], plan, state["golden"],
        function=state["function"], args=state["args"],
        telemetry=state["telemetry"], run_index=run_index,
    )


def _parallel_inject_ir_region(region_index: int) -> list:
    state = _PARALLEL_STATE
    snapshot, region_plans = state["regions"][region_index]
    interp = state["interp"]
    return [
        (run_index,
         inject_ir_fault(state["module"], plan, state["golden"],
                         function=state["function"], args=state["args"],
                         interp=interp, resume_from=snapshot,
                         telemetry=state["telemetry"], run_index=run_index))
        for run_index, plan in region_plans
    ]


def _fork_context():
    """The ``fork`` multiprocessing context, or None where unsupported.

    Campaign workers rely on inheriting the parent's program, golden run
    and snapshots by address-space copy; ``spawn``/``forkserver`` would need
    everything re-pickled and re-validated per worker. Callers fall back to
    sequential execution (identical results, no crash) when ``fork`` is
    unavailable (e.g. some non-POSIX platforms).
    """
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def _pooled(context, processes: int, worker, tasks, chunksize: int) -> list:
    """Map over a pool, always clearing the inherited-state global.

    Results are collected incrementally (``imap`` preserves task order, so
    the returned list is identical to ``pool.map``'s). A worker exception
    no longer silently discards every completed task's results: it is
    re-raised as an :class:`InjectionError` naming how many tasks had
    completed, with the partial results attached as
    ``error.partial_results`` so callers can salvage them. The
    inherited-state global is cleared on every exit path — success, worker
    failure, or pool construction failure.
    """
    tasks = list(tasks)
    results: list = []
    try:
        with context.Pool(processes) as pool:
            try:
                for item in pool.imap(worker, tasks, chunksize=chunksize):
                    results.append(item)
            except Exception as exc:
                error = InjectionError(
                    f"campaign worker failed after {len(results)}/{len(tasks)}"
                    f" tasks completed: {type(exc).__name__}: {exc}"
                )
                error.partial_results = results
                raise error from exc
        return results
    finally:
        _PARALLEL_STATE.clear()


def run_campaign(
    program: AsmProgram,
    samples: int,
    seed: int = 0,
    function: str = "main",
    args: tuple[int, ...] = (),
    processes: int = 1,
    engine: str = "checkpoint",
    checkpoint_interval: int | None = None,
    telemetry: bool = False,
    jsonl_path=None,
    jsonl_mode: str = "w",
    prune: bool = False,
    converge: bool = False,
    converge_interval: int | None = None,
) -> CampaignResult:
    """Inject ``samples`` single-bit faults at assembly level.

    One golden (fault-free) execution establishes the reference output and
    the dynamic fault-site population; each sample then flips one bit at a
    uniformly chosen site/register/bit and classifies the outcome.

    ``engine`` selects the execution strategy (see the module docstring);
    both produce bit-identical :class:`OutcomeCounts` for the same seed.
    ``checkpoint_interval`` (checkpoint engine only) snapshots every K
    sites instead of at every served site. ``processes > 1`` fans the
    (independent) runs out over forked worker processes — sharded by
    checkpoint region under the checkpoint engine, so each worker restores
    from its region snapshot rather than replaying the prefix; results are
    identical to the sequential order because every run derives its own RNG
    stream from the seed. Where ``fork`` is unavailable the campaign runs
    sequentially instead of crashing.

    ``telemetry=True`` collects one :class:`FaultRecord` per fault into
    ``result.records`` (and fills ``result.checkpoint_stats`` under the
    checkpoint engine); ``jsonl_path`` implies telemetry and streams the
    records to disk as JSONL — incrementally in sequential engines, after
    collection in multiprocessing ones. ``jsonl_mode="a"`` appends to an
    existing file instead of truncating, so multi-invocation workflows can
    accumulate one stream. Outcome counts are bit-identical with telemetry
    on or off.

    ``prune=True`` runs the outcome-equivalence pass
    (:mod:`repro.faultinjection.equivalence`) first: plans whose outcome is
    provable from the golden trace are synthesized without execution, and
    plans identical in (site, register, bit) to an already-executed one are
    served by cloning its result. Outcomes and telemetry records stay
    bit-identical to the unpruned campaign; ``result.pruning_stats``
    reports how much work was avoided.

    ``converge=True`` layers *dynamic* pruning on top: one extra fault-free
    pass records a golden digest trail (:mod:`repro.machine.converge`), and
    every injected run stops the moment its divergence cone — registers
    plus pages written since the flip — matches the trail at a boundary,
    finishing with the golden outcome. Counts, records, per-origin maps
    and JSONL bytes stay bit-identical to ``converge=False``;
    ``result.convergence_stats`` reports the converged fraction and
    instructions saved. ``converge_interval`` overrides the boundary
    spacing in fault sites (default: :func:`repro.machine.converge.
    trail_interval`). Composes with ``prune`` (static pruning removes
    runs, convergence shortens the surviving ones) and with both engines
    and any process count — the trail is recorded once pre-fork and
    inherited by workers.
    """
    if engine not in ENGINES:
        raise InjectionError(f"unknown engine {engine!r}; known: {ENGINES}")
    telemetry = telemetry or jsonl_path is not None
    golden = Machine(program).run(function=function, args=args)
    result = CampaignResult(
        samples=samples,
        fault_sites=golden.fault_sites,
        dynamic_instructions=golden.dynamic_instructions,
    )
    rng = DeterministicRng(seed)
    plans: list[IndexedPlan] = [
        (run_index, FaultPlan.sample(rng.fork(run_index), golden.fault_sites))
        for run_index in range(samples)
    ]
    analysis = None
    if prune:
        analysis = analyze_plans(program, plans, function=function, args=args,
                                 telemetry=telemetry)
        plans = analysis.to_execute
        result.pruning_stats = analysis.stats
    trail: ConvergenceTrail | None = None
    conv_stats: ConvergenceStats | None = None
    if converge:
        trail = record_trail(program, golden, function=function, args=args,
                             interval=converge_interval)
        conv_stats = ConvergenceStats()
        result.convergence_stats = conv_stats
    stats = CheckpointStats() if telemetry and engine == "checkpoint" else None
    result.checkpoint_stats = stats
    context = _fork_context() if processes > 1 else None
    parallel = processes > 1 and context is not None
    sink = _open_sink(jsonl_path, jsonl_mode)
    # Sequential pruned campaigns stream through a run-index reorder buffer:
    # executed records release as they complete, synthesized and duplicate
    # records interleave at their run indices, and the file ends up
    # byte-identical to the buffered (sorted-by-run-index) order.
    streamer = None
    stream_sink = sink
    if analysis is not None and sink is not None and not parallel:
        streamer = _RunOrderedWriter(sink, analysis)
        stream_sink = streamer

    def _complete(results, streamed: bool) -> CampaignResult:
        if analysis is not None:
            executed = list(results)
            results = executed + _expand_pruned(analysis, executed, telemetry)
            streamed = streamed and streamer is not None
        return _finish(result, results, telemetry, sink, streamed)

    try:
        if parallel:
            if engine == "checkpoint":
                machine = Machine(program)
                regions = []
                cursor = None
                for site, region_plans in _checkpoint_schedule(
                    plans, checkpoint_interval
                ):
                    cursor = machine.run_to_site(site, function=function,
                                                 args=args, resume_from=cursor)
                    if stats is not None:
                        stats.note_snapshot(cursor)
                        stats.restores += len(region_plans)
                        stats.fast_forward_sites += sum(
                            plan.site_index - site for _, plan in region_plans
                        )
                    regions.append((cursor, region_plans))
                _PARALLEL_STATE.update(
                    program=program, golden=golden, function=function,
                    args=args, machine=machine, regions=regions,
                    telemetry=telemetry,
                )
                if trail is not None:
                    _PARALLEL_STATE.update(trail=trail)
                    per_region = _pooled(context, processes,
                                         _parallel_inject_region_converge,
                                         range(len(regions)), chunksize=1)
                    results = []
                    for pairs, worker_stats in per_region:
                        results.extend(pairs)
                        conv_stats.merge(worker_stats)
                else:
                    per_region = _pooled(context, processes,
                                         _parallel_inject_region,
                                         range(len(regions)), chunksize=1)
                    results = [pair for region in per_region
                               for pair in region]
            else:
                _PARALLEL_STATE.update(
                    program=program, golden=golden, function=function,
                    args=args, telemetry=telemetry,
                )
                if trail is not None:
                    _PARALLEL_STATE.update(trail=trail)
                    per_run = _pooled(context, processes,
                                      _parallel_inject_converge, plans,
                                      chunksize=8)
                    results = []
                    for pair, worker_stats in per_run:
                        results.append(pair)
                        conv_stats.merge(worker_stats)
                else:
                    results = _pooled(context, processes, _parallel_inject,
                                      plans, chunksize=8)
            return _complete(results, streamed=False)

        if engine == "checkpoint":
            results = _checkpointed_asm_results(
                program, plans, golden, function, args, checkpoint_interval,
                telemetry=telemetry, stats=stats, sink=stream_sink,
                trail=trail, conv_stats=conv_stats,
            )
            return _complete(results, streamed=True)

        machine = Machine(program)
        results = []
        for run_index, plan in plans:
            outcome = inject_asm_fault(program, plan, golden,
                                       function=function, args=args,
                                       machine=machine, telemetry=telemetry,
                                       run_index=run_index,
                                       converge=trail,
                                       converge_stats=conv_stats)
            if stream_sink is not None and telemetry:
                stream_sink.write(outcome)
            results.append((run_index, outcome))
        return _complete(results, streamed=True)
    finally:
        if sink is not None:
            sink.close()


def run_ir_campaign(
    module: IRModule,
    samples: int,
    seed: int = 0,
    function: str = "main",
    args: tuple[int, ...] = (),
    processes: int = 1,
    engine: str = "checkpoint",
    checkpoint_interval: int | None = None,
    telemetry: bool = False,
    jsonl_path=None,
    jsonl_mode: str = "w",
    prune: bool = False,
    converge: bool = False,
) -> CampaignResult:
    """Inject ``samples`` faults at IR level (LLFI-style).

    Supports the same ``engine``/``checkpoint_interval``/``processes``/
    ``telemetry``/``jsonl_path``/``jsonl_mode`` controls as
    :func:`run_campaign`, with identical guarantees: both engines and any
    process count yield bit-identical outcome counts for a given seed,
    telemetry on or off.

    ``prune`` and ``converge`` are accepted for signature parity but only
    ``False`` is supported: outcome-equivalence pruning is assembly-level
    analysis (see ``docs/fault_model.md``), and convergence early-exit
    compares machine-level state (register files, memory pages) that the
    IR interpreter does not expose — both raise :class:`InjectionError`
    instead of a bare ``TypeError``.
    """
    if engine not in ENGINES:
        raise InjectionError(f"unknown engine {engine!r}; known: {ENGINES}")
    if converge:
        raise InjectionError(
            "convergence early-exit is assembly-level only: the digest "
            "trail hashes machine state (register files, RFLAGS, memory "
            "pages) that IR values do not expose. Compile the module and "
            "run run_campaign(converge=True) on the assembly program "
            "instead."
        )
    if prune:
        raise InjectionError(
            "outcome-equivalence pruning is assembly-level only: the "
            "equivalence scanner classifies flips by propagating XOR deltas "
            "through the recorded machine trace (register, flag and memory "
            "bytes), state IR values do not expose. Compile the module and "
            "run run_campaign(prune=True) on the assembly program instead."
        )
    telemetry = telemetry or jsonl_path is not None
    golden = IRInterpreter(module).run(function=function, args=args)
    result = CampaignResult(
        samples=samples,
        fault_sites=golden.fault_sites,
        dynamic_instructions=golden.dynamic_instructions,
    )
    rng = DeterministicRng(seed)
    plans: list[IndexedPlan] = [
        (run_index, FaultPlan.sample(rng.fork(run_index), golden.fault_sites))
        for run_index in range(samples)
    ]
    stats = CheckpointStats() if telemetry and engine == "checkpoint" else None
    result.checkpoint_stats = stats
    sink = _open_sink(jsonl_path, jsonl_mode)

    try:
        context = _fork_context() if processes > 1 else None
        if processes > 1 and context is not None:
            if engine == "checkpoint":
                interp = IRInterpreter(module)
                regions = []
                cursor = None
                for site, region_plans in _checkpoint_schedule(
                    plans, checkpoint_interval
                ):
                    cursor = interp.run_to_site(site, function=function,
                                                args=args, resume_from=cursor)
                    if stats is not None:
                        stats.note_snapshot(cursor)
                        stats.restores += len(region_plans)
                        stats.fast_forward_sites += sum(
                            plan.site_index - site for _, plan in region_plans
                        )
                    regions.append((cursor, region_plans))
                _PARALLEL_STATE.update(
                    module=module, golden=golden, function=function,
                    args=args, interp=interp, regions=regions,
                    telemetry=telemetry,
                )
                per_region = _pooled(context, processes,
                                     _parallel_inject_ir_region,
                                     range(len(regions)), chunksize=1)
                results = [pair for region in per_region for pair in region]
            else:
                _PARALLEL_STATE.update(
                    module=module, golden=golden, function=function,
                    args=args, telemetry=telemetry,
                )
                results = _pooled(context, processes, _parallel_inject_ir,
                                  plans, chunksize=8)
            return _finish(result, results, telemetry, sink, streamed=False)

        if engine == "checkpoint":
            results = _checkpointed_ir_results(
                module, plans, golden, function, args, checkpoint_interval,
                telemetry=telemetry, stats=stats, sink=sink,
            )
            return _finish(result, results, telemetry, sink, streamed=True)

        interp = IRInterpreter(module)
        results = []
        for run_index, plan in plans:
            outcome = inject_ir_fault(module, plan, golden,
                                      function=function, args=args,
                                      interp=interp, telemetry=telemetry,
                                      run_index=run_index)
            if sink is not None and telemetry:
                sink.write(outcome)
            results.append((run_index, outcome))
        return _finish(result, results, telemetry, sink, streamed=True)
    finally:
        if sink is not None:
            sink.close()
