"""Fault-injection campaigns: many sampled faults, aggregated outcomes.

A campaign reproduces the paper's measurement protocol (Sec. IV-A2): N
independent runs, one uniformly sampled single-bit fault each, outcomes
aggregated into an :class:`OutcomeCounts` histogram. Sampling is fully
deterministic from a seed; each run forks its own RNG stream, so campaigns
are reproducible and embarrassingly parallel in structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.program import AsmProgram
from repro.faultinjection.injector import (
    FaultPlan,
    inject_asm_fault,
    inject_ir_fault,
)
from repro.faultinjection.outcome import Outcome, OutcomeCounts
from repro.ir.interp import IRInterpreter
from repro.ir.module import IRModule
from repro.machine.cpu import Machine
from repro.utils.rng import DeterministicRng


@dataclass
class CampaignResult:
    """Aggregated result of one injection campaign."""

    samples: int
    outcomes: OutcomeCounts = field(default_factory=OutcomeCounts)
    fault_sites: int = 0
    dynamic_instructions: int = 0

    @property
    def sdc_probability(self) -> float:
        return self.outcomes.sdc_probability

    def summary(self) -> str:
        parts = [
            f"{outcome.value}={self.outcomes[outcome]}" for outcome in Outcome
        ]
        return (
            f"{self.samples} faults over {self.fault_sites} sites: "
            + ", ".join(parts)
        )


#: State inherited by forked campaign workers (see ``run_campaign``).
_PARALLEL_STATE: dict = {}


def _parallel_inject(plan: FaultPlan) -> Outcome:
    state = _PARALLEL_STATE
    return inject_asm_fault(
        state["program"], plan, state["golden"],
        function=state["function"], args=state["args"],
    )


def run_campaign(
    program: AsmProgram,
    samples: int,
    seed: int = 0,
    function: str = "main",
    args: tuple[int, ...] = (),
    processes: int = 1,
) -> CampaignResult:
    """Inject ``samples`` single-bit faults at assembly level.

    One golden (fault-free) execution establishes the reference output and
    the dynamic fault-site population; each sample then flips one bit at a
    uniformly chosen site/register/bit and classifies the outcome.

    ``processes > 1`` fans the (independent) runs out over forked worker
    processes; results are identical to the sequential order because every
    run derives its own RNG stream from the seed.
    """
    golden = Machine(program).run(function=function, args=args)
    result = CampaignResult(
        samples=samples,
        fault_sites=golden.fault_sites,
        dynamic_instructions=golden.dynamic_instructions,
    )
    rng = DeterministicRng(seed)
    plans = [
        FaultPlan.sample(rng.fork(run_index), golden.fault_sites)
        for run_index in range(samples)
    ]
    if processes > 1:
        import multiprocessing

        _PARALLEL_STATE.update(
            program=program, golden=golden, function=function, args=args
        )
        context = multiprocessing.get_context("fork")
        with context.Pool(processes) as pool:
            outcomes = pool.map(_parallel_inject, plans, chunksize=8)
        _PARALLEL_STATE.clear()
        for outcome in outcomes:
            result.outcomes.record(outcome)
        return result
    machine = Machine(program)
    for plan in plans:
        outcome = inject_asm_fault(program, plan, golden,
                                   function=function, args=args,
                                   machine=machine)
        result.outcomes.record(outcome)
    return result


def run_ir_campaign(
    module: IRModule,
    samples: int,
    seed: int = 0,
    function: str = "main",
    args: tuple[int, ...] = (),
) -> CampaignResult:
    """Inject ``samples`` faults at IR level (LLFI-style)."""
    golden = IRInterpreter(module).run(function=function, args=args)
    result = CampaignResult(
        samples=samples,
        fault_sites=golden.fault_sites,
        dynamic_instructions=golden.dynamic_instructions,
    )
    rng = DeterministicRng(seed)
    for run_index in range(samples):
        plan = FaultPlan.sample(rng.fork(run_index), golden.fault_sites)
        outcome = inject_ir_fault(module, plan, golden,
                                  function=function, args=args)
        result.outcomes.record(outcome)
    return result
