"""Durable campaign service: journaled shards, supervision, idempotent resume.

This is the production-scale layer over
:mod:`repro.faultinjection.campaign` that ROADMAP item 3 calls for: a
campaign (workloads × techniques × fault plans) is *compiled* into
deterministic shard descriptors, executed by supervised worker processes,
and every state transition is journaled to disk so the service can be
``kill -9``-ed at any instant and resumed to a byte-identical result.

**Sharding.** Each (workload, technique) *unit* draws its full plan
population exactly as :func:`~repro.faultinjection.campaign.run_campaign`
does — ``FaultPlan.sample(rng.fork(i), fault_sites)`` per run index — so
plan contents are independent of shard boundaries. Plans are sorted by
fault site and chunked into contiguous *site-range* shards: a worker
executes one shard by marching a golden-prefix cursor only across its
range (:func:`campaign._checkpointed_asm_results`), which keeps per-shard
work proportional to its range plus one prefix replay.

**Durability contract.** The state directory holds:

* ``journal.jsonl`` — append-only, fsync'd, single-``write`` records of
  every transition (``campaign``/``leased``/``done``/``failed``/
  ``quarantined``/``finalized``). A torn trailing record (the kill -9
  signature) is repaired on open (:class:`repro.utils.journal.Journal`).
* ``segments/<shard>.jsonl`` — one run-index-sorted JSONL file per
  completed shard, written to a temp name, fsync'd, then atomically
  renamed: a segment either exists complete or not at all. Resume adopts
  valid orphan segments (worker finished, supervisor died before
  journaling ``done``) instead of re-executing them.
* ``results/<workload>-<technique>.jsonl`` + ``summary.json`` — the
  finalized outputs: a k-way, run-index-ordered merge of the unit's
  segments and the merged :class:`TelemetryAggregate` totals. Both are
  pure functions of the segment set, so re-finalizing after a crash (or
  resuming an already-complete campaign) rewrites identical bytes.

**Supervision.** Up to ``workers`` shards run concurrently in forked
worker processes (bounding in-flight leases *and* resident record buffers
— a worker holds at most one shard of records; the supervisor holds
none). A worker crash or nonzero exit requeues its shard with capped
exponential backoff; exceeding the per-shard wall-clock timeout gets the
worker SIGKILLed and the shard requeued; a shard that keeps failing is
*quarantined* — journaled, documented with a diagnostic artifact under
``quarantine/``, and excluded so the rest of the campaign still
completes (the service then reports incomplete instead of wedging).

**Idempotent resume.** Because plans, shard partitioning, execution and
merge order are all deterministic functions of the spec, and every
persisted artifact is either append-repairable or atomically renamed,
``resume`` after a kill at *any* point yields final counts, aggregates
and result files byte-identical to an uninterrupted run — with 1 worker
or many. See ``docs/fault_model.md`` ("Durable campaign service").
"""

from __future__ import annotations

import heapq
import json
import os
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

from repro.errors import ServiceError
from repro.faultinjection.campaign import (
    IndexedPlan,
    _checkpointed_asm_results,
    _fork_context,
)
from repro.faultinjection.injector import FaultPlan
from repro.faultinjection.outcome import Outcome
from repro.faultinjection.telemetry import (
    FaultRecord,
    JsonlSink,
    TelemetryAggregate,
    read_jsonl,
)
from repro.machine.converge import record_trail
from repro.machine.cpu import Machine, RunResult
from repro.pipeline import VARIANTS, build_variants
from repro.utils.journal import Journal, durable_replace
from repro.utils.locking import FileLock
from repro.utils.rng import DeterministicRng
from repro.workloads import get_workload

#: Bumped when the journal schema or state layout changes; mismatched
#: state directories refuse to resume rather than misinterpret records.
SERVICE_VERSION = 1


def backoff_delay(failures: int, base: float, cap: float) -> float:
    """Capped exponential backoff before retrying a failed shard.

    The first retry waits ``base`` seconds, each further failure doubles
    the wait, and ``cap`` bounds it so a flaky-but-recoverable shard is
    never benched for unbounded time.
    """
    if failures <= 0:
        return 0.0
    return min(cap, base * (2.0 ** (failures - 1)))


@dataclass(frozen=True)
class CampaignSpec:
    """Deterministic description of one service campaign.

    Everything the service persists or re-derives on resume is a pure
    function of this spec: unit order is ``workloads × techniques`` (both
    in given order), plans come from ``seed`` exactly as in
    :func:`~repro.faultinjection.campaign.run_campaign`, and shards are
    site-sorted chunks of ``shard_size`` plans.
    """

    workloads: tuple[str, ...]
    techniques: tuple[str, ...]
    samples: int
    seed: int
    scale: int = 1
    shard_size: int = 200
    checkpoint_interval: int | None = None
    #: Convergence early-exit (see :mod:`repro.machine.converge`): each
    #: unit records one golden digest trail at compile time; every shard
    #: worker inherits it through fork and stops masked runs at the first
    #: matching boundary. Result bytes are unchanged by contract, but the
    #: flag is still part of the spec identity — resuming with a spec
    #: that flips it is rejected like any other spec mismatch.
    converge: bool = False

    def validate(self) -> None:
        if not self.workloads:
            raise ServiceError("spec needs at least one workload")
        if not self.techniques:
            raise ServiceError("spec needs at least one technique")
        for name in self.workloads:
            get_workload(name)  # raises WorkloadError for unknown names
        for name in self.techniques:
            if name not in VARIANTS:
                raise ServiceError(
                    f"unknown technique {name!r}; known: {VARIANTS}"
                )
        if self.samples < 1:
            raise ServiceError(f"samples must be >= 1, got {self.samples}")
        if self.shard_size < 1:
            raise ServiceError(
                f"shard_size must be >= 1, got {self.shard_size}"
            )
        if self.scale < 1:
            raise ServiceError(f"scale must be >= 1, got {self.scale}")

    def to_json(self) -> dict:
        return {
            "workloads": list(self.workloads),
            "techniques": list(self.techniques),
            "samples": self.samples,
            "seed": self.seed,
            "scale": self.scale,
            "shard_size": self.shard_size,
            "checkpoint_interval": self.checkpoint_interval,
            "converge": self.converge,
        }

    @staticmethod
    def from_json(data: dict) -> "CampaignSpec":
        return CampaignSpec(
            workloads=tuple(data["workloads"]),
            techniques=tuple(data["techniques"]),
            samples=data["samples"],
            seed=data["seed"],
            scale=data["scale"],
            shard_size=data["shard_size"],
            checkpoint_interval=data["checkpoint_interval"],
            # Journals written before the convergence feature lack the
            # key; they meant converge=False.
            converge=data.get("converge", False),
        )


@dataclass(frozen=True)
class ShardDescriptor:
    """One unit of durable work: a contiguous site range of one unit.

    ``site_lo``/``site_hi`` are the first/last fault sites of the plans
    routed to the shard (informational — the plan list itself is
    re-derived from the spec). ``shard_id`` doubles as the journal key
    and the segment file stem.
    """

    unit_index: int
    shard_index: int
    site_lo: int
    site_hi: int
    plan_count: int

    @property
    def shard_id(self) -> str:
        return f"u{self.unit_index:02d}-s{self.shard_index:04d}"

    def to_json(self) -> dict:
        return {
            "unit_index": self.unit_index,
            "shard_index": self.shard_index,
            "site_lo": self.site_lo,
            "site_hi": self.site_hi,
            "plan_count": self.plan_count,
        }


@dataclass
class CompiledUnit:
    """One (workload, technique) unit, compiled and sharded."""

    index: int
    workload: str
    technique: str
    program: object          # AsmProgram (kept loose to avoid import cycles)
    golden: RunResult
    shards: list[tuple[ShardDescriptor, list[IndexedPlan]]]
    #: static-instruction uid -> program-local ordinal (see execute_shard)
    uid_map: dict[int, int]
    #: golden convergence trail (``spec.converge`` campaigns only); recorded
    #: once here, inherited by every forked shard worker
    trail: object | None = None

    @property
    def unit_id(self) -> str:
        return f"{self.workload}-{self.technique}"


def _partition_plans(
    unit_index: int, plans: list[IndexedPlan], shard_size: int
) -> list[tuple[ShardDescriptor, list[IndexedPlan]]]:
    """Site-sort the unit's plans and chunk them into site-range shards."""
    ordered = sorted(plans, key=lambda pair: (pair[1].site_index, pair[0]))
    shards = []
    for shard_index, start in enumerate(range(0, len(ordered), shard_size)):
        chunk = ordered[start:start + shard_size]
        shards.append((
            ShardDescriptor(
                unit_index=unit_index,
                shard_index=shard_index,
                site_lo=chunk[0][1].site_index,
                site_hi=chunk[-1][1].site_index,
                plan_count=len(chunk),
            ),
            chunk,
        ))
    return shards


def compile_campaign(spec: CampaignSpec) -> list[CompiledUnit]:
    """Compile a spec into executable units with deterministic shards.

    Builds each unit's protected program, runs its golden execution, draws
    the full plan population (identical to a flat ``run_campaign`` with
    the same seed — shard boundaries never influence plan contents) and
    partitions it into site-range shards.
    """
    spec.validate()
    units: list[CompiledUnit] = []
    for workload in spec.workloads:
        source = get_workload(workload).source(spec.scale)
        for technique in spec.techniques:
            names = ("raw",) if technique == "raw" else ("raw", technique)
            build = build_variants(source, names=names)
            program = build[technique].asm
            golden = Machine(program).run()
            rng = DeterministicRng(spec.seed)
            plans: list[IndexedPlan] = [
                (run_index,
                 FaultPlan.sample(rng.fork(run_index), golden.fault_sites))
                for run_index in range(spec.samples)
            ]
            index = len(units)
            uid_map = {instr.uid: ordinal for ordinal, instr
                       in enumerate(program.instructions())}
            trail = (record_trail(program, golden)
                     if spec.converge else None)
            units.append(CompiledUnit(
                index=index, workload=workload, technique=technique,
                program=program, golden=golden,
                shards=_partition_plans(index, plans, spec.shard_size),
                uid_map=uid_map, trail=trail,
            ))
    return units


def execute_shard(
    unit: CompiledUnit,
    plans: list[IndexedPlan],
    checkpoint_interval: int | None = None,
) -> list[tuple[int, FaultRecord]]:
    """Execute one shard's injections; records sorted by run index.

    Pure and deterministic: re-executing a shard (after a crash, on
    another host, years later) reproduces the identical record list.
    ``instruction_uid`` is rewritten from the process-global uid counter
    to the instruction's program-local ordinal — uids depend on how many
    instructions the hosting process happened to allocate earlier, and
    the service's byte-identity contract cannot tolerate that.

    When the unit carries a convergence trail (``spec.converge``), every
    injection runs under it — masked runs finish at their first matching
    boundary with bit-identical records, so segments, merges and the
    summary stay byte-stable with the flag on or off.
    """
    results = _checkpointed_asm_results(
        unit.program, plans, unit.golden, "main", (),
        checkpoint_interval, telemetry=True,
        trail=unit.trail,
    )
    results.sort(key=lambda pair: pair[0])
    return [
        (run, replace(record,
                      instruction_uid=unit.uid_map.get(record.instruction_uid)
                      if record.instruction_uid is not None else None))
        for run, record in results
    ]


@dataclass
class ServiceConfig:
    """Operational knobs of one service invocation (not part of the spec).

    None of these affect result bytes — they only shape *how* the work is
    executed: concurrency, timeouts, retry policy. ``workers=0`` executes
    shards in-process (no fork; timeouts unenforced), which is also the
    automatic fallback where ``fork`` is unavailable.

    ``fail_shards``/``hang_shards`` are test hooks mapping shard ids to
    the number of leading attempts that should crash (nonzero exit) or
    hang (until the timeout kills them); production code leaves them
    empty.
    """

    workers: int = 2
    shard_timeout: float = 300.0
    backoff_base: float = 0.25
    backoff_cap: float = 30.0
    max_failures: int = 3
    poll_interval: float = 0.02
    fsync: bool = True
    requeue_quarantined: bool = False
    log: Callable[[str], None] | None = None
    fail_shards: dict[str, int] = field(default_factory=dict)
    hang_shards: dict[str, int] = field(default_factory=dict)


@dataclass
class ServiceReport:
    """What one ``serve``/``resume`` invocation did and where results are."""

    complete: bool
    shards: int
    done_shards: int
    executed_shards: int      # shards executed by *this* invocation
    adopted_segments: int     # orphan segments validated and adopted
    quarantined: tuple[str, ...]
    peak_record_buffer: int   # most FaultRecords resident at once
    results: dict[str, str]   # unit_id -> results JSONL path
    aggregates: dict[str, TelemetryAggregate]
    summary_path: str


@dataclass
class _ShardState:
    """Supervisor-side mutable state of one shard."""

    descriptor: ShardDescriptor
    unit: CompiledUnit
    plans: list[IndexedPlan]
    failures: int = 0
    done: bool = False
    quarantined: bool = False
    ready_at: float = 0.0
    reasons: list[str] = field(default_factory=list)

    @property
    def shard_id(self) -> str:
        return self.descriptor.shard_id


def _write_segment(path: str, results, fsync: bool) -> None:
    """Persist one shard's records atomically: tmp + fsync + rename."""
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with JsonlSink(tmp) as sink:
            for _, record in results:
                sink.write(record)
            if fsync:
                sink.sync()
        durable_replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _worker_entry(
    service: "CampaignService",
    state: _ShardState,
    attempt: int,
    log_path: str,
) -> None:
    """Forked worker: execute one shard, persist its segment, exit.

    Runs in a child process. The inherited state-directory lock fd is
    closed (without unlocking — flock is shared across fork, and LOCK_UN
    would release the supervisor's lock too). All exits go through
    ``os._exit`` so inherited buffers are never double-flushed.
    """
    code = 1
    try:
        service._lock.close_inherited()
        config = service.config
        sid = state.shard_id
        if attempt <= config.hang_shards.get(sid, 0):
            time.sleep(3600.0)  # test hook: hold the lease until killed
        if attempt <= config.fail_shards.get(sid, 0):
            os._exit(21)  # test hook: simulated worker crash
        results = execute_shard(state.unit, state.plans,
                                service.spec.checkpoint_interval)
        _write_segment(service._segment_path(sid), results, config.fsync)
        code = 0
    except BaseException:
        try:
            with open(log_path, "a", encoding="utf-8") as handle:
                handle.write(traceback.format_exc())
        except OSError:
            pass
    finally:
        os._exit(code)


class CampaignService:
    """Supervisor owning one state directory's campaign lifecycle.

    Construct with a ``spec`` to initialize (or idempotently re-attach
    to) a campaign, or without one to resume whatever the journal
    records. :meth:`run` drives the campaign to completion — or as far as
    quarantine policy allows — and finalizes outputs.
    """

    def __init__(
        self,
        state_dir,
        spec: CampaignSpec | None = None,
        config: ServiceConfig | None = None,
    ) -> None:
        self.state_dir = os.fspath(state_dir)
        self.spec = spec
        self.config = config or ServiceConfig()
        self._lock = FileLock(os.path.join(self.state_dir, "lock"))
        self.peak_record_buffer = 0
        self._adopted = 0
        for sub in ("segments", "results", "logs", "quarantine"):
            os.makedirs(os.path.join(self.state_dir, sub), exist_ok=True)

    # -- paths ------------------------------------------------------------

    def _journal_path(self) -> str:
        return os.path.join(self.state_dir, "journal.jsonl")

    def _segment_path(self, shard_id: str) -> str:
        return os.path.join(self.state_dir, "segments", f"{shard_id}.jsonl")

    def _results_path(self, unit_id: str) -> str:
        return os.path.join(self.state_dir, "results", f"{unit_id}.jsonl")

    def _log_path(self, shard_id: str, attempt: int) -> str:
        return os.path.join(self.state_dir, "logs",
                            f"{shard_id}.attempt-{attempt}.log")

    def _quarantine_path(self, shard_id: str) -> str:
        return os.path.join(self.state_dir, "quarantine", f"{shard_id}.json")

    def summary_path(self) -> str:
        return os.path.join(self.state_dir, "summary.json")

    def _say(self, message: str) -> None:
        if self.config.log is not None:
            self.config.log(message)

    # -- lifecycle --------------------------------------------------------

    def run(self) -> ServiceReport:
        """Drive the campaign to completion (or quarantine) and finalize."""
        with self._lock:
            journal = Journal(self._journal_path(), fsync=self.config.fsync)
            try:
                spec = self._resolve_spec(journal)
                units = compile_campaign(spec)
                states = self._build_states(units)
                self._replay(journal, states)
                self._adopt_segments(journal, states)
                adopted = self._adopted
                executed = self._supervise(journal, states)
                return self._finalize(journal, spec, units, states,
                                      executed, adopted)
            finally:
                journal.close()

    def _resolve_spec(self, journal: Journal) -> CampaignSpec:
        stored = None
        for record in journal.recovered:
            if record.get("type") == "campaign":
                if record.get("version") != SERVICE_VERSION:
                    raise ServiceError(
                        f"{self.state_dir} was written by service version "
                        f"{record.get('version')}, this is {SERVICE_VERSION}"
                    )
                stored = CampaignSpec.from_json(record["spec"])
        if stored is None:
            if self.spec is None:
                raise ServiceError(
                    f"{self.state_dir} holds no campaign to resume; start "
                    f"one with `ferrum-eval serve`"
                )
            self.spec.validate()
            journal.append({"type": "campaign", "version": SERVICE_VERSION,
                            "spec": self.spec.to_json()})
            return self.spec
        if self.spec is not None and self.spec.to_json() != stored.to_json():
            raise ServiceError(
                f"{self.state_dir} already holds a different campaign "
                f"(stored {stored.to_json()}, requested "
                f"{self.spec.to_json()}); use a fresh state directory or "
                f"resume without a spec"
            )
        self.spec = stored
        return stored

    def _build_states(
        self, units: list[CompiledUnit]
    ) -> dict[str, _ShardState]:
        states: dict[str, _ShardState] = {}
        for unit in units:
            for descriptor, plans in unit.shards:
                states[descriptor.shard_id] = _ShardState(
                    descriptor=descriptor, unit=unit, plans=plans,
                )
        return states

    def _replay(
        self, journal: Journal, states: dict[str, _ShardState]
    ) -> None:
        """Fold journal history into shard states.

        ``failed`` records (worker crashes/timeouts) count toward
        quarantine; ``leased`` records do not — a supervisor killed
        mid-lease says nothing about the shard's health, and counting
        kills would quarantine innocent shards under chaos. Quarantine is
        re-derived from the failure count, so losing a torn
        ``quarantined`` record changes nothing.
        """
        for record in journal.recovered:
            kind = record.get("type")
            if kind not in ("done", "failed", "quarantined", "requeued"):
                continue
            state = states.get(record.get("shard", ""))
            if state is None:
                raise ServiceError(
                    f"journal references unknown shard "
                    f"{record.get('shard')!r}; the state directory does "
                    f"not match its spec"
                )
            if kind == "done":
                state.done = True
            elif kind == "failed":
                state.failures += 1
                state.reasons.append(record.get("reason", "unknown"))
            elif kind == "quarantined":
                # Sticky across resumes (even under a laxer max_failures)
                # until explicitly requeued.
                state.quarantined = True
            elif kind == "requeued":
                state.failures = 0
                state.quarantined = False
                state.reasons.clear()
        for state in states.values():
            if state.done:
                state.quarantined = False
                continue
            if (state.quarantined
                    or state.failures >= self.config.max_failures):
                if self.config.requeue_quarantined:
                    journal.append({"type": "requeued",
                                    "shard": state.shard_id})
                    state.failures = 0
                    state.quarantined = False
                    state.reasons.clear()
                    self._say(f"[{state.shard_id}] requeued from quarantine")
                else:
                    state.quarantined = True

    def _adopt_segments(
        self, journal: Journal, states: dict[str, _ShardState]
    ) -> None:
        """Adopt complete orphan segments left by killed supervisors.

        A worker that finished after its supervisor died leaves a valid
        segment with no ``done`` record. Segments are atomically renamed,
        so existence means completeness; the record count is still
        validated against the shard's plan count before adoption.
        """
        self._adopted = 0
        for shard_id in sorted(states):
            state = states[shard_id]
            if state.done:
                continue
            path = self._segment_path(shard_id)
            if not os.path.exists(path):
                continue
            if self._segment_valid(path, state):
                journal.append({"type": "done", "shard": shard_id,
                                "records": state.descriptor.plan_count,
                                "adopted": True})
                state.done = True
                state.quarantined = False
                self._adopted += 1
                self._say(f"[{shard_id}] adopted orphan segment")
            else:
                os.unlink(path)  # foreign or stale: re-execute

    def _segment_valid(self, path: str, state: _ShardState) -> bool:
        try:
            records = read_jsonl(path)
        except (OSError, ValueError):
            return False
        self._note_buffer(len(records))
        if len(records) != state.descriptor.plan_count:
            return False
        indices = [record.run_index for record in records]
        return indices == sorted(run for run, _ in state.plans)

    def _note_buffer(self, resident_records: int) -> None:
        self.peak_record_buffer = max(self.peak_record_buffer,
                                      resident_records)

    # -- supervision ------------------------------------------------------

    def _record_failure(
        self, journal: Journal, state: _ShardState, reason: str
    ) -> None:
        state.failures += 1
        state.reasons.append(reason)
        journal.append({"type": "failed", "shard": state.shard_id,
                        "failures": state.failures, "reason": reason})
        if state.failures >= self.config.max_failures:
            state.quarantined = True
            journal.append({"type": "quarantined", "shard": state.shard_id,
                            "failures": state.failures})
            self._write_quarantine_artifact(state)
            self._say(f"[{state.shard_id}] quarantined after "
                      f"{state.failures} failures: {reason}")
        else:
            delay = backoff_delay(state.failures, self.config.backoff_base,
                                  self.config.backoff_cap)
            state.ready_at = time.monotonic() + delay
            self._say(f"[{state.shard_id}] failed ({reason}); retry "
                      f"{state.failures + 1} in {delay:.2f}s")

    def _write_quarantine_artifact(self, state: _ShardState) -> None:
        artifact = {
            "shard": state.shard_id,
            "unit": state.unit.unit_id,
            "descriptor": state.descriptor.to_json(),
            "failures": state.failures,
            "reasons": state.reasons,
            "logs": [
                self._log_path(state.shard_id, attempt)
                for attempt in range(1, state.failures + 1)
                if os.path.exists(self._log_path(state.shard_id, attempt))
            ],
            "replay": (
                f"re-run after fixing: ferrum-eval resume --state-dir "
                f"{self.state_dir} --requeue-quarantined"
            ),
        }
        path = self._quarantine_path(state.shard_id)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    def _mark_done(
        self, journal: Journal, state: _ShardState
    ) -> None:
        journal.append({"type": "done", "shard": state.shard_id,
                        "records": state.descriptor.plan_count})
        state.done = True
        self._say(f"[{state.shard_id}] done "
                  f"({state.descriptor.plan_count} records)")

    def _supervise(
        self, journal: Journal, states: dict[str, _ShardState]
    ) -> int:
        """Execute every non-done, non-quarantined shard. Returns count."""
        pending = [states[sid] for sid in sorted(states)
                   if not states[sid].done and not states[sid].quarantined]
        if not pending:
            return 0
        for state in pending:
            self._note_buffer(state.descriptor.plan_count)
        context = _fork_context() if self.config.workers >= 1 else None
        if context is None:
            return self._supervise_inprocess(journal, pending)
        return self._supervise_workers(journal, pending, context)

    def _supervise_inprocess(self, journal: Journal, pending) -> int:
        """Sequential fallback: same journal/segment flow, no processes.

        Wall-clock timeouts are unenforced here (there is no worker to
        kill); the ``fail_shards`` hook still exercises the failure path.
        """
        executed = 0
        for state in pending:
            while not state.done and not state.quarantined:
                delay = state.ready_at - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                attempt = state.failures + 1
                journal.append({"type": "leased", "shard": state.shard_id,
                                "attempt": attempt, "pid": os.getpid()})
                try:
                    if attempt <= self.config.fail_shards.get(
                            state.shard_id, 0):
                        raise ServiceError("injected test failure")
                    results = execute_shard(state.unit, state.plans,
                                            self.spec.checkpoint_interval)
                    _write_segment(self._segment_path(state.shard_id),
                                   results, self.config.fsync)
                except Exception as exc:
                    self._record_failure(
                        journal, state, f"{type(exc).__name__}: {exc}")
                else:
                    executed += 1
                    self._mark_done(journal, state)
        return executed

    def _supervise_workers(self, journal: Journal, pending, context) -> int:
        """Fork-based supervisor: bounded leases, timeouts, requeue."""
        executed = 0
        waiting = list(pending)  # sorted by shard id already
        running: dict[str, tuple] = {}

        def next_ready(now: float):
            for state in waiting:
                if state.ready_at <= now:
                    return state
            return None

        while waiting or running:
            now = time.monotonic()
            progressed = False
            while len(running) < max(1, self.config.workers):
                state = next_ready(now)
                if state is None:
                    break
                waiting.remove(state)
                attempt = state.failures + 1
                log_path = self._log_path(state.shard_id, attempt)
                process = context.Process(
                    target=_worker_entry,
                    args=(self, state, attempt, log_path),
                    daemon=True,
                )
                process.start()
                journal.append({"type": "leased", "shard": state.shard_id,
                                "attempt": attempt, "pid": process.pid})
                deadline = now + self.config.shard_timeout
                running[state.shard_id] = (process, deadline, state)
                self._say(f"[{state.shard_id}] leased attempt {attempt} "
                          f"(pid {process.pid})")
                progressed = True
            for shard_id in list(running):
                process, deadline, state = running[shard_id]
                if process.exitcode is not None:
                    process.join()
                    del running[shard_id]
                    progressed = True
                    segment = self._segment_path(shard_id)
                    if (process.exitcode == 0
                            and os.path.exists(segment)
                            and self._segment_valid(segment, state)):
                        executed += 1
                        self._mark_done(journal, state)
                    else:
                        reason = (f"exit {process.exitcode}"
                                  if process.exitcode != 0
                                  else "segment missing or invalid")
                        self._record_failure(journal, state, reason)
                        if not state.done and not state.quarantined:
                            waiting.append(state)
                            waiting.sort(key=lambda s: s.shard_id)
                elif time.monotonic() >= deadline:
                    process.kill()
                    process.join()
                    del running[shard_id]
                    progressed = True
                    self._record_failure(
                        journal, state,
                        f"timeout after {self.config.shard_timeout}s")
                    if not state.done and not state.quarantined:
                        waiting.append(state)
                        waiting.sort(key=lambda s: s.shard_id)
            if not progressed:
                time.sleep(self.config.poll_interval)
        return executed

    # -- finalize ---------------------------------------------------------

    def _merge_unit(
        self, unit: CompiledUnit, aggregate: TelemetryAggregate
    ) -> str:
        """K-way merge the unit's segments into run-index-ordered JSONL.

        Each segment is internally run-index-sorted, so a heap merge over
        the open segment streams yields the global run-index order while
        holding one line per segment in memory. Lines are copied verbatim
        (they were serialized deterministically at execution time), so the
        output file is a pure, byte-stable function of the segment set.
        """
        paths = [self._segment_path(descriptor.shard_id)
                 for descriptor, _ in unit.shards]

        def stream(path: str) -> Iterator[tuple[int, str]]:
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    if line.strip():
                        yield json.loads(line)["run_index"], line

        out_path = self._results_path(unit.unit_id)
        tmp = f"{out_path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as out:
                for run_index, line in heapq.merge(
                    *[stream(path) for path in paths]
                ):
                    out.write(line)
                    aggregate.add(FaultRecord.from_json(json.loads(line)))
                out.flush()
                if self.config.fsync:
                    os.fsync(out.fileno())
            durable_replace(tmp, out_path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return out_path

    def _finalize(
        self,
        journal: Journal,
        spec: CampaignSpec,
        units: list[CompiledUnit],
        states: dict[str, _ShardState],
        executed: int,
        adopted: int,
    ) -> ServiceReport:
        quarantined = tuple(sid for sid in sorted(states)
                            if states[sid].quarantined)
        complete = not quarantined
        results: dict[str, str] = {}
        aggregates: dict[str, TelemetryAggregate] = {}
        unit_summaries: dict[str, dict] = {}
        for unit in units:
            if any(not states[descriptor.shard_id].done
                   for descriptor, _ in unit.shards):
                continue  # a quarantined shard leaves the unit unmerged
            aggregate = TelemetryAggregate()
            results[unit.unit_id] = self._merge_unit(unit, aggregate)
            aggregates[unit.unit_id] = aggregate
            sdc = aggregate.counts[Outcome.SDC]
            unit_summaries[unit.unit_id] = {
                "workload": unit.workload,
                "technique": unit.technique,
                "fault_sites": unit.golden.fault_sites,
                "dynamic_instructions": unit.golden.dynamic_instructions,
                "shards": len(unit.shards),
                "records": aggregate.records,
                "sdc_probability": (sdc / aggregate.records
                                    if aggregate.records else 0.0),
                "aggregate": aggregate.to_json(),
                "latency_histogram": [list(row)
                                      for row in aggregate.latency_rows()],
            }
        summary = {
            "version": SERVICE_VERSION,
            "spec": spec.to_json(),
            "complete": complete,
            "shards": len(states),
            "done_shards": sum(1 for s in states.values() if s.done),
            "quarantined": list(quarantined),
            "units": unit_summaries,
        }
        path = self.summary_path()
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(summary, handle, indent=2, sort_keys=True)
                handle.write("\n")
                handle.flush()
                if self.config.fsync:
                    os.fsync(handle.fileno())
            durable_replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        journal.append({"type": "finalized", "complete": complete})
        self._say(
            f"campaign {'complete' if complete else 'INCOMPLETE'}: "
            f"{summary['done_shards']}/{len(states)} shards done, "
            f"{len(quarantined)} quarantined; summary at {path}"
        )
        return ServiceReport(
            complete=complete,
            shards=len(states),
            done_shards=summary["done_shards"],
            executed_shards=executed,
            adopted_segments=adopted,
            quarantined=quarantined,
            peak_record_buffer=self.peak_record_buffer,
            results=results,
            aggregates=aggregates,
            summary_path=path,
        )


def serve_campaign(
    state_dir,
    spec: CampaignSpec,
    config: ServiceConfig | None = None,
) -> ServiceReport:
    """Initialize (or idempotently re-attach to) a campaign and run it.

    Starting over an existing state directory is allowed only when the
    stored spec matches exactly; otherwise a :class:`ServiceError` points
    at the conflict instead of silently mixing campaigns.
    """
    return CampaignService(state_dir, spec=spec, config=config).run()


def resume_campaign(
    state_dir,
    config: ServiceConfig | None = None,
) -> ServiceReport:
    """Resume the campaign recorded in ``state_dir``'s journal.

    Safe after a kill at any instant: the journal's torn tail is
    repaired, orphan segments are adopted, completed shards are skipped,
    and the remainder executes to the same bytes an uninterrupted run
    produces. Resuming an already-complete campaign just re-finalizes
    (idempotently) and reports.
    """
    return CampaignService(state_dir, spec=None, config=config).run()
