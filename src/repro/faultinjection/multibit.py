"""Multi-bit fault injection — the paper's stated future work (Sec. II-A).

The paper: "There are recent studies showing that multiple bit-flips are
limited in current systems but may become a concern in the future [...]
Exploring multiple bit-flips are our future work." This module implements
that exploration on the same substrate:

* **spatial** double faults — two bits flip in the destination register of
  the *same* dynamic instruction (one particle strike corrupting a wider
  datapath slice);
* **temporal** double faults — two independent single-bit faults at two
  different dynamic instructions within one run (two strikes).

Duplication-based protection is provably complete only for the single-
fault model; under double faults a strike pair that corrupts the original
and its duplicate identically escapes every EDDI checker. Campaigns here
quantify how rare that is in practice for FERRUM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import AsmProgram
from repro.errors import (
    DetectionExit,
    ExecutionLimitExceeded,
    InjectionError,
    MachineError,
    MachineFault,
)
from repro.faultinjection.campaign import CampaignResult
from repro.faultinjection.injector import FaultPlan, _apply_flip
from repro.faultinjection.outcome import Outcome
from repro.machine.cpu import Machine, RunResult
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class MultiBitPlan:
    """Two single-bit events; ``spatial`` pins both to one instruction."""

    first: FaultPlan
    second: FaultPlan

    @property
    def spatial(self) -> bool:
        return self.first.site_index == self.second.site_index

    @staticmethod
    def sample_spatial(rng: DeterministicRng, fault_sites: int) -> "MultiBitPlan":
        """Two distinct bits in the destination of one dynamic instruction."""
        if fault_sites <= 0:
            raise InjectionError("program has no fault sites")
        site = rng.randint(0, fault_sites - 1)
        first_bit = rng.random()
        second_bit = rng.random()
        register = rng.random()
        return MultiBitPlan(
            FaultPlan(site, register, first_bit),
            FaultPlan(site, register, second_bit),
        )

    @staticmethod
    def sample_temporal(rng: DeterministicRng, fault_sites: int) -> "MultiBitPlan":
        """Two independent strikes at two dynamic instructions."""
        if fault_sites <= 0:
            raise InjectionError("program has no fault sites")
        return MultiBitPlan(
            FaultPlan.sample(rng, fault_sites),
            FaultPlan.sample(rng, fault_sites),
        )


def inject_multibit_fault(
    program: AsmProgram,
    plan: MultiBitPlan,
    golden: RunResult,
    function: str = "main",
    args: tuple[int, ...] = (),
    timeout_factor: int = 6,
    machine: Machine | None = None,
) -> Outcome:
    """Run once with both of ``plan``'s faults; classify the outcome."""
    if machine is None:
        machine = Machine(program)

    def hook(m: Machine, instr, site: int) -> None:
        if site == plan.first.site_index:
            _apply_flip(m, instr, plan.first)
        if site == plan.second.site_index:
            _apply_flip(m, instr, plan.second)

    budget = max(golden.dynamic_instructions * timeout_factor, 10_000)
    try:
        result = machine.run(function=function, args=args, fault_hook=hook,
                             max_instructions=budget)
    except DetectionExit:
        return Outcome.DETECTED
    except ExecutionLimitExceeded:
        return Outcome.TIMEOUT
    except (MachineFault, MachineError):
        return Outcome.CRASH
    if result.output == golden.output and result.exit_code == golden.exit_code:
        return Outcome.BENIGN
    return Outcome.SDC


def run_multibit_campaign(
    program: AsmProgram,
    samples: int,
    seed: int = 0,
    mode: str = "spatial",
    function: str = "main",
    args: tuple[int, ...] = (),
) -> CampaignResult:
    """A seeded campaign of double faults (``mode``: spatial | temporal)."""
    if mode not in ("spatial", "temporal"):
        raise InjectionError(f"unknown multi-bit mode {mode!r}")
    golden = Machine(program).run(function=function, args=args)
    result = CampaignResult(
        samples=samples,
        fault_sites=golden.fault_sites,
        dynamic_instructions=golden.dynamic_instructions,
    )
    rng = DeterministicRng(seed)
    machine = Machine(program)
    sampler = (MultiBitPlan.sample_spatial if mode == "spatial"
               else MultiBitPlan.sample_temporal)
    for run_index in range(samples):
        plan = sampler(rng.fork(run_index), golden.fault_sites)
        outcome = inject_multibit_fault(program, plan, golden,
                                        function=function, args=args,
                                        machine=machine)
        result.outcomes.record(outcome)
    return result
