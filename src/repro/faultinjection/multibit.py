"""Multi-bit fault injection — the paper's stated future work (Sec. II-A).

The paper: "There are recent studies showing that multiple bit-flips are
limited in current systems but may become a concern in the future [...]
Exploring multiple bit-flips are our future work." This module implements
that exploration on the same substrate:

* **spatial** double faults — two bits flip in the destination register of
  the *same* dynamic instruction (one particle strike corrupting a wider
  datapath slice);
* **temporal** double faults — two independent single-bit faults at two
  different dynamic instructions within one run (two strikes).

Duplication-based protection is provably complete only for the single-
fault model; under double faults a strike pair that corrupts the original
and its duplicate identically escapes every EDDI checker. Campaigns here
quantify how rare that is in practice for FERRUM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import AsmProgram
from repro.errors import (
    DetectionExit,
    ExecutionLimitExceeded,
    InjectionError,
    MachineError,
    MachineFault,
)
from repro.asm.registers import Register, RegisterKind
from repro.faultinjection.campaign import CampaignResult
from repro.faultinjection.injector import FaultPlan, _apply_flip, _resolve_flip
from repro.faultinjection.outcome import Outcome
from repro.machine.cpu import Machine, RunResult
from repro.machine.flags import INJECTABLE_FLAG_BITS
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class MultiBitPlan:
    """Two single-bit events; ``spatial`` pins both to one instruction."""

    first: FaultPlan
    second: FaultPlan

    @property
    def spatial(self) -> bool:
        return self.first.site_index == self.second.site_index

    @staticmethod
    def sample_spatial(rng: DeterministicRng, fault_sites: int) -> "MultiBitPlan":
        """Two distinct bits in the destination of one dynamic instruction.

        The two bit picks are independent uniform floats that only resolve
        to concrete bit indices at the site (where the destination width is
        known), so distinctness cannot be guaranteed here; the injector
        enforces it at apply time (see :func:`_distinct_bit`). Without that
        enforcement ~1/width of "double" faults would collapse into two
        flips of the same bit — a no-op run misreported as BENIGN.
        """
        if fault_sites <= 0:
            raise InjectionError("program has no fault sites")
        site = rng.randint(0, fault_sites - 1)
        first_bit = rng.random()
        second_bit = rng.random()
        register = rng.random()
        return MultiBitPlan(
            FaultPlan(site, register, first_bit),
            FaultPlan(site, register, second_bit),
        )

    @staticmethod
    def sample_temporal(rng: DeterministicRng, fault_sites: int) -> "MultiBitPlan":
        """Two independent strikes at two dynamic instructions."""
        if fault_sites <= 0:
            raise InjectionError("program has no fault sites")
        return MultiBitPlan(
            FaultPlan.sample(rng, fault_sites),
            FaultPlan.sample(rng, fault_sites),
        )


def _distinct_bit(register: Register, bit: int) -> int:
    """The next injectable bit after ``bit`` in ``register`` (wrapping).

    Used when a spatial plan's two uniform picks resolve to the same bit:
    flipping one bit twice is a no-op, not a double fault, so the second
    strike moves to the adjacent bit — deterministic, so plans stay
    reproducible.
    """
    if register.kind is RegisterKind.FLAGS:
        bits = INJECTABLE_FLAG_BITS
        return bits[(bits.index(bit) + 1) % len(bits)]
    return (bit + 1) % register.width


def inject_multibit_fault(
    program: AsmProgram,
    plan: MultiBitPlan,
    golden: RunResult,
    function: str = "main",
    args: tuple[int, ...] = (),
    timeout_factor: int = 6,
    machine: Machine | None = None,
) -> Outcome:
    """Run once with both of ``plan``'s faults; classify the outcome.

    Spatial plans always flip two *distinct* bits (see :func:`_distinct_bit`).
    A normally completed run whose earliest fault site never executed means
    the plan was sampled outside the program's dynamic site population —
    that raises :class:`InjectionError` instead of silently classifying
    (mirroring :func:`inject_asm_fault`). The *later* site of a temporal
    plan is exempt: the first flip may legitimately divert control flow so
    the second strike's moment never arrives.
    """
    if machine is None:
        machine = Machine(program)
    fired = [False, False]
    first_hit: list = []

    def hook(m: Machine, instr, site: int) -> None:
        if site == plan.first.site_index:
            register, bit = _apply_flip(m, instr, plan.first)
            first_hit[:] = [register, bit]
            fired[0] = True
        if site == plan.second.site_index:
            register, bit = _resolve_flip(instr, plan.second)
            if (site == plan.first.site_index and fired[0]
                    and [register, bit] == first_hit):
                bit = _distinct_bit(register, bit)
            m.registers.flip(register, bit)
            fired[1] = True

    budget = max(golden.dynamic_instructions * timeout_factor, 10_000)
    try:
        result = machine.run(function=function, args=args, fault_hook=hook,
                             max_instructions=budget)
    except DetectionExit:
        return Outcome.DETECTED
    except ExecutionLimitExceeded:
        return Outcome.TIMEOUT
    except (MachineFault, MachineError):
        return Outcome.CRASH
    earliest_fired = (fired[0]
                      if plan.first.site_index <= plan.second.site_index
                      else fired[1])
    if not earliest_fired:
        raise InjectionError(
            f"fault site {min(plan.first.site_index, plan.second.site_index)} "
            f"never executed (golden counted {golden.fault_sites})"
        )
    if result.output == golden.output and result.exit_code == golden.exit_code:
        return Outcome.BENIGN
    return Outcome.SDC


def run_multibit_campaign(
    program: AsmProgram,
    samples: int,
    seed: int = 0,
    mode: str = "spatial",
    function: str = "main",
    args: tuple[int, ...] = (),
) -> CampaignResult:
    """A seeded campaign of double faults (``mode``: spatial | temporal)."""
    if mode not in ("spatial", "temporal"):
        raise InjectionError(f"unknown multi-bit mode {mode!r}")
    golden = Machine(program).run(function=function, args=args)
    result = CampaignResult(
        samples=samples,
        fault_sites=golden.fault_sites,
        dynamic_instructions=golden.dynamic_instructions,
    )
    rng = DeterministicRng(seed)
    machine = Machine(program)
    sampler = (MultiBitPlan.sample_spatial if mode == "spatial"
               else MultiBitPlan.sample_temporal)
    for run_index in range(samples):
        plan = sampler(rng.fork(run_index), golden.fault_sites)
        outcome = inject_multibit_fault(program, plan, golden,
                                        function=function, args=args,
                                        machine=machine)
        result.outcomes.record(outcome)
    return result
