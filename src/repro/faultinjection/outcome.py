"""Fault-outcome taxonomy and bookkeeping."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Outcome(enum.Enum):
    """Classification of one fault-injection run (standard taxonomy)."""

    BENIGN = "benign"        # output identical to the golden run (masked)
    SDC = "sdc"              # run completed but output differs
    DETECTED = "detected"    # a protection checker fired
    CRASH = "crash"          # architectural fault (segfault, div-by-zero...)
    TIMEOUT = "timeout"      # dynamic-instruction budget exhausted (hang)


@dataclass
class OutcomeCounts:
    """Histogram of outcomes over a campaign."""

    counts: dict[Outcome, int] = field(
        default_factory=lambda: {outcome: 0 for outcome in Outcome}
    )

    def record(self, outcome: Outcome) -> None:
        self.counts[outcome] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def rate(self, outcome: Outcome) -> float:
        """Fraction of runs with ``outcome`` (0.0 on an empty campaign)."""
        total = self.total
        return self.counts[outcome] / total if total else 0.0

    @property
    def sdc_probability(self) -> float:
        """P(SDC) over all injected faults — the paper's SDC metric."""
        return self.rate(Outcome.SDC)

    def __getitem__(self, outcome: Outcome) -> int:
        return self.counts[outcome]


def sdc_coverage(sdc_raw: float, sdc_protected: float) -> float:
    """The paper's SDC-coverage metric: (SDCraw - SDCprot) / SDCraw.

    Returns 1.0 when the unprotected program shows no SDCs at all (nothing
    to cover — vacuously full coverage).
    """
    if sdc_raw <= 0:
        return 1.0
    return (sdc_raw - sdc_protected) / sdc_raw
