"""Assembly-level (and IR-level) transient-fault injection.

Implements the paper's fault model (Sec. II-A, IV-A2): a single bit-flip in
the destination register of one uniformly sampled dynamically executed
instruction per run; ``cmp``/``test`` treat RFLAGS as the destination.
Outcomes are classified as benign / SDC / detected / crash / timeout by
comparing against a golden run.
"""

from repro.faultinjection.outcome import Outcome, OutcomeCounts
from repro.faultinjection.dme import DmeMachine, DmeTrace, lockstep_reference
from repro.faultinjection.injector import (
    FaultPlan,
    inject_asm_fault,
    inject_ir_fault,
    profile_fault_sites,
)
from repro.faultinjection.campaign import CampaignResult, run_campaign, run_ir_campaign
from repro.faultinjection.compose import (
    ComposeStats,
    Section,
    SectionCache,
    compose_campaign,
    trace_sections,
)
from repro.faultinjection.multibit import (
    MultiBitPlan,
    inject_multibit_fault,
    run_multibit_campaign,
)
from repro.faultinjection.telemetry import (
    CheckpointStats,
    FaultRecord,
    JsonlSink,
    TelemetryAggregate,
    detection_latencies,
    latency_histogram,
    outcomes_by_instruction,
    outcomes_by_origin,
    read_jsonl,
)
from repro.faultinjection.service import (
    CampaignService,
    CampaignSpec,
    ServiceConfig,
    ServiceReport,
    ShardDescriptor,
    compile_campaign,
    resume_campaign,
    serve_campaign,
)

__all__ = [
    "CampaignResult",
    "CampaignService",
    "CampaignSpec",
    "CheckpointStats",
    "ComposeStats",
    "DmeMachine",
    "DmeTrace",
    "FaultPlan",
    "FaultRecord",
    "JsonlSink",
    "MultiBitPlan",
    "Outcome",
    "OutcomeCounts",
    "Section",
    "SectionCache",
    "ServiceConfig",
    "ServiceReport",
    "ShardDescriptor",
    "TelemetryAggregate",
    "compile_campaign",
    "compose_campaign",
    "detection_latencies",
    "inject_asm_fault",
    "inject_ir_fault",
    "inject_multibit_fault",
    "latency_histogram",
    "lockstep_reference",
    "outcomes_by_instruction",
    "outcomes_by_origin",
    "profile_fault_sites",
    "read_jsonl",
    "resume_campaign",
    "run_campaign",
    "run_multibit_campaign",
    "run_ir_campaign",
    "serve_campaign",
    "trace_sections",
]
