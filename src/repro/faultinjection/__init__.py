"""Assembly-level (and IR-level) transient-fault injection.

Implements the paper's fault model (Sec. II-A, IV-A2): a single bit-flip in
the destination register of one uniformly sampled dynamically executed
instruction per run; ``cmp``/``test`` treat RFLAGS as the destination.
Outcomes are classified as benign / SDC / detected / crash / timeout by
comparing against a golden run.
"""

from repro.faultinjection.outcome import Outcome, OutcomeCounts
from repro.faultinjection.injector import (
    FaultPlan,
    inject_asm_fault,
    inject_ir_fault,
    profile_fault_sites,
)
from repro.faultinjection.campaign import CampaignResult, run_campaign, run_ir_campaign
from repro.faultinjection.multibit import (
    MultiBitPlan,
    inject_multibit_fault,
    run_multibit_campaign,
)

__all__ = [
    "CampaignResult",
    "FaultPlan",
    "MultiBitPlan",
    "Outcome",
    "OutcomeCounts",
    "inject_asm_fault",
    "inject_ir_fault",
    "inject_multibit_fault",
    "profile_fault_sites",
    "run_campaign",
    "run_multibit_campaign",
    "run_ir_campaign",
]
