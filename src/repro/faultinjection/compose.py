"""Compositional, incremental fault-injection campaigns (FastFlip-style).

A flat :func:`repro.faultinjection.campaign.run_campaign` re-injects into
the whole dynamic trace from scratch on every run. This module partitions
the trace into *sections* — maximal contiguous runs of dynamic fault sites
whose instructions belong to one region (a function body, or an innermost
loop nest inside it; see :func:`repro.asm.analysis.loop_regions`) — runs a
per-section injection sub-campaign off a shared prefix snapshot
(:meth:`Machine.run_to_site` cursors chained section to section), and
composes the per-section outcome counts back into whole-program rates.

**Exactness.** The composition is not an approximation: the campaign draws
the *same* global plans a flat campaign with the same seed would draw and
merely routes each plan to the section that owns its site, so composed
counts, per-origin maps and telemetry records are bit-identical to the
flat campaign, with any execution engine and with ``prune=True``.

**Incrementality.** Section results are cached on disk, content-addressed
by a hash of (section code bytes including transitively called functions,
protection-variant metadata, entry machine-state fingerprint, golden-run
digest, and the exact fault plans routed to the section). Editing or
re-protecting one function re-executes only the sections whose key
changed; everything upstream and downstream of the edit is served from the
cache. The key is exact for edits that preserve the dynamic prefix and the
per-section plan routing (e.g. swapping independent instructions,
re-running after a cache wipe); edits that change the dynamic site
population change the global plan draw and therefore miss everywhere —
the cache never returns stale results, it only loses hits. See
``docs/fault_model.md`` ("Compositional campaigns") for the full
contract.
"""

from __future__ import annotations

import hashlib
import json
import os
from bisect import bisect_right
from dataclasses import dataclass

from repro.asm.analysis import (
    instruction_regions,
    loop_regions,
    region_function,
)
from repro.asm.instructions import InstrKind
from repro.asm.printer import format_instruction
from repro.asm.program import AsmProgram
from repro.errors import InjectionError
from repro.faultinjection.campaign import (
    ENGINES,
    CampaignResult,
    IndexedPlan,
    _checkpoint_schedule,
    _checkpointed_asm_results,
    _expand_pruned,
    _finish,
    _fork_context,
    _open_sink,
    _PARALLEL_STATE,
    _parallel_inject,
    _parallel_inject_converge,
    _parallel_inject_region,
    _parallel_inject_region_converge,
    _pooled,
)
from repro.faultinjection.equivalence import analyze_plans
from repro.faultinjection.injector import FaultPlan, inject_asm_fault
from repro.faultinjection.outcome import Outcome
from repro.faultinjection.telemetry import (
    CheckpointStats,
    ConvergenceStats,
    FaultRecord,
)
from repro.machine.converge import ConvergenceTrail, record_trail
from repro.machine.cpu import Machine, MachineSnapshot
from repro.utils.rng import DeterministicRng

#: Bumped whenever the on-disk entry layout or key derivation changes;
#: entries from other versions are treated as misses, never as errors.
CACHE_VERSION = 1


@dataclass(frozen=True)
class Section:
    """One contiguous slice of the dynamic fault-site population.

    ``[start_site, end_site)`` are dynamic site ordinals of the golden
    trace; every site in the slice belongs to ``region`` (and therefore to
    ``function``). Sections partition the population exactly: helper calls
    interleave their sites with their caller's, so one source-level region
    typically appears as many sections.
    """

    index: int
    region: str
    function: str
    start_site: int
    end_site: int

    @property
    def sites(self) -> int:
        return self.end_site - self.start_site


@dataclass
class ComposeStats:
    """Cache and partition economics of one composed campaign."""

    sections: int = 0             #: sections in the dynamic partition
    populated_sections: int = 0   #: sections that received >= 1 plan
    cache_hits: int = 0           #: populated sections served from cache
    cache_misses: int = 0         #: populated sections that executed
    executed_injections: int = 0  #: injections actually run this campaign
    cached_injections: int = 0    #: injections served from cached sections
    refreshed_sections: int = 0   #: sections re-executed due to ``refresh``

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def summary(self) -> str:
        return (
            f"{self.populated_sections}/{self.sections} sections populated, "
            f"{self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.hit_rate:.0%}), {self.executed_injections} executed / "
            f"{self.cached_injections} cached injections"
        )


class SectionCache:
    """Content-addressed on-disk store of per-section campaign results.

    One JSON file per entry, named by the section key hash. Writes are
    atomic (tmp + rename) so concurrent campaigns at worst redo work;
    unreadable or version-mismatched entries are treated as misses.
    """

    def __init__(self, root) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def load(self, key: str) -> dict | None:
        try:
            with open(self._path(key), encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("version") != CACHE_VERSION:
            return None
        return entry

    def store(self, key: str, entry: dict) -> None:
        tmp = self._path(key) + f".tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, sort_keys=True)
        os.replace(tmp, self._path(key))

    def keys(self) -> set[str]:
        return {
            name[: -len(".json")]
            for name in os.listdir(self.root)
            if name.endswith(".json")
        }


# -- program indexing ------------------------------------------------------


class _ProgramIndex:
    """Static section metadata of one program: regions, code digests."""

    def __init__(self, program: AsmProgram) -> None:
        self.program = program
        # Runtime detectors (DME) change a section's outcome semantics
        # without changing its primary code, so the detector tag is part
        # of every section's content identity.
        self.detector = getattr(program, "detector", "none")
        self.regions_by_uid = instruction_regions(program)
        self._region_blocks: dict[str, list] = {}
        self._func_calls: dict[str, set[str]] = {}
        self._func_text: dict[str, str] = {}
        self._digests: dict[str, str] = {}
        for func in program.functions:
            by_label = loop_regions(func)
            calls: set[str] = set()
            lines: list[str] = []
            for blk in func.blocks:
                self._region_blocks.setdefault(by_label[blk.label], []).append(
                    (func.name, blk)
                )
                lines.append(f"{blk.label}:")
                for instr in blk.instructions:
                    lines.append(f"{format_instruction(instr)}|{instr.origin}")
                    if (instr.kind is InstrKind.CALL
                            and instr.target_label is not None
                            and program.has_function(instr.target_label)):
                        calls.add(instr.target_label)
            self._func_calls[func.name] = calls
            self._func_text[func.name] = "\n".join(lines)

    def _call_closure(self, roots: set[str]) -> list[str]:
        closure: set[str] = set()
        work = list(roots)
        while work:
            name = work.pop()
            if name in closure:
                continue
            closure.add(name)
            work.extend(self._func_calls.get(name, ()))
        return sorted(closure)

    def region_digest(self, region: str) -> str:
        """Content hash of a region's code plus everything it can call.

        Covers the region's own blocks (instruction text + provenance tag,
        in layout order) and the full text of every function transitively
        callable from them — a fault injected in the region can execute any
        of that code before the run ends, so all of it is part of the
        section's behavioral identity.
        """
        cached = self._digests.get(region)
        if cached is not None:
            return cached
        hasher = hashlib.sha256()
        hasher.update(f"region:{region}\n".encode())
        hasher.update(f"detector:{self.detector}\n".encode())
        callees: set[str] = set()
        for func_name, blk in self._region_blocks.get(region, ()):
            hasher.update(f"{func_name}/{blk.label}:\n".encode())
            for instr in blk.instructions:
                hasher.update(
                    f"{format_instruction(instr)}|{instr.origin}\n".encode()
                )
                if (instr.kind is InstrKind.CALL
                        and instr.target_label is not None
                        and instr.target_label in self._func_text):
                    callees.add(instr.target_label)
        for name in self._call_closure(callees):
            hasher.update(f"callee:{name}\n".encode())
            hasher.update(self._func_text[name].encode())
            hasher.update(b"\n")
        digest = hasher.hexdigest()
        self._digests[region] = digest
        return digest


def trace_sections(
    program: AsmProgram,
    function: str = "main",
    args: tuple[int, ...] = (),
    index: _ProgramIndex | None = None,
):
    """Golden run + section partition of its dynamic fault sites.

    Returns ``(golden, sections)`` where ``sections`` is the ordered list
    of maximal contiguous same-region site runs. The golden ``RunResult``
    is bit-identical to a hook-free run (the profiling hook only observes).
    """
    golden, sections, _ = _trace_sections(program, function, args, index)
    return golden, sections


def _trace_sections(
    program: AsmProgram,
    function: str,
    args: tuple[int, ...],
    index: _ProgramIndex | None = None,
):
    """:func:`trace_sections` plus the per-site instruction-uid trace.

    ``site_uids[site]`` identifies the static instruction that is dynamic
    fault site ``site`` — used to restamp cached telemetry records with the
    *current* program's uids (uids are process-local object identity, so
    they are stripped from cache entries).
    """
    if index is None:
        index = _ProgramIndex(program)
    regions_by_uid = index.regions_by_uid
    site_regions: list[str] = []
    site_uids: list[int] = []

    def hook(machine: Machine, instr, site: int) -> None:
        site_regions.append(regions_by_uid[instr.uid])
        site_uids.append(instr.uid)

    golden = Machine(program).run(function=function, args=args,
                                  fault_hook=hook)
    sections: list[Section] = []
    start = 0
    for pos in range(1, len(site_regions) + 1):
        if pos == len(site_regions) or site_regions[pos] != site_regions[start]:
            region = site_regions[start]
            sections.append(Section(
                index=len(sections), region=region,
                function=region_function(region),
                start_site=start, end_site=pos,
            ))
            start = pos
    return golden, sections, site_uids


# -- keys and entries ------------------------------------------------------


def _snapshot_fingerprint(snap: MachineSnapshot) -> str:
    """Digest of the complete architectural state a section starts from.

    Covers registers, flags, every dirty memory page, accumulated output,
    the heap cursor and input-LCG state, plus the cumulative (pc, executed,
    sites) counters — everything that determines the behavior, budget
    accounting and telemetry latencies of runs resumed from the snapshot.
    """
    hasher = hashlib.sha256()
    hasher.update(repr((snap.pc, snap.executed, snap.sites,
                        snap.heap_cursor, snap.lcg_state)).encode())
    for line in snap.output:
        hasher.update(line.encode())
        hasher.update(b"\x00")
    regs = snap.registers
    for name in sorted(snap.registers.gprs):
        hasher.update(f"{name}={regs.gprs[name]:x};".encode())
    for name in sorted(regs.vectors):
        hasher.update(f"{name}={regs.vectors[name]:x};".encode())
    hasher.update(f"rflags={regs.rflags:x}".encode())
    for seg_index, pages in enumerate(snap.memory.pages):
        for page_index in sorted(pages):
            hasher.update(f"[{seg_index}:{page_index}]".encode())
            hasher.update(pages[page_index])
    return hasher.hexdigest()


def _canonical_plans(
    section: Section, plans: list[IndexedPlan]
) -> list[IndexedPlan]:
    """Section plans in a run-index-free canonical order.

    Cache entries must not depend on which RNG streams happened to draw the
    plans, so entries store results keyed by plan *values*. Ties (identical
    plans) are interchangeable: the machine is deterministic, so identical
    (site, register, bit) flips have identical results.
    """
    return sorted(
        plans,
        key=lambda pair: (pair[1].site_index, pair[1].register_pick,
                          pair[1].bit_pick),
    )


def _section_key(
    index: _ProgramIndex,
    section: Section,
    fingerprint: str,
    golden,
    plans: list[IndexedPlan],
    function: str,
    args: tuple[int, ...],
    telemetry: bool,
    trail_fingerprint: str | None = None,
) -> str:
    """Content-addressed cache key of one populated section's sub-campaign.

    ``trail_fingerprint`` — the golden convergence trail's digest-of-digests
    (:meth:`repro.machine.converge.ConvergenceTrail.fingerprint`) — enters
    the key when the campaign runs with convergence early-exit. Converged
    results are bit-identical to plain ones by contract, but keying them
    separately keeps the cache honest: a convergence bug can never poison
    entries that plain campaigns would later trust, and vice versa.
    """
    payload = {
        "version": CACHE_VERSION,
        "level": "asm",
        "region": section.region,
        "code": index.region_digest(section.region),
        "metadata": sorted(index.program.metadata.items()),
        "converge": trail_fingerprint,
        "entry": {"function": function, "args": list(args),
                  "fingerprint": fingerprint},
        "golden": {
            "output": list(golden.output),
            "exit_code": golden.exit_code,
            "dynamic_instructions": golden.dynamic_instructions,
            "fault_sites": golden.fault_sites,
        },
        "plans": [
            [plan.site_index - section.start_site,
             plan.register_pick.hex(), plan.bit_pick.hex()]
            for _, plan in _canonical_plans(section, plans)
        ],
        "telemetry": bool(telemetry),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _entry_from_results(
    section: Section, plans: list[IndexedPlan], results: list, telemetry: bool
) -> dict:
    """Serialize one executed section's results in canonical plan order."""
    by_run = dict(results)
    stored = []
    for run_index, _ in _canonical_plans(section, plans):
        payload = by_run[run_index]
        if telemetry:
            data = payload.to_json()
            # Entries are RNG-stream agnostic (run_index) and process
            # agnostic (instruction_uid is object identity, re-stamped from
            # the current golden trace on load).
            del data["run_index"]
            del data["instruction_uid"]
            stored.append(data)
        else:
            stored.append(payload.value)
    return {
        "version": CACHE_VERSION,
        "region": section.region,
        "sites": [section.start_site, section.end_site],
        "telemetry": bool(telemetry),
        "results": stored,
    }


def _results_from_entry(
    entry: dict,
    section: Section,
    plans: list[IndexedPlan],
    telemetry: bool,
    site_uids: list[int],
) -> list | None:
    """Deserialize a cache entry back into (run_index, result) pairs.

    Returns ``None`` — a miss — when the entry does not hold exactly one
    result per routed plan (a corrupt or foreign entry that hashed to the
    same name would be caught by the key, so this is belt and braces).
    """
    stored = entry.get("results")
    if not isinstance(stored, list) or len(stored) != len(plans):
        return None
    results = []
    try:
        for (run_index, _), data in zip(_canonical_plans(section, plans),
                                        stored):
            if telemetry:
                record = dict(data)
                record["run_index"] = run_index
                record["instruction_uid"] = site_uids[record["site_index"]]
                results.append((run_index, FaultRecord.from_json(record)))
            else:
                results.append((run_index, Outcome(data)))
    except (KeyError, IndexError, TypeError, ValueError):
        return None
    return results


# -- the composed campaign -------------------------------------------------


def _route_plans(
    sections: list[Section], plans: list[IndexedPlan]
) -> dict[int, list[IndexedPlan]]:
    """Assign each plan to the section owning its fault site."""
    starts = [section.start_site for section in sections]
    routed: dict[int, list[IndexedPlan]] = {}
    for indexed in plans:
        slot = bisect_right(starts, indexed[1].site_index) - 1
        routed.setdefault(slot, []).append(indexed)
    return routed


def compose_campaign(
    program: AsmProgram,
    samples: int,
    seed: int = 0,
    function: str = "main",
    args: tuple[int, ...] = (),
    processes: int = 1,
    engine: str = "checkpoint",
    checkpoint_interval: int | None = None,
    telemetry: bool = False,
    jsonl_path=None,
    jsonl_mode: str = "w",
    prune: bool = False,
    cache_dir=None,
    refresh: tuple[str, ...] = (),
    converge: bool = False,
    converge_interval: int | None = None,
) -> CampaignResult:
    """Run a flat-equivalent campaign as composed per-section sub-campaigns.

    Draws the identical global plan population a flat
    :func:`~repro.faultinjection.campaign.run_campaign` with the same
    ``samples``/``seed`` would draw, routes each plan to the section owning
    its fault site, serves each populated section from the
    content-addressed ``cache_dir`` (when given) or by executing its
    sub-campaign from the section-entry snapshot, and composes the results.
    Outcome counts, per-origin maps and telemetry records are bit-identical
    to the flat campaign for every ``engine``, ``processes`` count and
    ``prune`` setting.

    ``refresh`` names functions whose sections must re-execute even on a
    cache hit (the incremental re-protection workflow: after editing one
    function, refresh it once and let every other section hit).
    ``result.compose_stats`` reports the partition and cache economics.

    JSONL output (``jsonl_path``/``jsonl_mode``) is written in the flat
    campaign's order — site order for plain campaigns (matching the
    sequential checkpoint engine's stream), run-index order under
    ``prune=True`` — so files are byte-comparable to flat ones.

    ``converge=True`` adds convergence early-exit (see
    :func:`~repro.faultinjection.campaign.run_campaign`): one golden
    digest trail is recorded up front, its fingerprint becomes part of
    every section's cache key, and executed sections finish each run at
    the first boundary whose divergence cone matches the trail. Composed
    counts and records stay bit-identical; ``result.convergence_stats``
    covers *executed* injections only (cache hits never run, so they have
    no monitor counters). ``converge_interval`` overrides the boundary
    spacing.
    """
    if engine not in ENGINES:
        raise InjectionError(f"unknown engine {engine!r}; known: {ENGINES}")
    telemetry = telemetry or jsonl_path is not None
    for name in refresh:
        if not program.has_function(name):
            raise InjectionError(
                f"refresh names unknown function {name!r}; "
                f"program has {program.function_names()}"
            )
    index = _ProgramIndex(program)
    golden, sections, site_uids = _trace_sections(program, function, args,
                                                  index)
    result = CampaignResult(
        samples=samples,
        fault_sites=golden.fault_sites,
        dynamic_instructions=golden.dynamic_instructions,
    )
    rng = DeterministicRng(seed)
    plans: list[IndexedPlan] = [
        (run_index, FaultPlan.sample(rng.fork(run_index), golden.fault_sites))
        for run_index in range(samples)
    ]
    analysis = None
    if prune:
        analysis = analyze_plans(program, plans, function=function, args=args,
                                 telemetry=telemetry)
        plans = analysis.to_execute
        result.pruning_stats = analysis.stats
    trail: ConvergenceTrail | None = None
    conv_stats: ConvergenceStats | None = None
    if converge:
        trail = record_trail(program, golden, function=function, args=args,
                             interval=converge_interval)
        conv_stats = ConvergenceStats()
        result.convergence_stats = conv_stats
    trail_fp = trail.fingerprint() if trail is not None else None
    stats = CheckpointStats() if telemetry and engine == "checkpoint" else None
    result.checkpoint_stats = stats
    compose_stats = ComposeStats(sections=len(sections))
    result.compose_stats = compose_stats
    cache = SectionCache(cache_dir) if cache_dir is not None else None
    refresh_set = set(refresh)

    routed = _route_plans(sections, plans)
    populated = [
        (section, routed[section.index])
        for section in sections
        if routed.get(section.index)
    ]
    compose_stats.populated_sections = len(populated)

    # Pass 1 — advance one cursor machine through every populated section
    # entry (the shared golden prefix executes exactly once), fingerprint
    # each entry state, and resolve cache hits.
    machine = Machine(program)
    cursor = None
    section_results: dict[int, list] = {}
    pending: list[tuple[Section, list[IndexedPlan], str, MachineSnapshot]] = []
    for section, section_plans in populated:
        cursor = machine.run_to_site(section.start_site, function=function,
                                     args=args, resume_from=cursor)
        if stats is not None:
            stats.note_snapshot(cursor)
        key = _section_key(index, section, _snapshot_fingerprint(cursor),
                           golden, section_plans, function, args, telemetry,
                           trail_fingerprint=trail_fp)
        refreshed = section.function in refresh_set
        if refreshed:
            compose_stats.refreshed_sections += 1
        loaded = None
        if cache is not None and not refreshed:
            entry = cache.load(key)
            if entry is not None:
                loaded = _results_from_entry(entry, section, section_plans,
                                             telemetry, site_uids)
        if loaded is not None:
            compose_stats.cache_hits += 1
            compose_stats.cached_injections += len(section_plans)
            section_results[section.index] = loaded
        else:
            compose_stats.cache_misses += 1
            pending.append((section, section_plans, key, cursor))

    # Pass 2 — execute the missing sections' sub-campaigns.
    context = _fork_context() if processes > 1 and pending else None
    if context is not None and engine == "checkpoint":
        regions = []
        owners: list[int] = []
        for section, section_plans, _key, snapshot in pending:
            sub_cursor = snapshot
            for site, region_plans in _checkpoint_schedule(
                section_plans, checkpoint_interval
            ):
                sub_cursor = machine.run_to_site(site, function=function,
                                                 args=args,
                                                 resume_from=sub_cursor)
                if stats is not None:
                    stats.note_snapshot(sub_cursor)
                    stats.restores += len(region_plans)
                    stats.fast_forward_sites += sum(
                        plan.site_index - site for _, plan in region_plans
                    )
                regions.append((sub_cursor, region_plans))
                owners.append(section.index)
        _PARALLEL_STATE.update(
            program=program, golden=golden, function=function,
            args=args, machine=machine, regions=regions, telemetry=telemetry,
        )
        if trail is not None:
            _PARALLEL_STATE.update(trail=trail)
            per_region = _pooled(context, processes,
                                 _parallel_inject_region_converge,
                                 range(len(regions)), chunksize=1)
            for owner, (region_results, worker_stats) in zip(owners,
                                                             per_region):
                section_results.setdefault(owner, []).extend(region_results)
                conv_stats.merge(worker_stats)
        else:
            per_region = _pooled(context, processes, _parallel_inject_region,
                                 range(len(regions)), chunksize=1)
            for owner, region_results in zip(owners, per_region):
                section_results.setdefault(owner, []).extend(region_results)
    elif context is not None:
        tasks = [pair for _, section_plans, _, _ in pending
                 for pair in section_plans]
        owner_of = {
            run_index: section.index
            for section, section_plans, _, _ in pending
            for run_index, _ in section_plans
        }
        _PARALLEL_STATE.update(
            program=program, golden=golden, function=function,
            args=args, telemetry=telemetry,
        )
        if trail is not None:
            _PARALLEL_STATE.update(trail=trail)
            pairs = _pooled(context, processes, _parallel_inject_converge,
                            tasks, chunksize=8)
            for (run_index, payload), worker_stats in pairs:
                section_results.setdefault(owner_of[run_index], []).append(
                    (run_index, payload)
                )
                conv_stats.merge(worker_stats)
        else:
            flat = _pooled(context, processes, _parallel_inject, tasks,
                           chunksize=8)
            for run_index, payload in flat:
                section_results.setdefault(owner_of[run_index], []).append(
                    (run_index, payload)
                )
    else:
        for section, section_plans, _key, snapshot in pending:
            if engine == "checkpoint":
                executed = _checkpointed_asm_results(
                    program, section_plans, golden, function, args,
                    checkpoint_interval, telemetry=telemetry, stats=stats,
                    machine=machine, cursor=snapshot,
                    trail=trail, conv_stats=conv_stats,
                )
            else:
                executed = []
                for run_index, plan in section_plans:
                    executed.append((run_index, inject_asm_fault(
                        program, plan, golden, function=function, args=args,
                        machine=machine, telemetry=telemetry,
                        run_index=run_index,
                        converge=trail, converge_stats=conv_stats,
                    )))
            section_results[section.index] = executed

    for section, section_plans, key, _snapshot in pending:
        executed = section_results[section.index]
        compose_stats.executed_injections += len(executed)
        if cache is not None:
            cache.store(key, _entry_from_results(section, section_plans,
                                                 executed, telemetry))

    # Pass 3 — compose. Merging the routed results reconstructs the flat
    # campaign's result set exactly (same plans, same per-plan outcomes).
    merged = [
        pair
        for section, _ in populated
        for pair in section_results[section.index]
    ]
    if analysis is not None:
        merged = merged + _expand_pruned(analysis, merged, telemetry)
    sink = _open_sink(jsonl_path, jsonl_mode)
    try:
        if sink is not None:
            if prune:
                ordered = sorted(merged, key=lambda pair: pair[0])
            else:
                ordered = sorted(
                    merged,
                    key=lambda pair: (pair[1].site_index, pair[0]),
                )
            for _, record in ordered:
                sink.write(record)
        return _finish(result, merged, telemetry, sink, streamed=True)
    finally:
        if sink is not None:
            sink.close()
