"""Single-fault injection into one program execution.

The sampling protocol follows the paper (Sec. IV-A2): profile the golden
run to count dynamic *fault sites* (instructions with a register or FLAGS
destination), pick one uniformly, pick a destination register of that site
and a uniform bit in it, flip the bit right after the instruction's
writeback, and let the program run on.

``cmp``/``test`` (and ``vptest``) have FLAGS as their destination; flips
there target the five condition bits the modeled ISA consumes — flipping an
unused RFLAGS bit would be trivially benign noise and is excluded, as in
PINFI-style injectors.

With ``telemetry=True`` an injection returns a :class:`FaultRecord`
(static instruction, provenance, register/bit, outcome, detection latency)
instead of the bare :class:`Outcome`; the classification logic is shared,
so outcomes are identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.instructions import Instruction
from repro.asm.printer import format_instruction
from repro.asm.program import AsmProgram
from repro.asm.registers import Register, RegisterKind
from repro.errors import (
    DetectionExit,
    ExecutionLimitExceeded,
    InjectionError,
    MachineError,
    MachineFault,
)
from repro.faultinjection.outcome import Outcome
from repro.faultinjection.telemetry import FaultRecord, normalize_origin
from repro.ir.interp import (
    IRInterpreter,
    IRRunResult,
    IRSnapshot,
    _width_of,
)
from repro.ir.module import IRModule
from repro.ir.printer import format_instruction as format_ir_instruction
from repro.machine.cpu import Machine, MachineSnapshot, RunResult
from repro.machine.flags import INJECTABLE_FLAG_BITS
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class FaultPlan:
    """A fully determined fault: which dynamic site, which bit.

    ``register_pick`` and ``bit_pick`` are uniform floats in [0, 1) drawn
    up front, so the plan is immutable and independent of execution state;
    they resolve to a concrete register/bit at the sampled site (whose
    destination set and width are only known at runtime).
    """

    site_index: int
    register_pick: float
    bit_pick: float

    @staticmethod
    def sample(rng: DeterministicRng, fault_sites: int) -> "FaultPlan":
        if fault_sites <= 0:
            raise InjectionError("program has no fault sites")
        return FaultPlan(
            site_index=rng.randint(0, fault_sites - 1),
            register_pick=rng.random(),
            bit_pick=rng.random(),
        )


def profile_fault_sites(
    program: AsmProgram, function: str = "main",
    args: tuple[int, ...] = (), max_instructions: int | None = None,
) -> RunResult:
    """Golden run: collects output and the dynamic fault-site count."""
    machine = Machine(program)
    return machine.run(function=function, args=args,
                       max_instructions=max_instructions)


def _resolve_flip(instr: Instruction, plan: FaultPlan) -> tuple[Register, int]:
    """Resolve a plan's uniform picks to a concrete (register, bit) pair."""
    dests = instr.dest_registers()
    register = dests[int(plan.register_pick * len(dests)) % len(dests)]
    if register.kind is RegisterKind.FLAGS:
        bits = INJECTABLE_FLAG_BITS
        bit = bits[int(plan.bit_pick * len(bits)) % len(bits)]
    else:
        bit = int(plan.bit_pick * register.width) % register.width
    return register, bit


def _apply_flip(
    machine: Machine, instr: Instruction, plan: FaultPlan
) -> tuple[Register, int]:
    register, bit = _resolve_flip(instr, plan)
    machine.registers.flip(register, bit)
    return register, bit


def inject_asm_fault(
    program: AsmProgram,
    plan: FaultPlan,
    golden: RunResult,
    function: str = "main",
    args: tuple[int, ...] = (),
    timeout_factor: int = 6,
    machine: Machine | None = None,
    resume_from: MachineSnapshot | None = None,
    telemetry: bool = False,
    run_index: int = -1,
    converge=None,
    converge_stats=None,
) -> Outcome | FaultRecord:
    """Run ``program`` once with ``plan``'s fault; classify the outcome.

    The instruction budget is ``timeout_factor`` times the golden run's
    dynamic length, so runaway loops classify as timeouts without hanging
    the campaign. Passing a pre-built ``machine`` (for the same program)
    skips per-run construction; ``run`` resets all architectural state.

    ``resume_from`` switches to the checkpointed protocol: instead of
    replaying the whole golden prefix, execution restores the snapshot (a
    checkpoint at or before ``plan.site_index``) and runs forward with the
    hook delivered only at the target site. Outcomes are bit-identical to
    the replay protocol — the snapshot is, by construction, the exact state
    a replay would have reached.

    ``telemetry=True`` returns a :class:`FaultRecord` (same classification,
    plus attribution and detection latency); ``run_index`` stamps the
    record with the campaign run that drew the plan.

    ``converge`` accepts a golden :class:`repro.machine.converge.
    ConvergenceTrail`: the run then stops at the trail's boundaries and
    finishes with the golden outcome the moment its divergence cone
    matches the fault-free state (bit-identical classification; see
    ``docs/performance.md``). ``converge_stats`` — a
    :class:`repro.faultinjection.telemetry.ConvergenceStats` — accumulates
    the run's monitor counters when provided.
    """
    if machine is None:
        machine = Machine(program)
    monitor = (converge.monitor(plan.site_index)
               if converge is not None else None)
    fired = False
    hit: dict = {}

    def hook(m: Machine, instr: Instruction, site: int) -> None:
        nonlocal fired
        if site == plan.site_index:
            register, bit = _apply_flip(m, instr, plan)
            fired = True
            if telemetry:
                hit["instr"] = instr
                hit["register"] = register
                hit["bit"] = bit
                hit["flip_executed"] = m.executed_at_site

    budget = max(golden.dynamic_instructions * timeout_factor, 10_000)
    detect_executed: int | None = None
    try:
        if resume_from is not None:
            if resume_from.sites > plan.site_index:
                raise InjectionError(
                    f"checkpoint at site {resume_from.sites} is past "
                    f"fault site {plan.site_index}"
                )
            result = machine.run(function=function, args=args, fault_hook=hook,
                                 max_instructions=budget,
                                 fault_at=plan.site_index,
                                 resume_from=resume_from,
                                 converge=monitor)
        else:
            result = machine.run(function=function, args=args, fault_hook=hook,
                                 max_instructions=budget, converge=monitor)
    except DetectionExit:
        outcome = Outcome.DETECTED
        detect_executed = machine.halt_executed
    except ExecutionLimitExceeded:
        outcome = Outcome.TIMEOUT
    except MachineFault:
        outcome = Outcome.CRASH
    except MachineError:
        outcome = Outcome.CRASH
    else:
        if not fired:
            raise InjectionError(
                f"fault site {plan.site_index} never executed "
                f"(golden counted {golden.fault_sites})"
            )
        if (result.output == golden.output
                and result.exit_code == golden.exit_code):
            outcome = Outcome.BENIGN
        else:
            outcome = Outcome.SDC
    if converge_stats is not None:
        converge_stats.note(monitor)
    if not telemetry:
        return outcome
    if not hit:
        raise InjectionError(
            f"fault site {plan.site_index} never executed "
            f"(golden counted {golden.fault_sites})"
        )
    instr = hit["instr"]
    latency = (detect_executed - hit["flip_executed"]
               if detect_executed is not None else None)
    return FaultRecord(
        run_index=run_index,
        level="asm",
        site_index=plan.site_index,
        instruction=format_instruction(instr),
        mnemonic=instr.mnemonic,
        origin=normalize_origin(instr.origin),
        register=hit["register"].name,
        bit=hit["bit"],
        outcome=outcome,
        detection_latency=latency,
        instruction_uid=instr.uid,
    )


def inject_ir_fault(
    module: IRModule,
    plan: FaultPlan,
    golden: IRRunResult,
    function: str = "main",
    args: tuple[int, ...] = (),
    timeout_factor: int = 10,
    interp: IRInterpreter | None = None,
    resume_from: IRSnapshot | None = None,
    telemetry: bool = False,
    run_index: int = -1,
) -> Outcome | FaultRecord:
    """IR-level injection (LLFI-style): flip a bit in an IR result value.

    Used by the cross-layer gap experiment: IR-level EDDI looks nearly
    perfect under IR-level injection; the gap only appears at assembly
    level.

    ``resume_from`` enables the same checkpointed protocol as
    :func:`inject_asm_fault`: restore a prefix snapshot (taken with the
    passed ``interp``) instead of re-executing the golden prefix. The
    instruction budget is passed per-run, so a shared ``interp`` is never
    mutated. ``telemetry``/``run_index`` mirror :func:`inject_asm_fault`.
    """
    if interp is None:
        interp = IRInterpreter(module)
    budget = max(golden.dynamic_instructions * timeout_factor, 10_000)
    fired = False
    hit: dict = {}

    def hook(ip: IRInterpreter, instr, site: int) -> None:
        nonlocal fired
        if site == plan.site_index:
            width = _width_of(instr)
            bit = int(plan.bit_pick * width) % width
            ip.flip_value(instr, bit)
            fired = True
            if telemetry:
                hit["instr"] = instr
                hit["bit"] = bit
                hit["flip_executed"] = ip.executed

    detect_executed: int | None = None
    try:
        if resume_from is not None:
            if resume_from.sites > plan.site_index:
                raise InjectionError(
                    f"checkpoint at site {resume_from.sites} is past "
                    f"fault site {plan.site_index}"
                )
            result = interp.run(function=function, args=args, fault_hook=hook,
                                fault_at=plan.site_index,
                                resume_from=resume_from,
                                max_instructions=budget)
        else:
            result = interp.run(function=function, args=args, fault_hook=hook,
                                max_instructions=budget)
    except DetectionExit:
        outcome = Outcome.DETECTED
        detect_executed = interp.executed
    except ExecutionLimitExceeded:
        outcome = Outcome.TIMEOUT
    except MachineError:
        outcome = Outcome.CRASH
    else:
        if not fired:
            raise InjectionError(
                f"IR fault site {plan.site_index} never executed"
            )
        if (result.output == golden.output
                and result.exit_code == golden.exit_code):
            outcome = Outcome.BENIGN
        else:
            outcome = Outcome.SDC
    if not telemetry:
        return outcome
    if not hit:
        raise InjectionError(f"IR fault site {plan.site_index} never executed")
    instr = hit["instr"]
    latency = (detect_executed - hit["flip_executed"]
               if detect_executed is not None else None)
    return FaultRecord(
        run_index=run_index,
        level="ir",
        site_index=plan.site_index,
        instruction=format_ir_instruction(instr),
        mnemonic=instr.opcode,
        origin="app",
        register=None,
        bit=hit["bit"],
        outcome=outcome,
        detection_latency=latency,
        instruction_uid=None,
    )
