"""IR-LEVEL-EDDI: the paper's first baseline (Sec. II-C, Fig. 2).

Every computational IR instruction (load, binop, icmp, cast, ptradd) is
duplicated; before each *sync point* (store, conditional branch, call,
return) a checker compares each operand against its shadow and traps to the
detection handler on mismatch.

The pass is **sound at IR level**: injecting a fault into any duplicated
IR value is caught before it can reach a sync point. The paper's point —
which this reproduction measures — is that the *backend* then inserts
reloads, flag rematerializations and argument moves that exist only at
assembly level, so assembly-level fault injection finds unprotected sites
the IR pass cannot see.

The transform mutates the module in place (callers compile a fresh module
per protected variant).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.instructions import (
    BinOp, Br, Call, Cast, Check, ICmp, IRInstruction, Load, PtrAdd,
    Ret, Store,
)
from repro.ir.module import IRFunction, IRModule
from repro.ir.values import Value

#: Instruction classes that get duplicated.
_DUPLICABLE = (Load, BinOp, ICmp, Cast, PtrAdd)

#: Instruction classes that act as sync points (checks inserted before).
_SYNC_POINTS = (Store, Br, Call, Ret)


@dataclass
class IrEddiStats:
    """What the pass did (summed over the module)."""

    duplicated: int = 0
    checks: int = 0
    protected_functions: int = 0

    def merge(self, other: "IrEddiStats") -> None:
        self.duplicated += other.duplicated
        self.checks += other.checks
        self.protected_functions += other.protected_functions


def _duplicate_instruction(instr: IRInstruction,
                           shadows: dict[Value, Value]) -> IRInstruction:
    """A fresh copy of ``instr`` whose operands use shadows where available.

    Using shadow operands makes the two dataflow chains independent, so a
    fault in either chain diverges at the next check (classic EDDI
    sphere-of-replication construction).
    """
    if isinstance(instr, Load):
        dup: IRInstruction = Load(shadows.get(instr.pointer, instr.pointer),
                                  name=f"{instr.name}.dup")
    elif isinstance(instr, BinOp):
        dup = BinOp(instr.op, shadows.get(instr.lhs, instr.lhs),
                    shadows.get(instr.rhs, instr.rhs), name=f"{instr.name}.dup")
    elif isinstance(instr, ICmp):
        dup = ICmp(instr.pred, shadows.get(instr.lhs, instr.lhs),
                   shadows.get(instr.rhs, instr.rhs), name=f"{instr.name}.dup")
    elif isinstance(instr, Cast):
        dup = Cast(instr.op, shadows.get(instr.value, instr.value),
                   instr.type, name=f"{instr.name}.dup")
    elif isinstance(instr, PtrAdd):
        dup = PtrAdd(shadows.get(instr.base, instr.base),
                     shadows.get(instr.index, instr.index),
                     name=f"{instr.name}.dup")
    else:  # pragma: no cover - guarded by _DUPLICABLE
        raise TypeError(f"cannot duplicate {instr.opcode}")
    return dup


def _protect_function(func: IRFunction) -> IrEddiStats:
    stats = IrEddiStats(protected_functions=1)
    for block in func.blocks:
        shadows: dict[Value, Value] = {}
        new_instrs: list[IRInstruction] = []
        for instr in block.instructions:
            if isinstance(instr, _SYNC_POINTS):
                checked: set[Value] = set()
                for operand in instr.operands():
                    shadow = shadows.get(operand)
                    if shadow is not None and operand not in checked:
                        new_instrs.append(Check(operand, shadow))
                        checked.add(operand)
                        stats.checks += 1
                new_instrs.append(instr)
                continue
            new_instrs.append(instr)
            if isinstance(instr, _DUPLICABLE):
                dup = _duplicate_instruction(instr, shadows)
                new_instrs.append(dup)
                shadows[instr] = dup
                stats.duplicated += 1
            # Note: loads of the duplicate chain read the *same* address;
            # values reaching this block from predecessors (via memory)
            # start un-shadowed, exactly like the original EDDI.
        block.instructions = new_instrs
    return stats


def protect_module(module: IRModule) -> IrEddiStats:
    """Apply IR-LEVEL-EDDI to every function of ``module`` (in place)."""
    stats = IrEddiStats()
    for func in module.functions:
        stats.merge(_protect_function(func))
    return stats
