"""IR-level protection passes.

* :mod:`repro.eddi.ir_eddi` — the IR-LEVEL-EDDI baseline (paper Fig. 2):
  duplicate computational IR instructions, check shadows at sync points.
* :mod:`repro.eddi.signatures` — SWIFT-style signature control-flow
  protection plus comparison duplication, the IR half of the
  HYBRID-ASSEMBLY-LEVEL-EDDI baseline (paper Table I: branch/comparison
  protected at IR level).
"""

from repro.eddi.ir_eddi import IrEddiStats, protect_module
from repro.eddi.signatures import SignatureStats, protect_branches_with_signatures

__all__ = [
    "IrEddiStats",
    "SignatureStats",
    "protect_branches_with_signatures",
    "protect_module",
]
