"""Signature-based branch/comparison protection at IR level.

The HYBRID-ASSEMBLY-LEVEL-EDDI baseline protects ``basic``, ``store``,
``call`` and ``mapping`` instructions by scalar duplication at assembly
level, but — per the paper's Table I — handles *branch* and *comparison*
instructions at IR level "through the use of signatures [13]". This module
implements that IR half, SWIFT-style:

* every basic block gets a compile-time signature constant;
* a function-wide shadow slot (the GSR) holds the signature of the block
  control flow is *supposed* to be in;
* before a conditional branch the pass computes the expected successor
  signature from a **duplicated** comparison
  (``expected = sig_else + cond_dup * (sig_then - sig_else)``) and stores
  it to the GSR; unconditional jumps store their target's signature;
* each branch-target block asserts on entry that the GSR matches its own
  signature.

A transient fault that flips the real branch (e.g. in the backend's
rematerialized ``cmpl $0`` — the paper's Fig. 9 site) sends control to a
block whose signature disagrees with the GSR, which was computed from the
uncorrupted duplicate comparison: detected. Comparisons used as values are
additionally duplicated and checked directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.instructions import (
    Alloca, Br, Check, ICmp, IRInstruction, Jump, Load, Store,
)
from repro.ir.module import IRFunction, IRModule
from repro.ir.types import I32
from repro.ir.values import Constant, Value
from repro.ir.instructions import BinOp, Cast


@dataclass
class SignatureStats:
    """What the pass did (summed over the module)."""

    blocks_signed: int = 0
    branches_protected: int = 0
    comparisons_duplicated: int = 0
    entry_checks: int = 0

    def merge(self, other: "SignatureStats") -> None:
        self.blocks_signed += other.blocks_signed
        self.branches_protected += other.branches_protected
        self.comparisons_duplicated += other.comparisons_duplicated
        self.entry_checks += other.entry_checks


def _block_signatures(func: IRFunction) -> dict[str, int]:
    """Compile-time signature constants, unique per block."""
    return {blk.label: 0x5A00 + i for i, blk in enumerate(func.blocks)}


def _protect_function(func: IRFunction) -> SignatureStats:
    stats = SignatureStats()
    signatures = _block_signatures(func)
    stats.blocks_signed = len(signatures)

    # The GSR shadow slot, materialized first in the entry block.
    gsr = Alloca(I32, name="__sig")
    entry = func.entry
    entry.instructions.insert(0, gsr)
    entry.instructions.insert(
        1, Store(Constant(signatures[entry.label], I32), gsr)
    )

    # Blocks that are targets of any branch get an entry assertion.
    targets: set[str] = set()
    for block in func.blocks:
        targets.update(func.successors(block))

    for block in func.blocks:
        new_instrs: list[IRInstruction] = []
        shadows: dict[Value, Value] = {}

        if block.label in targets and block is not entry:
            probe = Load(gsr, name="__sig.probe")
            new_instrs.append(probe)
            new_instrs.append(
                Check(probe, Constant(signatures[block.label], I32))
            )
            stats.entry_checks += 1

        for instr in block.instructions:
            if instr is gsr or (
                isinstance(instr, Store) and instr.pointer is gsr
            ):
                new_instrs.append(instr)
                continue
            if isinstance(instr, ICmp):
                new_instrs.append(instr)
                dup = ICmp(instr.pred, instr.lhs, instr.rhs,
                           name=f"{instr.name}.dup")
                new_instrs.append(dup)
                new_instrs.append(Check(instr, dup))
                shadows[instr] = dup
                stats.comparisons_duplicated += 1
                continue
            if isinstance(instr, Br):
                dup = shadows.get(instr.cond)
                if dup is None:
                    # Condition defined in this block but not an ICmp we
                    # duplicated (cannot happen with the mini-C frontend,
                    # but stay safe): re-check against itself.
                    dup = instr.cond
                sig_then = signatures[instr.then_label]
                sig_else = signatures[instr.else_label]
                cond_int = Cast("zext", dup, I32, name="__sig.cond")
                new_instrs.append(cond_int)
                delta = BinOp("mul", cond_int,
                              Constant(sig_then - sig_else, I32),
                              name="__sig.delta")
                new_instrs.append(delta)
                expected = BinOp("add", delta, Constant(sig_else, I32),
                                 name="__sig.expected")
                new_instrs.append(expected)
                new_instrs.append(Store(expected, gsr))
                new_instrs.append(instr)
                stats.branches_protected += 1
                continue
            if isinstance(instr, Jump):
                new_instrs.append(
                    Store(Constant(signatures[instr.target], I32), gsr)
                )
                new_instrs.append(instr)
                continue
            new_instrs.append(instr)
        block.instructions = new_instrs
    return stats


def protect_branches_with_signatures(module: IRModule) -> SignatureStats:
    """Apply signature branch/comparison protection in place."""
    stats = SignatureStats()
    for func in module.functions:
        stats.merge(_protect_function(func))
    return stats
