"""Render a mini-C AST back to parseable source text.

The generator builds :mod:`repro.minic.ast` trees and the reducer rewrites
them; both need one canonical printer so that ``parse(unparse(tree))``
round-trips structurally. Binary expressions are printed with the parser's
own precedence table — parentheses appear only where re-parsing would
otherwise associate differently — and statements print one per line, which
is what makes the reducer's "shrunk to N lines" metric meaningful.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.minic import ast
from repro.minic.parser import _PRECEDENCE

#: Operator -> precedence tier (weakest = 0), from the parser's table.
_PREC: dict[str, int] = {
    op: tier for tier, ops in enumerate(_PRECEDENCE) for op in ops
}
_MAX_PREC = len(_PRECEDENCE)

_INDENT = "    "


def _expr(node: ast.Expr) -> str:
    return _expr_prec(node, 0)


def _expr_prec(node: ast.Expr, context: int) -> str:
    """Render ``node``, parenthesizing when ``context`` binds tighter."""
    if isinstance(node, ast.IntLiteral):
        if node.value < 0:
            return f"({node.value})"
        return str(node.value)
    if isinstance(node, ast.VarRef):
        return node.name
    if isinstance(node, ast.Unary):
        operand = node.operand
        if isinstance(operand, (ast.Unary, ast.Binary)):
            return f"{node.op}({_expr(operand)})"
        return f"{node.op}{_expr_prec(operand, _MAX_PREC)}"
    if isinstance(node, ast.Binary):
        tier = _PREC[node.op]
        lhs = _expr_prec(node.lhs, tier)
        # All binary operators are left-associative: an rhs at the same
        # tier must keep its parentheses or re-parsing re-associates.
        rhs = _expr_prec(node.rhs, tier + 1)
        text = f"{lhs} {node.op} {rhs}"
        if tier < context:
            return f"({text})"
        return text
    if isinstance(node, ast.Index):
        return f"{_expr_prec(node.base, _MAX_PREC)}[{_expr(node.index)}]"
    if isinstance(node, ast.CallExpr):
        args = ", ".join(_expr(a) for a in node.args)
        return f"{node.callee}({args})"
    raise ReproError(f"cannot unparse expression {node!r}")


def _simple_stmt(node: ast.Stmt) -> str:
    """Render an assignment/expression statement without a trailing ';'."""
    if isinstance(node, ast.Assign):
        return f"{_expr(node.target)} = {_expr(node.value)}"
    if isinstance(node, ast.ExprStmt):
        return _expr(node.expr)
    raise ReproError(f"cannot unparse simple statement {node!r}")


def _declaration(node: ast.Declaration) -> str:
    text = f"{node.type} {node.name}"
    if node.array_size is not None:
        text += f"[{node.array_size}]"
    if node.init is not None:
        text += f" = {_expr(node.init)}"
    return text + ";"


def _stmt(node: ast.Stmt, lines: list[str], depth: int) -> None:
    pad = _INDENT * depth
    if isinstance(node, ast.Block):
        lines.append(pad + "{")
        for inner in node.statements:
            _stmt(inner, lines, depth + 1)
        lines.append(pad + "}")
    elif isinstance(node, ast.Declaration):
        lines.append(pad + _declaration(node))
    elif isinstance(node, (ast.Assign, ast.ExprStmt)):
        lines.append(pad + _simple_stmt(node) + ";")
    elif isinstance(node, ast.If):
        lines.append(pad + f"if ({_expr(node.cond)})")
        _body(node.then_body, lines, depth)
        if node.else_body is not None:
            lines.append(pad + "else")
            _body(node.else_body, lines, depth)
    elif isinstance(node, ast.While):
        lines.append(pad + f"while ({_expr(node.cond)})")
        _body(node.body, lines, depth)
    elif isinstance(node, ast.For):
        init = ""
        if isinstance(node.init, ast.Declaration):
            init = _declaration(node.init)[:-1]  # header ';' added below
        elif node.init is not None:
            init = _simple_stmt(node.init)
        cond = _expr(node.cond) if node.cond is not None else ""
        step = _simple_stmt(node.step) if node.step is not None else ""
        lines.append(pad + f"for ({init}; {cond}; {step})")
        _body(node.body, lines, depth)
    elif isinstance(node, ast.Return):
        if node.value is None:
            lines.append(pad + "return;")
        else:
            lines.append(pad + f"return {_expr(node.value)};")
    elif isinstance(node, ast.Break):
        lines.append(pad + "break;")
    elif isinstance(node, ast.Continue):
        lines.append(pad + "continue;")
    else:
        raise ReproError(f"cannot unparse statement {node!r}")


def _body(node: ast.Stmt, lines: list[str], depth: int) -> None:
    """Render a control-flow body, always braced for re-parse stability."""
    if isinstance(node, ast.Block):
        _stmt(node, lines, depth)
    else:
        _stmt(ast.Block(node.line, (node,)), lines, depth)


def unparse_function(func: ast.FunctionDef) -> str:
    params = ", ".join(f"{p.type} {p.name}" for p in func.params)
    lines = [f"{func.return_type} {func.name}({params})"]
    _stmt(func.body, lines, 0)
    return "\n".join(lines)


def unparse(program: ast.Program) -> str:
    """Render a full mini-C program; output ends with a newline."""
    return "\n\n".join(unparse_function(f) for f in program.functions) + "\n"
