"""Composable differential oracles over one generated program.

Each oracle checks one layer of the paper's claim chain:

* ``cross-layer`` — the compiled raw binary and the :class:`IRInterpreter`
  agree on output and exit code (backend preserves IR semantics);
* ``variant-agreement`` — every protected variant behaves exactly like the
  raw program on a fault-free run (transforms preserve semantics);
* ``static-discipline`` — every variant's IR verifies and its assembly
  validates; hybrid/ferrum additionally satisfy the protection invariants
  of :mod:`repro.core.validate`;
* ``fault-soundness`` — a bounded, saturating single-bit injection sweep
  (deterministic site stride, fixed register/bit picks, checkpoint-style
  prefix sharing via :meth:`Machine.run_to_site`) finds no SDC in the
  hybrid/ferrum variants — the paper's coverage claim, sampled;
* ``dme-divergence`` — the DME variant pair must be observably identical
  on a fault-free run: any lockstep disagreement between the primary and
  its structurally decorrelated twin on a generated program is a
  compiler/decorrelation bug (the zero-false-positive property of
  :mod:`repro.core.dme`).

Oracles share one :class:`Subject` so the variants are built and the
golden runs executed exactly once per program. All verdicts are
deterministic functions of the source text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import FerrumConfig
from repro.core.validate import check_protection_invariants
from repro.errors import (
    DetectionExit,
    DmeDivergenceError,
    ExecutionLimitExceeded,
    MachineFault,
    ReproError,
)
from repro.faultinjection.dme import lockstep_reference
from repro.faultinjection.injector import FaultPlan, inject_asm_fault
from repro.faultinjection.outcome import Outcome
from repro.ir.interp import IRInterpreter
from repro.ir.verifier import verify_module
from repro.machine.cpu import Machine
from repro.pipeline import VARIANTS, BuildResult, build_variants

#: Instruction budget for oracle executions. Generated programs run a few
#: thousand dynamic instructions; anything near this bound is a hang.
EXECUTION_BUDGET = 2_000_000

#: Deterministic (register_pick, bit_pick) pairs for the soundness sweep.
SOUNDNESS_PICKS = ((0.0, 0.03), (0.5, 0.55), (0.9, 0.9))

#: Cap on distinct dynamic sites the soundness sweep injects at.
SOUNDNESS_SITE_BUDGET = 24


@dataclass(frozen=True)
class ExecOutcome:
    """One execution, normalized across layers for comparison.

    ``status`` is ``"ok"``, ``"detected"`` (a checker fired), ``"crash"``
    (architectural fault) or ``"hang"`` (budget exhausted); ``output`` and
    ``exit_code`` are only meaningful for ``"ok"``.
    """

    status: str
    output: tuple[str, ...] = ()
    exit_code: int | None = None

    def describe(self) -> str:
        if self.status != "ok":
            return self.status
        return f"ok exit={self.exit_code} output={list(self.output)}"


@dataclass(frozen=True)
class OracleVerdict:
    """The outcome of one oracle on one program."""

    oracle: str
    passed: bool
    detail: str = ""


def run_machine(asm, max_instructions: int = EXECUTION_BUDGET) -> ExecOutcome:
    """Execute an assembly program, folding faults into a status."""
    try:
        result = Machine(asm).run(max_instructions=max_instructions)
    except DetectionExit:
        return ExecOutcome("detected")
    except ExecutionLimitExceeded:
        return ExecOutcome("hang")
    except MachineFault:
        return ExecOutcome("crash")
    return ExecOutcome("ok", result.output, result.exit_code)


def run_ir(module, max_instructions: int = EXECUTION_BUDGET) -> ExecOutcome:
    """Execute a module under the IR interpreter, same normalization."""
    try:
        result = IRInterpreter(module).run(max_instructions=max_instructions)
    except DetectionExit:
        return ExecOutcome("detected")
    except ExecutionLimitExceeded:
        return ExecOutcome("hang")
    except ReproError:
        return ExecOutcome("crash")
    return ExecOutcome("ok", result.output, result.exit_code)


@dataclass
class Subject:
    """One program under test: built variants plus cached executions."""

    source: str
    config: FerrumConfig | None = None
    budget: int = EXECUTION_BUDGET
    build: BuildResult = field(init=False)
    _machine_runs: dict[str, ExecOutcome] = field(default_factory=dict)
    _ir_run: ExecOutcome | None = None

    def __post_init__(self) -> None:
        self.build = build_variants(self.source, config=self.config)

    def machine_run(self, variant: str) -> ExecOutcome:
        if variant not in self._machine_runs:
            self._machine_runs[variant] = run_machine(
                self.build[variant].asm, max_instructions=self.budget)
        return self._machine_runs[variant]

    def ir_run(self) -> ExecOutcome:
        if self._ir_run is None:
            self._ir_run = run_ir(self.build["raw"].ir,
                                  max_instructions=self.budget)
        return self._ir_run


class Oracle:
    """Base class: a named check over a :class:`Subject`."""

    name: str = "oracle"

    def check(self, subject: Subject) -> OracleVerdict:
        raise NotImplementedError

    def _verdict(self, passed: bool, detail: str = "") -> OracleVerdict:
        return OracleVerdict(self.name, passed, detail)


class CrossLayerOracle(Oracle):
    """Machine execution of the raw binary vs direct IR interpretation."""

    name = "cross-layer"

    def check(self, subject: Subject) -> OracleVerdict:
        machine = subject.machine_run("raw")
        interp = subject.ir_run()
        if machine == interp:
            return self._verdict(True)
        return self._verdict(
            False,
            f"machine: {machine.describe()} | ir: {interp.describe()}",
        )


class VariantAgreementOracle(Oracle):
    """Every protected variant must behave exactly like raw, fault-free."""

    name = "variant-agreement"

    def check(self, subject: Subject) -> OracleVerdict:
        raw = subject.machine_run("raw")
        for variant in VARIANTS:
            if variant == "raw" or variant not in subject.build.variants:
                continue
            protected = subject.machine_run(variant)
            if protected != raw:
                return self._verdict(
                    False,
                    f"{variant}: {protected.describe()} "
                    f"| raw: {raw.describe()}",
                )
        return self._verdict(True)


class StaticDisciplineOracle(Oracle):
    """IR verification plus structural protection invariants."""

    name = "static-discipline"

    def check(self, subject: Subject) -> OracleVerdict:
        for variant_name, variant in subject.build.variants.items():
            try:
                verify_module(variant.ir)
                if variant_name in ("hybrid", "ferrum"):
                    check_protection_invariants(variant.asm)
            except ReproError as exc:
                return self._verdict(False, f"{variant_name}: {exc}")
        return self._verdict(True)


class FaultSoundnessOracle(Oracle):
    """No sampled single-bit fault may produce an SDC in hybrid/ferrum.

    The sweep marches one cursor forward through the golden execution
    (:meth:`Machine.run_to_site` — the checkpoint engine's prefix-sharing
    idea) and injects at every ``stride``-th dynamic site with the fixed
    :data:`SOUNDNESS_PICKS`, so its cost is bounded and its verdict is a
    deterministic function of the program.
    """

    name = "fault-soundness"

    def __init__(self, site_budget: int = SOUNDNESS_SITE_BUDGET,
                 picks: tuple[tuple[float, float], ...] = SOUNDNESS_PICKS,
                 variants: tuple[str, ...] = ("hybrid", "ferrum")) -> None:
        self.site_budget = site_budget
        self.picks = picks
        self.variants = variants

    def check(self, subject: Subject) -> OracleVerdict:
        for variant in self.variants:
            if variant not in subject.build.variants:
                continue
            if subject.machine_run(variant).status != "ok":
                # A divergent fault-free run is variant-agreement's finding;
                # injecting into it would only produce noise.
                continue
            program = subject.build[variant].asm
            machine = Machine(program)
            golden = machine.run(max_instructions=subject.budget)
            sites = golden.fault_sites
            stride = max(1, -(-sites // self.site_budget))
            cursor = None
            for site in range(0, sites, stride):
                cursor = machine.run_to_site(site, resume_from=cursor)
                for register_pick, bit_pick in self.picks:
                    plan = FaultPlan(site, register_pick, bit_pick)
                    outcome = inject_asm_fault(
                        program, plan, golden,
                        machine=machine, resume_from=cursor,
                    )
                    if outcome is Outcome.SDC:
                        return self._verdict(
                            False,
                            f"{variant}: SDC at site {site} "
                            f"(register_pick={register_pick}, "
                            f"bit_pick={bit_pick}) of {sites} sites",
                        )
        return self._verdict(True)


class DmeDivergenceOracle(Oracle):
    """The DME pair must never diverge on a fault-free generated program.

    Runs the lockstep differential gate (:func:`lockstep_reference`) —
    canonical per-site traces, output, exit code and counters must all
    match between the primary and its decorrelated twin. A program whose
    fault-free run crashes or hangs is not a DME finding (cross-layer /
    variant-agreement own those); only a genuine lockstep disagreement
    fails this oracle.
    """

    name = "dme-divergence"

    def check(self, subject: Subject) -> OracleVerdict:
        if "dme" not in subject.build.variants:
            return self._verdict(True, "dme variant not built")
        program = subject.build["dme"].asm
        try:
            lockstep_reference(program, max_instructions=subject.budget)
        except DmeDivergenceError as exc:
            return self._verdict(False, str(exc))
        except (MachineFault, ExecutionLimitExceeded) as exc:
            return self._verdict(
                True, f"fault-free run does not complete: {exc}")
        return self._verdict(True)


def default_oracles() -> tuple[Oracle, ...]:
    """The standard oracle battery, in dependency-friendly order."""
    return (
        CrossLayerOracle(),
        VariantAgreementOracle(),
        StaticDisciplineOracle(),
        FaultSoundnessOracle(),
        DmeDivergenceOracle(),
    )


def run_oracles(
    source: str,
    oracles: tuple[Oracle, ...] | None = None,
    config: FerrumConfig | None = None,
    budget: int = EXECUTION_BUDGET,
) -> list[OracleVerdict]:
    """Run the oracle battery over one program; one verdict per oracle.

    A program that fails to build yields a single failed ``build`` verdict
    (the build is itself the first differential check: the frontend,
    backend and transforms must accept every generated program).
    """
    try:
        subject = Subject(source, config=config, budget=budget)
    except ReproError as exc:
        return [OracleVerdict("build", False,
                              f"{type(exc).__name__}: {exc}")]
    verdicts = []
    for oracle in oracles if oracles is not None else default_oracles():
        try:
            verdicts.append(oracle.check(subject))
        except ReproError as exc:
            verdicts.append(OracleVerdict(
                oracle.name, False,
                f"unexpected {type(exc).__name__}: {exc}"))
    return verdicts
