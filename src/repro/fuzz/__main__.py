"""``python -m repro.fuzz`` — same entry point as the ``ferrum-fuzz`` CLI."""

import sys

from repro.fuzz.runner import main

if __name__ == "__main__":
    sys.exit(main())
