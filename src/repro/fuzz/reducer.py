"""Delta-debugging reducer: shrink a failing mini-C program.

Given a program and a predicate ("this source still fails the same way"),
:func:`reduce_source` repeatedly applies shrinking passes and keeps every
candidate the predicate accepts, until a fixed point:

* **function removal** — drop helper functions outright;
* **statement ddmin** — remove chunks of statements from every block,
  halving the chunk size classically (Zeller's ddmin at statement
  granularity);
* **structure collapse** — replace an ``if`` by its then/else body, a loop
  by its body, a block by its statements;
* **expression simplification** — replace any expression by ``0``, ``1``,
  or one of its own subexpressions.

The reducer is completely deterministic: passes run in a fixed order, the
candidate space is enumerated in a fixed order, and no randomness is
involved — the same (program, predicate) pair always reduces to the same
result. Candidates that fail to re-compile are rejected by the predicate
(any :class:`~repro.errors.ReproError` counts as "does not fail the same
way"), so the reducer never needs its own validity checks beyond re-parsing.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.errors import ReproError
from repro.fuzz.unparse import unparse
from repro.minic import ast, parse

#: Predicate contract: True when the candidate still fails the same way.
Predicate = Callable[[str], bool]

_AST_NODES = (ast.Expr, ast.Stmt, ast.FunctionDef, ast.Program)


def _map(node, fn):
    """Rebuild ``node`` pre-order: ``fn`` may return a replacement for any
    AST node (or None to keep descending). Replaced subtrees are not
    re-visited."""
    replacement = fn(node)
    if replacement is not None:
        return replacement
    changes = {}
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if isinstance(value, _AST_NODES):
            rebuilt = _map(value, fn)
            if rebuilt is not value:
                changes[field.name] = rebuilt
        elif isinstance(value, tuple) and any(
            isinstance(item, _AST_NODES) for item in value
        ):
            rebuilt_tuple = tuple(
                _map(item, fn) if isinstance(item, _AST_NODES) else item
                for item in value
            )
            if any(a is not b for a, b in zip(rebuilt_tuple, value)):
                changes[field.name] = rebuilt_tuple
    if changes:
        return dataclasses.replace(node, **changes)
    return node


def _collect(program: ast.Program, node_type) -> int:
    """How many nodes of ``node_type`` a pre-order walk visits."""
    count = 0

    def fn(node):
        nonlocal count
        if isinstance(node, node_type):
            count += 1
        return None

    _map(program, fn)
    return count


def _replace_nth(program: ast.Program, node_type, index: int,
                 make) -> ast.Program:
    """Replace the ``index``-th pre-order node of ``node_type`` with
    ``make(node)``; ``make`` returning None keeps the node."""
    seen = -1

    def fn(node):
        nonlocal seen
        if isinstance(node, node_type):
            seen += 1
            if seen == index:
                return make(node)
        return None

    return _map(program, fn)


class _Reduction:
    def __init__(self, program: ast.Program, predicate: Predicate,
                 max_checks: int) -> None:
        self.best = program
        self.predicate = predicate
        self.checks_left = max_checks
        self.cache: dict[str, bool] = {}

    def _fails(self, source: str) -> bool:
        if source in self.cache:
            return self.cache[source]
        if self.checks_left <= 0:
            return False
        self.checks_left -= 1
        try:
            verdict = bool(self.predicate(source))
        except ReproError:
            verdict = False
        self.cache[source] = verdict
        return verdict

    def try_candidate(self, candidate: ast.Program) -> bool:
        if candidate is self.best:
            return False
        try:
            source = unparse(candidate)
        except ReproError:
            return False
        if self._fails(source):
            # Re-parse so later passes walk the tree the artifact's source
            # actually describes (unparse/parse is the canonical form).
            self.best = parse(source)
            return True
        return False

    # -- passes --------------------------------------------------------------

    def drop_functions(self) -> bool:
        shrunk = False
        changed = True
        while changed:
            changed = False
            names = [f.name for f in self.best.functions if f.name != "main"]
            for name in names:
                candidate = ast.Program(tuple(
                    f for f in self.best.functions if f.name != name
                ))
                if self.try_candidate(candidate):
                    shrunk = changed = True
                    break
        return shrunk

    def ddmin_blocks(self) -> bool:
        shrunk = False
        index = 0
        while index < _collect(self.best, ast.Block):
            if self._ddmin_one_block(index):
                shrunk = True
                # The tree changed; block indices shifted, restart this one.
                continue
            index += 1
        return shrunk

    def _ddmin_one_block(self, block_index: int) -> bool:
        shrunk = False
        while True:
            current = None

            def grab(node):
                nonlocal current
                current = node
                return None

            _replace_nth(self.best, ast.Block, block_index, grab)
            if current is None or not current.statements:
                return shrunk
            statements = current.statements
            chunk = max(1, len(statements) // 2)
            removed = False
            while chunk >= 1 and not removed:
                for start in range(0, len(statements), chunk):
                    kept = statements[:start] + statements[start + chunk:]
                    candidate = _replace_nth(
                        self.best, ast.Block, block_index,
                        lambda node: dataclasses.replace(
                            node, statements=kept),
                    )
                    if self.try_candidate(candidate):
                        removed = True
                        shrunk = True
                        break
                if not removed:
                    chunk //= 2
            if not removed:
                return shrunk

    def collapse_structure(self) -> bool:
        shrunk = False
        index = 0
        while index < _collect(self.best, ast.Stmt):
            candidates = self._structure_candidates(index)
            advanced = True
            for candidate in candidates:
                if self.try_candidate(candidate):
                    shrunk = True
                    advanced = False
                    break
            if advanced:
                index += 1
        return shrunk

    def _structure_candidates(self, index: int) -> list[ast.Program]:
        out: list[ast.Program] = []

        def make(node):
            if isinstance(node, ast.If):
                out.append(_replace_nth(self.best, ast.Stmt, index,
                                        lambda n: n.then_body))
                if node.else_body is not None:
                    out.append(_replace_nth(self.best, ast.Stmt, index,
                                            lambda n: n.else_body))
                    out.append(_replace_nth(
                        self.best, ast.Stmt, index,
                        lambda n: dataclasses.replace(n, else_body=None)))
            elif isinstance(node, (ast.While, ast.For)):
                out.append(_replace_nth(self.best, ast.Stmt, index,
                                        lambda n: n.body))
            return None

        _replace_nth(self.best, ast.Stmt, index, make)
        return out

    def simplify_expressions(self) -> bool:
        shrunk = False
        index = 0
        while index < _collect(self.best, ast.Expr):
            replaced = False
            for candidate in self._expr_candidates(index):
                if self.try_candidate(candidate):
                    shrunk = True
                    replaced = True
                    break
            if not replaced:
                index += 1
        return shrunk

    def _expr_candidates(self, index: int) -> list[ast.Program]:
        target = None

        def grab(node):
            nonlocal target
            target = node
            return None

        _replace_nth(self.best, ast.Expr, index, grab)
        if target is None or isinstance(target, (ast.IntLiteral, ast.VarRef)):
            return []
        replacements: list[ast.Expr] = [ast.IntLiteral(0, 0),
                                        ast.IntLiteral(0, 1)]
        if isinstance(target, ast.Binary):
            replacements += [target.lhs, target.rhs]
        elif isinstance(target, ast.Unary):
            replacements.append(target.operand)
        elif isinstance(target, ast.Index):
            replacements.append(target.index)
        elif isinstance(target, ast.CallExpr):
            replacements += list(target.args)
        return [
            _replace_nth(self.best, ast.Expr, index, lambda _n, r=repl: r)
            for repl in replacements
        ]


def reduce_ast(program: ast.Program, predicate: Predicate,
               max_rounds: int = 10, max_checks: int = 2000) -> ast.Program:
    """Shrink ``program`` while ``predicate(unparse(candidate))`` holds.

    The input program itself must satisfy the predicate; otherwise it is
    returned unchanged.
    """
    state = _Reduction(program, predicate, max_checks)
    if not state._fails(unparse(program)):
        return program
    for _ in range(max_rounds):
        any_shrink = False
        any_shrink |= state.drop_functions()
        any_shrink |= state.ddmin_blocks()
        any_shrink |= state.collapse_structure()
        any_shrink |= state.simplify_expressions()
        if not any_shrink or state.checks_left <= 0:
            break
    return state.best


def reduce_source(source: str, predicate: Predicate,
                  max_rounds: int = 10, max_checks: int = 2000) -> str:
    """Shrink mini-C ``source`` while ``predicate`` keeps accepting it."""
    try:
        program = parse(source)
    except ReproError:
        return source
    return unparse(reduce_ast(program, predicate,
                              max_rounds=max_rounds, max_checks=max_checks))
