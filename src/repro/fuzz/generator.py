"""Seeded grammar-based mini-C program generator.

``generate_program(seed)`` maps an integer seed deterministically to a
well-formed, *terminating*, output-producing mini-C program — the adversarial
input source for the differential oracles. Every random decision flows
through :class:`~repro.utils.rng.DeterministicRng` (seed -> source is a pure
function, stable across runs and processes), and the grammar guarantees by
construction the properties the oracles rely on:

* **termination** — ``for`` loops count a fresh variable to a literal bound
  and ``while`` loops burn a dedicated fuel variable; neither is assignable
  by generated body statements, so every loop is structurally bounded;
* **definedness** — every scalar is initialized at declaration, every array
  is filled by an init loop before any read, division/modulo denominators
  are rendered as ``e % K + K`` (always in ``[1, 2K-1]``), shift counts are
  small literals, and array indexes are either an in-bounds loop counter or
  the safe form ``((e % N) + N) % N``;
* **observability** — programs print intermediate values and ``main`` ends
  by printing every live top-level scalar and array, so silent corruption
  has somewhere to show up.

The generator emits :mod:`repro.minic.ast` trees and renders them through
:mod:`repro.fuzz.unparse`, so generated programs re-parse to the same tree
the reducer operates on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fuzz.unparse import unparse
from repro.minic import ast
from repro.utils.rng import DeterministicRng

_INT = ast.TypeName("int")
_LONG = ast.TypeName("long")

#: Operators safe in any value context (no guards needed).
_SAFE_BINOPS = ("+", "-", "*", "&", "|", "^")
_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class GeneratorConfig:
    """Size and shape knobs; the defaults target fast whole-pipeline runs."""

    max_helpers: int = 2          # helper functions besides main
    main_statements: tuple[int, int] = (3, 8)
    block_statements: tuple[int, int] = (1, 4)
    max_control_depth: int = 2    # nesting of if/while/for
    max_expr_depth: int = 3
    max_array_length: int = 6
    max_loop_trip: int = 6
    literal_magnitude: int = 60


@dataclass(frozen=True)
class _Scalar:
    name: str
    type: ast.TypeName
    mutable: bool


@dataclass(frozen=True)
class _Array:
    name: str
    elem: ast.TypeName
    length: int


@dataclass(frozen=True)
class _Helper:
    name: str
    params: tuple[ast.TypeName, ...]
    returns: ast.TypeName


def _lit(value: int) -> ast.Expr:
    if value < 0:
        return ast.Unary(0, "-", ast.IntLiteral(0, -value))
    return ast.IntLiteral(0, value)


class _Gen:
    def __init__(self, rng: DeterministicRng, config: GeneratorConfig) -> None:
        self.rng = rng
        self.config = config
        self.counter = 0
        self.helpers: list[_Helper] = []
        # Scope stack: each frame is (scalars, arrays) visible lists.
        self.scopes: list[tuple[list[_Scalar], list[_Array]]] = []
        # Loop counters currently in scope, with their literal bound.
        self.loop_counters: list[tuple[str, int]] = []

    # -- naming / scope ------------------------------------------------------

    def _name(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def _push(self) -> None:
        self.scopes.append(([], []))

    def _pop(self) -> None:
        self.scopes.pop()

    def _scalars(self, mutable_only: bool = False) -> list[_Scalar]:
        found = [
            var for frame in self.scopes for var in frame[0]
            if var.mutable or not mutable_only
        ]
        return found

    def _arrays(self) -> list[_Array]:
        return [arr for frame in self.scopes for arr in frame[1]]

    # -- expressions ---------------------------------------------------------

    def _literal(self) -> ast.Expr:
        return _lit(self.rng.randint(-self.config.literal_magnitude,
                                     self.config.literal_magnitude))

    def _atom(self, depth: int = 0) -> ast.Expr:
        """A leaf-ish expression; ``depth`` bounds nested cell/call atoms."""
        choices = ["literal", "literal"]
        if self._scalars():
            choices += ["var", "var", "var"]
        if depth > 0 and self._arrays():
            choices += ["cell", "cell"]
        if depth > 0 and self.helpers:
            choices.append("call")
        kind = self.rng.choice(choices)
        if kind == "var":
            return ast.VarRef(0, self.rng.choice(self._scalars()).name)
        if kind == "cell":
            arr = self.rng.choice(self._arrays())
            return ast.Index(0, ast.VarRef(0, arr.name),
                             self._index(arr, depth - 1))
        if kind == "call":
            return self._call(depth - 1)
        return self._literal()

    def _call(self, depth: int) -> ast.Expr:
        helper = self.rng.choice(self.helpers)
        args = tuple(self._expr(depth) for _ in helper.params)
        return ast.CallExpr(0, helper.name, args)

    def _index(self, arr: _Array, depth: int) -> ast.Expr:
        """An index expression guaranteed to land in ``[0, len)``."""
        usable = [
            (name, bound) for name, bound in self.loop_counters
            if bound <= arr.length
        ]
        if usable and self.rng.random() < 0.6:
            return ast.VarRef(0, self.rng.choice(usable)[0])
        n = _lit(arr.length)
        inner = ast.Binary(0, "%", self._expr(depth), n)
        return ast.Binary(0, "%", ast.Binary(0, "+", inner, n), n)

    def _guarded_divisor(self, depth: int) -> ast.Expr:
        """``e % K + K`` — always in ``[1, 2K-1]``, never 0 or -1."""
        k = self.rng.randint(2, 7)
        return ast.Binary(0, "+",
                          ast.Binary(0, "%", self._expr(depth), _lit(k)),
                          _lit(k))

    def _expr(self, depth: int | None = None) -> ast.Expr:
        if depth is None:
            depth = self.rng.randint(1, self.config.max_expr_depth)
        if depth <= 0 or self.rng.random() < 0.25:
            return self._atom(depth)
        roll = self.rng.random()
        if roll < 0.62:
            op = self.rng.choice(_SAFE_BINOPS)
            return ast.Binary(0, op, self._expr(depth - 1),
                              self._expr(depth - 1))
        if roll < 0.74:
            op = self.rng.choice(("/", "%"))
            return ast.Binary(0, op, self._expr(depth - 1),
                              self._guarded_divisor(depth - 1))
        if roll < 0.84:
            op = self.rng.choice(("<<", ">>"))
            return ast.Binary(0, op, self._expr(depth - 1),
                              _lit(self.rng.randint(0, 7)))
        if roll < 0.94:
            return ast.Unary(0, "-", self._expr(depth - 1))
        return ast.Binary(0, "^", self._expr(depth - 1),
                          self._atom(depth - 1))

    def _cond(self, depth: int = 2) -> ast.Expr:
        roll = self.rng.random()
        if depth > 0 and roll < 0.25:
            op = self.rng.choice(("&&", "||"))
            return ast.Binary(0, op, self._cond(depth - 1),
                              self._cond(depth - 1))
        if depth > 0 and roll < 0.33:
            return ast.Unary(0, "!", self._cond(depth - 1))
        op = self.rng.choice(_CMP_OPS)
        return ast.Binary(0, op, self._expr(2), self._expr(2))

    # -- statements ----------------------------------------------------------

    def _declare_scalar(self) -> ast.Stmt:
        type_name = self.rng.choice((_INT, _INT, _LONG))
        name = self._name("v")
        # Build the initializer before registering the name: a
        # self-referencing initializer would read uninitialized memory,
        # which is exactly the kind of undefined behaviour the differential
        # oracles must never see from a clean program.
        init = self._expr()
        self.scopes[-1][0].append(_Scalar(name, type_name, True))
        return ast.Declaration(0, type_name, name, None, init)

    def _declare_array(self) -> list[ast.Stmt]:
        elem = self.rng.choice((_INT, _LONG))
        name = self._name("a")
        length = self.rng.randint(2, self.config.max_array_length)
        decl = ast.Declaration(0, elem, name, length, None)
        counter = self._name("i")
        fill = ast.Assign(
            0,
            ast.Index(0, ast.VarRef(0, name), ast.VarRef(0, counter)),
            ast.Binary(0, "+",
                       ast.Binary(0, "*", ast.VarRef(0, counter),
                                  self._literal()),
                       self._literal()),
        )
        loop = self._counted_for(counter, length, ast.Block(0, (fill,)))
        # Register only after the fill loop is built so the initializer
        # cannot read the array it is defining.
        self.scopes[-1][1].append(_Array(name, elem, length))
        return [decl, loop]

    def _counted_for(self, counter: str, bound: int,
                     body: ast.Block) -> ast.Stmt:
        init = ast.Declaration(0, _INT, counter, None, _lit(0))
        cond = ast.Binary(0, "<", ast.VarRef(0, counter), _lit(bound))
        step = ast.Assign(0, ast.VarRef(0, counter),
                          ast.Binary(0, "+", ast.VarRef(0, counter), _lit(1)))
        return ast.For(0, init, cond, step, body)

    def _assign(self) -> ast.Stmt | None:
        targets: list[str] = []
        if self._scalars(mutable_only=True):
            targets.append("scalar")
        if self._arrays():
            targets.append("cell")
        if not targets:
            return None
        if self.rng.choice(targets) == "scalar":
            var = self.rng.choice(self._scalars(mutable_only=True))
            return ast.Assign(0, ast.VarRef(0, var.name), self._expr())
        arr = self.rng.choice(self._arrays())
        target = ast.Index(0, ast.VarRef(0, arr.name),
                           self._index(arr, depth=1))
        return ast.Assign(0, target, self._expr())

    def _print(self) -> ast.Stmt:
        builtin = self.rng.choice(("print_int", "print_long"))
        return ast.ExprStmt(0, ast.CallExpr(0, builtin, (self._expr(),)))

    def _if(self, depth: int, in_loop: bool) -> ast.Stmt:
        then_body = self._block(depth + 1, in_loop)
        else_body = None
        if self.rng.random() < 0.4:
            else_body = self._block(depth + 1, in_loop)
        return ast.If(0, self._cond(), then_body, else_body)

    def _for(self, depth: int) -> ast.Stmt:
        counter = self._name("i")
        bound = self.rng.randint(1, self.config.max_loop_trip)
        self.loop_counters.append((counter, bound))
        self._push()
        self.scopes[-1][0].append(_Scalar(counter, _INT, False))
        statements = self._statements(depth + 1, in_loop=True)
        self._pop()
        self.loop_counters.pop()
        return self._counted_for(counter, bound,
                                 ast.Block(0, tuple(statements)))

    def _while(self, depth: int) -> list[ast.Stmt]:
        fuel = self._name("fuel")
        budget = self.rng.randint(1, self.config.max_loop_trip)
        decl = ast.Declaration(0, _INT, fuel, None, _lit(budget))
        self.scopes[-1][0].append(_Scalar(fuel, _INT, False))
        burn = ast.Assign(0, ast.VarRef(0, fuel),
                          ast.Binary(0, "-", ast.VarRef(0, fuel), _lit(1)))
        self._push()
        statements = self._statements(depth + 1, in_loop=True)
        self._pop()
        cond = ast.Binary(0, ">", ast.VarRef(0, fuel), _lit(0))
        # The fuel burn comes first so a generated ``continue`` can never
        # skip it and loop forever. The declaration stays a sibling of the
        # loop (not wrapped in a block) so the fuel variable's lexical scope
        # matches the enclosing scope it was registered in.
        body = ast.Block(0, (burn, *statements))
        return [decl, ast.While(0, cond, body)]

    def _statements(self, depth: int, in_loop: bool) -> list[ast.Stmt]:
        low, high = self.config.block_statements
        budget = self.rng.randint(low, high)
        out: list[ast.Stmt] = []
        for _ in range(budget):
            out.extend(self._statement(depth, in_loop))
        if in_loop and self.rng.random() < 0.15:
            out.append(
                ast.Break(0) if self.rng.random() < 0.5 else ast.Continue(0)
            )
        return out

    def _statement(self, depth: int, in_loop: bool) -> list[ast.Stmt]:
        choices = ["declare", "assign", "assign", "print"]
        if depth == 0:
            choices.append("array")
        if depth < self.config.max_control_depth:
            choices += ["if", "for", "while"]
        kind = self.rng.choice(choices)
        if kind == "declare":
            return [self._declare_scalar()]
        if kind == "array":
            return self._declare_array()
        if kind == "assign":
            assign = self._assign()
            return [assign] if assign is not None else [self._declare_scalar()]
        if kind == "print":
            return [self._print()]
        if kind == "if":
            return [self._if(depth, in_loop)]
        if kind == "for":
            return [self._for(depth)]
        return self._while(depth)

    def _block(self, depth: int, in_loop: bool) -> ast.Block:
        self._push()
        statements = self._statements(depth, in_loop)
        self._pop()
        return ast.Block(0, tuple(statements))

    # -- functions -----------------------------------------------------------

    def _helper(self) -> ast.FunctionDef:
        name = self._name("f")
        returns = self.rng.choice((_INT, _LONG))
        params = tuple(
            self.rng.choice((_INT, _LONG))
            for _ in range(self.rng.randint(1, 2))
        )
        self._push()
        param_nodes = []
        for ptype in params:
            pname = self._name("p")
            param_nodes.append(ast.Param(ptype, pname))
            self.scopes[-1][0].append(_Scalar(pname, ptype, True))
        body: list[ast.Stmt] = []
        for _ in range(self.rng.randint(1, 3)):
            body.extend(self._statement(depth=1, in_loop=False))
        if self.rng.random() < 0.3:
            body.append(ast.If(0, self._cond(),
                               ast.Block(0, (ast.Return(0, self._expr()),))))
        body.append(ast.Return(0, self._expr()))
        self._pop()
        func = ast.FunctionDef(0, returns, name, tuple(param_nodes),
                               ast.Block(0, tuple(body)))
        self.helpers.append(_Helper(name, params, returns))
        return func

    def _main(self) -> ast.FunctionDef:
        self._push()
        body: list[ast.Stmt] = []
        if self.rng.random() < 0.3:
            body.append(ast.ExprStmt(0, ast.CallExpr(
                0, "srand", (_lit(self.rng.randint(0, 99)),))))
        low, high = self.config.main_statements
        for _ in range(self.rng.randint(low, high)):
            body.extend(self._statement(depth=0, in_loop=False))
        # Epilogue: print every top-level scalar and array so any silent
        # corruption of surviving state is observable.
        for var in self.scopes[-1][0]:
            builtin = "print_long" if var.type == _LONG else "print_int"
            body.append(ast.ExprStmt(0, ast.CallExpr(
                0, builtin, (ast.VarRef(0, var.name),))))
        for arr in self.scopes[-1][1]:
            counter = self._name("i")
            builtin = "print_long" if arr.elem == _LONG else "print_int"
            cell = ast.Index(0, ast.VarRef(0, arr.name),
                             ast.VarRef(0, counter))
            emit = ast.ExprStmt(0, ast.CallExpr(0, builtin, (cell,)))
            body.append(self._counted_for(counter, arr.length,
                                          ast.Block(0, (emit,))))
        body.append(ast.Return(0, _lit(0)))
        self._pop()
        return ast.FunctionDef(0, _INT, "main", (), ast.Block(0, tuple(body)))

    def program(self) -> ast.Program:
        functions = [
            self._helper()
            for _ in range(self.rng.randint(0, self.config.max_helpers))
        ]
        functions.append(self._main())
        return ast.Program(tuple(functions))


def generate_ast(seed: int, config: GeneratorConfig | None = None) \
        -> ast.Program:
    """The AST of the program for ``seed`` (deterministic)."""
    return _Gen(DeterministicRng(seed), config or GeneratorConfig()).program()


def generate_program(seed: int, config: GeneratorConfig | None = None) -> str:
    """Mini-C source text for ``seed``: a pure, deterministic mapping."""
    return unparse(generate_ast(seed, config))
