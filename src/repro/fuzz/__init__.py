"""Differential fuzzing for the FERRUM pipeline.

Seeded grammar-based program generation (:mod:`repro.fuzz.generator`),
composable differential oracles (:mod:`repro.fuzz.oracles`), a
delta-debugging reducer (:mod:`repro.fuzz.reducer`) and the campaign
driver behind the ``ferrum-fuzz`` CLI (:mod:`repro.fuzz.runner`).
"""

from repro.fuzz.generator import GeneratorConfig, generate_ast, generate_program
from repro.fuzz.oracles import (
    CrossLayerOracle,
    ExecOutcome,
    FaultSoundnessOracle,
    OracleVerdict,
    StaticDisciplineOracle,
    Subject,
    VariantAgreementOracle,
    default_oracles,
    run_oracles,
)
from repro.fuzz.reducer import reduce_ast, reduce_source
from repro.fuzz.runner import FuzzReport, FuzzResult, check_seed, run_fuzz
from repro.fuzz.unparse import unparse

__all__ = [
    "CrossLayerOracle",
    "ExecOutcome",
    "FaultSoundnessOracle",
    "FuzzReport",
    "FuzzResult",
    "GeneratorConfig",
    "OracleVerdict",
    "StaticDisciplineOracle",
    "Subject",
    "VariantAgreementOracle",
    "check_seed",
    "default_oracles",
    "generate_ast",
    "generate_program",
    "reduce_ast",
    "reduce_source",
    "run_fuzz",
    "run_oracles",
    "unparse",
]
