"""Fuzz campaign driver and the ``ferrum-fuzz`` CLI.

A fuzz run walks a contiguous seed range, generates one program per seed,
and runs the differential oracle battery over it. Failing seeds become
crash artifacts: a directory per finding holding the generated source, the
delta-debugged minimal reproducer, and a JSON verdict with a one-line
repro command. Because seed → program → verdict is a pure function, any
finding replays exactly with ``ferrum-fuzz --seed-start <N> --count 1``.

Parallelism mirrors the fault-injection campaign's fork-pool pattern
(:mod:`repro.faultinjection.campaign`): shared configuration is staged in a
module-level dict inherited by forked workers, with a sequential fallback
where ``fork`` is unavailable. Workers are pure per-seed functions, so the
set of findings is identical for ``processes=1`` and ``processes>1``.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import FerrumConfig
from repro.fuzz.generator import GeneratorConfig, generate_program
from repro.fuzz.oracles import (
    CrossLayerOracle,
    DmeDivergenceOracle,
    FaultSoundnessOracle,
    OracleVerdict,
    StaticDisciplineOracle,
    VariantAgreementOracle,
    run_oracles,
)
from repro.fuzz.reducer import reduce_source

#: Instruction cap for reduction candidates. Generated programs execute a
#: few thousand dynamic instructions; a candidate that needs more than this
#: has (e.g.) lost its loop-fuel decrement and would otherwise grind the
#: full oracle budget on every ddmin probe.
REDUCTION_BUDGET = 500_000


@dataclass(frozen=True)
class FuzzResult:
    """Verdict battery for one seed."""

    seed: int
    verdicts: tuple[OracleVerdict, ...]

    @property
    def passed(self) -> bool:
        return all(v.passed for v in self.verdicts)

    @property
    def failing_oracle(self) -> str | None:
        for verdict in self.verdicts:
            if not verdict.passed:
                return verdict.oracle
        return None


@dataclass
class FuzzReport:
    """Outcome of a whole fuzz run."""

    seed_start: int
    requested: int
    completed: int
    findings: list[FuzzResult]
    elapsed: float

    @property
    def clean(self) -> bool:
        return not self.findings


class _SeedTimeout(Exception):
    """Internal: the per-seed wall-clock alarm fired."""


@contextmanager
def _alarm(seconds: float | None):
    """Raise :class:`_SeedTimeout` after ``seconds`` of wall-clock time.

    SIGALRM-based, so it interrupts even a wedged interpreter loop that
    never yields. Only usable in a main thread — true for both the
    sequential path and fork-pool workers (pool tasks run in the child's
    main thread); a no-op where ``SIGALRM`` does not exist or no timeout
    was requested.
    """
    if seconds is None or seconds <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _fire(signum, frame):
        raise _SeedTimeout()

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def check_seed(
    seed: int,
    generator_config: GeneratorConfig | None = None,
    ferrum_config: FerrumConfig | None = None,
    seed_timeout: float | None = None,
) -> FuzzResult:
    """Generate the program for ``seed`` and run the oracle battery.

    ``seed_timeout`` bounds the seed's wall-clock time (generation plus
    every oracle). A seed that exceeds it yields a failed ``seed-timeout``
    verdict — a finding like any other (timeouts are how interpreter
    livelocks surface), with the usual replay command in its artifact.
    """
    try:
        with _alarm(seed_timeout):
            source = generate_program(seed, config=generator_config)
            verdicts = run_oracles(source, config=ferrum_config)
    except _SeedTimeout:
        return FuzzResult(seed, (OracleVerdict(
            "seed-timeout", False,
            f"seed exceeded {seed_timeout:g}s wall clock"),))
    return FuzzResult(seed, tuple(verdicts))


# -- fork-pool plumbing (same shape as the injection campaign) ---------------

_PARALLEL_STATE: dict = {}


def _parallel_check(seed: int) -> FuzzResult:
    state = _PARALLEL_STATE
    return check_seed(seed, generator_config=state.get("generator_config"),
                      ferrum_config=state.get("ferrum_config"),
                      seed_timeout=state.get("seed_timeout"))


def _fork_context():
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def _repro_command(seed: int) -> str:
    return f"ferrum-fuzz --seed-start {seed} --count 1"


def _reduction_predicate(oracle_name: str, ferrum_config):
    """True when a candidate source still fails ``oracle_name``."""
    battery = {
        "cross-layer": CrossLayerOracle,
        "variant-agreement": VariantAgreementOracle,
        "static-discipline": StaticDisciplineOracle,
        "fault-soundness": FaultSoundnessOracle,
        "dme-divergence": DmeDivergenceOracle,
    }
    # A "build" failure has no oracle object: an empty battery still
    # produces the single failed build verdict when compilation raises.
    oracles = ()
    if oracle_name in battery:
        oracles = (battery[oracle_name](),)

    def predicate(source: str) -> bool:
        verdicts = run_oracles(source, oracles=oracles, config=ferrum_config,
                               budget=REDUCTION_BUDGET)
        return any(v.oracle == oracle_name and not v.passed
                   for v in verdicts)

    return predicate


def write_artifact(
    result: FuzzResult,
    artifact_dir: Path,
    source: str,
    reduce: bool = True,
    ferrum_config: FerrumConfig | None = None,
) -> Path:
    """Persist one finding as ``seed-<N>/{program.c,reduced.c,verdict.json}``.

    Returns the artifact directory. ``reduced.c`` is only written when
    reduction is enabled and actually shrank the program.
    """
    seed_dir = artifact_dir / f"seed-{result.seed}"
    seed_dir.mkdir(parents=True, exist_ok=True)
    (seed_dir / "program.c").write_text(source)
    reduced_source = None
    # Timeout findings are not reduced: every ddmin probe would re-run the
    # battery on a candidate that may hang for the full timeout again.
    if (reduce and result.failing_oracle is not None
            and result.failing_oracle != "seed-timeout"):
        predicate = _reduction_predicate(result.failing_oracle, ferrum_config)
        reduced_source = reduce_source(source, predicate)
        if reduced_source.strip() != source.strip():
            (seed_dir / "reduced.c").write_text(reduced_source)
        else:
            reduced_source = None
    verdict = {
        "seed": result.seed,
        "failing_oracle": result.failing_oracle,
        "repro": _repro_command(result.seed),
        "reduced": reduced_source is not None,
        "verdicts": [
            {"oracle": v.oracle, "passed": v.passed, "detail": v.detail}
            for v in result.verdicts
        ],
    }
    (seed_dir / "verdict.json").write_text(
        json.dumps(verdict, indent=2) + "\n")
    return seed_dir


def run_fuzz(
    seed_start: int = 0,
    count: int = 100,
    processes: int = 1,
    time_budget: float | None = None,
    artifact_dir: str | Path | None = None,
    reduce: bool = True,
    generator_config: GeneratorConfig | None = None,
    ferrum_config: FerrumConfig | None = None,
    seed_timeout: float | None = None,
    log=None,
) -> FuzzReport:
    """Fuzz seeds ``[seed_start, seed_start + count)``.

    ``time_budget`` (seconds) stops the run early at a chunk boundary; the
    seeds that *did* run still produce exactly the verdicts a full run
    would. ``seed_timeout`` bounds each individual seed's wall clock (see
    :func:`check_seed`) so one livelocked seed cannot eat the whole
    budget. Findings are written to ``artifact_dir`` as they appear.
    """
    started = time.perf_counter()
    seeds = list(range(seed_start, seed_start + count))
    findings: list[FuzzResult] = []
    completed = 0
    out_dir = Path(artifact_dir) if artifact_dir is not None else None

    def note(result: FuzzResult) -> None:
        nonlocal completed
        completed += 1
        if result.passed:
            return
        findings.append(result)
        if log is not None:
            log(f"seed {result.seed}: FAIL ({result.failing_oracle})")
        if out_dir is not None:
            try:
                # Re-generating a timed-out seed's source can hang the
                # same way the check did; keep it under the same alarm.
                with _alarm(seed_timeout):
                    source = generate_program(result.seed,
                                              config=generator_config)
            except _SeedTimeout:
                source = (f"// seed {result.seed}: source generation "
                          f"exceeded {seed_timeout:g}s wall clock\n")
            write_artifact(result, out_dir, source, reduce=reduce,
                           ferrum_config=ferrum_config)

    context = _fork_context() if processes > 1 else None
    if context is not None and processes > 1:
        _PARALLEL_STATE.update(generator_config=generator_config,
                               ferrum_config=ferrum_config,
                               seed_timeout=seed_timeout)
        chunk_size = max(processes * 4, 8)
        try:
            with context.Pool(processes) as pool:
                for base in range(0, len(seeds), chunk_size):
                    chunk = seeds[base:base + chunk_size]
                    for result in pool.map(_parallel_check, chunk,
                                           chunksize=1):
                        note(result)
                    if (time_budget is not None
                            and time.perf_counter() - started > time_budget):
                        break
        finally:
            _PARALLEL_STATE.clear()
    else:
        for seed in seeds:
            if (time_budget is not None
                    and time.perf_counter() - started > time_budget):
                break
            note(check_seed(seed, generator_config=generator_config,
                            ferrum_config=ferrum_config,
                            seed_timeout=seed_timeout))

    return FuzzReport(seed_start, count, completed, findings,
                      time.perf_counter() - started)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ferrum-fuzz",
        description="Differential fuzzer for the FERRUM pipeline: "
        "generates seeded mini-C programs and cross-checks machine "
        "execution, IR interpretation, protected variants, static "
        "invariants and fault-injection soundness.",
    )
    parser.add_argument("--seed-start", type=int, default=0,
                        help="first seed (default 0)")
    parser.add_argument("--count", type=int, default=100,
                        help="number of seeds (default 100)")
    parser.add_argument("--processes", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="stop after this many seconds")
    parser.add_argument("--seed-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock limit per seed; a seed exceeding "
                        "it becomes a seed-timeout finding")
    parser.add_argument("--artifact-dir", default="fuzz-artifacts",
                        help="directory for crash artifacts "
                        "(default fuzz-artifacts)")
    parser.add_argument("--no-reduce", action="store_true",
                        help="skip delta-debugging of findings")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    args = parser.parse_args(argv)

    log = None if args.quiet else lambda msg: print(msg, flush=True)
    report = run_fuzz(
        seed_start=args.seed_start,
        count=args.count,
        processes=args.processes,
        time_budget=args.time_budget,
        artifact_dir=args.artifact_dir,
        reduce=not args.no_reduce,
        seed_timeout=args.seed_timeout,
        log=log,
    )
    if not args.quiet:
        status = "clean" if report.clean else (
            f"{len(report.findings)} finding(s) in {args.artifact_dir}/")
        print(f"fuzzed {report.completed}/{report.requested} seeds "
              f"from {report.seed_start} in {report.elapsed:.1f}s: {status}")
        for finding in report.findings:
            print(f"  seed {finding.seed}: {finding.failing_oracle} — "
                  f"replay: {_repro_command(finding.seed)}")
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
