#!/usr/bin/env bash
# Repository check gate: lint (when available) + tier-1 tests.
#
# Mirrors .github/workflows/ci.yml so the same command works locally and
# in CI. The campaign-throughput perf smoke (tier-2, marker `perf`) is NOT
# part of this gate — run it explicitly:
#   PYTHONPATH=src python -m pytest benchmarks/test_campaign_throughput.py -q
# The exec-throughput smoke runs at the end in advisory mode (reported,
# never fails the gate) — wall-clock gates are too noisy to block on.
set -euo pipefail

cd "$(dirname "$0")/.."

status=0

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff lint =="
    ruff check src tests || status=$?
else
    # Hermetic environments (including the development container) don't
    # ship ruff; the lint gate runs where it's installed (CI) and is
    # skipped — not failed — elsewhere.
    echo "== ruff lint == SKIPPED (ruff not installed)"
fi

echo "== tier-1 tests (perf marker deselected) =="
PYTHONPATH=src python -m pytest tests -q -m "not perf" || status=$?

echo "== tier-1 tests (fused execution engine) =="
# The superblock-fused engine must be invisible to the whole suite
# (bit-identity contract; see docs/performance.md).
FERRUM_ENGINE=fused PYTHONPATH=src python -m pytest tests -q -m "not perf" \
    || status=$?

echo "== compose bit-identity (composed vs flat campaigns) =="
# The compositional campaign must stay bit-identical to the flat one and
# the section cache must hit across process boundaries; this surfaces the
# contract explicitly even though the file is also part of tier-1.
PYTHONPATH=src python -m pytest tests/faultinjection/test_compose_campaign.py \
    -q || status=$?

echo "== convergence early-exit (trail determinism + bit-identity) =="
# Mirrors the CI tests-converge job: golden digest trails must fingerprint
# identically across engines/processes, and converge=True campaigns must
# stay byte-identical to plain ones through every execution strategy.
PYTHONPATH=src python -m pytest tests/machine/test_converge.py \
    tests/faultinjection/test_converge_campaign.py -q || status=$?

echo "== dme detector gate (marker dme + service CLI smoke) =="
# Mirrors the CI tests-dme job: the dme-marked suites (decorrelation
# properties, campaign parity, the backend-site coverage gate) and an
# end-to-end --techniques dme campaign through the durable service.
PYTHONPATH=src python -m pytest tests -q -m dme || status=$?
rm -rf dme-smoke
PYTHONPATH=src python -m repro.evaluation.cli serve \
    --state-dir dme-smoke --workloads kmeans --techniques dme \
    --samples 24 --shard-size 8 --workers 2 --no-fsync >/dev/null \
    || status=$?
rm -rf dme-smoke

echo "== fuzz smoke (fixed seeds, bounded) =="
# Mirrors the CI fuzz-smoke job: a deterministic seed range under a time
# budget. Findings land in fuzz-artifacts/ with per-seed repro commands.
PYTHONPATH=src python -m repro.fuzz --seed-start 0 --count 40 \
    --time-budget 60 --artifact-dir fuzz-artifacts --quiet || status=$?

echo "== campaign chaos gate (kill-anywhere resume + bounded buffers) =="
# Mirrors the CI campaign-chaos job: SIGKILLs the durable campaign
# service at random points across a 3-workload x 2-technique matrix and
# requires resumed output bytes identical to an uninterrupted run, then
# proves the record buffer stays <= one shard on a 10k-fault campaign.
PYTHONPATH=src python -m pytest benchmarks/test_service_chaos.py -q \
    || status=$?

echo "== exec throughput smoke (advisory) =="
# Translated-vs-reference engine gate (>= 3x instr/sec; see
# docs/performance.md). Advisory: reported but never fails this gate.
PYTHONPATH=src python -m pytest benchmarks/test_exec_throughput.py -q \
    || echo "WARNING: exec throughput smoke failed (advisory only)"

exit "$status"
