#!/bin/sh
set -e
cd /root/repo
for ex in quickstart fault_injection_campaign custom_workload ablation_sweep; do
  echo "=== examples/$ex.py ==="
  python "examples/$ex.py" > "results/example_$ex.txt" 2>&1 && echo OK || echo FAILED
done
