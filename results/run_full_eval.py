"""Full evaluation run: all figures/tables, saved to results/."""
import json, time, sys

from repro.evaluation import (
    run_fig10, run_fig11, run_transform_time, run_crosslayer_gap,
    render_fig10, render_fig11, render_transform_time, render_gap,
    render_table1, render_table2,
)
from repro.evaluation.report import render_fig10_outcomes
from repro.faultinjection.outcome import Outcome

SAMPLES = int(sys.argv[1]) if len(sys.argv) > 1 else 100

out = []
t0 = time.time()
out.append(render_table1()); out.append("")
out.append(render_table2()); out.append("")
print(f"[{time.time()-t0:6.0f}s] tables done", flush=True)

fig11 = run_fig11()
out.append(render_fig11(fig11)); out.append("")
print(f"[{time.time()-t0:6.0f}s] fig11 done", flush=True)

tt = run_transform_time()
out.append(render_transform_time(tt)); out.append("")
print(f"[{time.time()-t0:6.0f}s] transform-time done", flush=True)

fig10 = run_fig10(samples=SAMPLES)
out.append(render_fig10(fig10)); out.append("")
out.append(render_fig10_outcomes(fig10)); out.append("")
print(f"[{time.time()-t0:6.0f}s] fig10 done", flush=True)

gap = run_crosslayer_gap(samples=SAMPLES)
out.append(render_gap(gap)); out.append("")
print(f"[{time.time()-t0:6.0f}s] gap done", flush=True)

with open("/root/repo/results/full_eval.txt", "w") as f:
    f.write("\n".join(out))

summary = {
    "samples": SAMPLES,
    "fig11_avg": {t: fig11.average_overhead(t) for t in ("ir-eddi","hybrid","ferrum")},
    "fig10_avg": {t: fig10.average_coverage(t) for t in ("ir-eddi","hybrid","ferrum")},
    "fig10_rows": [
        {"benchmark": r.benchmark,
         "raw_sdc": r.raw.sdc_probability,
         **{t: r.coverage(t) for t in ("ir-eddi","hybrid","ferrum")}}
        for r in fig10.rows
    ],
    "gap_avg": gap.average_gap,
    "gap_rows": gap.rows,
    "transform_ms": [dict(r, seconds=float(r["seconds"])) for r in tt.rows],
}
with open("/root/repo/results/full_eval.json", "w") as f:
    json.dump(summary, f, indent=2, default=str)
print("ALL DONE", time.time()-t0, flush=True)
