"""Fig. 10: SDC coverage per benchmark for all three techniques.

One benchmark per workload (selectable with ``-k`` or REPRO_WORKLOADS);
each runs four seeded campaigns (raw + three protected variants) of
``REPRO_FI_SAMPLES`` single-bit faults and asserts the paper's shape:
FERRUM and HYBRID at 100 % SDC coverage, IR-LEVEL-EDDI below.
A final summary test prints the figure as a table.
"""

import pytest

from conftest import FI_SAMPLES, SELECTED, build_for, emit
from repro.evaluation.experiments import CoverageRow, Fig10Result, TECHNIQUES
from repro.evaluation.figures import render_fig10_chart
from repro.evaluation.report import render_fig10
from repro.faultinjection.campaign import run_campaign

_rows: dict[str, CoverageRow] = {}


def _coverage_row(name: str) -> CoverageRow:
    if name not in _rows:
        build = build_for(name)
        raw = run_campaign(build["raw"].asm, FI_SAMPLES, seed=2024)
        row = CoverageRow(name, raw)
        for technique in TECHNIQUES:
            row.campaigns[technique] = run_campaign(
                build[technique].asm, FI_SAMPLES, seed=2024
            )
        _rows[name] = row
    return _rows[name]


@pytest.mark.parametrize("name", SELECTED)
def test_fig10_benchmark(benchmark, name):
    row = benchmark.pedantic(_coverage_row, args=(name,), rounds=1,
                             iterations=1)
    benchmark.extra_info["raw_sdc"] = round(row.raw.sdc_probability, 4)
    for technique in TECHNIQUES:
        benchmark.extra_info[f"coverage_{technique}"] = round(
            row.coverage(technique), 4
        )

    # Paper Fig. 10 shape: assembly-level techniques reach full coverage;
    # IR-level EDDI cannot exceed them.
    assert row.raw.sdc_probability > 0, "raw binary must exhibit SDCs"
    assert row.coverage("ferrum") == 1.0
    assert row.coverage("hybrid") == 1.0
    assert row.coverage("ir-eddi") <= 1.0


def test_fig10_summary(benchmark, capsys):
    def summarize() -> Fig10Result:
        result = Fig10Result(samples=FI_SAMPLES, seed=2024)
        result.rows = [_coverage_row(name) for name in SELECTED]
        return result

    result = benchmark.pedantic(summarize, rounds=1, iterations=1)
    emit(capsys, render_fig10(result))
    emit(capsys, render_fig10_chart(result))

    # Paper average: IR-EDDI ~72 % — materially below the assembly-level
    # techniques' 100 %.
    assert result.average_coverage("ferrum") == 1.0
    assert result.average_coverage("hybrid") == 1.0
    if FI_SAMPLES >= 20 and len(SELECTED) >= 4:
        # Statistically meaningful campaign sizes only: tiny smoke runs may
        # not sample any of IR-EDDI's (minority) unprotected sites.
        assert result.average_coverage("ir-eddi") < 1.0
