"""Ablations and extensions beyond the paper's headline figures.

* SIMD batching ablation — FERRUM with SIMD off (AS₂ → scalar) and with
  smaller batch sizes: quantifies how much of the speedup Fig. 6's batching
  buys (the design choice DESIGN.md calls out);
* root-cause histogram — the mechanical version of the paper's Sec. IV-B1
  analysis of where IR-LEVEL-EDDI's residual SDCs come from;
* multi-bit faults — the paper's stated future work: double-fault
  campaigns against FERRUM.
"""

import pytest

from conftest import FI_SAMPLES, build_for, emit
from repro.core.config import FerrumConfig
from repro.evaluation.metrics import runtime_overhead
from repro.evaluation.root_cause import analyze_root_causes
from repro.faultinjection.multibit import run_multibit_campaign
from repro.faultinjection.outcome import Outcome
from repro.machine.cpu import Machine
from repro.machine.timing import TimingConfig
from repro.pipeline import build_variants
from repro.utils.text import format_table, percent
from repro.workloads import get_workload

ABLATION_WORKLOAD = "pathfinder"


def test_simd_batching_ablation(benchmark, capsys):
    def run() -> dict[str, float]:
        source = get_workload(ABLATION_WORKLOAD).source(1)
        timing = TimingConfig()
        raw = build_variants(source, names=("raw",))["raw"]
        raw_cycles = Machine(raw.asm).run(timing=timing).cycles
        golden = Machine(raw.asm).run().output
        overheads = {}
        for label, config in (
            ("batch=4 (paper)", FerrumConfig()),
            ("batch=2", FerrumConfig(simd_batch=2)),
            ("batch=1", FerrumConfig(simd_batch=1)),
            ("no SIMD", FerrumConfig(use_simd=False)),
        ):
            variant = build_variants(source, names=("ferrum",),
                                     config=config)["ferrum"]
            machine = Machine(variant.asm)
            assert machine.run().output == golden
            cycles = machine.run(timing=timing).cycles
            overheads[label] = runtime_overhead(cycles, raw_cycles)
        return overheads

    overheads = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(capsys, format_table(
        ["configuration", "overhead"],
        [[label, percent(value)] for label, value in overheads.items()],
        title=f"SIMD batching ablation ({ABLATION_WORKLOAD})",
    ))
    # Batching must pay: full batches beat per-instruction SIMD checks,
    # and SIMD use must beat the scalar fallback.
    assert overheads["batch=4 (paper)"] < overheads["batch=1"]
    assert overheads["batch=4 (paper)"] < overheads["no SIMD"]


def test_root_cause_histogram(benchmark, capsys):
    def run():
        build = build_for("pathfinder")
        return analyze_root_causes(build["ir-eddi"].asm,
                                   samples=max(FI_SAMPLES * 4, 160), seed=13)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(capsys, result.render())
    benchmark.extra_info["total_sdc"] = result.total_sdc
    # Sec. IV-B1: the residual SDCs exist and are attributable.
    assert result.total_sdc > 0
    assert result.by_class


def test_multibit_future_work(benchmark, capsys):
    def run():
        build = build_for("knn")
        rows = {}
        for mode in ("spatial", "temporal"):
            rows[mode] = {
                name: run_multibit_campaign(build[name].asm, FI_SAMPLES,
                                            seed=21, mode=mode)
                for name in ("raw", "ferrum")
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    for mode, campaigns in rows.items():
        for name, campaign in campaigns.items():
            table.append([mode, name,
                          percent(campaign.outcomes.rate(Outcome.SDC)),
                          percent(campaign.outcomes.rate(Outcome.DETECTED))])
    emit(capsys, format_table(
        ["mode", "variant", "P(SDC)", "P(detected)"], table,
        title="Multi-bit faults (paper future work), knn",
    ))
    for mode in ("spatial", "temporal"):
        raw_sdc = rows[mode]["raw"].outcomes.rate(Outcome.SDC)
        ferrum_sdc = rows[mode]["ferrum"].outcomes.rate(Outcome.SDC)
        assert ferrum_sdc <= raw_sdc
