"""Shared benchmark fixtures.

Environment knobs:

* ``REPRO_FI_SAMPLES`` — faults per injection campaign (default 40; the
  paper uses 1000 — set it for a full-fidelity, multi-hour run);
* ``REPRO_WORKLOADS`` — comma-separated benchmark subset (default: all 8);
* ``REPRO_SCALE``    — workload problem-size multiplier (default 1).

Variant builds are cached per session so the per-figure benchmarks measure
their own experiment, not recompilation.
"""

from __future__ import annotations

import os

import pytest

from repro.pipeline import BuildResult, build_variants
from repro.workloads import get_workload, workload_names

FI_SAMPLES = int(os.environ.get("REPRO_FI_SAMPLES", "40"))
SCALE = int(os.environ.get("REPRO_SCALE", "1"))

_env_workloads = os.environ.get("REPRO_WORKLOADS", "")
SELECTED: tuple[str, ...] = (
    tuple(name.strip() for name in _env_workloads.split(",") if name.strip())
    or workload_names()
)

_build_cache: dict[str, BuildResult] = {}


def build_for(name: str) -> BuildResult:
    """Session-cached variant build for one workload."""
    if name not in _build_cache:
        _build_cache[name] = build_variants(get_workload(name).source(SCALE))
    return _build_cache[name]


@pytest.fixture(scope="session")
def selected_workloads() -> tuple[str, ...]:
    return SELECTED


def pytest_report_header(config):
    return (f"FERRUM reproduction benchmarks: workloads={','.join(SELECTED)} "
            f"fi_samples={FI_SAMPLES} scale={SCALE}")


def emit(capsys, text: str) -> None:
    """Print a rendered paper table straight to the terminal and to disk."""
    with capsys.disabled():
        print()
        print(text)
    os.makedirs("results", exist_ok=True)
    slug = text.splitlines()[0].split(":")[0].strip().lower()
    slug = slug.replace(" ", "_").replace(".", "").replace("/", "-")
    with open(os.path.join("results", f"bench_{slug}.txt"), "w") as handle:
        handle.write(text + "\n")
