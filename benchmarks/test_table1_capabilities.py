"""Table I: protection capability matrix per technique."""

from repro.evaluation.experiments import table1
from repro.evaluation.report import render_table1


def test_table1_capabilities(benchmark, capsys):
    from conftest import emit

    data = benchmark(table1)

    # The paper's Table I, row by row.
    assert data["FERRUM"] == {cls: "AS2" for cls in data["FERRUM"]}
    hybrid = data["HYBRID-ASSEMBLY-LEVEL-EDDI"]
    assert hybrid["branch"] == "IR" and hybrid["comparison"] == "IR"
    assert all(level == "AS1" for cls, level in hybrid.items()
               if cls not in ("branch", "comparison"))
    ir = data["IR-LEVEL-EDDI"]
    assert ir["basic"] == "IR"
    assert all(level == "-" for cls, level in ir.items() if cls != "basic")

    emit(capsys, render_table1())
