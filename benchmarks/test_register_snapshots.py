"""Micro-bench: copy-on-write register snapshots on bfs.

``RegisterFile.snapshot_state`` caches the last snapshot and only deep
copies the register dicts when a write (or a direct-engine-write note)
has bumped the file's version since. The checkpoint injection engine
leans on this twice per served fault — capture at the checkpoint site,
then restore-and-recapture for the next fault in the same region — so
the cache turns the second copy of every such pair into a pointer
compare.

This bench drives a real bfs machine through exactly that protocol and
asserts the copy counters, then times cached vs. forced-copy snapshots
so the win is visible in the report output.

Run: ``PYTHONPATH=src python -m pytest benchmarks/test_register_snapshots.py -q``
"""

from __future__ import annotations

import time

import pytest

from conftest import build_for, emit

pytestmark = pytest.mark.perf

REPEAT = 200


def test_quiescent_snapshots_copy_once():
    """Back-to-back snapshots of an unchanged file: 1 copy, rest hits."""
    from repro.machine.cpu import Machine

    program = build_for("bfs")["ferrum"].asm
    machine = Machine(program)
    machine.run()
    regs = machine.registers

    copies_before = regs.snapshot_copies
    snaps = [regs.snapshot_state() for _ in range(REPEAT)]
    assert all(snap is snaps[0] for snap in snaps)
    assert regs.snapshot_copies == copies_before + 1
    assert regs.snapshot_hits >= REPEAT - 1


def test_checkpoint_protocol_restores_are_free():
    """The engine's restore -> recapture pair never re-copies the dicts."""
    from repro.machine.cpu import Machine

    program = build_for("bfs")["ferrum"].asm
    machine = Machine(program)
    golden = machine.run()
    snap = machine.run_to_site(golden.fault_sites // 2)
    regs = machine.registers

    copies_before = regs.snapshot_copies
    hits_before = regs.snapshot_hits
    for _ in range(REPEAT):
        machine.restore_snapshot(snap)
        assert regs.snapshot_state() is snap.registers
    assert regs.snapshot_copies == copies_before, (
        "restore_state must seed the snapshot cache — every recapture "
        "after a restore should be a hit")
    assert regs.snapshot_hits == hits_before + REPEAT


def test_report(capsys):
    """Time cached vs. forced-copy snapshots on the post-run bfs file."""
    from repro.asm.registers import get_register
    from repro.machine.cpu import Machine

    program = build_for("bfs")["ferrum"].asm
    machine = Machine(program)
    machine.run()
    regs = machine.registers
    rax = get_register("rax")

    start = time.perf_counter()
    for _ in range(REPEAT):
        regs.snapshot_state()
    cached_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for i in range(REPEAT):
        regs.write(rax, i)  # bump the version: every snapshot re-copies
        regs.snapshot_state()
    copied_seconds = time.perf_counter() - start

    speedup = copied_seconds / cached_seconds if cached_seconds else 0.0
    emit(capsys, "\n".join([
        "Register snapshot micro-bench: bfs ferrum, post-run file",
        f"{REPEAT} cached snapshots: {cached_seconds * 1e6:9.1f} us",
        f"{REPEAT} copied snapshots: {copied_seconds * 1e6:9.1f} us",
        f"copy-on-write speedup:    {speedup:8.1f}x",
        f"lifetime counters: {regs.snapshot_copies} copies, "
        f"{regs.snapshot_hits} hits",
    ]))
    assert speedup > 1.0
