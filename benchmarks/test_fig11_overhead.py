"""Fig. 11: runtime performance overhead per benchmark.

Benchmarks the simulated execution of each variant (wall-clock of the
simulator run, via pytest-benchmark) and reports the paper's metric — the
cycle-model overhead relative to the unprotected binary — through
``extra_info`` and a printed summary table.
"""

import pytest

from conftest import SELECTED, build_for, emit
from repro.evaluation.experiments import Fig11Result, TECHNIQUES
from repro.evaluation.metrics import runtime_overhead, speedup_in_overhead
from repro.evaluation.figures import render_fig11_chart
from repro.evaluation.report import render_fig11
from repro.machine.cpu import Machine
from repro.machine.timing import TimingConfig

_cycles: dict[str, dict[str, int]] = {}


def _measure(name: str) -> dict[str, int]:
    if name not in _cycles:
        build = build_for(name)
        timing = TimingConfig()
        _cycles[name] = {
            variant_name: Machine(variant.asm).run(timing=timing).cycles
            for variant_name, variant in build.variants.items()
        }
    return _cycles[name]


@pytest.mark.parametrize("name", SELECTED)
def test_fig11_benchmark(benchmark, name):
    cycles = benchmark.pedantic(_measure, args=(name,), rounds=1, iterations=1)
    overheads = {
        t: runtime_overhead(cycles[t], cycles["raw"]) for t in TECHNIQUES
    }
    for technique, value in overheads.items():
        benchmark.extra_info[f"overhead_{technique}"] = round(value, 4)

    # Paper Fig. 11 shape: FERRUM cheapest, hybrid most expensive.
    assert overheads["ferrum"] < overheads["ir-eddi"] < overheads["hybrid"]
    assert all(value > 0 for value in overheads.values())


def test_fig11_summary(benchmark, capsys):
    def summarize() -> Fig11Result:
        result = Fig11Result()
        for name in SELECTED:
            cycles = _measure(name)
            row = {"benchmark": name, "raw_cycles": cycles["raw"]}
            for technique in TECHNIQUES:
                row[technique] = runtime_overhead(cycles[technique],
                                                  cycles["raw"])
            result.rows.append(row)
        return result

    result = benchmark.pedantic(summarize, rounds=1, iterations=1)
    emit(capsys, render_fig11(result))
    emit(capsys, render_fig11_chart(result))

    ferrum = result.average_overhead("ferrum")
    ir_eddi = result.average_overhead("ir-eddi")
    hybrid = result.average_overhead("hybrid")
    speedup = speedup_in_overhead(ir_eddi, ferrum)
    emit(capsys, f"FERRUM overhead reduction vs IR-LEVEL-EDDI: "
                 f"{speedup * 100:.1f}% (paper: ~52%)")

    # Paper averages: 62.27 % / 83.39 % / 29.83 %. Shape assertions:
    assert ferrum < ir_eddi < hybrid
    assert speedup >= 0.3, "FERRUM should cut IR-EDDI overhead substantially"
