"""Table II: the benchmark roster."""

from repro.evaluation.experiments import table2
from repro.evaluation.report import render_table2


def test_table2_benchmarks(benchmark, capsys):
    from conftest import emit

    rows = benchmark(table2)

    assert [r["Benchmark"] for r in rows] == [
        "backprop", "bfs", "pathfinder", "lud", "needle",
        "knn", "kmeans", "particlefilter",
    ]
    assert {r["Suite"] for r in rows} == {"Rodinia"}
    domains = {r["Benchmark"]: r["Domain"] for r in rows}
    assert domains["kmeans"] == "Data Mining"
    assert domains["particlefilter"] == "Noise estimator"

    emit(capsys, render_table2())
