"""Tier-2 perf smoke: step throughput across the three machine engines.

The translated engine pre-compiles every static instruction into a
specialized closure (operands resolved to register slots, immediates
folded, flags inlined — see ``docs/performance.md``), so its
instructions/sec must beat the reference handler loop by >= 3x on at
least two workloads. The fused engine concatenates whole basic blocks
into single exec-compiled bodies with dead-flag elision and inlined
memory fast paths, and must beat the translated engine by >= 2x (>= 6x
over reference) on at least two workloads. Each run also appends its
measurements to ``BENCH_exec_throughput.json`` so the engines' perf
trajectory is tracked across PRs.

Run: ``PYTHONPATH=src python -m pytest benchmarks/test_exec_throughput.py -q``
"""

from __future__ import annotations

import os

import pytest

from conftest import build_for, emit
from perf_record import (
    EXEC_BENCH_PATH,
    append_record,
    measure_exec_throughput,
    render_exec_table,
)

pytestmark = pytest.mark.perf

WORKLOADS = tuple(
    name.strip()
    for name in os.environ.get(
        "REPRO_EXEC_WORKLOADS", "bfs,knn,pathfinder"
    ).split(",")
    if name.strip()
)
SAMPLES = int(os.environ.get("REPRO_EXEC_SAMPLES", "24"))
SEED = 11
#: The PR-5 gate: >= 3x instructions/sec on at least MIN_WORKLOADS_AT_GATE.
MIN_SPEEDUP = 3.0
MIN_WORKLOADS_AT_GATE = 2
#: The superblock gate: the fused engine must be >= 2x the translated
#: engine and >= 6x the reference loop (measured 2.97-3.10x / 9-12x).
FUSED_MIN_VS_TRANSLATED = 2.0
FUSED_MIN_VS_REFERENCE = 6.0

_records = []


@pytest.mark.parametrize("name", WORKLOADS)
def test_translated_engine_faster(name):
    program = build_for(name)["raw"].asm
    record = measure_exec_throughput(program, name, samples=SAMPLES,
                                     seed=SEED)
    append_record(record, path=EXEC_BENCH_PATH)
    _records.append(record)
    assert record.translated_instr_per_sec > record.reference_instr_per_sec, (
        f"{name}: translated engine slower than reference "
        f"({record.translated_instr_per_sec:.0f} vs "
        f"{record.reference_instr_per_sec:.0f} instr/sec)"
    )
    assert record.translated_faults_per_sec > record.reference_faults_per_sec, (
        f"{name}: campaigns gained nothing from the translated engine "
        f"({record.translated_faults_per_sec:.2f} vs "
        f"{record.reference_faults_per_sec:.2f} faults/sec)"
    )
    assert record.fused_instr_per_sec > record.translated_instr_per_sec, (
        f"{name}: fused engine slower than translated "
        f"({record.fused_instr_per_sec:.0f} vs "
        f"{record.translated_instr_per_sec:.0f} instr/sec)"
    )


def test_speedup_gate():
    if len(_records) < MIN_WORKLOADS_AT_GATE:
        pytest.skip("not enough throughput measurements collected")
    at_gate = [r for r in _records if r.instr_speedup >= MIN_SPEEDUP]
    assert len(at_gate) >= MIN_WORKLOADS_AT_GATE, (
        f"only {len(at_gate)}/{len(_records)} workloads reach "
        f"{MIN_SPEEDUP:.0f}x instr/sec: "
        + ", ".join(f"{r.workload}={r.instr_speedup:.2f}x" for r in _records)
    )


def test_fused_speedup_gate():
    if len(_records) < MIN_WORKLOADS_AT_GATE:
        pytest.skip("not enough throughput measurements collected")
    at_gate = [
        r for r in _records
        if r.fused_speedup_vs_translated >= FUSED_MIN_VS_TRANSLATED
        and r.fused_speedup_vs_reference >= FUSED_MIN_VS_REFERENCE
    ]
    assert len(at_gate) >= MIN_WORKLOADS_AT_GATE, (
        f"only {len(at_gate)}/{len(_records)} workloads reach the fused "
        f"gate ({FUSED_MIN_VS_TRANSLATED:.0f}x over translated, "
        f"{FUSED_MIN_VS_REFERENCE:.0f}x over reference): "
        + ", ".join(
            f"{r.workload}={r.fused_speedup_vs_translated:.2f}x/"
            f"{r.fused_speedup_vs_reference:.2f}x"
            for r in _records
        )
    )


def test_report(capsys):
    if not _records:
        pytest.skip("no throughput measurements collected")
    emit(capsys, render_exec_table(_records))
