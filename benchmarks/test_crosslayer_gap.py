"""Sec. I / IV-B1: the cross-layer coverage gap of IR-LEVEL-EDDI.

Measures IR-EDDI's SDC coverage twice per benchmark — with LLFI-style
IR-level injection (the "anticipated" number) and with PINFI-style
assembly-level injection (the "measured" number). The paper's finding: a
non-negligible gap (28 % on average) that motivates assembly-level
protection in the first place.
"""

import pytest

from conftest import FI_SAMPLES, SELECTED, build_for, emit
from repro.evaluation.experiments import GapResult
from repro.evaluation.metrics import sdc_coverage
from repro.evaluation.report import render_gap
from repro.faultinjection.campaign import run_campaign, run_ir_campaign

_rows: dict[str, dict[str, object]] = {}


def _gap_row(name: str) -> dict[str, object]:
    if name not in _rows:
        build = build_for(name)
        raw_ir = run_ir_campaign(build["raw"].ir, FI_SAMPLES, seed=77)
        prot_ir = run_ir_campaign(build["ir-eddi"].ir, FI_SAMPLES, seed=77)
        raw_asm = run_campaign(build["raw"].asm, FI_SAMPLES, seed=77)
        prot_asm = run_campaign(build["ir-eddi"].asm, FI_SAMPLES, seed=77)
        anticipated = sdc_coverage(raw_ir.sdc_probability,
                                   prot_ir.sdc_probability)
        measured = sdc_coverage(raw_asm.sdc_probability,
                                prot_asm.sdc_probability)
        _rows[name] = {
            "benchmark": name,
            "anticipated": anticipated,
            "measured": measured,
            "gap": anticipated - measured,
        }
    return _rows[name]


@pytest.mark.parametrize("name", SELECTED)
def test_gap_benchmark(benchmark, name):
    row = benchmark.pedantic(_gap_row, args=(name,), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {k: round(float(v), 4) for k, v in row.items() if k != "benchmark"}
    )
    # At IR level, IR-EDDI looks (near-)perfect.
    assert float(row["anticipated"]) >= 0.9


def test_gap_summary(benchmark, capsys):
    def summarize() -> GapResult:
        result = GapResult(samples=FI_SAMPLES, seed=77)
        result.rows = [_gap_row(name) for name in SELECTED]
        return result

    result = benchmark.pedantic(summarize, rounds=1, iterations=1)
    emit(capsys, render_gap(result))

    # Paper headline: anticipated (IR-level) coverage systematically
    # exceeds measured (assembly-level) coverage. The paper reports a 28 %
    # average gap on real hardware; our -O0 substrate shows the same
    # direction with a smaller magnitude (see EXPERIMENTS.md).
    assert result.average_gap >= 0
    if FI_SAMPLES >= 20 and len(SELECTED) >= 4:
        assert result.average_gap > 0
        assert max(float(r["gap"]) for r in result.rows) > 0.03
