"""Campaign-throughput measurement and its cross-PR perf trail.

Measures faults/sec for the checkpointed vs. replay injection engines and
appends each measurement to ``BENCH_campaign_throughput.json`` at the repo
root, so regressions in the injection engine stay visible from PR to PR.

Used two ways:

* imported by ``benchmarks/test_campaign_throughput.py`` (the tier-2 perf
  smoke target);
* standalone: ``PYTHONPATH=src python benchmarks/perf_record.py
  [--workloads kmeans,lud] [--samples 40] [--seed 11]``.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import asdict, dataclass
from datetime import datetime, timezone
from pathlib import Path

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign_throughput.json"


@dataclass(frozen=True)
class ThroughputRecord:
    """One engine-vs-engine measurement on one workload."""

    timestamp: str
    workload: str
    samples: int
    seed: int
    fault_sites: int
    dynamic_instructions: int
    replay_seconds: float
    checkpoint_seconds: float
    replay_faults_per_sec: float
    checkpoint_faults_per_sec: float
    speedup: float


def measure_throughput(program, workload: str, samples: int,
                       seed: int) -> ThroughputRecord:
    """Time both engines on ``program``; asserts bit-identical outcomes."""
    from repro.faultinjection.campaign import run_campaign

    start = time.perf_counter()
    replay = run_campaign(program, samples=samples, seed=seed, engine="replay")
    replay_seconds = time.perf_counter() - start

    start = time.perf_counter()
    checkpointed = run_campaign(program, samples=samples, seed=seed,
                                engine="checkpoint")
    checkpoint_seconds = time.perf_counter() - start

    if checkpointed.outcomes.counts != replay.outcomes.counts:
        raise AssertionError(
            f"{workload}: engines disagree: "
            f"{checkpointed.outcomes.counts} != {replay.outcomes.counts}"
        )
    return ThroughputRecord(
        timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        workload=workload,
        samples=samples,
        seed=seed,
        fault_sites=replay.fault_sites,
        dynamic_instructions=replay.dynamic_instructions,
        replay_seconds=round(replay_seconds, 4),
        checkpoint_seconds=round(checkpoint_seconds, 4),
        replay_faults_per_sec=round(samples / replay_seconds, 3),
        checkpoint_faults_per_sec=round(samples / checkpoint_seconds, 3),
        speedup=round(replay_seconds / checkpoint_seconds, 3),
    )


def append_record(record: ThroughputRecord, path: Path = BENCH_PATH) -> None:
    """Append one measurement to the JSON trail (a list of records)."""
    history: list = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = []
    history.append(asdict(record))
    path.write_text(json.dumps(history, indent=2) + "\n")


def render_table(records: list[ThroughputRecord]) -> str:
    lines = [
        "Campaign throughput: checkpointed vs. replay engine",
        f"{'workload':<14} {'sites':>8} {'replay f/s':>11} "
        f"{'ckpt f/s':>10} {'speedup':>8}",
    ]
    for rec in records:
        lines.append(
            f"{rec.workload:<14} {rec.fault_sites:>8} "
            f"{rec.replay_faults_per_sec:>11.2f} "
            f"{rec.checkpoint_faults_per_sec:>10.2f} "
            f"{rec.speedup:>7.2f}x"
        )
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workloads", default="kmeans,lud",
                        help="comma-separated Rodinia workload names")
    parser.add_argument("--samples", type=int, default=40)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--scale", type=int, default=1)
    args = parser.parse_args()

    from repro.backend import compile_module
    from repro.minic import compile_to_ir
    from repro.workloads import get_workload

    records = []
    for name in args.workloads.split(","):
        name = name.strip()
        program = compile_module(
            compile_to_ir(get_workload(name).source(args.scale))
        )
        record = measure_throughput(program, name, args.samples, args.seed)
        append_record(record)
        records.append(record)
    print(render_table(records))
    print(f"appended {len(records)} record(s) to {BENCH_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
