"""Throughput measurement and its cross-PR perf trail.

Two measurements, each with its own JSON trail at the repo root so
regressions stay visible from PR to PR:

* campaign throughput — faults/sec for the checkpointed vs. replay
  injection engines, plus the outcome-equivalence-pruned campaign and the
  composed (section-cached) campaign's cold/warm/refresh cost, and the
  convergence early-exit campaign's speedup over the plain checkpoint
  engine (``BENCH_campaign_throughput.json``);
* execution throughput — instructions/sec and campaign faults/sec for the
  fused vs. translated vs. reference machine engines
  (``BENCH_exec_throughput.json``).

Every row is measured only after asserting bit-identical results across
the engines (and across pruned vs. unpruned campaigns) — a throughput
number for a divergent engine would be meaningless.

Used two ways:

* imported by ``benchmarks/test_campaign_throughput.py`` and
  ``benchmarks/test_exec_throughput.py`` (the tier-2 perf smoke targets);
* standalone: ``PYTHONPATH=src python benchmarks/perf_record.py
  [--workloads kmeans,lud] [--samples 40] [--seed 11]`` for the campaign
  trail, plus ``--exec`` for the execution trail, ``--compose`` for the
  section-cache trail and ``--converge`` for the convergence early-exit
  trail. ``--workloads`` filters whichever trail runs; ``--exec-workloads``
  overrides it for the execution trail only.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import asdict, dataclass
from datetime import datetime, timezone
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = _REPO_ROOT / "BENCH_campaign_throughput.json"
EXEC_BENCH_PATH = _REPO_ROOT / "BENCH_exec_throughput.json"


@dataclass(frozen=True)
class ThroughputRecord:
    """One engine-vs-engine measurement on one workload.

    The ``pruned_*`` columns time the same campaign with
    outcome-equivalence pruning enabled (checkpointed engine):
    ``pruned_executed_fraction`` is the share of sampled injections that
    actually executed — the rest were proven statically masked or
    collapsed into an already-executed equivalence class.
    """

    timestamp: str
    workload: str
    samples: int
    seed: int
    fault_sites: int
    dynamic_instructions: int
    replay_seconds: float
    checkpoint_seconds: float
    replay_faults_per_sec: float
    checkpoint_faults_per_sec: float
    speedup: float
    pruned_seconds: float
    pruned_faults_per_sec: float
    pruned_executed_fraction: float


def measure_throughput(program, workload: str, samples: int,
                       seed: int) -> ThroughputRecord:
    """Time both engines on ``program``; asserts bit-identical outcomes."""
    from repro.faultinjection.campaign import run_campaign

    start = time.perf_counter()
    replay = run_campaign(program, samples=samples, seed=seed, engine="replay")
    replay_seconds = time.perf_counter() - start

    start = time.perf_counter()
    checkpointed = run_campaign(program, samples=samples, seed=seed,
                                engine="checkpoint")
    checkpoint_seconds = time.perf_counter() - start

    if checkpointed.outcomes.counts != replay.outcomes.counts:
        raise AssertionError(
            f"{workload}: engines disagree: "
            f"{checkpointed.outcomes.counts} != {replay.outcomes.counts}"
        )

    start = time.perf_counter()
    pruned = run_campaign(program, samples=samples, seed=seed,
                          engine="checkpoint", prune=True)
    pruned_seconds = time.perf_counter() - start
    if pruned.outcomes.counts != replay.outcomes.counts:
        raise AssertionError(
            f"{workload}: pruning changed campaign outcomes: "
            f"{pruned.outcomes.counts} != {replay.outcomes.counts}"
        )

    return ThroughputRecord(
        timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        workload=workload,
        samples=samples,
        seed=seed,
        fault_sites=replay.fault_sites,
        dynamic_instructions=replay.dynamic_instructions,
        replay_seconds=round(replay_seconds, 4),
        checkpoint_seconds=round(checkpoint_seconds, 4),
        replay_faults_per_sec=round(samples / replay_seconds, 3),
        checkpoint_faults_per_sec=round(samples / checkpoint_seconds, 3),
        speedup=round(replay_seconds / checkpoint_seconds, 3),
        pruned_seconds=round(pruned_seconds, 4),
        pruned_faults_per_sec=round(samples / pruned_seconds, 3),
        pruned_executed_fraction=round(
            pruned.pruning_stats.executed_fraction, 4),
    )


def append_record(record: ThroughputRecord, path: Path = BENCH_PATH) -> None:
    """Append one measurement to the JSON trail (a list of records)."""
    history: list = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = []
    history.append(asdict(record))
    path.write_text(json.dumps(history, indent=2) + "\n")


@dataclass(frozen=True)
class ComposeThroughputRecord:
    """Flat vs. composed (section-cached) campaign on one workload.

    Models the incremental re-protection loop: a cold composed campaign
    populates the section cache, a warm rerun must serve everything from
    it, and an edit confined to ``edited_function`` must re-execute only
    that function's sections (plus callers whose call closure reaches it).
    ``reinject_fraction`` is re-executed injections over the flat
    campaign's sample count — the ISSUE gate holds it at <= 25%.
    """

    timestamp: str
    workload: str
    edited_function: str
    samples: int
    seed: int
    fault_sites: int
    sections: int
    populated_sections: int
    flat_seconds: float
    compose_cold_seconds: float
    compose_warm_seconds: float
    compose_refresh_seconds: float
    warm_cache_hit_rate: float
    warm_executed_injections: int
    refresh_executed_injections: int
    reinject_fraction: float


def measure_compose_throughput(program, workload: str, edited_function: str,
                               samples: int, seed: int,
                               cache_dir) -> ComposeThroughputRecord:
    """Time flat vs. composed cold/warm/single-function-refresh campaigns.

    Asserts bit-identical outcome counts for every composed variant before
    reporting any number, mirroring :func:`measure_throughput`.
    """
    from repro.faultinjection.campaign import run_campaign
    from repro.faultinjection.compose import compose_campaign

    start = time.perf_counter()
    flat = run_campaign(program, samples=samples, seed=seed)
    flat_seconds = time.perf_counter() - start

    timings = {}
    composed = {}
    for phase, refresh in (("cold", ()), ("warm", ()),
                           ("refresh", (edited_function,))):
        start = time.perf_counter()
        composed[phase] = compose_campaign(
            program, samples=samples, seed=seed, cache_dir=cache_dir,
            refresh=refresh,
        )
        timings[phase] = time.perf_counter() - start
        if composed[phase].outcomes.counts != flat.outcomes.counts:
            raise AssertionError(
                f"{workload}: composed ({phase}) campaign diverged: "
                f"{composed[phase].outcomes.counts} != {flat.outcomes.counts}"
            )

    warm = composed["warm"].compose_stats
    refresh_stats = composed["refresh"].compose_stats
    return ComposeThroughputRecord(
        timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        workload=workload,
        edited_function=edited_function,
        samples=samples,
        seed=seed,
        fault_sites=flat.fault_sites,
        sections=warm.sections,
        populated_sections=warm.populated_sections,
        flat_seconds=round(flat_seconds, 4),
        compose_cold_seconds=round(timings["cold"], 4),
        compose_warm_seconds=round(timings["warm"], 4),
        compose_refresh_seconds=round(timings["refresh"], 4),
        warm_cache_hit_rate=round(warm.hit_rate, 4),
        warm_executed_injections=warm.executed_injections,
        refresh_executed_injections=refresh_stats.executed_injections,
        reinject_fraction=round(
            refresh_stats.executed_injections / samples, 4),
    )


def render_compose_table(records: list[ComposeThroughputRecord]) -> str:
    lines = [
        "Composed campaigns: warm-cache single-function re-injection cost",
        f"{'workload':<14} {'edited fn':<12} {'sections':>8} "
        f"{'flat s':>8} {'cold s':>8} {'warm s':>8} {'refresh s':>9} "
        f"{'reinject%':>9}",
    ]
    for rec in records:
        lines.append(
            f"{rec.workload:<14} {rec.edited_function:<12} "
            f"{rec.populated_sections:>8} "
            f"{rec.flat_seconds:>8.3f} {rec.compose_cold_seconds:>8.3f} "
            f"{rec.compose_warm_seconds:>8.3f} "
            f"{rec.compose_refresh_seconds:>9.3f} "
            f"{rec.reinject_fraction * 100:>8.1f}%"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class ConvergeThroughputRecord:
    """Checkpoint campaign with vs. without convergence early-exit.

    Both campaigns stream telemetry JSONL; the measurement refuses to
    report unless the files are byte-identical (and the aggregate counts
    match), so every speedup row doubles as a bit-identity witness. The
    ``converged_*`` columns summarize the run's
    :class:`repro.faultinjection.telemetry.ConvergenceStats`.
    """

    timestamp: str
    workload: str
    samples: int
    seed: int
    fault_sites: int
    dynamic_instructions: int
    baseline_seconds: float
    converge_seconds: float
    baseline_faults_per_sec: float
    converge_faults_per_sec: float
    converge_speedup: float
    converged_runs: int
    converged_fraction: float
    converged_instructions_saved: int
    converged_mean_distance: float
    converged_boundaries_compared: int


def measure_converge_throughput(program, workload: str, samples: int,
                                seed: int,
                                scratch_dir) -> ConvergeThroughputRecord:
    """Time the checkpoint engine with and without convergence early-exit.

    Asserts bit-identical outcome counts AND byte-identical telemetry
    JSONL before reporting any number.
    """
    from repro.faultinjection.campaign import run_campaign

    scratch = Path(scratch_dir)
    base_path = scratch / f"{workload}-base.jsonl"
    conv_path = scratch / f"{workload}-converge.jsonl"

    start = time.perf_counter()
    baseline = run_campaign(program, samples=samples, seed=seed,
                            engine="checkpoint", telemetry=True,
                            jsonl_path=base_path)
    baseline_seconds = time.perf_counter() - start

    start = time.perf_counter()
    converged = run_campaign(program, samples=samples, seed=seed,
                             engine="checkpoint", telemetry=True,
                             jsonl_path=conv_path, converge=True)
    converge_seconds = time.perf_counter() - start

    if converged.outcomes.counts != baseline.outcomes.counts:
        raise AssertionError(
            f"{workload}: convergence changed campaign outcomes: "
            f"{converged.outcomes.counts} != {baseline.outcomes.counts}"
        )
    if base_path.read_bytes() != conv_path.read_bytes():
        raise AssertionError(
            f"{workload}: convergence changed telemetry JSONL bytes"
        )

    stats = converged.convergence_stats
    return ConvergeThroughputRecord(
        timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        workload=workload,
        samples=samples,
        seed=seed,
        fault_sites=baseline.fault_sites,
        dynamic_instructions=baseline.dynamic_instructions,
        baseline_seconds=round(baseline_seconds, 4),
        converge_seconds=round(converge_seconds, 4),
        baseline_faults_per_sec=round(samples / baseline_seconds, 3),
        converge_faults_per_sec=round(samples / converge_seconds, 3),
        converge_speedup=round(baseline_seconds / converge_seconds, 3),
        converged_runs=stats.converged,
        converged_fraction=round(stats.converged_fraction, 4),
        converged_instructions_saved=stats.instructions_saved,
        converged_mean_distance=round(stats.mean_convergence_distance, 2),
        converged_boundaries_compared=stats.boundaries_compared,
    )


def render_converge_table(records: list[ConvergeThroughputRecord]) -> str:
    lines = [
        "Convergence early-exit: checkpoint engine, trail boundaries on",
        f"{'workload':<14} {'sites':>8} {'base f/s':>9} {'conv f/s':>9} "
        f"{'speedup':>8} {'conv%':>6} {'instr saved':>12}",
    ]
    for rec in records:
        lines.append(
            f"{rec.workload:<14} {rec.fault_sites:>8} "
            f"{rec.baseline_faults_per_sec:>9.2f} "
            f"{rec.converge_faults_per_sec:>9.2f} "
            f"{rec.converge_speedup:>7.2f}x "
            f"{rec.converged_fraction * 100:>5.1f}% "
            f"{rec.converged_instructions_saved:>12}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class ExecThroughputRecord:
    """Fused vs. translated vs. reference machine engine on one workload.

    ``instr_speedup`` keeps its PR-5 meaning (translated over reference)
    so the existing trail stays comparable; the fused engine reports its
    own ratios against both baselines.
    """

    timestamp: str
    workload: str
    dynamic_instructions: int
    fault_sites: int
    reference_seconds: float
    translated_seconds: float
    fused_seconds: float
    reference_instr_per_sec: float
    translated_instr_per_sec: float
    fused_instr_per_sec: float
    instr_speedup: float
    fused_speedup_vs_reference: float
    fused_speedup_vs_translated: float
    campaign_samples: int
    campaign_seed: int
    reference_faults_per_sec: float
    translated_faults_per_sec: float
    fused_faults_per_sec: float
    campaign_speedup: float


def _time_engine(program, engine: str, repeats: int):
    """Best-of-``repeats`` wall time for one clean run under ``engine``."""
    from repro.machine.cpu import Machine

    machine = Machine(program, engine=engine)
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = machine.run()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def _time_campaign(program, engine: str, samples: int, seed: int):
    """Campaign wall time with the machine engine forced via the env knob."""
    import os

    from repro.faultinjection.campaign import run_campaign
    from repro.machine.cpu import ENGINE_ENV_VAR

    saved = os.environ.get(ENGINE_ENV_VAR)
    os.environ[ENGINE_ENV_VAR] = engine
    try:
        start = time.perf_counter()
        result = run_campaign(program, samples=samples, seed=seed)
        return result, time.perf_counter() - start
    finally:
        if saved is None:
            del os.environ[ENGINE_ENV_VAR]
        else:
            os.environ[ENGINE_ENV_VAR] = saved


def measure_exec_throughput(program, workload: str, samples: int = 24,
                            seed: int = 11,
                            repeats: int = 3) -> ExecThroughputRecord:
    """Time all three machine engines on ``program``, clean-run and
    in-campaign.

    Asserts bit-identical clean-run results and campaign outcomes between
    the engines before reporting any number.
    """
    ref_result, ref_seconds = _time_engine(program, "reference", repeats)
    tr_result, tr_seconds = _time_engine(program, "translated", repeats)
    fu_result, fu_seconds = _time_engine(program, "fused", repeats)
    if tr_result != ref_result:
        raise AssertionError(
            f"{workload}: machine engines disagree: "
            f"{tr_result} != {ref_result}"
        )
    if fu_result != ref_result:
        raise AssertionError(
            f"{workload}: fused engine disagrees with reference: "
            f"{fu_result} != {ref_result}"
        )

    ref_campaign, ref_campaign_seconds = _time_campaign(
        program, "reference", samples, seed)
    tr_campaign, tr_campaign_seconds = _time_campaign(
        program, "translated", samples, seed)
    fu_campaign, fu_campaign_seconds = _time_campaign(
        program, "fused", samples, seed)
    if tr_campaign.outcomes.counts != ref_campaign.outcomes.counts:
        raise AssertionError(
            f"{workload}: campaign outcomes diverge across machine engines: "
            f"{tr_campaign.outcomes.counts} != {ref_campaign.outcomes.counts}"
        )
    if fu_campaign.outcomes.counts != ref_campaign.outcomes.counts:
        raise AssertionError(
            f"{workload}: fused-engine campaign outcomes diverge: "
            f"{fu_campaign.outcomes.counts} != {ref_campaign.outcomes.counts}"
        )

    instructions = ref_result.dynamic_instructions
    return ExecThroughputRecord(
        timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        workload=workload,
        dynamic_instructions=instructions,
        fault_sites=ref_result.fault_sites,
        reference_seconds=round(ref_seconds, 4),
        translated_seconds=round(tr_seconds, 4),
        fused_seconds=round(fu_seconds, 4),
        reference_instr_per_sec=round(instructions / ref_seconds, 1),
        translated_instr_per_sec=round(instructions / tr_seconds, 1),
        fused_instr_per_sec=round(instructions / fu_seconds, 1),
        instr_speedup=round(ref_seconds / tr_seconds, 3),
        fused_speedup_vs_reference=round(ref_seconds / fu_seconds, 3),
        fused_speedup_vs_translated=round(tr_seconds / fu_seconds, 3),
        campaign_samples=samples,
        campaign_seed=seed,
        reference_faults_per_sec=round(samples / ref_campaign_seconds, 3),
        translated_faults_per_sec=round(samples / tr_campaign_seconds, 3),
        fused_faults_per_sec=round(samples / fu_campaign_seconds, 3),
        campaign_speedup=round(ref_campaign_seconds / tr_campaign_seconds, 3),
    )


def render_exec_table(records: list["ExecThroughputRecord"]) -> str:
    lines = [
        "Execution throughput: fused vs. translated vs. reference engine",
        f"{'workload':<14} {'instrs':>8} {'ref i/s':>10} {'trans i/s':>10} "
        f"{'fused i/s':>10} {'f/ref':>7} {'f/trans':>8} {'fused f/s':>9}",
    ]
    for rec in records:
        lines.append(
            f"{rec.workload:<14} {rec.dynamic_instructions:>8} "
            f"{rec.reference_instr_per_sec:>10.0f} "
            f"{rec.translated_instr_per_sec:>10.0f} "
            f"{rec.fused_instr_per_sec:>10.0f} "
            f"{rec.fused_speedup_vs_reference:>6.2f}x "
            f"{rec.fused_speedup_vs_translated:>7.2f}x "
            f"{rec.fused_faults_per_sec:>9.2f}"
        )
    return "\n".join(lines)


def render_table(records: list[ThroughputRecord]) -> str:
    lines = [
        "Campaign throughput: checkpointed vs. replay engine, with pruning",
        f"{'workload':<14} {'sites':>8} {'replay f/s':>11} "
        f"{'ckpt f/s':>10} {'speedup':>8} {'pruned f/s':>11} {'exec%':>6}",
    ]
    for rec in records:
        lines.append(
            f"{rec.workload:<14} {rec.fault_sites:>8} "
            f"{rec.replay_faults_per_sec:>11.2f} "
            f"{rec.checkpoint_faults_per_sec:>10.2f} "
            f"{rec.speedup:>7.2f}x "
            f"{rec.pruned_faults_per_sec:>11.2f} "
            f"{rec.pruned_executed_fraction * 100:>5.1f}%"
        )
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workloads", default=None,
                        help="comma-separated Rodinia workload names "
                             "(filters whichever trail runs; campaign "
                             "default kmeans,lud, exec default "
                             "bfs,knn,pathfinder)")
    parser.add_argument("--samples", type=int, default=40)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--exec", dest="exec_bench", action="store_true",
                        help="measure the execution-engine trail instead")
    parser.add_argument("--exec-workloads", default=None,
                        help="override --workloads for the execution-engine "
                             "trail")
    parser.add_argument("--compose", dest="compose_bench",
                        action="store_true",
                        help="measure the composed-campaign trail instead "
                             "(flat vs. cold/warm/refresh, ferrum variant)")
    parser.add_argument("--compose-pairs", default="knn:sq_dist,"
                                                   "pathfinder:min2",
                        help="comma-separated workload:edited-function "
                             "pairs for --compose")
    parser.add_argument("--converge", dest="converge_bench",
                        action="store_true",
                        help="measure the convergence early-exit trail "
                             "instead (checkpoint engine with vs. without "
                             "--converge, ferrum variant; default "
                             "workloads kmeans,lud,knn)")
    args = parser.parse_args()

    from repro.backend import compile_module
    from repro.minic import compile_to_ir
    from repro.workloads import get_workload

    def built(name):
        return compile_module(
            compile_to_ir(get_workload(name).source(args.scale))
        )

    if args.compose_bench:
        import tempfile

        from repro.pipeline import build_variants

        records = []
        for pair in args.compose_pairs.split(","):
            name, _, function = pair.strip().partition(":")
            build = build_variants(get_workload(name).source(args.scale),
                                   names=("ferrum",))
            with tempfile.TemporaryDirectory() as cache_dir:
                record = measure_compose_throughput(
                    build["ferrum"].asm, name, function,
                    samples=args.samples, seed=args.seed,
                    cache_dir=cache_dir,
                )
            append_record(record)
            records.append(record)
        print(render_compose_table(records))
        print(f"appended {len(records)} record(s) to {BENCH_PATH}")
        return 0

    if args.converge_bench:
        import tempfile

        from repro.pipeline import build_variants

        records = []
        for name in (args.workloads or "kmeans,lud,knn").split(","):
            name = name.strip()
            build = build_variants(get_workload(name).source(args.scale),
                                   names=("ferrum",))
            with tempfile.TemporaryDirectory() as scratch:
                record = measure_converge_throughput(
                    build["ferrum"].asm, name,
                    samples=args.samples, seed=args.seed,
                    scratch_dir=scratch,
                )
            append_record(record)
            records.append(record)
        print(render_converge_table(records))
        print(f"appended {len(records)} record(s) to {BENCH_PATH}")
        return 0

    if args.exec_bench:
        exec_workloads = (args.exec_workloads or args.workloads
                          or "bfs,knn,pathfinder")
        records = []
        for name in exec_workloads.split(","):
            name = name.strip()
            record = measure_exec_throughput(built(name), name,
                                             samples=args.samples,
                                             seed=args.seed)
            append_record(record, path=EXEC_BENCH_PATH)
            records.append(record)
        print(render_exec_table(records))
        print(f"appended {len(records)} record(s) to {EXEC_BENCH_PATH}")
        return 0

    records = []
    for name in (args.workloads or "kmeans,lud").split(","):
        name = name.strip()
        record = measure_throughput(built(name), name, args.samples,
                                    args.seed)
        append_record(record)
        records.append(record)
    print(render_table(records))
    print(f"appended {len(records)} record(s) to {BENCH_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
