"""Sec. IV-B3: time to execute the FERRUM transform.

This is the one experiment where wall-clock time *is* the paper's metric,
so pytest-benchmark measures the transform directly (several rounds). The
paper reports 0.089 s (BFS, 406 static instructions) to 0.196 s
(Particlefilter, 2230) and notes the linear dependence on static size —
asserted here via a rank correlation.
"""

import pytest

from conftest import SELECTED, emit
from repro.backend import compile_module
from repro.core.ferrum import protect_program
from repro.evaluation.experiments import TransformTimeResult
from repro.evaluation.report import render_transform_time
from repro.minic import compile_to_ir
from repro.workloads import get_workload

_raw_programs = {}
_measured: dict[str, tuple[int, int, float]] = {}


def _raw(name: str):
    if name not in _raw_programs:
        _raw_programs[name] = compile_module(
            compile_to_ir(get_workload(name).source(1))
        )
    return _raw_programs[name]


@pytest.mark.parametrize("name", SELECTED)
def test_transform_time_benchmark(benchmark, name):
    program = _raw(name)
    protected, stats = benchmark(protect_program, program)

    assert protected.static_size() > program.static_size()
    benchmark.extra_info["static_instructions"] = program.static_size()
    benchmark.extra_info["protected_instructions"] = protected.static_size()
    _measured[name] = (program.static_size(), protected.static_size(),
                       benchmark.stats.stats.mean)


def test_transform_time_summary(benchmark, capsys):
    def summarize() -> TransformTimeResult:
        result = TransformTimeResult()
        for name in SELECTED:
            size, protected_size, seconds = _measured.get(name, (0, 0, 0.0))
            if size == 0:  # -k selection skipped the per-benchmark runs
                pytest.skip("per-benchmark timings not collected")
            result.rows.append({
                "benchmark": name,
                "static_instructions": size,
                "output_instructions": protected_size,
                "seconds": seconds,
            })
        return result

    result = benchmark.pedantic(summarize, rounds=1, iterations=1)
    rows = [(int(r["static_instructions"]), float(r["seconds"]))
            for r in result.rows]
    emit(capsys, render_transform_time(result))

    if len(rows) >= 4:
        # Linear-ish scaling (paper Sec. IV-B3): larger programs should
        # broadly take longer. Exact monotonicity is not expected (the
        # transform's cost also depends on instruction mix), so check rank
        # agreement with slack, plus the endpoints.
        by_size = sorted(rows)
        times = [t for _, t in by_size]
        increasing_pairs = sum(
            1 for i in range(len(times) - 1) if times[i] <= times[i + 1] * 1.3
        )
        assert increasing_pairs >= len(times) - 3
        assert max(times[-2:]) >= min(times[:2])
