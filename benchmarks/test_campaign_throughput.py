"""Tier-2 perf smoke: campaign throughput, checkpointed vs. replay engine.

The checkpointed engine executes the shared golden prefix of a campaign
once and serves every injection from an O(touched pages) snapshot, so its
faults/sec must beat the replay engine by >= 2x at the campaign sizes these
benchmarks actually run (``REPRO_FI_SAMPLES``, default 40). Each run also
appends its measurements to ``BENCH_campaign_throughput.json`` so the perf
trajectory is tracked across PRs.

Outcome-equivalence pruning gets its own gate on FERRUM-protected
variants (where most sampled sites are statically classifiable): the
pruned campaign must execute <= 60% of the sampled injections while
reporting bit-identical aggregate outcome counts.

Compositional campaigns get an incremental gate: with a warm section
cache, re-validating after an edit confined to one helper function must
re-execute <= 25% of the flat campaign's sampled injections.

Run: ``PYTHONPATH=src python -m pytest benchmarks/test_campaign_throughput.py -q``
"""

from __future__ import annotations

import os

import pytest

from conftest import FI_SAMPLES, build_for, emit
from perf_record import (
    append_record,
    measure_compose_throughput,
    measure_throughput,
    render_compose_table,
    render_table,
)

pytestmark = pytest.mark.perf

#: kmeans and lud show the engine's speedup with the most headroom at scale
#: 1 (few early-crash shortcuts, no timeout runs at this seed); overridable
#: for wider sweeps.
WORKLOADS = tuple(
    name.strip()
    for name in os.environ.get(
        "REPRO_THROUGHPUT_WORKLOADS", "kmeans,lud"
    ).split(",")
    if name.strip()
)
SEED = 11
MIN_SPEEDUP = 2.0
#: Pruning gate: on ferrum-protected variants the equivalence scanner must
#: prove enough sites statically that at most 60% of sampled injections
#: actually execute (measured 3-12% executed on these workloads).
MAX_PRUNED_EXECUTED_FRACTION = 0.6
#: Compose gate: after a warm cache and an edit confined to one helper
#: function, re-injection must cost <= 25% of the flat campaign's sampled
#: injections (measured 10-20% on these workload/function pairs — helper
#: sections plus the caller regions whose call closure reaches them).
MAX_COMPOSE_REINJECT_FRACTION = 0.25
#: workload -> helper function whose edit drives the incremental gate.
COMPOSE_EDITS = {"knn": "sq_dist", "needle": "max3"}

_records = []
_compose_records = []


@pytest.mark.parametrize("name", WORKLOADS)
def test_checkpoint_engine_speedup(name):
    program = build_for(name)["raw"].asm
    record = measure_throughput(program, name, samples=FI_SAMPLES, seed=SEED)
    append_record(record)
    _records.append(record)
    assert record.checkpoint_faults_per_sec > record.replay_faults_per_sec
    assert record.speedup >= MIN_SPEEDUP, (
        f"{name}: checkpointed engine only {record.speedup:.2f}x faster "
        f"({record.checkpoint_faults_per_sec:.2f} vs "
        f"{record.replay_faults_per_sec:.2f} faults/sec)"
    )


@pytest.mark.parametrize("name", WORKLOADS)
def test_pruned_campaign_gate(name):
    """Pruned campaigns: <= 60% executed injections, identical outcomes.

    Uses the ferrum variant — FERRUM's detectors make the bulk of sampled
    sites provably detected/masked without execution; raw variants have
    almost no statically-classifiable sites and would not exercise the
    scanner.
    """
    from repro.faultinjection.campaign import run_campaign

    program = build_for(name)["ferrum"].asm
    plain = run_campaign(program, samples=FI_SAMPLES, seed=SEED)
    pruned = run_campaign(program, samples=FI_SAMPLES, seed=SEED, prune=True)
    assert pruned.outcomes.counts == plain.outcomes.counts, (
        f"{name}: pruning changed campaign outcomes: "
        f"{pruned.outcomes.counts} != {plain.outcomes.counts}"
    )
    stats = pruned.pruning_stats
    assert stats.executed_fraction <= MAX_PRUNED_EXECUTED_FRACTION, (
        f"{name}: pruned campaign executed "
        f"{stats.executed_fraction:.0%} of {stats.samples} sampled "
        f"injections (gate: <= {MAX_PRUNED_EXECUTED_FRACTION:.0%})"
    )


@pytest.mark.parametrize("name,function", sorted(COMPOSE_EDITS.items()))
def test_compose_incremental_gate(name, function, tmp_path):
    """Warm-cache single-function re-injection <= 25% of flat injections.

    Cold composed run populates the section cache; the warm rerun must be
    a 100% hit; ``refresh=(function,)`` models an edit to that one helper
    and may only re-execute its sections plus caller regions reaching it.
    Every composed variant is asserted bit-identical to the flat campaign
    inside ``measure_compose_throughput`` before timing is reported.
    """
    program = build_for(name)["ferrum"].asm
    record = measure_compose_throughput(
        program, name, function, samples=FI_SAMPLES, seed=SEED,
        cache_dir=tmp_path / "sections",
    )
    append_record(record)
    _compose_records.append(record)
    assert record.warm_executed_injections == 0, (
        f"{name}: warm composed campaign re-executed "
        f"{record.warm_executed_injections} injections"
    )
    assert record.warm_cache_hit_rate == 1.0
    assert record.reinject_fraction <= MAX_COMPOSE_REINJECT_FRACTION, (
        f"{name}: editing {function} re-injected "
        f"{record.reinject_fraction:.0%} of {record.samples} sampled "
        f"injections (gate: <= {MAX_COMPOSE_REINJECT_FRACTION:.0%})"
    )


def test_report(capsys):
    if not _records and not _compose_records:
        pytest.skip("no throughput measurements collected")
    if _records:
        emit(capsys, render_table(_records))
    if _compose_records:
        emit(capsys, render_compose_table(_compose_records))
