"""Tier-2 perf smoke: campaign throughput, checkpointed vs. replay engine.

The checkpointed engine executes the shared golden prefix of a campaign
once and serves every injection from an O(touched pages) snapshot, so its
faults/sec must beat the replay engine by >= 2x at the campaign sizes these
benchmarks actually run (``REPRO_FI_SAMPLES``, default 40). Each run also
appends its measurements to ``BENCH_campaign_throughput.json`` so the perf
trajectory is tracked across PRs.

Outcome-equivalence pruning gets its own gate on FERRUM-protected
variants (where most sampled sites are statically classifiable): the
pruned campaign must execute <= 60% of the sampled injections while
reporting bit-identical aggregate outcome counts.

Compositional campaigns get an incremental gate: with a warm section
cache, re-validating after an edit confined to one helper function must
re-execute <= 25% of the flat campaign's sampled injections.

Convergence early-exit gets two gates: the checkpoint engine with
``converge=True`` must deliver >= 2x faults/sec on at least 2 of
{kmeans, lud, knn} while producing byte-identical telemetry JSONL, and a
masked-fault microbench must show every converged early-site run
finishing after <= 25% of the golden run's dynamic instructions.

Run: ``PYTHONPATH=src python -m pytest benchmarks/test_campaign_throughput.py -q``
"""

from __future__ import annotations

import os

import pytest

from conftest import FI_SAMPLES, build_for, emit
from perf_record import (
    append_record,
    measure_compose_throughput,
    measure_converge_throughput,
    measure_throughput,
    render_compose_table,
    render_converge_table,
    render_table,
)

pytestmark = pytest.mark.perf

#: kmeans and lud show the engine's speedup with the most headroom at scale
#: 1 (few early-crash shortcuts, no timeout runs at this seed); overridable
#: for wider sweeps.
WORKLOADS = tuple(
    name.strip()
    for name in os.environ.get(
        "REPRO_THROUGHPUT_WORKLOADS", "kmeans,lud"
    ).split(",")
    if name.strip()
)
SEED = 11
MIN_SPEEDUP = 2.0
#: Pruning gate: on ferrum-protected variants the equivalence scanner must
#: prove enough sites statically that at most 60% of sampled injections
#: actually execute (measured 3-12% executed on these workloads).
MAX_PRUNED_EXECUTED_FRACTION = 0.6
#: Compose gate: after a warm cache and an edit confined to one helper
#: function, re-injection must cost <= 25% of the flat campaign's sampled
#: injections (measured 10-20% on these workload/function pairs — helper
#: sections plus the caller regions whose call closure reaches them).
MAX_COMPOSE_REINJECT_FRACTION = 0.25
#: workload -> helper function whose edit drives the incremental gate.
COMPOSE_EDITS = {"knn": "sq_dist", "needle": "max3"}
#: Convergence gate: the ISSUE's bar is >= 2x on at least 2 of these
#: three (measured 2.3-3.3x on all three at 60 samples, seed 11).
CONVERGE_WORKLOADS = ("kmeans", "lud", "knn")
MIN_CONVERGE_PASSERS = 2
#: Microbench bar: a masked flip in the first eighth of the site
#: population must let the run finish after at most a quarter of the
#: golden run's dynamic instructions (flip prefix + a few trail
#: intervals of divergence-cone comparison).
MAX_CONVERGED_EXECUTED_FRACTION = 0.25
EARLY_SITE_FRACTION = 8  # flips in the first 1/8th of sites

_records = []
_compose_records = []
_converge_records = []


@pytest.mark.parametrize("name", WORKLOADS)
def test_checkpoint_engine_speedup(name):
    program = build_for(name)["raw"].asm
    record = measure_throughput(program, name, samples=FI_SAMPLES, seed=SEED)
    append_record(record)
    _records.append(record)
    assert record.checkpoint_faults_per_sec > record.replay_faults_per_sec
    assert record.speedup >= MIN_SPEEDUP, (
        f"{name}: checkpointed engine only {record.speedup:.2f}x faster "
        f"({record.checkpoint_faults_per_sec:.2f} vs "
        f"{record.replay_faults_per_sec:.2f} faults/sec)"
    )


@pytest.mark.parametrize("name", WORKLOADS)
def test_pruned_campaign_gate(name):
    """Pruned campaigns: <= 60% executed injections, identical outcomes.

    Uses the ferrum variant — FERRUM's detectors make the bulk of sampled
    sites provably detected/masked without execution; raw variants have
    almost no statically-classifiable sites and would not exercise the
    scanner.
    """
    from repro.faultinjection.campaign import run_campaign

    program = build_for(name)["ferrum"].asm
    plain = run_campaign(program, samples=FI_SAMPLES, seed=SEED)
    pruned = run_campaign(program, samples=FI_SAMPLES, seed=SEED, prune=True)
    assert pruned.outcomes.counts == plain.outcomes.counts, (
        f"{name}: pruning changed campaign outcomes: "
        f"{pruned.outcomes.counts} != {plain.outcomes.counts}"
    )
    stats = pruned.pruning_stats
    assert stats.executed_fraction <= MAX_PRUNED_EXECUTED_FRACTION, (
        f"{name}: pruned campaign executed "
        f"{stats.executed_fraction:.0%} of {stats.samples} sampled "
        f"injections (gate: <= {MAX_PRUNED_EXECUTED_FRACTION:.0%})"
    )


@pytest.mark.parametrize("name,function", sorted(COMPOSE_EDITS.items()))
def test_compose_incremental_gate(name, function, tmp_path):
    """Warm-cache single-function re-injection <= 25% of flat injections.

    Cold composed run populates the section cache; the warm rerun must be
    a 100% hit; ``refresh=(function,)`` models an edit to that one helper
    and may only re-execute its sections plus caller regions reaching it.
    Every composed variant is asserted bit-identical to the flat campaign
    inside ``measure_compose_throughput`` before timing is reported.
    """
    program = build_for(name)["ferrum"].asm
    record = measure_compose_throughput(
        program, name, function, samples=FI_SAMPLES, seed=SEED,
        cache_dir=tmp_path / "sections",
    )
    append_record(record)
    _compose_records.append(record)
    assert record.warm_executed_injections == 0, (
        f"{name}: warm composed campaign re-executed "
        f"{record.warm_executed_injections} injections"
    )
    assert record.warm_cache_hit_rate == 1.0
    assert record.reinject_fraction <= MAX_COMPOSE_REINJECT_FRACTION, (
        f"{name}: editing {function} re-injected "
        f"{record.reinject_fraction:.0%} of {record.samples} sampled "
        f"injections (gate: <= {MAX_COMPOSE_REINJECT_FRACTION:.0%})"
    )


def test_converge_speedup_gate(tmp_path):
    """Convergence early-exit: >= 2x faults/sec on >= 2 of three workloads.

    Ferrum variants — their detector instructions dominate the dynamic
    site population and most masked flips hit dead detector registers
    early, which is exactly the population the early-exit targets.
    ``measure_converge_throughput`` refuses to report a number unless the
    outcome counts AND the telemetry JSONL are byte-identical with the
    feature off, so the speedup is also a bit-identity witness.
    """
    passing = []
    for name in CONVERGE_WORKLOADS:
        program = build_for(name)["ferrum"].asm
        record = measure_converge_throughput(
            program, name, samples=FI_SAMPLES, seed=SEED,
            scratch_dir=tmp_path,
        )
        append_record(record)
        _converge_records.append(record)
        assert record.converged_runs > 0, (
            f"{name}: no run converged — the gate would be vacuous")
        if record.converge_speedup >= MIN_SPEEDUP:
            passing.append(name)
    assert len(passing) >= MIN_CONVERGE_PASSERS, (
        f"convergence early-exit reached {MIN_SPEEDUP:.1f}x on only "
        f"{passing or 'none'} of {CONVERGE_WORKLOADS}: "
        + ", ".join(f"{rec.workload}={rec.converge_speedup:.2f}x"
                    for rec in _converge_records)
    )


def test_masked_fault_convergence_microbench():
    """Every converged early-site run executes <= 25% of golden length.

    Replays the campaign's own fault plans (same RNG forking as
    ``run_campaign``) but keeps only flips landing in the first eighth of
    the dynamic site population; each converged run's executed length is
    ``golden - instructions_saved`` (counters are cumulative-from-entry,
    so this holds for both injection protocols).
    """
    from repro.faultinjection.injector import FaultPlan, inject_asm_fault
    from repro.faultinjection.telemetry import ConvergenceStats
    from repro.machine.converge import record_trail
    from repro.machine.cpu import Machine
    from repro.utils.rng import DeterministicRng

    program = build_for("bfs")["ferrum"].asm
    machine = Machine(program)
    golden = machine.run()
    trail = record_trail(program, golden, machine=machine)
    early_cutoff = golden.fault_sites // EARLY_SITE_FRACTION

    rng = DeterministicRng(SEED)
    fractions = []
    for run_index in range(FI_SAMPLES * EARLY_SITE_FRACTION):
        plan = FaultPlan.sample(rng.fork(run_index), golden.fault_sites)
        if plan.site_index > early_cutoff:
            continue
        stats = ConvergenceStats()
        inject_asm_fault(program, plan, golden, machine=machine,
                         converge=trail, converge_stats=stats)
        if stats.converged:
            executed = golden.dynamic_instructions - stats.instructions_saved
            fractions.append(executed / golden.dynamic_instructions)
        if len(fractions) >= 8:
            break
    assert len(fractions) >= 3, (
        f"only {len(fractions)} early masked flips converged — "
        f"not enough to make the bound meaningful")
    worst = max(fractions)
    assert worst <= MAX_CONVERGED_EXECUTED_FRACTION, (
        f"a converged early-site run executed {worst:.0%} of the golden "
        f"run (gate: <= {MAX_CONVERGED_EXECUTED_FRACTION:.0%})")


def test_report(capsys):
    if not _records and not _compose_records and not _converge_records:
        pytest.skip("no throughput measurements collected")
    if _records:
        emit(capsys, render_table(_records))
    if _compose_records:
        emit(capsys, render_compose_table(_compose_records))
    if _converge_records:
        emit(capsys, render_converge_table(_converge_records))
