"""Tier-2 perf smoke: campaign throughput, checkpointed vs. replay engine.

The checkpointed engine executes the shared golden prefix of a campaign
once and serves every injection from an O(touched pages) snapshot, so its
faults/sec must beat the replay engine by >= 2x at the campaign sizes these
benchmarks actually run (``REPRO_FI_SAMPLES``, default 40). Each run also
appends its measurements to ``BENCH_campaign_throughput.json`` so the perf
trajectory is tracked across PRs.

Run: ``PYTHONPATH=src python -m pytest benchmarks/test_campaign_throughput.py -q``
"""

from __future__ import annotations

import os

import pytest

from conftest import FI_SAMPLES, build_for, emit
from perf_record import append_record, measure_throughput, render_table

pytestmark = pytest.mark.perf

#: kmeans and lud show the engine's speedup with the most headroom at scale
#: 1 (few early-crash shortcuts, no timeout runs at this seed); overridable
#: for wider sweeps.
WORKLOADS = tuple(
    name.strip()
    for name in os.environ.get(
        "REPRO_THROUGHPUT_WORKLOADS", "kmeans,lud"
    ).split(",")
    if name.strip()
)
SEED = 11
MIN_SPEEDUP = 2.0

_records = []


@pytest.mark.parametrize("name", WORKLOADS)
def test_checkpoint_engine_speedup(name):
    program = build_for(name)["raw"].asm
    record = measure_throughput(program, name, samples=FI_SAMPLES, seed=SEED)
    append_record(record)
    _records.append(record)
    assert record.checkpoint_faults_per_sec > record.replay_faults_per_sec
    assert record.speedup >= MIN_SPEEDUP, (
        f"{name}: checkpointed engine only {record.speedup:.2f}x faster "
        f"({record.checkpoint_faults_per_sec:.2f} vs "
        f"{record.replay_faults_per_sec:.2f} faults/sec)"
    )


def test_report(capsys):
    if not _records:
        pytest.skip("no throughput measurements collected")
    emit(capsys, render_table(_records))
