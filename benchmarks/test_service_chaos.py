"""Tier-2 chaos gates for the durable campaign service.

Two acceptance gates that are too heavy for tier-1:

* **Kill-anywhere matrix** — a campaign spanning three workloads × two
  techniques (ferrum, hybrid) is SIGKILLed at randomized points and
  resumed until complete; every per-unit results file and the summary
  must be byte-identical to an uninterrupted baseline run. Both runs are
  fresh subprocesses of the real CLI, so the comparison also covers
  process-level determinism (instruction-uid normalization, merge order).
* **Bounded record buffer** — a 10k-fault campaign must report a peak
  resident record buffer no larger than one shard, proving the
  streaming-merge design holds at campaign sizes that would not fit in
  memory as a record list.

Run via ``PYTHONPATH=src python -m pytest benchmarks/test_service_chaos.py -q``
(the ``campaign-chaos`` CI job and ``scripts/check.sh`` both do). Knobs:
``CHAOS_SAMPLES`` (faults per unit in the matrix gate, default 24) and
``CHAOS_BUFFER_FAULTS`` (default 10000).
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.chaos

REPO_ROOT = Path(__file__).resolve().parents[1]
MATRIX_SAMPLES = int(os.environ.get("CHAOS_SAMPLES", "24"))
BUFFER_FAULTS = int(os.environ.get("CHAOS_BUFFER_FAULTS", "10000"))

MATRIX_WORKLOADS = ("bfs", "knn", "pathfinder")
MATRIX_TECHNIQUES = ("ferrum", "hybrid")


def _cli(args, kill_after=None):
    env = {**os.environ, "PYTHONPATH": "src"}
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.evaluation.cli", *args],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    if kill_after is None:
        return process.wait()
    time.sleep(kill_after)
    process.send_signal(signal.SIGKILL)
    process.wait()
    return -signal.SIGKILL


def test_kill_anywhere_matrix_byte_identity(tmp_path):
    serve_args = [
        "--workloads", *MATRIX_WORKLOADS,
        "--techniques", *MATRIX_TECHNIQUES,
        "--samples", str(MATRIX_SAMPLES), "--seed", "2024",
        "--shard-size", "8", "--workers", "4", "--no-fsync",
    ]
    baseline = tmp_path / "baseline"
    assert _cli(["serve", "--state-dir", str(baseline), *serve_args]) == 0

    chaos = tmp_path / "chaos"
    rng = random.Random(1234)
    # First launch plus several resume rounds, each killed at a random
    # instant — covering compile, worker execution, journaling, adoption
    # and finalize windows.
    _cli(["serve", "--state-dir", str(chaos), *serve_args],
         kill_after=rng.uniform(0.5, 2.0))
    code = None
    for _ in range(4):
        _cli(["resume", "--state-dir", str(chaos), "--workers", "4",
              "--no-fsync"], kill_after=rng.uniform(0.3, 2.5))
    for _ in range(20):
        code = _cli(["resume", "--state-dir", str(chaos), "--workers", "4",
                     "--no-fsync"])
        if code == 0:
            break
    assert code == 0, "campaign never completed after kills"

    for workload in MATRIX_WORKLOADS:
        for technique in MATRIX_TECHNIQUES:
            name = f"results/{workload}-{technique}.jsonl"
            chaos_bytes = (chaos / name).read_bytes()
            assert chaos_bytes == (baseline / name).read_bytes(), name
            assert chaos_bytes.count(b"\n") == MATRIX_SAMPLES
    assert ((chaos / "summary.json").read_bytes()
            == (baseline / "summary.json").read_bytes())


def test_record_buffer_bounded_on_10k_fault_campaign(tmp_path):
    from repro.faultinjection.service import (
        CampaignSpec,
        ServiceConfig,
        serve_campaign,
    )

    shard_size = 500
    spec = CampaignSpec(workloads=("bfs",), techniques=("raw",),
                        samples=BUFFER_FAULTS, seed=11,
                        shard_size=shard_size)
    report = serve_campaign(
        tmp_path / "state", spec,
        ServiceConfig(workers=4, fsync=False, shard_timeout=600.0))
    assert report.complete
    assert report.aggregates["bfs-raw"].records == BUFFER_FAULTS
    assert report.shards == -(-BUFFER_FAULTS // shard_size)
    # The supervisor streams: at no point did it (or a worker) hold more
    # records than one shard's worth.
    assert report.peak_record_buffer <= shard_size
