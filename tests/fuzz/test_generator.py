"""Generator invariants: determinism, validity, canonical round-trip."""

import pytest

from repro.fuzz.generator import GeneratorConfig, generate_ast, generate_program
from repro.fuzz.unparse import unparse
from repro.minic import ast, parse

pytestmark = pytest.mark.fuzz

SEEDS = range(0, 40)


class TestDeterminism:
    def test_same_seed_same_source(self):
        for seed in SEEDS:
            assert generate_program(seed) == generate_program(seed)

    def test_different_seeds_differ(self):
        sources = {generate_program(seed) for seed in SEEDS}
        # Collisions would mean the RNG stream is being ignored somewhere.
        assert len(sources) == len(list(SEEDS))

    def test_config_is_not_mutated(self):
        config = GeneratorConfig()
        before = repr(config)
        generate_program(5, config=config)
        assert repr(config) == before


class TestValidity:
    def test_every_seed_parses(self):
        for seed in SEEDS:
            program = parse(generate_program(seed))
            assert any(f.name == "main" for f in program.functions)

    def test_round_trip_is_canonical(self):
        """unparse(parse(s)) == s for generated sources: the generator
        emits the canonical form, so reducer artifacts diff cleanly."""
        for seed in SEEDS:
            source = generate_program(seed)
            assert unparse(parse(source)) == source

    def test_ast_and_program_agree(self):
        for seed in (0, 7, 23):
            assert unparse(generate_ast(seed)) == generate_program(seed)


class TestShapeKnobs:
    def test_helper_cap_respected(self):
        config = GeneratorConfig(max_helpers=0)
        for seed in SEEDS:
            program = parse(generate_program(seed, config=config))
            assert [f.name for f in program.functions] == ["main"]

    def test_grammar_features_all_reachable(self):
        """Across a modest seed range the generator exercises every
        statement family the oracles are meant to stress."""
        seen = set()
        for seed in range(120):
            program = generate_ast(seed)

            def walk(node):
                seen.add(type(node).__name__)
                import dataclasses
                for field in dataclasses.fields(node):
                    value = getattr(node, field.name)
                    items = value if isinstance(value, tuple) else (value,)
                    for item in items:
                        if isinstance(item, (ast.Expr, ast.Stmt,
                                             ast.FunctionDef, ast.Program)):
                            walk(item)

            walk(program)
        for feature in ("If", "While", "For", "Index", "Binary", "Unary",
                        "CallExpr"):
            assert feature in seen, f"generator never produced {feature}"
