"""Fuzz driver: artifacts, planted-bug acceptance, parallel determinism."""

import json

import pytest

from repro.fuzz.generator import generate_program
from repro.fuzz.runner import check_seed, main, run_fuzz
from repro.minic import parse
from tests.fuzz.test_oracles import plant_orig_imm_bug

pytestmark = pytest.mark.fuzz

#: Seeds whose generated programs contain an original ALU-immediate the
#: planted transform bug corrupts (verified by construction in the tests).
PLANTED_HIT_SEEDS = (0, 1, 2)
CLEAN_SEED = 3


@pytest.fixture
def planted_bug(monkeypatch):
    import repro.pipeline as pipeline_mod

    monkeypatch.setattr(
        pipeline_mod, "protect_program",
        plant_orig_imm_bug(pipeline_mod.protect_program))


class TestCheckSeed:
    def test_clean_seed_passes(self):
        result = check_seed(CLEAN_SEED)
        assert result.passed
        assert result.failing_oracle is None

    def test_deterministic(self):
        assert check_seed(5) == check_seed(5)


class TestRunFuzz:
    def test_clean_range_reports_clean(self):
        report = run_fuzz(seed_start=CLEAN_SEED, count=1)
        assert report.clean
        assert report.completed == 1

    def test_time_budget_stops_early(self):
        report = run_fuzz(seed_start=0, count=50, time_budget=0.0)
        assert report.completed < 50

    def test_findings_are_reported(self, planted_bug):
        report = run_fuzz(seed_start=0, count=3, reduce=False)
        assert not report.clean
        assert [f.seed for f in report.findings] == list(PLANTED_HIT_SEEDS)
        assert all(f.failing_oracle == "variant-agreement"
                   for f in report.findings)


class TestArtifacts:
    def test_planted_bug_caught_and_reduced(self, planted_bug, tmp_path):
        """The ISSUE acceptance bar: a planted transform bug is caught by
        an oracle and reduced to <= 15 source lines, with a replayable
        seed artifact."""
        report = run_fuzz(seed_start=0, count=1, artifact_dir=tmp_path,
                          reduce=True)
        assert [f.seed for f in report.findings] == [0]

        seed_dir = tmp_path / "seed-0"
        program = (seed_dir / "program.c").read_text()
        assert program == generate_program(0)

        verdict = json.loads((seed_dir / "verdict.json").read_text())
        assert verdict["seed"] == 0
        assert verdict["failing_oracle"] == "variant-agreement"
        assert verdict["repro"] == "ferrum-fuzz --seed-start 0 --count 1"
        assert verdict["reduced"] is True
        assert any(not v["passed"] for v in verdict["verdicts"])

        reduced = (seed_dir / "reduced.c").read_text()
        parse(reduced)  # the reproducer is itself a valid program
        assert len(reduced.strip().splitlines()) <= 15
        assert len(reduced.splitlines()) < len(program.splitlines())

    def test_no_artifacts_for_clean_seeds(self, tmp_path):
        report = run_fuzz(seed_start=CLEAN_SEED, count=1,
                          artifact_dir=tmp_path)
        assert report.clean
        assert not list(tmp_path.glob("seed-*"))


class TestParallelDeterminism:
    def test_processes_do_not_change_findings(self, planted_bug, tmp_path):
        """Acceptance: identical findings and artifacts for processes=1
        and processes>1 (workers are pure per-seed functions)."""
        seq_dir = tmp_path / "seq"
        par_dir = tmp_path / "par"
        sequential = run_fuzz(seed_start=0, count=4, processes=1,
                              artifact_dir=seq_dir, reduce=False)
        parallel = run_fuzz(seed_start=0, count=4, processes=2,
                            artifact_dir=par_dir, reduce=False)
        assert sequential.findings == parallel.findings
        assert sequential.completed == parallel.completed

        seq_files = sorted(p.relative_to(seq_dir)
                           for p in seq_dir.rglob("*") if p.is_file())
        par_files = sorted(p.relative_to(par_dir)
                           for p in par_dir.rglob("*") if p.is_file())
        assert seq_files == par_files
        for rel in seq_files:
            assert (seq_dir / rel).read_text() == (par_dir / rel).read_text()


class TestCli:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        code = main(["--seed-start", str(CLEAN_SEED), "--count", "1",
                     "--artifact-dir", str(tmp_path)])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_with_repro_line(self, planted_bug, tmp_path,
                                               capsys):
        code = main(["--seed-start", "0", "--count", "1", "--no-reduce",
                     "--artifact-dir", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "ferrum-fuzz --seed-start 0 --count 1" in out
        assert (tmp_path / "seed-0" / "verdict.json").exists()


class TestSeedTimeout:
    """Per-seed wall-clock bounding: a livelocked seed becomes a finding."""

    @pytest.fixture
    def wedged_oracles(self, monkeypatch):
        import time as _time

        import repro.fuzz.runner as runner_mod

        def _hang(source, **kwargs):
            _time.sleep(60)

        monkeypatch.setattr(runner_mod, "run_oracles", _hang)

    def test_timed_out_seed_fails_with_timeout_verdict(self, wedged_oracles):
        result = check_seed(0, seed_timeout=0.2)
        assert not result.passed
        assert result.failing_oracle == "seed-timeout"
        assert "0.2s" in result.verdicts[0].detail

    def test_no_timeout_without_limit(self):
        assert check_seed(CLEAN_SEED, seed_timeout=30.0).passed

    def test_timeout_finding_produces_artifact_without_reduction(
            self, wedged_oracles, tmp_path):
        report = run_fuzz(seed_start=0, count=1, seed_timeout=0.2,
                          artifact_dir=tmp_path, reduce=True)
        assert [f.failing_oracle for f in report.findings] == ["seed-timeout"]
        seed_dir = tmp_path / "seed-0"
        verdict = json.loads((seed_dir / "verdict.json").read_text())
        assert verdict["failing_oracle"] == "seed-timeout"
        assert verdict["reduced"] is False
        assert not (seed_dir / "reduced.c").exists()
        assert (seed_dir / "program.c").read_text().strip()

    def test_alarm_state_restored_after_timeout(self, wedged_oracles):
        import signal as _signal

        check_seed(0, seed_timeout=0.2)
        # The itimer is disarmed and the previous handler reinstalled.
        assert _signal.getitimer(_signal.ITIMER_REAL)[0] == 0.0
