"""Reducer behaviour: planted failures shrink, deterministically."""

import pytest

from repro.errors import ReproError
from repro.fuzz.generator import generate_program
from repro.fuzz.reducer import reduce_source
from repro.machine.cpu import Machine
from repro.minic import parse
from repro.pipeline import build_variants

pytestmark = pytest.mark.fuzz


def _compiles(source: str) -> bool:
    build_variants(source, names=("raw",))
    return True


class TestShrinking:
    def test_planted_marker_shrinks_to_minimal(self):
        """A predicate keyed on one statement survives reduction with
        everything else stripped away."""
        source = generate_program(3)
        assert "while" in source  # seed chosen to contain a loop

        def predicate(candidate: str) -> bool:
            return "while" in candidate and _compiles(candidate)

        reduced = reduce_source(source, predicate)
        assert "while" in reduced
        assert _compiles(reduced)
        assert len(reduced.splitlines()) < len(source.splitlines())
        assert len(reduced.splitlines()) <= 15

    def test_semantic_predicate_shrinks(self):
        """Reduction against an execution predicate (raw output mentions a
        planted value) keeps the print reachable and drops the rest."""
        source = """
int main() {
    int a = 5;
    int b = 9;
    long acc = 0;
    for (int i0 = 0; i0 < 4; i0 = i0 + 1) {
        acc = acc + a * b;
    }
    if (acc > 100) { acc = acc - 3; }
    print_long(acc);
    print_int(77);
    print_int(a + b);
    return 0;
}
"""

        def predicate(candidate: str) -> bool:
            build = build_variants(candidate, names=("raw",))
            result = Machine(build["raw"].asm).run(max_instructions=200_000)
            return "77" in result.output

        reduced = reduce_source(source, predicate)
        assert "77" in reduced
        assert len(reduced.splitlines()) <= 4
        assert "for" not in reduced and "if" not in reduced

    def test_non_failing_input_returned_unchanged(self):
        source = generate_program(0)
        assert reduce_source(source, lambda _s: False) == source

    def test_unparsable_input_returned_unchanged(self):
        assert reduce_source("not a program", lambda _s: True) \
            == "not a program"


class TestRobustness:
    def test_predicate_repro_errors_count_as_pass(self):
        """Candidates the predicate cannot even evaluate (compile errors
        surfacing as ReproError) must be rejected, not crash the pass."""
        source = generate_program(4)
        calls = []

        def fragile(candidate: str) -> bool:
            calls.append(candidate)
            if len(calls) % 3 == 0:
                raise ReproError("flaky tooling")
            return "main" in candidate and _compiles(candidate)

        reduced = reduce_source(source, fragile)
        parse(reduced)  # still a valid program

    def test_check_budget_is_respected(self):
        source = generate_program(5)
        calls = []

        def predicate(candidate: str) -> bool:
            calls.append(candidate)
            return _compiles(candidate)

        reduce_source(source, predicate, max_checks=10)
        # +1: the initial "does the input itself fail" probe.
        assert len(calls) <= 11


class TestDeterminism:
    def test_same_input_same_reduction(self):
        source = generate_program(6)

        def predicate(candidate: str) -> bool:
            return "print_" in candidate and _compiles(candidate)

        assert reduce_source(source, predicate) \
            == reduce_source(source, predicate)
