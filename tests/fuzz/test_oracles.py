"""Oracle battery: clean programs pass, planted defects are caught."""

import pytest

from repro.asm.operands import Imm
from repro.fuzz.generator import generate_program
from repro.fuzz.oracles import (
    DmeDivergenceOracle,
    ExecOutcome,
    FaultSoundnessOracle,
    Subject,
    default_oracles,
    run_machine,
    run_oracles,
)

pytestmark = pytest.mark.fuzz

GOOD_SOURCE = """
int main() {
    int acc = 3;
    for (int i0 = 0; i0 < 4; i0 = i0 + 1) {
        acc = acc + i0 * 2;
    }
    if (acc > 10) { acc = acc - 40; }
    print_int(acc);
    return 0;
}
"""


def plant_orig_imm_bug(real_protect):
    """Wrap ``protect_program`` to corrupt one original ALU immediate.

    The duplicate stream still computes with the true immediate, so the
    divergence checker fires on the first fault-free run — the canonical
    "transform changed program semantics" defect class.
    """

    def planted(asm, config=None):
        program, stats = real_protect(asm, config)
        for func in program.functions:
            for instr in func.instructions():
                if (instr.origin == "orig"
                        and instr.mnemonic in ("addl", "addq")
                        and instr.operands
                        and isinstance(instr.operands[0], Imm)):
                    instr.operands = (
                        Imm(instr.operands[0].value ^ 1),
                    ) + instr.operands[1:]
                    return program, stats
        return program, stats

    return planted


class TestCleanPrograms:
    def test_battery_passes_on_handwritten(self):
        verdicts = run_oracles(GOOD_SOURCE)
        assert [v.oracle for v in verdicts] == [
            "cross-layer", "variant-agreement", "static-discipline",
            "fault-soundness", "dme-divergence",
        ]
        assert all(v.passed for v in verdicts), verdicts

    def test_battery_passes_on_generated(self):
        verdicts = run_oracles(generate_program(1))
        assert all(v.passed for v in verdicts), verdicts

    def test_build_failure_is_a_verdict_not_an_exception(self):
        verdicts = run_oracles("int main() { return undeclared; }")
        assert len(verdicts) == 1
        assert verdicts[0].oracle == "build"
        assert not verdicts[0].passed
        assert verdicts[0].detail


class TestOutcomeNormalization:
    def test_hang_is_folded_into_status(self):
        subject = Subject(GOOD_SOURCE)
        outcome = run_machine(subject.build["raw"].asm, max_instructions=5)
        assert outcome == ExecOutcome("hang")
        assert outcome.describe() == "hang"

    def test_ok_outcome_carries_output(self):
        subject = Subject(GOOD_SOURCE)
        outcome = run_machine(subject.build["raw"].asm)
        assert outcome.status == "ok"
        assert outcome.exit_code == 0
        assert outcome.output


class TestPlantedDefects:
    def test_variant_agreement_catches_planted_transform_bug(
            self, monkeypatch):
        import repro.pipeline as pipeline_mod

        monkeypatch.setattr(
            pipeline_mod, "protect_program",
            plant_orig_imm_bug(pipeline_mod.protect_program))
        verdicts = run_oracles(GOOD_SOURCE)
        failed = {v.oracle for v in verdicts if not v.passed}
        assert "variant-agreement" in failed
        detail = next(v.detail for v in verdicts
                      if v.oracle == "variant-agreement")
        assert "ferrum" in detail and "detected" in detail

    def test_dme_divergence_catches_planted_secondary_bug(self):
        # Corrupt one ALU immediate in the *secondary* after the build-time
        # decorrelation gate has already passed. The primary still computes
        # the true value, so the lockstep comparison must report a value
        # divergence on the very first fault-free run.
        subject = Subject(GOOD_SOURCE)
        secondary = subject.build["dme"].asm.secondary
        planted = False
        for func in secondary.functions:
            for instr in func.instructions():
                if (instr.mnemonic in ("addl", "addq", "subl", "subq")
                        and instr.operands
                        and isinstance(instr.operands[0], Imm)):
                    instr.operands = (
                        Imm(instr.operands[0].value ^ 1),
                    ) + instr.operands[1:]
                    planted = True
                    break
            if planted:
                break
        assert planted, "no ALU immediate to corrupt in the secondary"
        verdict = DmeDivergenceOracle().check(subject)
        assert not verdict.passed
        assert "divergence" in verdict.detail

    def test_fault_soundness_flags_unprotected_code(self):
        # Positive control: pointing the soundness sweep at the raw
        # variant must find an SDC — otherwise the oracle is vacuous.
        subject = Subject(GOOD_SOURCE)
        verdict = FaultSoundnessOracle(variants=("raw",)).check(subject)
        assert not verdict.passed
        assert "SDC at site" in verdict.detail

    def test_fault_soundness_clean_on_protected(self):
        subject = Subject(GOOD_SOURCE)
        verdict = FaultSoundnessOracle().check(subject)
        assert verdict.passed, verdict.detail


class TestDeterminism:
    def test_verdicts_are_pure_functions_of_source(self):
        source = generate_program(9)
        assert run_oracles(source) == run_oracles(source)

    @pytest.mark.parametrize("oracle", default_oracles(),
                             ids=lambda o: o.name)
    def test_each_oracle_deterministic(self, oracle):
        subject = Subject(GOOD_SOURCE)
        assert oracle.check(subject) == oracle.check(subject)
