"""Mini-C parser tests (AST shape and error reporting)."""

import pytest

from repro.errors import ParseError
from repro.minic import ast
from repro.minic.parser import parse


def main_body(source_body: str) -> tuple:
    program = parse("int main() { " + source_body + " }")
    return program.functions[0].body.statements


class TestDeclarations:
    def test_function_signature(self):
        program = parse("long f(int a, int* b) { return 0; }")
        func = program.functions[0]
        assert func.name == "f"
        assert func.return_type == ast.TypeName("long")
        assert func.params[0].type == ast.TypeName("int")
        assert func.params[1].type == ast.TypeName("int", 1)

    def test_variable_with_init(self):
        (decl,) = main_body("int x = 5;")
        assert isinstance(decl, ast.Declaration)
        assert decl.name == "x" and isinstance(decl.init, ast.IntLiteral)

    def test_array_declaration(self):
        (decl,) = main_body("int a[10];")
        assert decl.array_size == 10

    def test_array_initializer_rejected(self):
        with pytest.raises(ParseError):
            parse("int main() { int a[2] = 5; }")

    def test_void_variable_rejected(self):
        with pytest.raises(ParseError):
            parse("int main() { void v; }")


class TestPrecedence:
    def test_mul_binds_tighter_than_add(self):
        (stmt,) = main_body("int x = 1 + 2 * 3;")
        init = stmt.init
        assert init.op == "+" and init.rhs.op == "*"

    def test_comparison_below_arithmetic(self):
        (stmt,) = main_body("int x = 1 + 2 < 4;")
        assert stmt.init.op == "<"

    def test_logical_or_weakest(self):
        (stmt,) = main_body("int x = 1 < 2 && 3 < 4 || 5 < 6;")
        assert stmt.init.op == "||"

    def test_parentheses_override(self):
        (stmt,) = main_body("int x = (1 + 2) * 3;")
        assert stmt.init.op == "*" and stmt.init.lhs.op == "+"

    def test_shift_precedence(self):
        (stmt,) = main_body("int x = 1 << 2 + 3;")
        assert stmt.init.op == "<<"  # + binds tighter than <<

    def test_unary_minus(self):
        (stmt,) = main_body("int x = -y;")
        assert isinstance(stmt.init, ast.Unary) and stmt.init.op == "-"


class TestStatements:
    def test_if_else(self):
        (stmt,) = main_body("if (1) { } else { }")
        assert isinstance(stmt, ast.If) and stmt.else_body is not None

    def test_dangling_else_binds_inner(self):
        (stmt,) = main_body("if (1) if (2) { } else { }")
        assert stmt.else_body is None
        assert stmt.then_body.else_body is not None

    def test_while(self):
        (stmt,) = main_body("while (x < 3) { }")
        assert isinstance(stmt, ast.While)

    def test_for_full(self):
        (stmt,) = main_body("for (int i = 0; i < 3; i++) { }")
        assert isinstance(stmt, ast.For)
        assert stmt.init is not None and stmt.cond is not None
        assert stmt.step is not None

    def test_for_empty_clauses(self):
        (stmt,) = main_body("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_break_continue(self):
        body = main_body("while (1) { break; } while (1) { continue; }")
        assert isinstance(body[0].body.statements[0], ast.Break)
        assert isinstance(body[1].body.statements[0], ast.Continue)


class TestDesugaring:
    def test_compound_assignment(self):
        (_, stmt) = main_body("int x = 0; x += 2;")
        assert isinstance(stmt, ast.Assign)
        assert stmt.value.op == "+"

    def test_increment(self):
        (_, stmt) = main_body("int i = 0; i++;")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.value.rhs, ast.IntLiteral)

    def test_indexed_assignment(self):
        (stmt,) = main_body("p[3] = 7;")
        assert isinstance(stmt.target, ast.Index)

    def test_assignment_to_rvalue_rejected(self):
        with pytest.raises(ParseError):
            parse("int main() { 1 + 2 = 3; }")

    def test_call_statement(self):
        (stmt,) = main_body("print_int(3);")
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.CallExpr)


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int main() { int x = 1 }")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("int main() { ")

    def test_missing_paren(self):
        with pytest.raises(ParseError):
            parse("int main() { if (1 { } }")

    def test_garbage_at_top_level(self):
        with pytest.raises(ParseError):
            parse("banana")
