"""Lowering tests: semantics via the IR interpreter + type errors."""

import pytest

from repro.errors import SemanticError
from repro.ir.interp import IRInterpreter
from repro.minic import compile_to_ir


def outputs(source: str) -> tuple[str, ...]:
    return IRInterpreter(compile_to_ir(source)).run().output


class TestLanguageSemantics:
    def test_short_circuit_and_skips_rhs(self):
        out = outputs("""
            int side(int x) { print_int(x); return x; }
            int main() {
                if (side(0) && side(1)) { }
                return 0;
            }
        """)
        assert out == ("0",)  # rhs never evaluated

    def test_short_circuit_or_skips_rhs(self):
        out = outputs("""
            int side(int x) { print_int(x); return x; }
            int main() {
                if (side(1) || side(2)) { }
                return 0;
            }
        """)
        assert out == ("1",)

    def test_logical_results_are_0_or_1(self):
        assert outputs("""
            int main() {
                print_int((3 < 5) + (5 < 3));
                print_int(!7);
                print_int(!0);
                return 0;
            }
        """) == ("1", "0", "1")

    def test_scoping_shadows(self):
        assert outputs("""
            int main() {
                int x = 1;
                { int x = 2; print_int(x); }
                print_int(x);
                return 0;
            }
        """) == ("2", "1")

    def test_for_scope_confined(self):
        with pytest.raises(SemanticError):
            compile_to_ir("""
                int main() {
                    for (int i = 0; i < 3; i++) { }
                    print_int(i);
                    return 0;
                }
            """)

    def test_break_and_continue(self):
        assert outputs("""
            int main() {
                int total = 0;
                for (int i = 0; i < 10; i++) {
                    if (i == 3) { continue; }
                    if (i == 6) { break; }
                    total += i;
                }
                print_int(total);
                return 0;
            }
        """) == ("12",)  # 0+1+2+4+5

    def test_int_long_promotion(self):
        assert outputs("""
            int main() {
                long big = 2000000000;
                int small = 10;
                print_long(big + small + big);
                return 0;
            }
        """) == ("4000000010",)

    def test_long_to_int_truncation(self):
        assert outputs("""
            int main() {
                long big = 4294967297;
                int t = big;
                print_int(t);
                return 0;
            }
        """) == ("1",)

    def test_pointer_plus_int(self):
        assert outputs("""
            int main() {
                int* p = malloc(16);
                p[0] = 1; p[1] = 2; p[2] = 3;
                int* q = p + 2;
                print_int(q[0]);
                return 0;
            }
        """) == ("3",)

    def test_array_decay_to_call(self):
        assert outputs("""
            int first(int* p) { return p[0]; }
            int main() {
                int a[3];
                a[0] = 42;
                print_int(first(a));
                return 0;
            }
        """) == ("42",)

    def test_main_implicit_return_zero(self):
        result = IRInterpreter(compile_to_ir(
            "int main() { print_int(1); }"
        )).run()
        assert result.exit_code == 0

    def test_nested_loops(self):
        assert outputs("""
            int main() {
                int count = 0;
                for (int i = 0; i < 4; i++) {
                    for (int j = 0; j < i; j++) { count++; }
                }
                print_int(count);
                return 0;
            }
        """) == ("6",)

    def test_modulo_negative(self):
        assert outputs("int main() { print_int(-9 % 4); return 0; }") == ("-1",)

    def test_shift_operators(self):
        assert outputs("""
            int main() {
                print_int(1 << 5);
                print_int(-32 >> 2);
                return 0;
            }
        """) == ("32", "-8")

    def test_bitwise_operators(self):
        assert outputs("""
            int main() {
                print_int(12 & 10);
                print_int(12 | 3);
                print_int(12 ^ 10);
                return 0;
            }
        """) == ("8", "15", "6")


class TestTypeErrors:
    def test_undeclared_variable(self):
        with pytest.raises(SemanticError):
            compile_to_ir("int main() { return x; }")

    def test_redeclaration_in_scope(self):
        with pytest.raises(SemanticError):
            compile_to_ir("int main() { int x = 1; int x = 2; return 0; }")

    def test_pointer_int_assignment_rejected(self):
        with pytest.raises(SemanticError):
            compile_to_ir("int main() { int* p = 5; return 0; }")

    def test_mismatched_pointer_types_rejected(self):
        with pytest.raises(SemanticError):
            compile_to_ir("""
                int main() { long* p = malloc(8); int* q = p; return 0; }
            """)

    def test_indexing_non_pointer_rejected(self):
        with pytest.raises(SemanticError):
            compile_to_ir("int main() { int x = 1; return x[0]; }")

    def test_call_arity_checked(self):
        with pytest.raises(SemanticError):
            compile_to_ir("""
                int f(int a) { return a; }
                int main() { return f(1, 2); }
            """)

    def test_unknown_function_rejected(self):
        with pytest.raises(SemanticError):
            compile_to_ir("int main() { return mystery(); }")

    def test_void_function_returning_value_rejected(self):
        with pytest.raises(SemanticError):
            compile_to_ir("void f() { return 3; } int main() { return 0; }")

    def test_missing_return_rejected(self):
        with pytest.raises(SemanticError):
            compile_to_ir("int f() { int x = 1; } int main() { return 0; }")

    def test_break_outside_loop_rejected(self):
        with pytest.raises(SemanticError):
            compile_to_ir("int main() { break; return 0; }")

    def test_assign_to_array_rejected(self):
        with pytest.raises(SemanticError):
            compile_to_ir("""
                int main() { int a[2]; int* p = malloc(8); a = p; return 0; }
            """)

    def test_builtin_shadowing_rejected(self):
        with pytest.raises(SemanticError):
            compile_to_ir("int malloc(int x) { return x; } "
                          "int main() { return 0; }")

    def test_duplicate_function_rejected(self):
        with pytest.raises(SemanticError):
            compile_to_ir("int f() { return 1; } int f() { return 2; } "
                          "int main() { return 0; }")
