"""Lexer tests."""

import pytest

from repro.errors import LexError
from repro.minic.lexer import TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestTokens:
    def test_keywords_vs_identifiers(self):
        tokens = tokenize("int foo while whilefoo")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.IDENT
        assert tokens[2].kind is TokenKind.KEYWORD
        assert tokens[3].kind is TokenKind.IDENT

    def test_numbers(self):
        tokens = tokenize("0 123 456789")
        assert all(t.kind is TokenKind.INT_LITERAL for t in tokens[:-1])

    def test_maximal_munch_operators(self):
        assert texts("a<<=b") == ["a", "<<=", "b"]
        assert texts("a<=b") == ["a", "<=", "b"]
        assert texts("a<b") == ["a", "<", "b"]
        assert texts("i++") == ["i", "++"]
        assert texts("a&&b") == ["a", "&&", "b"]
        assert texts("a&b") == ["a", "&", "b"]

    def test_eof_token(self):
        assert tokenize("")[-1].kind is TokenKind.EOF

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_bad_number_suffix(self):
        with pytest.raises(LexError):
            tokenize("123abc")

    def test_error_carries_position(self):
        try:
            tokenize("x\n  @")
        except LexError as exc:
            assert exc.line == 2 and exc.column == 3
        else:  # pragma: no cover
            raise AssertionError("expected LexError")
