"""Parser/printer tests, including the hypothesis round-trip property."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm.instructions import Instruction, ins
from repro.asm.operands import Imm, LabelRef, Mem, Reg
from repro.asm.parser import parse_instruction, parse_operand, parse_program
from repro.asm.printer import format_instruction, format_program
from repro.asm.program import AsmBlock, AsmFunction, AsmProgram
from repro.asm.registers import GPR64, get_register
from repro.errors import AsmParseError


class TestParseOperand:
    def test_immediate(self):
        assert parse_operand("$42") == Imm(42)
        assert parse_operand("$-8") == Imm(-8)

    def test_register(self):
        assert parse_operand("%eax") == Reg(get_register("eax"))

    def test_memory_forms(self):
        assert parse_operand("-8(%rbp)") == Mem(disp=-8,
                                                base=get_register("rbp"))
        assert parse_operand("(%rax)") == Mem(base=get_register("rax"))
        assert parse_operand("(%rax,%rcx,4)") == Mem(
            base=get_register("rax"), index=get_register("rcx"), scale=4)

    def test_label(self):
        assert parse_operand(".LBB0_3") == LabelRef(".LBB0_3")

    def test_bad_immediate(self):
        with pytest.raises(AsmParseError):
            parse_operand("$abc")

    def test_register_without_sigil_rejected(self):
        with pytest.raises(AsmParseError):
            parse_operand("rax")

    def test_empty_rejected(self):
        with pytest.raises(AsmParseError):
            parse_operand("")


class TestParseInstruction:
    def test_two_operands(self):
        instr = parse_instruction("movq %rax, %rbx")
        assert instr.mnemonic == "movq"
        assert instr.operands == (Reg(get_register("rax")),
                                  Reg(get_register("rbx")))

    def test_memory_comma_protection(self):
        instr = parse_instruction("leaq (%rax,%rcx,8), %rdx")
        assert len(instr.operands) == 2

    def test_comment_preserved(self):
        instr = parse_instruction("movq %rax, %rbx  # hello world")
        assert instr.comment == "hello world"

    def test_three_operand_vector(self):
        instr = parse_instruction("vinserti128 $1, %xmm2, %ymm0, %ymm0")
        assert instr.mnemonic == "vinserti128"
        assert len(instr.operands) == 4

    def test_bad_operand_count(self):
        with pytest.raises(AsmParseError):
            parse_instruction("movq %rax")

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmParseError):
            parse_instruction("bogus %rax, %rbx")


class TestParseProgram:
    def test_function_and_blocks(self):
        prog = parse_program(
            "\t.globl main\nmain:\n\tmovl $1, %eax\n.L1:\n\tretq\n"
        )
        func = prog.function("main")
        assert [b.label for b in func.blocks] == ["main", ".L1"]

    def test_label_outside_function_rejected(self):
        with pytest.raises(AsmParseError):
            parse_program("orphan:\n\tretq\n")

    def test_globl_label_mismatch_rejected(self):
        with pytest.raises(AsmParseError):
            parse_program("\t.globl foo\nbar:\n\tretq\n")

    def test_trailing_globl_rejected(self):
        with pytest.raises(AsmParseError):
            parse_program("\t.globl foo\n")

    def test_blank_lines_and_comments_skipped(self):
        prog = parse_program(
            "# header\n\n\t.globl f\nf:\n\t# comment line\n\tretq\n"
        )
        assert prog.function("f").static_size() == 1


# -- hypothesis round-trip -----------------------------------------------

_REG64 = st.sampled_from(GPR64).map(lambda r: Reg(get_register(r)))
_IMM = st.integers(-(2 ** 31), 2 ** 31 - 1).map(Imm)
_MEM = st.builds(
    Mem,
    disp=st.integers(-512, 512),
    base=st.sampled_from(GPR64).map(get_register),
    index=st.one_of(st.none(), st.sampled_from(GPR64).map(get_register)),
    scale=st.sampled_from([1, 2, 4, 8]),
)


def _instruction_strategy():
    two_op = st.one_of(
        st.tuples(st.just("movq"), st.tuples(_REG64, _REG64)),
        st.tuples(st.just("movq"), st.tuples(_MEM, _REG64)),
        st.tuples(st.just("movq"), st.tuples(_REG64, _MEM)),
        st.tuples(st.just("addq"), st.tuples(_IMM, _REG64)),
        st.tuples(st.just("cmpq"), st.tuples(_REG64, _REG64)),
        st.tuples(st.just("leaq"), st.tuples(_MEM, _REG64)),
    )
    one_op = st.one_of(
        st.tuples(st.just("pushq"), st.tuples(_REG64)),
        st.tuples(st.just("popq"), st.tuples(_REG64)),
        st.tuples(st.just("negq"), st.tuples(_REG64)),
    )
    return st.one_of(two_op, one_op).map(
        lambda pair: Instruction(pair[0], tuple(pair[1]))
    )


class TestRoundTrip:
    @given(_instruction_strategy())
    def test_instruction_roundtrip(self, instr):
        text = format_instruction(instr)
        parsed = parse_instruction(text)
        assert parsed.mnemonic == instr.mnemonic
        assert parsed.operands == instr.operands

    @given(st.lists(_instruction_strategy(), min_size=1, max_size=12))
    def test_program_roundtrip(self, instrs):
        block = AsmBlock("main", instrs + [ins("retq")])
        program = AsmProgram([AsmFunction("main", [block])])
        text = format_program(program)
        reparsed = parse_program(text)
        assert format_program(reparsed) == text

    def test_roundtrip_of_compiled_program(self, small_build):
        text = format_program(small_build["ferrum"].asm)
        assert format_program(parse_program(text)) == text
