"""Unit tests for the register model."""

import pytest

from repro.asm.registers import (
    ARG_GPRS,
    CALLEE_SAVED,
    FLAGS,
    GPR64,
    RESERVED_GPRS,
    RegisterKind,
    XMM,
    YMM,
    all_registers,
    get_register,
    gpr_with_width,
    is_register_name,
    xmm_of,
    ymm_of,
)
from repro.errors import UnknownRegisterError


class TestLookup:
    def test_canonical_names(self):
        assert get_register("rax").width == 64
        assert get_register("eax").width == 32
        assert get_register("ax").width == 16
        assert get_register("al").width == 8

    def test_percent_sigil_accepted(self):
        assert get_register("%rax") is get_register("rax")

    def test_case_insensitive(self):
        assert get_register("RAX") is get_register("rax")

    def test_unknown_raises(self):
        with pytest.raises(UnknownRegisterError):
            get_register("rfoo")

    def test_high_byte_registers_unsupported(self):
        with pytest.raises(UnknownRegisterError):
            get_register("ah")

    def test_is_register_name(self):
        assert is_register_name("%r10")
        assert not is_register_name("banana")


class TestAliasing:
    def test_sub_registers_share_root(self):
        for name in ("eax", "ax", "al"):
            assert get_register(name).root == "rax"

    def test_extended_registers(self):
        assert get_register("r10d").root == "r10"
        assert get_register("r10b").width == 8

    def test_xmm_roots_at_ymm(self):
        assert get_register("xmm3").root == "ymm3"
        assert get_register("ymm3").root == "ymm3"

    def test_every_gpr_has_four_views(self):
        for root in GPR64:
            widths = {
                reg.width for reg in all_registers()
                if reg.root == root and reg.kind is RegisterKind.GPR
            }
            assert widths == {8, 16, 32, 64}


class TestHelpers:
    def test_gpr_with_width(self):
        assert gpr_with_width("rax", 32).name == "eax"
        assert gpr_with_width("r11", 8).name == "r11b"
        assert gpr_with_width("rsi", 8).name == "sil"

    def test_gpr_with_width_rejects_vector_root(self):
        with pytest.raises(UnknownRegisterError):
            gpr_with_width("ymm0", 32)

    def test_xmm_ymm_of(self):
        assert xmm_of(5).name == "xmm5"
        assert ymm_of(5).name == "ymm5"
        assert xmm_of(5).root == ymm_of(5).root


class TestConventionSets:
    def test_reserved(self):
        assert RESERVED_GPRS == {"rsp", "rbp"}

    def test_arg_order(self):
        assert ARG_GPRS == ("rdi", "rsi", "rdx", "rcx", "r8", "r9")

    def test_callee_saved_members(self):
        assert "rbx" in CALLEE_SAVED
        assert "rax" not in CALLEE_SAVED

    def test_register_counts(self):
        assert len(GPR64) == 16
        assert len(XMM) == 16
        assert len(YMM) == 16

    def test_flags_kind(self):
        assert FLAGS.kind is RegisterKind.FLAGS
