"""Unit tests for assembly operands."""

import pytest

from repro.asm.operands import Imm, LabelRef, Mem, Reg
from repro.asm.registers import get_register


class TestImm:
    def test_str(self):
        assert str(Imm(42)) == "$42"
        assert str(Imm(-8)) == "$-8"


class TestReg:
    def test_str_and_accessors(self):
        reg = Reg(get_register("eax"))
        assert str(reg) == "%eax"
        assert reg.name == "eax"
        assert reg.root == "rax"
        assert reg.width == 32


class TestMem:
    def test_disp_base(self):
        mem = Mem(disp=-8, base=get_register("rbp"))
        assert str(mem) == "-8(%rbp)"

    def test_base_only(self):
        assert str(Mem(base=get_register("rax"))) == "(%rax)"

    def test_base_index_scale(self):
        mem = Mem(base=get_register("rax"), index=get_register("rcx"), scale=4)
        assert str(mem) == "(%rax,%rcx,4)"

    def test_absolute(self):
        assert str(Mem(disp=4096)) == "4096"

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            Mem(base=get_register("rax"), scale=3)

    def test_registers(self):
        mem = Mem(base=get_register("rax"), index=get_register("rcx"))
        roots = {r.root for r in mem.registers()}
        assert roots == {"rax", "rcx"}

    def test_registers_empty(self):
        assert Mem(disp=8).registers() == ()


class TestLabelRef:
    def test_str(self):
        assert str(LabelRef(".LBB0_3")) == ".LBB0_3"
