"""Unit tests for liveness analysis."""

from repro.asm.instructions import ins
from repro.asm.liveness import (
    CALLER_SAVED,
    compute_liveness,
    instruction_defs,
    instruction_uses,
    live_before_each,
)
from repro.asm.operands import Imm, LabelRef, Mem, Reg
from repro.asm.program import AsmBlock, AsmFunction
from repro.asm.registers import get_register


def _reg(name):
    return Reg(get_register(name))


class TestUseDef:
    def test_mov_use_def(self):
        instr = ins("movq", _reg("rax"), _reg("rbx"))
        assert instruction_uses(instr) == {"rax"}
        assert instruction_defs(instr) == {"rbx"}

    def test_rmw_uses_dest(self):
        instr = ins("addq", _reg("rcx"), _reg("rax"))
        assert instruction_uses(instr) == {"rcx", "rax"}

    def test_call_clobbers_caller_saved(self):
        instr = ins("call", LabelRef("f"))
        assert CALLER_SAVED <= instruction_defs(instr)
        assert "rbx" not in instruction_defs(instr)

    def test_call_uses_arg_registers(self):
        instr = ins("call", LabelRef("f"))
        assert {"rdi", "rsi", "rdx", "rcx", "r8", "r9"} <= instruction_uses(instr)

    def test_ret_uses_rax(self):
        assert "rax" in instruction_uses(ins("retq"))

    def test_push_pop_touch_rsp(self):
        assert "rsp" in instruction_defs(ins("pushq", _reg("rax")))
        assert "rsp" in instruction_uses(ins("popq", _reg("rax")))

    def test_mem_operand_uses_address_roots(self):
        mem = Mem(base=get_register("r8"), index=get_register("r9"))
        instr = ins("movq", mem, _reg("rax"))
        assert {"r8", "r9"} <= instruction_uses(instr)


class TestLivenessDataflow:
    def _straightline(self):
        # rax defined, copied to rbx, rbx returned via rax.
        block = AsmBlock("f", [
            ins("movq", Imm(1), _reg("rax")),
            ins("movq", _reg("rax"), _reg("rbx")),
            ins("movq", _reg("rbx"), _reg("rax")),
            ins("retq"),
        ])
        return AsmFunction("f", [block])

    def test_straightline_entry_live_in_empty_of_gprs(self):
        func = self._straightline()
        result = compute_liveness(func)
        # rsp is live at entry (ret uses it); no data register is.
        assert result.live_at_entry("f") <= {"rsp"}

    def test_loop_keeps_counter_live(self):
        entry = AsmBlock("f", [
            ins("movq", Imm(0), _reg("rbx")),
            ins("jmp", LabelRef(".Lloop")),
        ])
        loop = AsmBlock(".Lloop", [
            ins("addq", Imm(1), _reg("rbx")),
            ins("cmpq", Imm(10), _reg("rbx")),
            ins("jne", LabelRef(".Lloop")),
        ])
        done = AsmBlock(".Ldone", [ins("retq")])
        func = AsmFunction("f", [entry, loop, done])
        result = compute_liveness(func)
        assert "rbx" in result.live_at_entry(".Lloop")
        assert "rbx" in result.live_at_exit(".Lloop")

    def test_dead_def_not_live(self):
        func = self._straightline()
        result = compute_liveness(func)
        assert "rcx" not in result.live_at_entry("f")

    def test_live_before_each_positions(self):
        block = AsmBlock("b", [
            ins("movq", Imm(1), _reg("rax")),
            ins("movq", _reg("rax"), _reg("rbx")),
        ])
        before = live_before_each(block, frozenset({"rbx"}))
        assert "rax" not in before[0]       # defined by instruction 0
        assert "rax" in before[1]           # used by instruction 1
        assert "rbx" not in before[1]       # defined by instruction 1

    def test_live_out_flows_through(self):
        block = AsmBlock("b", [ins("nop")])
        before = live_before_each(block, frozenset({"r12"}))
        assert "r12" in before[0]
